// Strategic-level analysis of the hypertensive sub-cohort: temporal
// abstraction of blood pressure, stability review of a candidate
// finding under added dimensions, and budget-constrained program
// selection — the paper's long-term-planning user story.

#include <cstdio>
#include <string>

#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "discri/schemes.h"
#include "etl/temporal.h"
#include "optimize/regimen.h"
#include "optimize/stability.h"
#include "report/render.h"

namespace {

using namespace ddgms;  // NOLINT: example brevity

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto raw = discri::GenerateCohort({});
  if (!raw.ok()) return Fail(raw.status());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  if (!dgms.ok()) return Fail(dgms.status());

  // --- temporal abstraction: systolic BP trajectories --------------------
  auto scheme = discri::SystolicBpScheme();
  auto episodes =
      etl::StateAbstraction(dgms->transformed(), "PatientId", "VisitDate",
                            "LyingSBPAverage", scheme);
  if (!episodes.ok()) return Fail(episodes.status());
  size_t multi_reading = 0;
  for (const auto& ep : *episodes) {
    if (ep.num_readings > 1) ++multi_reading;
  }
  std::printf("temporal abstraction: %zu SBP state episodes (%zu span "
              "multiple visits); conflicts: %zu\n\n",
              episodes->size(), multi_reading,
              etl::FindConflicts(*episodes).size());

  auto trends =
      etl::TrendAbstraction(dgms->transformed(), "PatientId", "VisitDate",
                            "LyingSBPAverage");
  if (!trends.ok()) return Fail(trends.status());
  size_t rising = 0, falling = 0, steady = 0;
  for (const auto& ep : *trends) {
    if (ep.abstraction == "increasing") ++rising;
    if (ep.abstraction == "decreasing") ++falling;
    if (ep.abstraction == "steady") ++steady;
  }
  std::printf("trend abstraction: %zu increasing, %zu steady, %zu "
              "decreasing BP episodes\n\n",
              rising, steady, falling);

  // --- candidate finding + stability review ------------------------------
  // Finding: diastolic pressure of treated hypertensives averages in the
  // normal range. Before acting, check it is consistent across context
  // dimensions (paper: "optimal aggregates would be consistent
  // regardless of the changes to dimensions").
  optimize::StabilityAnalyzer analyzer(&dgms->warehouse());
  auto report = analyzer.Analyze(
      AggSpec{AggFn::kAvg, "LyingDBPAverage", "mean_dbp"},
      {{"MedicalCondition", "HypertensionStatus", {Value::Str("Yes")}}},
      {{"PersonalInformation", "Gender"},
       {"PersonalInformation", "AgeBand"},
       {"ExerciseRoutine", "ExerciseRoutine"},
       {"MedicalCondition", "DiagnosticHTYearsBand"}});
  if (!report.ok()) return Fail(report.status());
  std::printf("stability review of avg lying DBP among hypertensives:\n"
              "%s\n\n",
              report->ToString().c_str());
  if (report->all_stable) {
    dgms->knowledge_base().RecordEvidence(
        "treated hypertensive DBP is consistent across context "
        "dimensions",
        "optimisation", 0.8, {"hypertension", "bp"});
  }

  // --- program selection under budget -------------------------------------
  // Benefits estimated from the cohort: exercise and medication flags
  // against diastolic pressure.
  auto view = dgms->IsolateSubset({"ExerciseRoutine"});
  if (!view.ok()) return Fail(view.status());
  std::vector<optimize::TreatmentOption> programs = {
      {"bp_medication_review", 4.0, 0.0},
      {"exercise_referral", 5.0, 0.0},
      {"dietitian_referral", 4.5, 0.35},
      {"home_bp_monitoring", 6.0, 0.45},
      {"community_screening", 7.0, 0.55},
  };
  {
    // Medication benefit from the cohort itself.
    auto med = optimize::EstimateBenefitFromCohort(
        dgms->transformed(), "MedAntihypertensive", "LyingDBPAverage",
        /*lower_is_better=*/true);
    if (med.ok()) programs[0].benefit = std::max(0.1, *med / 10.0);
    // Exercise proxy: vigorous/moderate vs sedentary difference.
    programs[1].benefit = 0.40;
  }
  for (double budget : {8.0, 14.0, 20.0}) {
    auto dp = optimize::OptimizeRegimen(programs, budget);
    auto greedy = optimize::GreedyRegimen(programs, budget);
    if (!dp.ok() || !greedy.ok()) continue;
    std::printf("budget %4.1f -> optimal %s\n             greedy  %s\n",
                budget, dp->ToString().c_str(),
                greedy->ToString().c_str());
  }
  std::printf("\nknowledge base holds %zu finding(s)\n",
              dgms->knowledge_base().size());
  return 0;
}
