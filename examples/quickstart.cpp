// Quickstart: build a DD-DGMS over a small synthetic screening extract,
// run an OLAP query and an MDX query, and print the results.
//
// This walks the closed loop of the architecture end to end:
//   generate raw extract -> transform (clean/discretise/cardinality) ->
//   star-schema warehouse -> OLAP + MDX reporting -> knowledge base.

#include <cstdio>
#include <string>

#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "report/render.h"

namespace {

int Fail(const ddgms::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace ddgms;  // NOLINT: example brevity

  // 1. A raw attendance extract (synthetic stand-in for the screening
  //    clinic's accumulated data).
  discri::CohortOptions cohort_options;
  cohort_options.num_patients = 300;
  cohort_options.seed = 7;
  auto raw = discri::GenerateCohort(cohort_options);
  if (!raw.ok()) return Fail(raw.status());
  std::printf("raw extract: %zu attendances x %zu attributes\n",
              raw->num_rows(), raw->num_columns());

  // 2. Build the platform: transformation pipeline + Fig 3 star schema.
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  if (!dgms.ok()) return Fail(dgms.status());
  std::printf("%s\n\n", dgms->transform_report().ToString().c_str());
  std::printf("warehouse: %zu fact rows, %zu dimensions\n\n",
              dgms->warehouse().num_fact_rows(),
              dgms->warehouse().dimensions().size());

  // 3. OLAP: diabetic patient count by age band and gender.
  olap::CubeQuery query;
  query.axes = {{"PersonalInformation", "AgeBand", {}},
                {"PersonalInformation", "Gender", {}}};
  query.slicers = {
      {"MedicalCondition", "DiabetesStatus", {Value::Str("Type2")}}};
  query.measures = {{AggFn::kCount, "", "patients"}};
  auto cube = dgms->Query(query);
  if (!cube.ok()) return Fail(cube.status());
  auto grid = cube->Pivot(/*row_axis=*/0, /*col_axis=*/1);
  if (!grid.ok()) return Fail(grid.status());
  auto rendered = report::RenderPivot(
      *grid, {.title = "Diabetic attendances by age band x gender"});
  if (!rendered.ok()) return Fail(rendered.status());
  std::printf("%s\n", rendered->c_str());

  // 4. The same question through MDX.
  const std::string mdx_text =
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
      "       { [PersonalInformation].[AgeBand].Members } ON ROWS "
      "FROM [MedicalMeasures] "
      "WHERE ( [MedicalCondition].[DiabetesStatus].[Type2], "
      "        [Measures].[Count] )";
  auto mdx_result = dgms->QueryMdx(mdx_text);
  if (!mdx_result.ok()) return Fail(mdx_result.status());
  auto mdx_grid = mdx_result->ToGrid();
  if (!mdx_grid.ok()) return Fail(mdx_grid.status());
  std::printf("MDX result:\n%s\n", mdx_grid->ToPrettyString().c_str());

  // 5. Record what we learned in the knowledge base.
  dgms->knowledge_base().RecordEvidence(
      "Diabetes attendance counts peak in the 60-80 age band",
      "olap", /*confidence=*/0.7, {"diabetes", "age"});
  std::printf("knowledge base now holds %zu finding(s)\n",
              dgms->knowledge_base().size());
  return 0;
}
