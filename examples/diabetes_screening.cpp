// The paper's §V trial end to end on the synthetic DiScRi cohort:
// transformation (Table I schemes), the Fig 3 warehouse, the Fig 4/5/6
// OLAP analyses with rendered output, analytics on an isolated subset,
// and knowledge-base capture of what was found.

#include <cstdio>
#include <string>

#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "discri/schemes.h"
#include "mining/awsum.h"
#include "mining/dataset.h"
#include "mining/eval.h"
#include "mining/naive_bayes.h"
#include "report/render.h"

namespace {

using namespace ddgms;  // NOLINT: example brevity

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::vector<Value> Members(const etl::DiscretisationScheme& scheme) {
  std::vector<Value> out;
  for (const std::string& l : scheme.labels()) out.push_back(Value::Str(l));
  return out;
}

}  // namespace

int main() {
  // --- data acquisition + transformation --------------------------------
  auto raw = discri::GenerateCohort({});
  if (!raw.ok()) return Fail(raw.status());
  std::printf("DiScRi extract: %zu attendances, %zu attributes\n\n",
              raw->num_rows(), raw->num_columns());

  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  if (!dgms.ok()) return Fail(dgms.status());
  std::printf("%s\n\n", dgms->transform_report().ToString().c_str());

  // --- Fig 3: the dimensional model --------------------------------------
  std::printf("star schema '%s':\n", dgms->warehouse().def().fact_name.c_str());
  for (const auto& dim : dgms->warehouse().dimensions()) {
    std::printf("  %-22s %5zu members\n", dim.name().c_str(),
                dim.num_members());
  }
  std::printf("\n");

  // --- Fig 5: diabetic age/gender distribution with drill-down -----------
  olap::CubeQuery fig5;
  fig5.axes = {{"PersonalInformation", "AgeBand10",
                Members(discri::AgeBand10Scheme())},
               {"PersonalInformation", "Gender", {}}};
  fig5.slicers = {{"MedicalCondition", "DiabetesStatus",
                   {Value::Str("Type2")}}};
  fig5.measures = {{AggFn::kCount, "", "patients"}};
  auto coarse = dgms->Query(fig5);
  if (!coarse.ok()) return Fail(coarse.status());
  auto grid = coarse->Pivot(0, 1);
  if (!grid.ok()) return Fail(grid.status());
  auto text = report::RenderPivot(
      *grid, {.title = "Fig 5 — diabetic attendances (10-year bands)"});
  std::printf("%s\n", text->c_str());

  auto drilled = coarse->DrillDown(0);
  if (!drilled.ok()) return Fail(drilled.status());
  auto fine = drilled->Dice("PersonalInformation", "AgeBand5",
                            Members(discri::AgeBand5Scheme()));
  if (!fine.ok()) return Fail(fine.status());
  auto fine_grid = fine->Pivot(0, 1);
  auto fine_text = report::RenderPivot(
      *fine_grid, {.title = "Fig 5 drill-down — 5-year bands"});
  std::printf("%s\n", fine_text->c_str());

  // --- Fig 6: hypertension duration by age -------------------------------
  olap::CubeQuery fig6;
  fig6.axes = {{"PersonalInformation", "AgeBand5",
                Members(discri::AgeBand5Scheme())},
               {"MedicalCondition", "DiagnosticHTYearsBand",
                Members(discri::DiagnosticHtYearsScheme())}};
  fig6.slicers = {{"MedicalCondition", "HypertensionStatus",
                   {Value::Str("Yes")}}};
  fig6.measures = {{AggFn::kCount, "", "cases"}};
  auto ht = dgms->Query(fig6);
  if (!ht.ok()) return Fail(ht.status());
  auto ht_grid = ht->Pivot(0, 1);
  auto ht_text = report::RenderPivot(
      *ht_grid,
      {.title = "Fig 6 — years since hypertension diagnosis by age"});
  std::printf("%s\n", ht_text->c_str());

  // --- analytics on an isolated cube subset ------------------------------
  auto view = dgms->IsolateSubset({"FBGBand", "AnkleReflexes",
                                   "KneeReflexes", "BMIBand", "AgeBand",
                                   "FamilyHistoryDiabetes",
                                   "DiabetesStatus"});
  if (!view.ok()) return Fail(view.status());
  auto data = mining::CategoricalDataset::FromTable(
      *view,
      {"FBGBand", "AnkleReflexes", "KneeReflexes", "BMIBand", "AgeBand",
       "FamilyHistoryDiabetes"},
      "DiabetesStatus");
  if (!data.ok()) return Fail(data.status());
  Rng rng(7);
  auto split = data->Split(0.3, &rng);
  mining::NaiveBayesClassifier nb;
  if (auto st = nb.Train(split->first); !st.ok()) return Fail(st);
  auto eval = mining::Evaluate(nb, split->second);
  if (!eval.ok()) return Fail(eval.status());
  std::printf("analytics: naive Bayes diabetes screen\n%s\n\n",
              eval->ToString().c_str());

  mining::AwsumClassifier awsum;
  if (auto st = awsum.Train(*data); !st.ok()) return Fail(st);
  auto interactions = awsum.Interactions(25);
  if (interactions.ok() && !interactions->empty()) {
    std::printf("AWSum knowledge acquisition (top interaction): "
                "%s=%s & %s=%s -> %s\n\n",
                (*interactions)[0].feature_a.c_str(),
                (*interactions)[0].value_a.c_str(),
                (*interactions)[0].feature_b.c_str(),
                (*interactions)[0].value_b.c_str(),
                (*interactions)[0].toward_class.c_str());
  }

  // --- knowledge base ----------------------------------------------------
  auto& kb = dgms->knowledge_base();
  kb.RecordEvidence("males dominate diabetic counts in 70-75; females in "
                    "75-80",
                    "olap", 0.8, {"diabetes", "age", "gender"});
  kb.RecordEvidence("5-10y hypertension durations dip in the 70-80 band",
                    "olap", 0.75, {"hypertension", "age"});
  kb.RecordEvidence("absent reflexes with mid-range glucose raise "
                    "diabetes risk",
                    "analytics", 0.7, {"diabetes", "reflex", "glucose"});
  auto kb_table = kb.ToTable();
  if (!kb_table.ok()) return Fail(kb_table.status());
  std::printf("knowledge base:\n%s\n", kb_table->ToPrettyString().c_str());
  return 0;
}
