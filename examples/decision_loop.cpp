// The closed decision-guidance loop on the Ewing-battery problem the
// paper poses: the sustained-handgrip test "cannot be applied to the
// elderly because of arthritis", so the platform is used to find
// substitute predictors of cardiovascular autonomic neuropathy (CAN)
// risk, validate them, capture the finding, feed it back into the
// warehouse as a dimension, and re-validate after acquiring new data.

#include <cstdio>
#include <string>

#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "mining/dataset.h"
#include "mining/eval.h"
#include "mining/naive_bayes.h"
#include "predict/similarity.h"

namespace {

using namespace ddgms;  // NOLINT: example brevity

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// CAN risk proxied by the Ewing category column.
constexpr const char* kLabel = "EwingCategory";

Result<double> ScreenAccuracy(const core::DdDgms& dgms,
                              const std::vector<std::string>& features,
                              uint64_t seed) {
  std::vector<std::string> attrs = features;
  attrs.push_back(kLabel);
  DDGMS_ASSIGN_OR_RETURN(Table view, dgms.IsolateSubset(attrs));
  DDGMS_ASSIGN_OR_RETURN(
      auto data,
      mining::CategoricalDataset::FromTable(view, features, kLabel));
  Rng rng(seed);
  DDGMS_ASSIGN_OR_RETURN(auto split, data.Split(0.3, &rng));
  mining::NaiveBayesClassifier nb;
  DDGMS_RETURN_IF_ERROR(nb.Train(split.first));
  DDGMS_ASSIGN_OR_RETURN(auto report,
                         mining::Evaluate(nb, split.second));
  return report.accuracy;
}

}  // namespace

int main() {
  // Phase 1 (learning): build the platform on the accumulated data.
  discri::CohortOptions opt;
  opt.num_patients = 700;
  auto raw = discri::GenerateCohort(opt);
  if (!raw.ok()) return Fail(raw.status());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  if (!dgms.ok()) return Fail(dgms.status());

  // Phase 2 (prediction / hypothesis): can bedside observables replace
  // the handgrip-dependent battery for elderly patients?
  std::vector<std::string> substitutes = {
      "AnkleReflexes", "KneeReflexes", "Monofilament", "LyingDBPBand",
      "HeartRateBand", "QTcBand"};
  auto with_substitutes = ScreenAccuracy(*dgms, substitutes, 11);
  if (!with_substitutes.ok()) return Fail(with_substitutes.status());
  auto demographics_only =
      ScreenAccuracy(*dgms, {"AgeBand", "Gender"}, 11);
  if (!demographics_only.ok()) return Fail(demographics_only.status());
  std::printf(
      "CAN-category screen without the handgrip test:\n"
      "  bedside substitutes (reflexes, monofilament, BP, ECG): %.4f\n"
      "  demographics only:                                     %.4f\n\n",
      *with_substitutes, *demographics_only);

  // Patient-similarity guidance for one elderly patient who cannot
  // perform the handgrip test.
  auto view = dgms->IsolateSubset(
      {"AnkleReflexes", "Monofilament", "LyingDBPBand", "QTcBand",
       "EwingCategory"});
  if (!view.ok()) return Fail(view.status());
  predict::PatientSimilarityPredictor similar;
  if (auto st = similar.Fit(*view,
                            {"AnkleReflexes", "Monofilament",
                             "LyingDBPBand", "QTcBand"},
                            kLabel);
      !st.ok()) {
    return Fail(st);
  }
  auto guess = similar.Predict({Value::Str("absent"),
                                Value::Str("reduced"),
                                Value::Str("hypertension"),
                                Value::Str("prolonged")});
  if (!guess.ok()) return Fail(guess.status());
  std::printf("similar-patient guidance for an arthritic 80-year-old "
              "with absent reflexes,\nreduced sensation, hypertensive "
              "DBP and prolonged QTc: Ewing category '%s'\n\n",
              guess->c_str());

  // Value-of-information: for a patient with only reflexes observed,
  // which test should the clinic order next to reduce diagnostic
  // ambiguity? (The DGMS phase-4 "data acquisition" feedback.)
  {
    auto voi_view = dgms->IsolateSubset(
        {"AnkleReflexes", "Monofilament", "LyingDBPBand", "QTcBand",
         kLabel});
    if (!voi_view.ok()) return Fail(voi_view.status());
    auto voi_data = mining::CategoricalDataset::FromTable(
        *voi_view,
        {"AnkleReflexes", "Monofilament", "LyingDBPBand", "QTcBand"},
        kLabel);
    if (!voi_data.ok()) return Fail(voi_data.status());
    mining::NaiveBayesClassifier nb;
    if (auto st = nb.Train(*voi_data); !st.ok()) return Fail(st);
    auto voi = nb.ValueOfInformation(
        {"absent", mining::CategoricalDataset::kMissing,
         mining::CategoricalDataset::kMissing,
         mining::CategoricalDataset::kMissing});
    if (!voi.ok()) return Fail(voi.status());
    std::printf("next-test suggestions for a patient with absent ankle "
                "reflexes only:\n");
    for (const auto& av : *voi) {
      std::printf("  order %-14s (expected ambiguity reduction %.4f "
                  "bits)\n",
                  av.feature.c_str(), av.expected_entropy_reduction);
    }
    std::printf("\n");
  }

  // Phase 3 (optimisation/validation): record and promote the finding.
  auto& kb = dgms->knowledge_base();
  const std::string finding =
      "reflex + monofilament + BP + ECG screen approximates the Ewing "
      "battery when handgrip is unavailable";
  kb.RecordEvidence(finding, "analytics", *with_substitutes,
                    {"ewing", "can", "elderly"});
  kb.RecordEvidence(finding, "prediction", 0.7);
  kb.RecordEvidence(finding, "olap", 0.7);
  std::printf("finding status: %s\n\n",
              kb::FindingStatusName(
                  kb.Get(1).value().status));

  // Feed the accepted screen back into the warehouse as a dimension so
  // future OLAP sessions can use it directly.
  if (auto st = dgms->AddFeedbackDimension(
          "CanRiskScreen", "ScreenResult",
          [](const warehouse::Warehouse& wh, size_t row) {
            auto key = wh.FactKey(row, "LimbHealth");
            if (!key.ok()) return Value::Str("unknown");
            auto dim = wh.dimension("LimbHealth");
            Value ankle =
                (*dim)->AttributeValue(*key, "AnkleReflexes")
                    .value_or(Value::Null());
            Value mono =
                (*dim)->AttributeValue(*key, "Monofilament")
                    .value_or(Value::Null());
            bool flagged =
                (!ankle.is_null() && ankle.string_value() != "normal") ||
                (!mono.is_null() && mono.string_value() != "normal");
            return Value::Str(flagged ? "flagged" : "clear");
          });
      !st.ok()) {
    return Fail(st);
  }
  olap::CubeQuery q;
  q.axes = {{"CanRiskScreen", "ScreenResult", {}},
            {"MedicalCondition", "EwingCategory", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms->Query(q);
  if (!cube.ok()) return Fail(cube.status());
  auto grid = cube->Pivot(0, 1);
  std::printf("feedback dimension vs actual Ewing category:\n%s\n",
              grid->ToPrettyString().c_str());

  // Phase 4 (data acquisition): new screening season arrives; the loop
  // re-runs the pipeline and the feedback analysis can be repeated.
  discri::CohortOptions more_opt;
  more_opt.num_patients = 200;
  more_opt.seed = 777;
  auto more = discri::GenerateCohort(more_opt);
  if (!more.ok()) return Fail(more.status());
  if (auto st = dgms->AcquireData(*more); !st.ok()) return Fail(st);
  auto revalidated = ScreenAccuracy(*dgms, substitutes, 13);
  if (!revalidated.ok()) return Fail(revalidated.status());
  std::printf("after acquiring %zu new attendances: screen accuracy "
              "%.4f (fact rows now %zu)\n",
              more->num_rows(), *revalidated,
              dgms->warehouse().num_fact_rows());
  return 0;
}
