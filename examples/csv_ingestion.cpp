// External-data workflow: export an attendance extract to CSV (standing
// in for a hospital system dump), re-ingest it with type inference,
// run the transformation pipeline and warehouse build, and query via
// SQL and OLAP — the path a site with its own flat files would follow.

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"

namespace {

using namespace ddgms;  // NOLINT: example brevity

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const std::string csv_path = "discri_extract.csv";

  // 1. A site exports its accumulated screening data as CSV.
  discri::CohortOptions opt;
  opt.num_patients = 250;
  opt.seed = 99;
  auto source = discri::GenerateCohort(opt);
  if (!source.ok()) return Fail(source.status());
  if (auto st = WriteFile(csv_path, source->ToCsv()); !st.ok()) {
    return Fail(st);
  }
  std::printf("exported %zu attendances to %s\n", source->num_rows(),
              csv_path.c_str());

  // 2. Ingest the flat file (types are inferred from the data).
  auto raw = Table::FromCsvFile(csv_path);
  if (!raw.ok()) return Fail(raw.status());
  std::printf("ingested %zu rows x %zu columns; VisitDate inferred as "
              "%s\n",
              raw->num_rows(), raw->num_columns(),
              DataTypeName(
                  raw->schema()
                      .field(*raw->schema().FieldIndex("VisitDate"))
                      .type));

  // 3. Transformation + warehouse, exactly as for in-memory data.
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  if (!dgms.ok()) return Fail(dgms.status());
  std::printf("warehouse: %zu fact rows, %zu dimensions\n\n",
              dgms->warehouse().num_fact_rows(),
              dgms->warehouse().dimensions().size());

  // 4. SQL over the transformed extract...
  auto sql = dgms->QuerySql(
      "SELECT FBGBand, count(*) AS n, avg(FBG) AS mean_fbg "
      "FROM extract WHERE FBGBand IS NOT NULL "
      "GROUP BY FBGBand ORDER BY mean_fbg");
  if (!sql.ok()) return Fail(sql.status());
  std::printf("SQL: attendances by FBG band\n%s\n",
              sql->ToPrettyString().c_str());

  // 5. ...and OLAP over the warehouse answer the same questions.
  olap::CubeQuery q;
  q.axes = {{"FastingBloods", "FBGBand", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms->Query(q);
  if (!cube.ok()) return Fail(cube.status());
  for (size_t r = 0; r < sql->num_rows(); ++r) {
    Value band = *sql->GetCell(r, "FBGBand");
    Value sql_n = *sql->GetCell(r, "n");
    Value olap_n = cube->CellValue({band});
    if (!sql_n.Equals(olap_n)) {
      std::fprintf(stderr, "MISMATCH for %s: SQL %s vs OLAP %s\n",
                   band.ToString().c_str(), sql_n.ToString().c_str(),
                   olap_n.ToString().c_str());
      return 1;
    }
  }
  std::printf("SQL and OLAP agree on every band.\n");
  std::remove(csv_path.c_str());
  return 0;
}
