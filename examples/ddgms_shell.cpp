// Interactive shell over the DD-DGMS: load a CSV extract (or generate a
// synthetic cohort), then issue SQL / MDX queries and platform commands
// line by line. Reads stdin, so it scripts cleanly:
//
//   echo 'sql SELECT Gender, count(*) FROM extract GROUP BY Gender' |
//     ./ddgms_shell --patients 100
//
// Commands:
//   sql <SELECT ...>     OLTP query (tables: extract, fact, dimensions)
//   mdx <SELECT ...>     OLAP query rendered as a grid
//   explain <SELECT ...> MDX query with a per-stage timing profile
//   explain analyze <SELECT ...>  executed per-operator plan tree with
//                        times, cardinalities, cache hit/miss and bytes
//   profile start [hz] | stop | dump [collapsed|json]
//                        sampling wall-clock profiler (flamegraph
//                        export via 'dump collapsed')
//   dims                 list dimensions and member counts
//   report               transformation report
//   quarantine           rows quarantined by the last (lenient) load
//   stats [json|prom|reset|resource]  metrics registry, or the
//                        resource-pool accounting snapshot
//   trace [json|clear|capacity N]  recorded span tree
//   log [json|tail N|clear|level L]  flight-recorder event log
//   telemetry [sample]   self-observation sampler / staged row counts
//   kb                   knowledge-base contents
//   save <dir>           persist the warehouse as CSV
//   snapshot <dir>       durable binary snapshot (first call attaches
//                        the store; later calls checkpoint into it)
//   append <n>           acquire n synthetic rows (journaled when a
//                        store is attached)
//   load <dir>           strict load from a durable store
//   recover <dir>        crash recovery from a durable store
//   serve [--port N]     start the HTTP observability server
//                        (loopback; port 0 = ephemeral); 'serve stop'
//                        stops it; see /statusz for the endpoint index
//   slo [json|eval]      SLO engine state (burn rates, state machine);
//                        'slo eval' forces one evaluation
//   alerts [json]        firing/warning SLOs + recent anomaly findings
//   anomaly [scan|json]  anomaly scanner status; 'anomaly scan' forces
//                        one synchronous telemetry sample + MDX scan
//   slow <micros>        test hook: delay every MDX execute stage (to
//                        watch /queryz catch a stalled query)
//   help / quit
//
// Pass --lenient to quarantine corrupt rows at every stage instead of
// failing the load on the first bad row. Metrics, tracing and the
// event log are enabled before the build, so `stats`, `trace` and
// `log` cover the load itself as well as interactive queries. Pass
// --log-jsonl <path> to additionally append every event to a JSONL
// file. After `telemetry sample`, `mdx SELECT ... FROM [Telemetry]`
// queries the system's own history.
//
// --crash-after-bytes N kills the process (exit 137, no flushes — a
// simulated power cut) once the durable io layer has written N more
// bytes, tearing the write in flight. CI uses it to rehearse genuine
// mid-snapshot crashes and then `recover` from the wreckage.
//
// --serve-port N starts the observability server immediately after the
// build (equivalent to typing `serve --port N`). SIGTERM / SIGINT
// interrupt the command loop and shut the server down cleanly (exit
// 0), so a supervised deployment can stop the process without losing
// in-flight scrapes mid-response.

#include <csignal>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "common/io.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/query_registry.h"
#include "common/resource.h"
#include "common/slo.h"
#include "common/strings.h"
#include "common/trace.h"
#include "common/window.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "server/anomaly.h"
#include "server/observability.h"
#include "table/describe.h"
#include "warehouse/persist.h"

namespace {

using namespace ddgms;  // NOLINT: example brevity

/// Set by the SIGTERM/SIGINT handler; the command loop checks it and
/// getline returns early on EINTR (sigaction installs the handler
/// without SA_RESTART for exactly that reason).
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  sql <SELECT ...>   query extract/fact/dimension tables\n"
      "  mdx <SELECT ...>   OLAP query (cube: MedicalMeasures)\n"
      "  explain <SELECT ...>  MDX query + per-stage timing profile\n"
      "  explain analyze <SELECT ...>  executed per-operator plan\n"
      "                     tree (times, rows, cache, bytes)\n"
      "  profile start [hz] | stop | dump [collapsed|json]\n"
      "                     sampling profiler; 'dump collapsed' is\n"
      "                     flamegraph.pl / speedscope input\n"
      "  dims               list dimensions\n"
      "  report             transformation report\n"
      "  quarantine         rows quarantined by the last load\n"
      "  stats [json|prom|reset|resource]  metrics snapshot or\n"
      "                     resource-pool accounting\n"
      "  trace [json|clear|capacity N]  recorded span tree\n"
      "  log [json|tail N|clear|level L]  flight-recorder events\n"
      "  telemetry [sample] sample metrics/spans/events into the\n"
      "                     [Telemetry] cube (then: mdx ... FROM\n"
      "                     [Telemetry])\n"
      "  describe           per-column profile of the extract\n"
      "  kb                 knowledge base contents\n"
      "  save <dir>         persist warehouse to a directory (CSV)\n"
      "  snapshot <dir>     durable binary snapshot (attach/checkpoint)\n"
      "  append <n>         acquire n synthetic rows (journaled when\n"
      "                     a durable store is attached)\n"
      "  load <dir>         strict load from a durable store\n"
      "  recover <dir>      crash recovery from a durable store\n"
      "  serve [--port N]   HTTP observability server on 127.0.0.1\n"
      "                     (port 0 = ephemeral); 'serve stop' stops;\n"
      "                     browse /statusz for the endpoint index\n"
      "  slo [json|eval]    SLO engine state (multi-window burn rates);\n"
      "                     'slo eval' forces one evaluation\n"
      "  alerts [json]      firing/warning SLOs + anomaly findings\n"
      "  anomaly [scan|json]  anomaly scanner status; 'anomaly scan'\n"
      "                     forces one telemetry sample + MDX scan\n"
      "  slow <micros>      delay every MDX execute stage (test hook\n"
      "                     for watching /queryz flag a stalled query)\n"
      "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string log_jsonl_path;
  size_t patients = 300;
  int serve_port = -1;  // -1 = do not serve; 0 = ephemeral
  int watchdog_deadline_ms = 10000;
  core::RobustnessOptions robustness;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--patients") == 0 && i + 1 < argc) {
      auto n = ParseInt64(argv[++i]);
      if (n.ok() && *n > 0) patients = static_cast<size_t>(*n);
    } else if (std::strcmp(argv[i], "--lenient") == 0) {
      robustness.error_mode = ErrorMode::kLenient;
    } else if (std::strcmp(argv[i], "--log-jsonl") == 0 && i + 1 < argc) {
      log_jsonl_path = argv[++i];
    } else if (std::strcmp(argv[i], "--crash-after-bytes") == 0 &&
               i + 1 < argc) {
      auto n = ParseInt64(argv[++i]);
      if (n.ok() && *n >= 0) SetCrashAfterBytes(*n);
    } else if (std::strcmp(argv[i], "--serve-port") == 0 && i + 1 < argc) {
      auto n = ParseInt64(argv[++i]);
      if (n.ok() && *n >= 0) serve_port = static_cast<int>(*n);
    } else if (std::strcmp(argv[i], "--watchdog-deadline-ms") == 0 &&
               i + 1 < argc) {
      auto n = ParseInt64(argv[++i]);
      if (n.ok() && *n > 0) watchdog_deadline_ms = static_cast<int>(*n);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--csv extract.csv | --patients N] "
                   "[--lenient] [--log-jsonl events.jsonl] "
                   "[--crash-after-bytes N] [--serve-port N] "
                   "[--watchdog-deadline-ms N]\n",
                   argv[0]);
      return 2;
    }
  }

  // Turn observability on before the load so the build's spans,
  // counters and events are visible to `stats` / `trace` / `log`.
  MetricsRegistry::Enable();
  TraceCollector::Enable();
  EventLog::Enable();
  ResourceMeter::Enable();
  QueryRegistry::Enable();
  WindowRegistry::Enable();
  SloEngine::Enable();

  // Clean shutdown on SIGTERM/SIGINT: no SA_RESTART, so a blocked
  // getline returns with EINTR and the command loop falls through to
  // the teardown path (stops the observability server, exits 0).
  struct sigaction shutdown_action {};
  shutdown_action.sa_handler = HandleShutdownSignal;
  sigemptyset(&shutdown_action.sa_mask);
  shutdown_action.sa_flags = 0;
  sigaction(SIGTERM, &shutdown_action, nullptr);
  sigaction(SIGINT, &shutdown_action, nullptr);
  if (!log_jsonl_path.empty()) {
    auto sink = JsonlFileLogSink::Open(log_jsonl_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "log sink: %s\n",
                   sink.status().ToString().c_str());
      return 2;
    }
    EventLog::Global().AddSink(std::move(sink).value());
  }

  QuarantineReport ingest_quarantine;
  Result<Table> raw = Status::NotFound("unset");
  if (!csv_path.empty()) {
    CsvReadOptions csv_options;
    csv_options.error_mode = robustness.error_mode;
    csv_options.quarantine = &ingest_quarantine;
    raw = Table::FromCsvFile(csv_path, csv_options);
  } else {
    discri::CohortOptions opt;
    opt.num_patients = patients;
    raw = discri::GenerateCohort(opt);
  }
  if (!raw.ok()) {
    std::fprintf(stderr, "load: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto dgms = core::DdDgms::Build(
      std::move(raw).value(), discri::MakeDiscriPipeline(),
      discri::MakeDiscriSchemaDef(), robustness,
      std::move(ingest_quarantine));
  if (!dgms.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 dgms.status().ToString().c_str());
    return 1;
  }
  std::printf("ddgms shell — %zu fact rows, %zu dimensions. Type "
              "'help' for commands.\n",
              dgms->warehouse().num_fact_rows(),
              dgms->warehouse().dimensions().size());

  // Stock objectives over instruments the shell just enabled; the
  // evaluator thread only starts with `serve`, but `slo eval` and the
  // registered windows work immediately.
  SloEngine::Global().RegisterDefaultSlos().IgnoreError();

  // The shell owns the anomaly scanner (and hands it to the server via
  // options) so the `alerts` / `anomaly` commands and /alertz agree.
  // It watches the facade's telemetry sampler, so load/recover must
  // tear it down and rebuild it around the facade swap.
  auto scanner = std::make_unique<server::AnomalyScanner>(
      &dgms->telemetry());

  // The facade pointer handed to the server stays valid across
  // `load`/`recover`: those move-assign into the same Result storage.
  std::unique_ptr<server::ObservabilityServer> obs_server;
  const auto start_server = [&](int port) {
    if (obs_server != nullptr && obs_server->running()) {
      std::printf("server already listening on 127.0.0.1:%d\n",
                  obs_server->port());
      return;
    }
    server::ObservabilityOptions options;
    options.http.port = port;
    options.watchdog.deadline_ms = watchdog_deadline_ms;
    options.anomaly_scanner = scanner.get();
    obs_server = std::make_unique<server::ObservabilityServer>(
        std::move(options), &*dgms);
    Status st = obs_server->Start();
    if (st.ok()) {
      std::printf("observability server listening on 127.0.0.1:%d\n",
                  obs_server->port());
    } else {
      std::printf("error: %s\n", st.ToString().c_str());
      obs_server.reset();
    }
    std::fflush(stdout);
  };
  // load/recover replace the facade — and with it the telemetry
  // sampler the scanner watches. Quiesce the server + scanner before
  // the swap and rebuild them after.
  const auto before_facade_swap = [&]() -> int {
    int restart_port = -1;
    if (obs_server != nullptr && obs_server->running()) {
      restart_port = obs_server->port();
      obs_server->Stop().IgnoreError();
    }
    obs_server.reset();
    if (scanner->running()) scanner->Stop().IgnoreError();
    return restart_port;
  };
  const auto after_facade_swap = [&](int restart_port) {
    scanner = std::make_unique<server::AnomalyScanner>(
        &dgms->telemetry());
    if (restart_port >= 0) start_server(restart_port);
  };
  if (serve_port >= 0) start_server(serve_port);

  std::string line;
  while (!g_shutdown_requested &&
         (std::printf("> "), std::fflush(stdout),
          std::getline(std::cin, line))) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "help") {
      PrintHelp();
      continue;
    }
    if (trimmed == "dims") {
      for (const auto& dim : dgms->warehouse().dimensions()) {
        std::printf("  %-24s %6zu members\n", dim.name().c_str(),
                    dim.num_members());
      }
      continue;
    }
    if (trimmed == "report") {
      std::printf("%s\n", dgms->transform_report().ToString().c_str());
      continue;
    }
    if (trimmed == "quarantine") {
      const QuarantineReport& q = dgms->transform_report().quarantine;
      if (q.empty()) {
        std::printf("no quarantined rows%s\n",
                    robustness.error_mode == ErrorMode::kLenient
                        ? ""
                        : " (strict mode; rerun with --lenient)");
      } else {
        std::printf("%s\n", q.ToString().c_str());
      }
      continue;
    }
    if (trimmed == "stats" || StartsWith(trimmed, "stats ")) {
      std::string mode(Trim(trimmed.substr(5)));
      if (mode == "reset") {
        MetricsRegistry::Global().ResetValues();
        std::printf("metrics reset\n");
        continue;
      }
      if (mode == "resource") {
        std::printf("%s", ResourceMeter::Global().Snapshot().ToString().c_str());
        continue;
      }
      MetricsSnapshot snapshot = core::DdDgms::MetricsSnapshot();
      if (mode == "json") {
        std::printf("%s\n", snapshot.ToJson().c_str());
      } else if (mode == "prom") {
        std::printf("%s", snapshot.ToPrometheusText().c_str());
      } else {
        std::printf("%s", snapshot.ToString().c_str());
      }
      continue;
    }
    if (trimmed == "trace" || StartsWith(trimmed, "trace ")) {
      std::string mode(Trim(trimmed.substr(5)));
      TraceCollector& collector = TraceCollector::Global();
      if (mode == "clear") {
        collector.Clear();
        std::printf("trace buffer cleared\n");
      } else if (StartsWith(mode, "capacity")) {
        auto n = ParseInt64(Trim(mode.substr(8)));
        if (n.ok() && *n > 0) {
          collector.set_capacity(static_cast<size_t>(*n));
          std::printf("trace capacity set to %lld\n",
                      static_cast<long long>(*n));
        } else {
          std::printf("usage: trace capacity <N>\n");
        }
      } else if (mode == "json") {
        std::printf("%s\n", collector.ToJson().c_str());
      } else {
        std::printf("%s", collector.ToString().c_str());
      }
      continue;
    }
    if (trimmed == "log" || StartsWith(trimmed, "log ")) {
      std::string mode(Trim(trimmed.substr(3)));
      EventLog& log = EventLog::Global();
      if (mode == "clear") {
        log.Clear();
        std::printf("event log cleared\n");
      } else if (mode == "json") {
        std::printf("%s", log.ToJsonl().c_str());
      } else if (StartsWith(mode, "tail")) {
        auto n = ParseInt64(Trim(mode.substr(4)));
        if (n.ok() && *n > 0) {
          std::printf("%s", log.ToString(static_cast<size_t>(*n)).c_str());
        } else {
          std::printf("usage: log tail <N>\n");
        }
      } else if (StartsWith(mode, "level")) {
        auto level = LogLevelFromName(Trim(mode.substr(5)));
        if (level.ok()) {
          log.set_min_level(*level);
          std::printf("log level set to %s\n", LogLevelName(*level));
        } else {
          std::printf("%s\n", level.status().ToString().c_str());
        }
      } else {
        std::printf("%s", log.ToString().c_str());
      }
      continue;
    }
    if (trimmed == "telemetry" || StartsWith(trimmed, "telemetry ")) {
      std::string mode(Trim(trimmed.substr(9)));
      warehouse::TelemetrySampler& sampler = dgms->telemetry();
      if (mode == "sample") {
        auto sample = sampler.Sample();
        if (sample.ok()) {
          std::printf("%s\n", sample->ToString().c_str());
        } else {
          std::printf("error: %s\n",
                      sample.status().ToString().c_str());
        }
      } else if (mode == "clear") {
        sampler.Clear();
        std::printf("telemetry cleared\n");
      } else {
        std::printf(
            "telemetry: %lld samples, %zu staged fact rows "
            "(metric %zu / span %zu / event %zu)\n",
            static_cast<long long>(sampler.num_samples()),
            sampler.num_rows(), sampler.metric_samples().num_rows(),
            sampler.span_facts().num_rows(),
            sampler.event_facts().num_rows());
      }
      continue;
    }
    if (StartsWith(trimmed, "explain analyze ")) {
      auto plan = dgms->ExplainMdx(trimmed.substr(16));
      if (plan.ok()) {
        std::printf("%s", plan->ToString().c_str());
      } else {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      }
      continue;
    }
    if (trimmed == "profile" || StartsWith(trimmed, "profile ")) {
      std::string mode(Trim(trimmed.substr(7)));
      Profiler& profiler = Profiler::Global();
      if (StartsWith(mode, "start")) {
        ProfilerOptions options;
        auto hz = ParseInt64(Trim(mode.substr(5)));
        if (hz.ok() && *hz > 0) options.hz = static_cast<int>(*hz);
        Status st = profiler.Start(options);
        if (st.ok()) {
          std::printf("profiler sampling at %d Hz\n", options.hz);
        } else {
          std::printf("error: %s\n", st.ToString().c_str());
        }
      } else if (mode == "stop") {
        Status st = profiler.Stop();
        if (st.ok()) {
          std::printf("profiler stopped after %llu samples\n",
                      static_cast<unsigned long long>(
                          profiler.samples_captured()));
        } else {
          std::printf("error: %s\n", st.ToString().c_str());
        }
      } else if (StartsWith(mode, "dump")) {
        std::string format(Trim(mode.substr(4)));
        auto dump = profiler.Dump();
        if (!dump.ok()) {
          std::printf("error: %s\n", dump.status().ToString().c_str());
        } else if (format == "json") {
          std::printf("%s\n", dump->ToJson().c_str());
        } else if (format == "collapsed") {
          std::printf("%s", dump->ToCollapsed().c_str());
        } else {
          std::printf("%s\n", dump->Summary().c_str());
        }
      } else {
        std::printf("profiler %s, %llu samples captured\n",
                    profiler.running() ? "running" : "stopped",
                    static_cast<unsigned long long>(
                        profiler.samples_captured()));
      }
      continue;
    }
    if (StartsWith(trimmed, "explain ")) {
      auto result = dgms->QueryMdx(trimmed.substr(8));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("%s", result->profile.ToString().c_str());
      auto grid = result->ToGrid();
      if (grid.ok()) {
        std::printf("%s", grid->ToPrettyString(40).c_str());
      }
      continue;
    }
    if (trimmed == "describe") {
      auto profile = Describe(dgms->transformed());
      if (profile.ok()) {
        std::printf("%s", profile->ToPrettyString(80).c_str());
      }
      continue;
    }
    if (trimmed == "kb") {
      auto table = dgms->knowledge_base().ToTable();
      if (table.ok()) {
        std::printf("%s", table->ToPrettyString(50).c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, "save ")) {
      std::string dir(Trim(trimmed.substr(5)));
      Status st = warehouse::SaveWarehouse(dgms->warehouse(), dir);
      std::printf("%s\n", st.ok() ? ("saved to " + dir).c_str()
                                  : st.ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, "snapshot ")) {
      std::string dir(Trim(trimmed.substr(9)));
      ::mkdir(dir.c_str(), 0755);  // idempotent; store requires it
      Status st = dgms->durable()
                      ? dgms->Checkpoint()
                      : dgms->AttachDurableStorage(dir);
      if (st.ok()) {
        std::printf("snapshot generation %llu committed to %s\n",
                    static_cast<unsigned long long>(
                        dgms->durable_store()->seq()),
                    dgms->durable_store()->dir().c_str());
      } else {
        std::printf("error: %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, "append ")) {
      auto n = ParseInt64(Trim(trimmed.substr(7)));
      if (!n.ok() || *n <= 0) {
        std::printf("usage: append <rows>\n");
        continue;
      }
      discri::CohortOptions opt;
      opt.num_patients = static_cast<size_t>(*n);
      opt.seed = 20130408 + dgms->warehouse().num_fact_rows();
      auto batch = discri::GenerateCohort(opt);
      Status st = batch.ok() ? dgms->AcquireData(*batch)
                             : batch.status();
      if (st.ok()) {
        std::printf("appended; %zu fact rows now%s\n",
                    dgms->warehouse().num_fact_rows(),
                    dgms->durable() ? " (journaled)" : "");
      } else {
        std::printf("error: %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, "load ")) {
      std::string dir(Trim(trimmed.substr(5)));
      auto loaded = core::DdDgms::LoadDurable(
          dir, discri::MakeDiscriPipeline(), robustness);
      if (loaded.ok()) {
        const int restart_port = before_facade_swap();
        dgms = std::move(loaded);
        after_facade_swap(restart_port);
        std::printf("loaded generation %llu: %zu fact rows\n",
                    static_cast<unsigned long long>(
                        dgms->durable_store()->seq()),
                    dgms->warehouse().num_fact_rows());
      } else {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, "recover ")) {
      std::string dir(Trim(trimmed.substr(8)));
      warehouse::RecoveryReport report;
      auto recovered = core::DdDgms::RecoverDurable(
          dir, discri::MakeDiscriPipeline(), &report, robustness);
      if (recovered.ok()) {
        const int restart_port = before_facade_swap();
        dgms = std::move(recovered);
        after_facade_swap(restart_port);
        std::printf("%s\n%zu fact rows after recovery\n",
                    report.ToString().c_str(),
                    dgms->warehouse().num_fact_rows());
      } else {
        std::printf("error: %s\n",
                    recovered.status().ToString().c_str());
      }
      continue;
    }
    if (trimmed == "serve" || StartsWith(trimmed, "serve ")) {
      std::string mode(Trim(trimmed.substr(5)));
      if (mode == "stop") {
        if (obs_server != nullptr && obs_server->running()) {
          Status st = obs_server->Stop();
          std::printf("%s\n", st.ok() ? "server stopped"
                                      : st.ToString().c_str());
        } else {
          std::printf("server not running\n");
        }
        continue;
      }
      if (mode == "status") {
        if (obs_server != nullptr && obs_server->running()) {
          std::printf("listening on 127.0.0.1:%d\n",
                      obs_server->port());
        } else {
          std::printf("server not running\n");
        }
        continue;
      }
      int port = 0;
      if (StartsWith(mode, "--port")) mode = Trim(mode.substr(6));
      if (!mode.empty()) {
        auto n = ParseInt64(mode);
        if (!n.ok() || *n < 0 || *n > 65535) {
          std::printf("usage: serve [--port N] | serve stop\n");
          continue;
        }
        port = static_cast<int>(*n);
      }
      start_server(port);
      continue;
    }
    if (trimmed == "slo" || StartsWith(trimmed, "slo ")) {
      std::string mode(Trim(trimmed.substr(3)));
      SloEngine& engine = SloEngine::Global();
      if (mode == "eval") {
        engine.Evaluate();
        std::printf("evaluated %zu slos\n", engine.slo_count());
        continue;
      }
      if (mode == "json") {
        std::printf("%s\n", engine.ToJson().c_str());
        continue;
      }
      const auto slos = engine.Snapshot();
      if (slos.empty()) {
        std::printf("no slos registered\n");
      } else {
        for (const SloStatus& s : slos) {
          std::printf("%s\n", s.ToString().c_str());
        }
        std::printf("evaluator %s\n", engine.evaluator_running()
                                          ? "running"
                                          : "stopped (try 'slo eval' "
                                            "or 'serve')");
      }
      continue;
    }
    if (trimmed == "alerts" || StartsWith(trimmed, "alerts ")) {
      std::string mode(Trim(trimmed.substr(6)));
      if (mode == "json") {
        std::printf("{\"slo\":%s,\"anomaly\":%s}\n",
                    SloEngine::Global().ToJson().c_str(),
                    scanner->ToJson().c_str());
        continue;
      }
      size_t alerting = 0;
      for (const SloStatus& s : SloEngine::Global().Snapshot()) {
        if (s.state == SloState::kOk) continue;
        ++alerting;
        std::printf("%s\n", s.ToString().c_str());
      }
      if (alerting == 0) std::printf("no slo alerts\n");
      const auto findings = scanner->findings();
      if (findings.empty()) {
        std::printf("no anomaly findings (%llu scans)\n",
                    static_cast<unsigned long long>(scanner->scans()));
      } else {
        for (const server::AnomalyFinding& f : findings) {
          std::printf("%s\n", f.ToString().c_str());
        }
      }
      continue;
    }
    if (trimmed == "anomaly" || StartsWith(trimmed, "anomaly ")) {
      std::string mode(Trim(trimmed.substr(7)));
      if (mode == "scan") {
        auto found = scanner->ScanOnce();
        if (!found.ok()) {
          std::printf("error: %s\n",
                      found.status().ToString().c_str());
        } else if (found->empty()) {
          std::printf("scan complete, no new findings\n");
        } else {
          for (const server::AnomalyFinding& f : *found) {
            std::printf("%s\n", f.ToString().c_str());
          }
        }
        continue;
      }
      if (mode == "json") {
        std::printf("%s\n", scanner->ToJson().c_str());
        continue;
      }
      std::printf("scanner %s, %llu scans, %zu recent findings\n",
                  scanner->running() ? "running" : "stopped",
                  static_cast<unsigned long long>(scanner->scans()),
                  scanner->findings().size());
      continue;
    }
    if (StartsWith(trimmed, "slow ")) {
      auto n = ParseInt64(Trim(trimmed.substr(5)));
      if (n.ok() && *n >= 0) {
        mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(
            static_cast<uint64_t>(*n));
        std::printf("mdx execute delay set to %lld us\n",
                    static_cast<long long>(*n));
      } else {
        std::printf("usage: slow <micros>\n");
      }
      continue;
    }
    if (StartsWith(trimmed, "sql ")) {
      auto result = dgms->QuerySql(trimmed.substr(4));
      if (result.ok()) {
        std::printf("%s", result->ToPrettyString(40).c_str());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, "mdx ")) {
      auto result = dgms->QueryMdx(trimmed.substr(4));
      if (result.ok()) {
        auto grid = result->ToGrid();
        if (grid.ok()) {
          std::printf("%s", grid->ToPrettyString(40).c_str());
        } else {
          std::printf("error: %s\n", grid.status().ToString().c_str());
        }
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
      continue;
    }
    std::printf("unknown command (try 'help')\n");
  }
  if (g_shutdown_requested) {
    std::printf("\nshutdown signal received\n");
  }
  if (obs_server != nullptr && obs_server->running()) {
    obs_server->Stop().IgnoreError();
    std::printf("observability server stopped\n");
  }
  return 0;
}
