// bench_compare: regression gate over the BENCH_*.json documents the
// bench harness (bench/bench_util.h JsonTeeReporter) writes.
//
//   bench_compare <baseline> <candidate> [--time-tolerance F]
//                 [--mem-tolerance F]
//
// <baseline> / <candidate> are either single BENCH_*.json files or
// directories, in which case every BENCH_*.json inside is matched by
// file name. Benchmarks are matched by benchmark name; for each pair
// the fastest run ("min-of-N", the standard robust statistic) is
// compared, and the tool exits non-zero when
//
//   * candidate time  > baseline time  * (1 + time tolerance)  [25%]
//   * candidate peak_rss_bytes or meter_peak_bytes
//                     > baseline value * (1 + mem tolerance)   [40%]
//
// Improvements and new/vanished benchmarks are reported but never
// fail. The parser is deliberately coupled to JsonTeeReporter's
// one-run-per-line output rather than being a general JSON reader.
//
// --selftest runs the tool's own fixture suite (registered as a
// CTest) and exits 0/1; no files are read.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct BenchRun {
  double real_time = 0.0;
  std::string time_unit;
};

/// One parsed BENCH_*.json document.
struct BenchDoc {
  std::string benchmark;  // binary name ("bench_a7_observability")
  uint64_t peak_rss_bytes = 0;
  uint64_t meter_peak_bytes = 0;
  /// benchmark name -> fastest iteration-type run.
  std::map<std::string, BenchRun> runs;
};

/// Extracts the string value of `"key": "` on `line`; empty if absent.
std::string StringField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::string();
  const size_t start = at + needle.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) return std::string();
  return line.substr(start, end - start);
}

/// Extracts the numeric value of `"key": ` on `line`; fallback if
/// absent.
double NumberField(const std::string& line, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::atof(line.c_str() + at + needle.size());
}

BenchDoc ParseDoc(const std::string& content) {
  BenchDoc doc;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    if (doc.benchmark.empty()) {
      std::string name = StringField(line, "benchmark");
      if (!name.empty()) doc.benchmark = std::move(name);
    }
    if (line.find("\"peak_rss_bytes\"") != std::string::npos) {
      doc.peak_rss_bytes = static_cast<uint64_t>(
          NumberField(line, "peak_rss_bytes", 0.0));
    }
    if (line.find("\"meter_peak_bytes\"") != std::string::npos) {
      doc.meter_peak_bytes = static_cast<uint64_t>(
          NumberField(line, "meter_peak_bytes", 0.0));
    }
    // Per-run lines: {"name": "BM_Foo", "run_type": "iteration", ...}.
    const std::string name = StringField(line, "name");
    if (name.empty()) continue;
    if (StringField(line, "run_type") != "iteration") continue;
    BenchRun run;
    run.real_time = NumberField(line, "real_time", 0.0);
    run.time_unit = StringField(line, "time_unit");
    auto it = doc.runs.find(name);
    if (it == doc.runs.end() || run.real_time < it->second.real_time) {
      doc.runs[name] = run;
    }
  }
  return doc;
}

struct CompareOptions {
  double time_tolerance = 0.25;
  double mem_tolerance = 0.40;
};

/// Compares one baseline/candidate document pair, printing one line
/// per benchmark. Returns the number of regressions.
int CompareDocs(const BenchDoc& base, const BenchDoc& cand,
                const CompareOptions& options) {
  int regressions = 0;
  for (const auto& [name, base_run] : base.runs) {
    auto it = cand.runs.find(name);
    if (it == cand.runs.end()) {
      std::printf("  %-48s MISSING in candidate\n", name.c_str());
      continue;
    }
    const BenchRun& cand_run = it->second;
    if (base_run.real_time <= 0.0) continue;
    const double ratio = cand_run.real_time / base_run.real_time;
    const bool regressed = ratio > 1.0 + options.time_tolerance;
    std::printf("  %-48s %10.3f -> %10.3f %-3s %+6.1f%%%s\n",
                name.c_str(), base_run.real_time, cand_run.real_time,
                cand_run.time_unit.c_str(), (ratio - 1.0) * 100.0,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const auto& [name, run] : cand.runs) {
    (void)run;
    if (base.runs.find(name) == base.runs.end()) {
      std::printf("  %-48s NEW\n", name.c_str());
    }
  }
  const struct {
    const char* label;
    uint64_t base;
    uint64_t cand;
  } memory[] = {
      {"peak_rss_bytes", base.peak_rss_bytes, cand.peak_rss_bytes},
      {"meter_peak_bytes", base.meter_peak_bytes,
       cand.meter_peak_bytes},
  };
  for (const auto& m : memory) {
    if (m.base == 0) continue;  // metering off / not recorded
    const double ratio =
        static_cast<double>(m.cand) / static_cast<double>(m.base);
    const bool regressed = ratio > 1.0 + options.mem_tolerance;
    std::printf("  %-48s %10llu -> %10llu B   %+6.1f%%%s\n", m.label,
                static_cast<unsigned long long>(m.base),
                static_cast<unsigned long long>(m.cand),
                (ratio - 1.0) * 100.0,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  return regressions;
}

bool ReadFileTo(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream content;
  content << in.rdbuf();
  *out = content.str();
  return true;
}

/// Collects BENCH_*.json under `path` (or `path` itself when a file),
/// keyed by file name for directory-to-directory matching.
std::map<std::string, std::string> CollectDocs(const std::string& path) {
  std::map<std::string, std::string> docs;  // file name -> content
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 ||
          entry.path().extension() != ".json") {
        continue;
      }
      std::string content;
      if (ReadFileTo(entry.path().string(), &content)) {
        docs[name] = std::move(content);
      }
    }
  } else {
    std::string content;
    if (ReadFileTo(path, &content)) {
      docs[fs::path(path).filename().string()] = std::move(content);
    }
  }
  return docs;
}

int Compare(const std::string& baseline, const std::string& candidate,
            const CompareOptions& options) {
  auto base_docs = CollectDocs(baseline);
  auto cand_docs = CollectDocs(candidate);
  // File-vs-file: the two documents are the pair, whatever they are
  // named (filename keys only matter for directory matching).
  std::error_code ec;
  if (base_docs.size() == 1 && cand_docs.size() == 1 &&
      !fs::is_directory(baseline, ec) && !fs::is_directory(candidate, ec) &&
      base_docs.begin()->first != cand_docs.begin()->first) {
    auto node = cand_docs.extract(cand_docs.begin());
    node.key() = base_docs.begin()->first;
    cand_docs.insert(std::move(node));
  }
  if (base_docs.empty()) {
    std::fprintf(stderr, "no BENCH_*.json under '%s'\n",
                 baseline.c_str());
    return 2;
  }
  if (cand_docs.empty()) {
    std::fprintf(stderr, "no BENCH_*.json under '%s'\n",
                 candidate.c_str());
    return 2;
  }
  int regressions = 0;
  for (const auto& [name, base_content] : base_docs) {
    auto it = cand_docs.find(name);
    if (it == cand_docs.end()) {
      std::printf("%s: missing in candidate\n", name.c_str());
      continue;
    }
    std::printf("%s:\n", name.c_str());
    regressions += CompareDocs(ParseDoc(base_content),
                               ParseDoc(it->second), options);
  }
  if (regressions > 0) {
    std::printf("%d regression(s) beyond tolerance (time %+.0f%%, "
                "memory %+.0f%%)\n",
                regressions, options.time_tolerance * 100.0,
                options.mem_tolerance * 100.0);
    return 1;
  }
  std::printf("no regressions beyond tolerance\n");
  return 0;
}

/// ---------------------------------------------------------------
/// --selftest: fixtures matching JsonTeeReporter's exact output.
/// ---------------------------------------------------------------

const char kFixtureBase[] =
    "{\n"
    "  \"benchmark\": \"bench_fixture\",\n"
    "  \"peak_rss_bytes\": 1000000,\n"
    "  \"meter_peak_bytes\": 500000,\n"
    "  \"benchmarks\": [\n"
    "    {\"name\": \"BM_Fast\", \"run_type\": \"iteration\", "
    "\"iterations\": 100, \"real_time\": 10.000000, \"cpu_time\": "
    "9.000000, \"time_unit\": \"us\"},\n"
    "    {\"name\": \"BM_Slow\", \"run_type\": \"iteration\", "
    "\"iterations\": 10, \"real_time\": 100.000000, \"cpu_time\": "
    "95.000000, \"time_unit\": \"ms\"}\n"
    "  ]\n"
    "}\n";

int SelfTest() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selftest FAILED: %s\n", what);
      ++failures;
    }
  };

  const BenchDoc base = ParseDoc(kFixtureBase);
  expect(base.benchmark == "bench_fixture", "parses benchmark name");
  expect(base.peak_rss_bytes == 1000000, "parses peak_rss_bytes");
  expect(base.meter_peak_bytes == 500000, "parses meter_peak_bytes");
  expect(base.runs.size() == 2, "parses both runs");
  expect(base.runs.count("BM_Fast") == 1 &&
             base.runs.at("BM_Fast").real_time == 10.0,
         "parses real_time");

  CompareOptions options;  // defaults: 25% time, 40% memory

  // Identical documents: clean.
  expect(CompareDocs(base, base, options) == 0, "identical is clean");

  // 20% slower: inside the 25% tolerance.
  std::string near = kFixtureBase;
  near.replace(near.find("\"real_time\": 10.000000"),
               std::strlen("\"real_time\": 10.000000"),
               "\"real_time\": 12.000000");
  expect(CompareDocs(base, ParseDoc(near), options) == 0,
         "20% slower tolerated");

  // 50% slower: time regression.
  std::string slow = kFixtureBase;
  slow.replace(slow.find("\"real_time\": 10.000000"),
               std::strlen("\"real_time\": 10.000000"),
               "\"real_time\": 15.000000");
  expect(CompareDocs(base, ParseDoc(slow), options) == 1,
         "50% slower regresses");

  // 50% more RSS: memory regression.
  std::string fat = kFixtureBase;
  fat.replace(fat.find("\"peak_rss_bytes\": 1000000"),
              std::strlen("\"peak_rss_bytes\": 1000000"),
              "\"peak_rss_bytes\": 1500000");
  expect(CompareDocs(base, ParseDoc(fat), options) == 1,
         "50% more rss regresses");

  // Faster + leaner: improvements never fail.
  std::string lean = kFixtureBase;
  lean.replace(lean.find("\"real_time\": 100.000000"),
               std::strlen("\"real_time\": 100.000000"),
               "\"real_time\": 50.000000");
  expect(CompareDocs(base, ParseDoc(lean), options) == 0,
         "improvement is clean");

  // Zero baseline memory (metering off) is skipped, not divided by.
  std::string unmetered = kFixtureBase;
  unmetered.replace(unmetered.find("\"meter_peak_bytes\": 500000"),
                    std::strlen("\"meter_peak_bytes\": 500000"),
                    "\"meter_peak_bytes\": 0");
  expect(CompareDocs(ParseDoc(unmetered), base, options) == 0,
         "zero baseline memory skipped");

  if (failures == 0) std::printf("bench_compare selftest: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CompareOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) {
      return SelfTest();
    }
    if (std::strcmp(argv[i], "--time-tolerance") == 0 && i + 1 < argc) {
      options.time_tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--mem-tolerance") == 0 &&
               i + 1 < argc) {
      options.mem_tolerance = std::atof(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline> <candidate> "
                 "[--time-tolerance F] [--mem-tolerance F] | "
                 "--selftest\n");
    return 2;
  }
  return Compare(positional[0], positional[1], options);
}
