// ddgms_lint: repo-specific static rules, run in CI and as a CTest.
//
//   ddgms_lint --src <repo>/src [--cxx <compiler>] [--tmpdir <dir>]
//
// Exit status: 0 clean, 1 findings, 2 usage/setup error. Findings
// print compiler-style (file:line: [rule] message) so editors and CI
// annotate them.

#include <cstdio>
#include <string>
#include <vector>

#include "ddgms_lint/lint.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ddgms_lint --src <dir> [--cxx <compiler>] [--tmpdir <dir>]\n"
      "  --src     root of the source tree to lint (required)\n"
      "  --cxx     compiler driver; enables the standalone-header rule\n"
      "  --tmpdir  scratch dir for compile probes (default '.')\n");
}

}  // namespace

int main(int argc, char** argv) {
  ddgms::lint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--src") {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.src_root = v;
    } else if (arg == "--cxx") {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.cxx = v;
    } else if (arg == "--tmpdir") {
      const char* v = next();
      if (v == nullptr) {
        Usage();
        return 2;
      }
      options.tmp_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "ddgms_lint: unknown argument '%s'\n",
                   arg.c_str());
      Usage();
      return 2;
    }
  }
  if (options.src_root.empty()) {
    Usage();
    return 2;
  }

  ddgms::Result<std::vector<ddgms::lint::Finding>> result =
      ddgms::lint::RunLint(options);
  if (!result.ok()) {
    std::fprintf(stderr, "ddgms_lint: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const std::vector<ddgms::lint::Finding>& findings = result.value();
  for (const ddgms::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "ddgms_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("ddgms_lint: OK%s\n",
              options.cxx.empty()
                  ? " (textual rules; no compiler for standalone-header)"
                  : "");
  return 0;
}
