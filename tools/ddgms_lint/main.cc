// ddgms_analyzer: multi-pass static analysis for this repo, run in CI
// and as a CTest. Grown from the original single-pass ddgms_lint; the
// textual rules still run, now on a shared token stream, joined by the
// whole-program passes (lock-order graph, layer DAG) and the hot-path
// hygiene check.
//
//   ddgms_analyzer --src <repo>/src [--cxx <compiler>] [--tmpdir <dir>]
//                  [--baseline <file>] [--write-baseline <file>]
//                  [--cache <file>] [--format text|json|sarif]
//   ddgms_analyzer --selftest
//
// Exit status: 0 clean, 1 non-baselined findings, 2 usage/setup error.
// Text findings print compiler-style (file:line: [rule] message) so
// editors and CI annotate them; json/sarif go to stdout for tooling.

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "ddgms_lint/analyzer.h"
#include "ddgms_lint/lint.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ddgms_analyzer --src <dir> [options]\n"
      "       ddgms_analyzer --selftest\n"
      "  --src <dir>             root of the source tree (required)\n"
      "  --cxx <compiler>        enables the standalone-header rule\n"
      "  --tmpdir <dir>          scratch dir for compile probes\n"
      "  --baseline <file>       suppress findings listed in <file>\n"
      "  --write-baseline <file> write current findings as a baseline\n"
      "  --cache <file>          per-file parse cache (read + rewrite)\n"
      "  --format <fmt>          text (default) | json | sarif\n"
      "  --selftest              run the built-in fixture suite\n");
}

}  // namespace

int main(int argc, char** argv) {
  using ddgms::lint::OutputFormat;
  ddgms::lint::AnalyzerOptions options;
  std::string write_baseline;
  OutputFormat format = OutputFormat::kText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--selftest") {
      return ddgms::lint::RunSelfTest();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if ((value = next()) == nullptr) {
      Usage();
      return 2;
    } else if (arg == "--src") {
      options.src_root = value;
    } else if (arg == "--cxx") {
      options.cxx = value;
    } else if (arg == "--tmpdir") {
      options.tmp_dir = value;
    } else if (arg == "--baseline") {
      options.baseline_path = value;
    } else if (arg == "--write-baseline") {
      write_baseline = value;
    } else if (arg == "--cache") {
      options.cache_path = value;
    } else if (arg == "--format") {
      const std::string fmt = value;
      if (fmt == "text") {
        format = OutputFormat::kText;
      } else if (fmt == "json") {
        format = OutputFormat::kJson;
      } else if (fmt == "sarif") {
        format = OutputFormat::kSarif;
      } else {
        std::fprintf(stderr, "ddgms_analyzer: unknown format '%s'\n",
                     fmt.c_str());
        Usage();
        return 2;
      }
    } else {
      std::fprintf(stderr, "ddgms_analyzer: unknown argument '%s'\n",
                   arg.c_str());
      Usage();
      return 2;
    }
  }
  if (options.src_root.empty()) {
    Usage();
    return 2;
  }
  if (!write_baseline.empty()) {
    // A baseline snapshot must capture everything, not the already-
    // suppressed remainder.
    options.baseline_path.clear();
  }

  ddgms::Result<ddgms::lint::AnalyzerReport> result =
      ddgms::lint::RunAnalyzer(options);
  if (!result.ok()) {
    std::fprintf(stderr, "ddgms_analyzer: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const ddgms::lint::AnalyzerReport& report = result.value();

  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ddgms_analyzer: cannot write '%s'\n",
                   write_baseline.c_str());
      return 2;
    }
    out << "# ddgms_analyzer baseline - findings listed here are\n"
        << "# suppressed by --baseline. Every entry needs a comment\n"
        << "# justifying why it is not simply fixed.\n";
    std::set<std::string> keys;
    for (const ddgms::lint::Finding& f : report.findings) {
      keys.insert(ddgms::lint::BaselineKey(f));
    }
    for (const std::string& key : keys) out << key << "\n";
    std::printf("ddgms_analyzer: wrote %zu baseline entr%s to %s\n",
                keys.size(), keys.size() == 1 ? "y" : "ies",
                write_baseline.c_str());
    return 0;
  }

  if (format == OutputFormat::kText) {
    for (const ddgms::lint::Finding& f : report.findings) {
      std::fprintf(stderr, "%s\n", f.ToString().c_str());
    }
  } else {
    const std::string doc =
        ddgms::lint::FormatFindings(report.findings, format);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  }
  if (!report.findings.empty()) {
    std::fprintf(stderr, "ddgms_analyzer: %zu finding(s) over %zu files\n",
                 report.findings.size(), report.files_analyzed);
    return 1;
  }
  if (format == OutputFormat::kText) {
    std::printf(
        "ddgms_analyzer: OK (%zu files, %zu cache hit%s%s)\n",
        report.files_analyzed, report.cache_hits,
        report.cache_hits == 1 ? "" : "s",
        options.cxx.empty() ? "; no compiler for standalone-header" : "");
  }
  return 0;
}
