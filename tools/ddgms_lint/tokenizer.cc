#include "ddgms_lint/tokenizer.h"

#include <cctype>

namespace ddgms::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Records `// NOLINT` / `// NOLINT(ddgms-rule[, ddgms-rule])` markers
/// found inside comment text for `line`.
void ScanNolint(const std::string& comment, size_t line, TokenFile* out) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(comment[pos - 1])) {
      pos += 6;
      continue;
    }
    size_t after = pos + 6;
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      const std::string args =
          comment.substr(after + 1, close == std::string::npos
                                        ? std::string::npos
                                        : close - after - 1);
      std::string rule;
      for (size_t i = 0; i <= args.size(); ++i) {
        if (i == args.size() || args[i] == ',') {
          // Strip spaces and the "ddgms-" prefix.
          size_t b = 0, e = rule.size();
          while (b < e && rule[b] == ' ') ++b;
          while (e > b && rule[e - 1] == ' ') --e;
          std::string name = rule.substr(b, e - b);
          if (name.rfind("ddgms-", 0) == 0) name = name.substr(6);
          if (!name.empty()) out->nolint[line].insert(name);
          rule.clear();
        } else {
          rule.push_back(args[i]);
        }
      }
      pos = close == std::string::npos ? comment.size() : close;
    } else {
      out->nolint[line].insert("");  // bare NOLINT: everything
      pos = after;
    }
  }
}

}  // namespace

bool TokenFile::IsSuppressed(size_t line, const std::string& rule) const {
  auto it = nolint.find(line);
  if (it == nolint.end()) return false;
  return it->second.count("") > 0 || it->second.count(rule) > 0;
}

TokenFile Tokenize(const std::string& src) {
  TokenFile out;
  size_t i = 0;
  const size_t n = src.size();
  size_t line = 1;
  bool line_start = true;    // no token emitted yet on this logical line
  bool in_directive = false;  // between a line-opening '#' and its EOL

  auto emit = [&](Token tok) {
    if (line_start && tok.kind == TokenKind::kPunct && tok.text == "#") {
      in_directive = true;
    }
    tok.pp = in_directive;
    line_start = false;
    out.tokens.push_back(std::move(tok));
  };

  // Splices "\\\n" (and "\\\r\n") at the cursor; returns true when a
  // continuation was consumed. Physical line count still advances.
  auto splice = [&]() -> bool {
    bool any = false;
    while (i < n && src[i] == '\\') {
      size_t j = i + 1;
      if (j < n && src[j] == '\r') ++j;
      if (j < n && src[j] == '\n') {
        i = j + 1;
        ++line;
        any = true;
        continue;
      }
      break;
    }
    return any;
  };

  while (i < n) {
    if (splice()) continue;
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      in_directive = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line comment (may be extended by a trailing line continuation,
    // which is why splice() runs inside the loop).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t comment_line = line;
      std::string body;
      i += 2;
      while (i < n && src[i] != '\n') {
        if (splice()) continue;
        body.push_back(src[i]);
        ++i;
      }
      ScanNolint(body, comment_line, &out);
      continue;
    }
    // Block comment. C++ block comments do not nest: the first "*/"
    // closes it even when the body contains further "/*" openers.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t comment_line = line;
      std::string body;
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ScanNolint(body, comment_line, &out);
          body.clear();
          comment_line = ++line;
        } else {
          body.push_back(src[i]);
        }
        ++i;
      }
      ScanNolint(body, comment_line, &out);
      if (i < n) i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim" — no escapes inside.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (out.tokens.empty() || i == 0 || !IsIdentChar(src[i - 1]))) {
      size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') {
        ++d;
      }
      if (d < n && src[d] == '(') {
        const std::string close = ")" + src.substr(i + 2, d - (i + 2)) + "\"";
        const size_t end = src.find(close, d + 1);
        const size_t stop = end == std::string::npos ? n : end;
        Token tok{TokenKind::kString, src.substr(d + 1, stop - d - 1), line};
        for (size_t k = d; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        emit(std::move(tok));
        i = end == std::string::npos ? n : end + close.size();
        continue;
      }
    }
    // String / char literal; value is decoded (escapes resolved to the
    // escaped character — good enough for name/path validation).
    if (c == '"' || c == '\'') {
      Token tok{c == '"' ? TokenKind::kString : TokenKind::kChar,
                std::string(), line};
      ++i;
      while (i < n && src[i] != c && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          if (src[i + 1] == '\n') {  // continuation inside literal
            i += 2;
            ++line;
            continue;
          }
          tok.text.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        tok.text.push_back(src[i]);
        ++i;
      }
      if (i < n && src[i] == c) ++i;  // else unterminated: close at EOL
      emit(std::move(tok));
      continue;
    }
    if (IsIdentStart(c)) {
      Token tok{TokenKind::kIdentifier, std::string(), line};
      while (i < n) {
        if (splice()) continue;
        if (!IsIdentChar(src[i])) break;
        tok.text.push_back(src[i]);
        ++i;
      }
      emit(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      Token tok{TokenKind::kNumber, std::string(), line};
      // pp-number: digits, idents, dots, exponent signs.
      while (i < n) {
        if (splice()) continue;
        const char d = src[i];
        if (IsIdentChar(d) || d == '.' ||
            ((d == '+' || d == '-') && !tok.text.empty() &&
             (tok.text.back() == 'e' || tok.text.back() == 'E' ||
              tok.text.back() == 'p' || tok.text.back() == 'P'))) {
          tok.text.push_back(d);
          ++i;
        } else {
          break;
        }
      }
      emit(std::move(tok));
      continue;
    }
    // Punctuation. "::" and "->" matter to the rules as units; all
    // other punctuators are emitted one char at a time.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      emit({TokenKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      emit({TokenKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    emit({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

uint64_t HashContent(const std::string& content) {
  uint64_t h = 1469598103934665603ull;
  for (char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ddgms::lint
