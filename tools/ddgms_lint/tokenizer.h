#ifndef DDGMS_TOOLS_DDGMS_LINT_TOKENIZER_H_
#define DDGMS_TOOLS_DDGMS_LINT_TOKENIZER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ddgms::lint {

/// -------------------------------------------------------------------
/// Shared C++ token stream for ddgms_analyzer
///
/// Every analyzer pass (and the rebuilt textual rules) consumes ONE
/// tokenization of each file instead of per-rule regex/string scans.
/// The tokenizer is deliberately lightweight — it is not a C++ parser —
/// but it is exact about the lexical layer the old scanners got wrong
/// piecemeal:
///
///   * line comments, block comments (with embedded '/''*' sequences),
///   * string literals, char literals, raw strings R"delim(...)delim",
///   * backslash-newline line continuations (spliced, with token line
///     numbers tracking the physical line the token STARTS on),
///   * multi-char punctuators the rules care about ("::", "->").
///
/// Comments are not discarded silently: `// NOLINT(ddgms-<rule>)`
/// markers are collected per physical line so passes can suppress
/// findings at the marked line (see TokenFile::IsSuppressed).
/// -------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (text = spelling)
  kNumber,      // numeric literal (text = spelling)
  kString,      // string literal (text = decoded VALUE, not spelling)
  kChar,        // character literal (text = decoded value)
  kPunct,       // punctuation; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind;
  std::string text;
  /// 1-based physical line the token starts on (after continuation
  /// splicing the LOGICAL line may span several physical lines; we
  /// report the physical start so findings stay clickable).
  size_t line = 0;
  /// True when the token belongs to a preprocessor directive (a '#'
  /// opening a logical line, through its spliced continuation lines).
  /// Code passes skip pp tokens; include/guard extraction keys on them.
  bool pp = false;
};

/// One tokenized file: the stream plus per-line suppression markers.
struct TokenFile {
  std::vector<Token> tokens;
  /// line -> set of suppressed rule names; the empty string means a
  /// bare `// NOLINT` that suppresses every rule on that line.
  std::map<size_t, std::set<std::string>> nolint;

  /// True when a finding of `rule` at `line` carries a NOLINT marker
  /// (`// NOLINT(ddgms-<rule>)` or a bare `// NOLINT`).
  bool IsSuppressed(size_t line, const std::string& rule) const;
};

/// Tokenizes C++ source. Never fails: unterminated literals are
/// closed at end of line (strings/chars) or end of file (comments,
/// raw strings), matching how the old strippers degraded.
TokenFile Tokenize(const std::string& src);

/// FNV-1a 64-bit content hash — the parse-cache key.
uint64_t HashContent(const std::string& content);

}  // namespace ddgms::lint

#endif  // DDGMS_TOOLS_DDGMS_LINT_TOKENIZER_H_
