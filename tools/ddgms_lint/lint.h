#ifndef DDGMS_TOOLS_DDGMS_LINT_LINT_H_
#define DDGMS_TOOLS_DDGMS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ddgms_lint/tokenizer.h"

namespace ddgms::lint {

/// -------------------------------------------------------------------
/// ddgms_lint
///
/// Repo-specific static rules the compiler cannot enforce, run in CI
/// and as a CTest over the full src/ tree. The rules are deliberately
/// conventions-of-THIS-repo, complementing -Wthread-safety (clang) and
/// [[nodiscard]] (everywhere):
///
///   naked-mutex        std::mutex / std::lock_guard / std::unique_lock
///                      / std::condition_variable outside common/sync.h
///                      — all locking must go through the annotated
///                      wrappers so thread-safety analysis sees it.
///   include-cycle      #include dependencies between top-level module
///                      directories (common, table, etl, ...) must form
///                      a DAG matching the CMake link graph.
///   header-guard       every header uses an include guard named
///                      DDGMS_<PATH>_H_ (no #pragma once; the repo
///                      standardises on guards).
///   banned-call        rand/srand/strtok/gets/tmpnam — non-reentrant
///                      or non-deterministic C calls with sanctioned
///                      repo alternatives (Rng, strings.h helpers).
///   standalone-header  every header under src/ compiles on its own
///                      (include-what-you-use at file granularity);
///                      needs a compiler, so only runs when one is
///                      passed via --cxx.
///   instrument-name    every literal metric / trace-span / log-event /
///                      resource-pool / fault-point name follows the
///                      dotted "layer.noun[.verb]" convention against
///                      the registered layer list (metrics additionally
///                      carry the "ddgms." prefix and may end in a
///                      ":detail" variant) — so dashboards can group by
///                      layer and names stay greppable.
///   endpoint-path      literal HTTP routes registered via Handle()
///                      use an upper-case method and a lowercase path
///                      whose final segment ends in 'z' (/statusz,
///                      /healthz, ... — /metrics is the sanctioned
///                      Prometheus exception), keeping the external
///                      debug surface uniform and predictable.
///
/// Each rule is a pure function over in-memory sources so tests can
/// feed violating fixtures without touching the filesystem.
/// -------------------------------------------------------------------

/// One rule violation.
struct Finding {
  /// Path as given to the checker (repo-relative in CI output).
  std::string file;
  /// 1-based line; 0 for file- or graph-level findings.
  size_t line = 0;
  /// Stable rule id ("naked-mutex", "include-cycle", ...).
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" (compiler-style, clickable).
  std::string ToString() const;
};

/// One source file, by path and content (content may come from disk or
/// from a test fixture).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Replaces the bodies of comments, string literals (including raw
/// strings) and character literals with spaces, preserving newlines —
/// so token rules never fire on prose or quoted text but line numbers
/// still match the original file. Exposed for tests.
std::string StripCommentsAndStrings(const std::string& src);

/// naked-mutex: flags std:: synchronization primitives anywhere except
/// common/sync.h. `path` is matched on its trailing components.
std::vector<Finding> CheckNakedMutex(const SourceFile& file);

/// Token-stream variants of the textual rules. The SourceFile overloads
/// above tokenize internally; these take a pre-built TokenFile so the
/// analyzer can tokenize each file exactly once and fan it out to every
/// rule. NOLINT suppression is NOT applied here — the analyzer applies
/// it after merging (the legacy LintSources path stays unsuppressed so
/// fixture counts are stable).
std::vector<Finding> CheckNakedMutexTokens(const std::string& path,
                                           const TokenFile& tf);
std::vector<Finding> CheckHeaderGuardTokens(const std::string& path,
                                            const TokenFile& tf,
                                            const std::string& rel_path);
std::vector<Finding> CheckBannedCallsTokens(const std::string& path,
                                            const TokenFile& tf);
std::vector<Finding> CheckInstrumentNamesTokens(const std::string& path,
                                                const TokenFile& tf);
std::vector<Finding> CheckEndpointPathsTokens(const std::string& path,
                                              const TokenFile& tf);

/// header-guard: .h files must open with #ifndef/#define of the guard
/// derived from `rel_path` (path under src/, e.g. "common/metrics.h"
/// -> DDGMS_COMMON_METRICS_H_) and must not use #pragma once.
std::vector<Finding> CheckHeaderGuard(const SourceFile& file,
                                      const std::string& rel_path);

/// banned-call: flags calls to non-reentrant / non-deterministic C
/// functions (rand, srand, strtok, gets, tmpnam). Qualified calls to
/// other namespaces (foo::rand) and member accesses (obj.rand()) are
/// not flagged; std::rand is.
std::vector<Finding> CheckBannedCalls(const SourceFile& file);

/// instrument-name: extracts literal instrument names from call sites
/// (DDGMS_METRIC_*, GetCounter/GetGauge/GetHistogram,
/// ScopedLatencyTimer, TraceSpan, DDGMS_LOG_*, LogEvent,
/// ScopedAccounting, GetPool, DDGMS_FAULT_POINT) and validates them:
///   metrics      ddgms.<layer>.<seg>[.<seg>][:detail]
///   everything else      <layer>[.<seg>[.<seg>]]
/// where <layer> must be on the registered list (see kInstrumentLayers
/// in lint.cc) and segments are lower_snake_case. Dynamic names (a
/// variable argument) are not checked; a literal ending in ':' is a
/// dynamic-detail prefix and validates up to the colon.
std::vector<Finding> CheckInstrumentNames(const SourceFile& file);

/// endpoint-path: extracts literal (method, path) pairs from Handle()
/// call sites and validates them: the method must be upper-case; the
/// path must be "/" or lowercase '/'-separated lower_snake_case
/// segments whose final segment ends in 'z' ("/statusz", "/queryz");
/// "/metrics" is allowed as the well-known Prometheus scrape path.
/// Dynamic arguments are not checked.
std::vector<Finding> CheckEndpointPaths(const SourceFile& file);

/// include-cycle: builds the directed graph of top-level module
/// directories from `#include "mod/..."` lines (e.g. src/table/x.cc
/// including "common/status.h" adds table -> common) and reports every
/// cycle found. Paths must be given relative to the src root
/// ("table/value.cc").
std::vector<Finding> CheckIncludeCycles(
    const std::vector<SourceFile>& files);

/// Runs every textual rule over `files` (paths relative to the src
/// root). This is what both the CLI and the self-check test use.
std::vector<Finding> LintSources(const std::vector<SourceFile>& files);

struct LintOptions {
  /// Root of the tree to lint (the repo's src/ directory).
  std::string src_root;
  /// Compiler driver for the standalone-header rule; empty disables
  /// that rule (textual rules always run).
  std::string cxx;
  /// Scratch directory for the standalone-header probe TU.
  std::string tmp_dir = ".";
};

/// standalone-header: compiles a one-line TU including `rel_header`
/// with options.cxx; appends a finding when it fails. Exposed so the
/// analyzer driver can reuse the probe.
void CheckStandaloneHeader(const LintOptions& options,
                           const std::string& rel_header,
                           std::vector<Finding>* findings);

/// Loads every .h/.cc under src_root and runs all rules (plus the
/// standalone-header compile probes when a compiler is configured).
/// Status error when src_root cannot be read; findings are NOT an
/// error — an empty vector means the tree is clean.
Result<std::vector<Finding>> RunLint(const LintOptions& options);

}  // namespace ddgms::lint

#endif  // DDGMS_TOOLS_DDGMS_LINT_LINT_H_
