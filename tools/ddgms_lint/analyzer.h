#ifndef DDGMS_TOOLS_DDGMS_LINT_ANALYZER_H_
#define DDGMS_TOOLS_DDGMS_LINT_ANALYZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ddgms_lint/lint.h"
#include "ddgms_lint/tokenizer.h"

namespace ddgms::lint {

/// -------------------------------------------------------------------
/// ddgms_analyzer — multi-pass static analysis over the token stream
///
/// The analyzer grows ddgms_lint from per-rule text scans into a
/// pipeline with a shared shape:
///
///   tokenize ─► ExtractFileFacts (per file, cacheable)
///            ─► per-file rules (naked-mutex, banned-call, guards,
///               instrument-name, endpoint-path, hot-path hygiene)
///            ─► whole-program passes over the combined facts
///               (lock-order graph, layer DAG)
///            ─► suppression (// NOLINT markers, baseline file)
///            ─► text | json | sarif output
///
/// Per-file extraction is pure and keyed by content hash, so the
/// parse cache can skip retokenizing unchanged files across runs (the
/// CI lane persists the cache between builds). The whole-program
/// passes always re-run — they are graph traversals over the cached
/// facts and cost microseconds.
/// -------------------------------------------------------------------

/// One operation inside a function body that the lock-order pass cares
/// about. Brace `depth` is relative to the function body (body = 1) so
/// the traversal can release RAII locks when their scope closes.
struct LockOp {
  enum Kind {
    kAcquire,   // MutexLock <var>(<expr>): name = canonical lock id
    kCall,      // <name>(...): candidate same-TU callee (simple name)
    kScopeEnd,  // a '}' closed scopes down to `depth`
  };
  Kind kind = kCall;
  std::string name;
  size_t line = 0;
  int depth = 0;
};

/// Facts about one function definition.
struct FunctionFacts {
  /// Name as written at the definition ("Snapshot", "Registry::Get").
  std::string name;
  /// Enclosing class when the definition is qualified ("Registry").
  std::string class_name;
  /// Simple name (last component of `name`).
  std::string simple_name;
  size_t line = 0;
  bool hot = false;  // carries the DDGMS_HOT annotation
  std::vector<LockOp> ops;
};

/// Everything the whole-program passes need from one file. Pure
/// function of (path, content) — this is the parse-cache unit.
struct FileFacts {
  std::string path;
  uint64_t content_hash = 0;
  /// Quoted #include targets ("common/status.h") with their line.
  std::vector<std::pair<std::string, size_t>> includes;
  std::vector<FunctionFacts> functions;
  /// Per-file findings with NOLINT suppression already applied
  /// (naked-mutex, banned-call, header-guard, instrument-name,
  /// endpoint-path, hot-path-alloc).
  std::vector<Finding> findings;
};

/// Tokenizes `file` and extracts facts + per-file findings. The
/// `rel_path` is used for path-derived rules (header guards).
FileFacts ExtractFileFacts(const SourceFile& file);

/// ---- Pass 1: lock-order ---------------------------------------------

/// One directed edge of the global lock-order graph: `held` was held
/// while `acquired` was taken, witnessed by an acquisition path.
struct LockEdge {
  std::string held;
  std::string acquired;
  /// Human-readable witness: file:line, function and call chain.
  std::string witness;
};

/// Builds the global lock-order graph from all files' function facts,
/// resolving calls through directly-called same-TU functions. Exposed
/// for tests that want the raw edges.
std::vector<LockEdge> BuildLockOrderGraph(
    const std::vector<FileFacts>& facts);

/// Reports every cycle in the lock-order graph as a potential
/// deadlock. The finding message names the cycle and contains one
/// witness acquisition path PER EDGE (so a two-lock inversion prints
/// both paths).
std::vector<Finding> CheckLockOrder(const std::vector<FileFacts>& facts);

/// ---- Pass 3: layer DAG ----------------------------------------------

/// Declarative layering: module -> modules it may include. Missing
/// modules are violations (new directories must be registered).
using LayerGraph = std::map<std::string, std::set<std::string>>;

/// The repo's codified layer DAG
/// (common -> table -> etl/discri -> warehouse -> olap/mdx/kb ->
///  core/server; mining/predict/report/optimize ride the table and
///  olap tiers).
const LayerGraph& RepoLayerGraph();

/// Checks every quoted include edge against `layers`; an edge absent
/// from the allowed set — or a module absent from the graph — is an
/// error naming the witness include.
std::vector<Finding> CheckLayerDag(const std::vector<FileFacts>& facts,
                                   const LayerGraph& layers);

/// ---- Suppression / baseline -----------------------------------------

/// Parses a baseline file: one finding per line in the exact ToString
/// form minus the line number ("file: [rule] message"); '#' comments
/// and blank lines ignored.
std::set<std::string> ParseBaseline(const std::string& content);

/// The baseline key for a finding (its ToString with the line number
/// removed, so baselines survive unrelated edits above the finding).
std::string BaselineKey(const Finding& f);

/// Removes findings whose BaselineKey appears in `baseline`.
std::vector<Finding> ApplyBaseline(std::vector<Finding> findings,
                                   const std::set<std::string>& baseline);

/// ---- Output ----------------------------------------------------------

enum class OutputFormat { kText, kJson, kSarif };

/// Renders findings in the requested format. Text is the compiler
/// style ToString; json is an array of {file,line,rule,message}; sarif
/// is a minimal SARIF 2.1.0 document CI annotators ingest.
std::string FormatFindings(const std::vector<Finding>& findings,
                           OutputFormat format);

/// ---- Parse cache -----------------------------------------------------

/// Serializes facts for reuse across runs. The format is line-based
/// and versioned; LoadParseCache returns an empty cache on any
/// mismatch (a stale cache is never an error, just a miss).
std::string SerializeFacts(const std::vector<FileFacts>& facts);
std::map<std::string, FileFacts> DeserializeFacts(
    const std::string& content);

/// ---- Driver ----------------------------------------------------------

struct AnalyzerOptions {
  /// Root of the tree to analyze (the repo's src/ directory).
  std::string src_root;
  /// Compiler driver for the standalone-header rule; empty disables.
  std::string cxx;
  /// Scratch directory for the standalone-header probe TU.
  std::string tmp_dir = ".";
  /// Baseline file path; empty means no baseline.
  std::string baseline_path;
  /// Parse cache path; empty disables the on-disk cache.
  std::string cache_path;
};

struct AnalyzerReport {
  std::vector<Finding> findings;  // after NOLINT + baseline
  size_t files_analyzed = 0;
  size_t cache_hits = 0;
};

/// Loads every .h/.cc under src_root (through the parse cache when
/// configured), runs all per-file rules and whole-program passes, and
/// applies the baseline. Status error when the tree cannot be read.
Result<AnalyzerReport> RunAnalyzer(const AnalyzerOptions& options);

/// Analyzes in-memory sources — the driver both the CLI selftest and
/// the gtest fixtures use. No standalone-header probe, no cache.
std::vector<Finding> AnalyzeSources(const std::vector<SourceFile>& files,
                                    const LayerGraph& layers);

/// Built-in fixture suite (deadlock cycle with both witness paths,
/// hot-path allocation, layer violation, NOLINT round trip). Returns
/// 0 on success and prints failures to stderr — wired into CTest the
/// way bench_compare --selftest is.
int RunSelfTest();

}  // namespace ddgms::lint

#endif  // DDGMS_TOOLS_DDGMS_LINT_ANALYZER_H_
