#include "ddgms_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "ddgms_lint/tokenizer.h"

namespace ddgms::lint {

namespace fs = std::filesystem;

std::string Finding::ToString() const {
  std::string out = file;
  if (line > 0) out += StrFormat(":%zu", line);
  out += ": [" + rule + "] " + message;
  return out;
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Plain suffix test, for extensions.
bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `path` ends with the given suffix on whole path
/// components ("a/b/sync.h" matches "common/sync.h" only if the
/// preceding component is "common").
bool PathEndsWith(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
      0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

/// First path component of a repo-relative path ("table/value.cc" ->
/// "table"); empty when there is none.
std::string ModuleOf(const std::string& rel_path) {
  const size_t slash = rel_path.find('/');
  return slash == std::string::npos ? std::string()
                                    : rel_path.substr(0, slash);
}

bool IsIdentTok(const TokenFile& tf, size_t i) {
  return i < tf.tokens.size() &&
         tf.tokens[i].kind == TokenKind::kIdentifier;
}

bool IsIdentTok(const TokenFile& tf, size_t i, const char* text) {
  return IsIdentTok(tf, i) && tf.tokens[i].text == text;
}

bool IsPunctTok(const TokenFile& tf, size_t i, const char* text) {
  return i < tf.tokens.size() &&
         tf.tokens[i].kind == TokenKind::kPunct &&
         tf.tokens[i].text == text;
}

bool IsStringTok(const TokenFile& tf, size_t i) {
  return i < tf.tokens.size() && tf.tokens[i].kind == TokenKind::kString;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Block comment (newlines preserved).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') out.push_back('\n');
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(src[i - 1]))) {
      size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string close =
            ")" + src.substr(i + 2, d - (i + 2)) + "\"";
        const size_t end = src.find(close, d + 1);
        out += "\"\"";
        const size_t stop = end == std::string::npos
                                ? n
                                : end + close.size();
        for (size_t k = d; k < stop; ++k) {
          if (src[k] == '\n') out.push_back('\n');
        }
        i = stop;
        continue;
      }
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      out.push_back(c);
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        } else if (src[i] == '\n') {
          break;  // unterminated; don't eat the rest of the file
        }
        ++i;
      }
      if (i < n && src[i] == c) {
        out.push_back(c);
        ++i;
      }
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

std::vector<Finding> CheckNakedMutexTokens(const std::string& path,
                                           const TokenFile& tf) {
  std::vector<Finding> findings;
  // The one place allowed to touch the raw primitives.
  if (PathEndsWith(path, "common/sync.h")) return findings;

  static const char* const kBanned[] = {
      "mutex",          "recursive_mutex",
      "timed_mutex",    "recursive_timed_mutex",
      "shared_mutex",   "lock_guard",
      "unique_lock",    "scoped_lock",
      "condition_variable", "condition_variable_any",
  };

  const auto& toks = tf.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdentTok(tf, i, "std") || !IsPunctTok(tf, i + 1, "::") ||
        !IsIdentTok(tf, i + 2)) {
      continue;
    }
    // foo::std::mutex is some other std.
    if (i >= 1 && IsPunctTok(tf, i - 1, "::")) continue;
    const std::string& name = toks[i + 2].text;
    for (const char* banned : kBanned) {
      if (name != banned) continue;
      findings.push_back(
          {path, toks[i].line, "naked-mutex",
           "std::" + name +
               " outside common/sync.h - use ddgms::Mutex / "
               "MutexLock / CondVar so thread-safety analysis sees "
               "the lock"});
      break;
    }
  }
  return findings;
}

std::vector<Finding> CheckNakedMutex(const SourceFile& file) {
  return CheckNakedMutexTokens(file.path, Tokenize(file.content));
}

std::vector<Finding> CheckHeaderGuardTokens(const std::string& path,
                                            const TokenFile& tf,
                                            const std::string& rel_path) {
  std::vector<Finding> findings;
  std::string expected = "DDGMS_";
  for (char c : rel_path) {
    if (c == '/' || c == '.' || c == '-') {
      expected.push_back('_');
    } else {
      expected.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
    }
  }
  expected.push_back('_');

  // Walk preprocessor directives: each starts at a line-opening '#'.
  std::string ifndef_name;
  size_t ifndef_line = 0;
  bool has_define = false;
  const auto& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].pp || !IsPunctTok(tf, i, "#")) continue;
    if (IsIdentTok(tf, i + 1, "pragma") && IsIdentTok(tf, i + 2, "once")) {
      findings.push_back({path, toks[i].line, "header-guard",
                          "#pragma once - this repo standardises on "
                          "include guards (" +
                              expected + ")"});
      continue;
    }
    if (ifndef_name.empty() && IsIdentTok(tf, i + 1, "ifndef") &&
        IsIdentTok(tf, i + 2)) {
      ifndef_name = toks[i + 2].text;
      ifndef_line = toks[i].line;
      continue;
    }
    if (!ifndef_name.empty() && !has_define &&
        IsIdentTok(tf, i + 1, "define") && IsIdentTok(tf, i + 2)) {
      if (toks[i + 2].text != ifndef_name) {
        findings.push_back(
            {path, toks[i].line, "header-guard",
             "guard #define '" + toks[i + 2].text +
                 "' does not match #ifndef '" + ifndef_name + "'"});
      }
      has_define = true;
    }
  }
  if (ifndef_name.empty()) {
    findings.push_back({path, 1, "header-guard",
                        "missing include guard " + expected});
  } else if (ifndef_name != expected) {
    findings.push_back({path, ifndef_line, "header-guard",
                        "guard '" + ifndef_name +
                            "' does not match path-derived name '" +
                            expected + "'"});
  } else if (!has_define) {
    findings.push_back({path, ifndef_line, "header-guard",
                        "#ifndef " + ifndef_name +
                            " is never #defined (broken guard)"});
  }
  return findings;
}

std::vector<Finding> CheckHeaderGuard(const SourceFile& file,
                                      const std::string& rel_path) {
  return CheckHeaderGuardTokens(file.path, Tokenize(file.content),
                                rel_path);
}

std::vector<Finding> CheckBannedCallsTokens(const std::string& path,
                                            const TokenFile& tf) {
  // name -> sanctioned alternative.
  static const std::pair<const char*, const char*> kBanned[] = {
      {"rand", "ddgms::Rng (deterministic, seedable)"},
      {"srand", "ddgms::Rng (deterministic, seedable)"},
      {"strtok", "common/strings.h Split (strtok is not reentrant)"},
      {"gets", "std::getline"},
      {"tmpnam", "a caller-provided path (tmpnam races)"},
  };

  std::vector<Finding> findings;
  const auto& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(tf, i)) continue;
    const char* alt = nullptr;
    for (const auto& [name, sanctioned] : kBanned) {
      if (toks[i].text == name) {
        alt = sanctioned;
        break;
      }
    }
    if (alt == nullptr) continue;
    // Must look like a call.
    if (!IsPunctTok(tf, i + 1, "(")) continue;
    // Member access (obj.rand(), p->rand()) is someone else's
    // function; a non-std qualifier (mylib::rand) likewise.
    if (i >= 1 &&
        (IsPunctTok(tf, i - 1, ".") || IsPunctTok(tf, i - 1, "->"))) {
      continue;
    }
    if (i >= 1 && IsPunctTok(tf, i - 1, "::")) {
      const bool std_qualified =
          i >= 2 && IsIdentTok(tf, i - 2, "std") &&
          !(i >= 3 && IsPunctTok(tf, i - 3, "::"));
      if (!std_qualified) continue;
    }
    findings.push_back({path, toks[i].line, "banned-call",
                        toks[i].text + "() is banned here - use " + alt});
  }
  return findings;
}

std::vector<Finding> CheckBannedCalls(const SourceFile& file) {
  return CheckBannedCallsTokens(file.path, Tokenize(file.content));
}

namespace {

/// Layers instrument names may start with. Adding a subsystem means
/// registering its layer here (and the grammar keeps every dashboard
/// group-by-layer query working).
const char* const kInstrumentLayers[] = {
    "anomaly", "core",     "csv",      "etl",        "faults",
    "io",      "journal",  "kb",       "mdx",        "olap",
    "other",   "persist",  "profiler", "quarantine", "queries",
    "resource", "retry",   "server",   "slo",        "snapshot",
    "store",   "table",    "telemetry", "warehouse",
};

bool IsRegisteredLayer(const std::string& s) {
  for (const char* layer : kInstrumentLayers) {
    if (s == layer) return true;
  }
  return false;
}

/// lower_snake_case segment: [a-z][a-z0-9_]*.
bool IsSegment(const std::string& s) {
  if (s.empty() || std::islower(static_cast<unsigned char>(s[0])) == 0) {
    return false;
  }
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Validates one extracted literal. Returns an explanation, empty when
/// the name conforms. `is_metric` selects the ddgms.-prefixed grammar.
std::string ValidateInstrumentName(const std::string& name,
                                   bool is_metric) {
  std::string base = name;
  // A trailing-colon literal ("ddgms.retry.attempts:" + op) or a
  // ":detail" variant; only metrics may carry one.
  const size_t colon = base.find(':');
  if (colon != std::string::npos) {
    if (!is_metric) {
      return "':' variants are reserved for metric names";
    }
    const std::string detail = base.substr(colon + 1);
    if (!detail.empty() && !IsSegment(detail)) {
      return "detail suffix '" + detail + "' is not lower_snake_case";
    }
    base = base.substr(0, colon);
  }
  std::vector<std::string> parts;
  std::string part;
  for (char c : base) {
    if (c == '.') {
      parts.push_back(part);
      part.clear();
    } else {
      part.push_back(c);
    }
  }
  parts.push_back(part);
  size_t layer_index = 0;
  if (is_metric) {
    if (parts[0] != "ddgms") {
      return "metric names start with 'ddgms.'";
    }
    if (parts.size() < 3 || parts.size() > 4) {
      return "expected ddgms.<layer>.<noun>[.<verb>][:detail]";
    }
    layer_index = 1;
  } else if (parts.size() > 3) {
    return "expected <layer>[.<noun>[.<verb>]]";
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!IsSegment(parts[i])) {
      return "segment '" + parts[i] + "' is not lower_snake_case";
    }
  }
  if (!IsRegisteredLayer(parts[layer_index])) {
    return "layer '" + parts[layer_index] +
           "' is not registered (see kInstrumentLayers)";
  }
  return std::string();
}

}  // namespace

std::vector<Finding> CheckInstrumentNamesTokens(const std::string& path,
                                                const TokenFile& tf) {
  struct Trigger {
    const char* token;    // call site to look for
    bool is_metric;       // ddgms.-prefixed grammar
    bool declaration;     // token is a type: an identifier precedes '('
    bool skip_first_arg;  // name is the second argument (LogEvent)
  };
  static const Trigger kTriggers[] = {
      {"DDGMS_METRIC_INC", true, false, false},
      {"DDGMS_METRIC_ADD", true, false, false},
      {"DDGMS_METRIC_OBSERVE", true, false, false},
      {"GetCounter", true, false, false},
      {"GetGauge", true, false, false},
      {"GetHistogram", true, false, false},
      {"ScopedLatencyTimer", true, true, false},
      {"TraceSpan", false, true, false},
      {"DDGMS_LOG_DEBUG", false, false, false},
      {"DDGMS_LOG_INFO", false, false, false},
      {"DDGMS_LOG_WARN", false, false, false},
      {"DDGMS_LOG_ERROR", false, false, false},
      {"LogEvent", false, true, true},
      {"ScopedAccounting", false, true, false},
      {"GetPool", false, false, false},
      {"DDGMS_FAULT_POINT", false, false, false},
  };

  std::vector<Finding> findings;
  const auto& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(tf, i)) continue;
    const Trigger* trigger = nullptr;
    for (const Trigger& t : kTriggers) {
      if (toks[i].text == t.token) {
        trigger = &t;
        break;
      }
    }
    if (trigger == nullptr) continue;
    // SomeScope::GetCounter is another registry's function.
    if (i >= 1 && IsPunctTok(tf, i - 1, "::")) continue;
    size_t cursor = i + 1;
    if (trigger->declaration) {
      // `TraceSpan span(` — step over the variable name. A '(' right
      // after the type (constructor decls, casts) is not a named
      // instrument.
      if (!IsIdentTok(tf, cursor)) continue;
      ++cursor;
    }
    if (!IsPunctTok(tf, cursor, "(")) continue;
    ++cursor;
    if (trigger->skip_first_arg) {
      // LogEvent e(LogLevel::kWarn, "name") — skip to the ',' at the
      // argument list's own depth.
      int depth = 1;
      while (cursor < toks.size() && depth > 0) {
        if (IsPunctTok(tf, cursor, "(")) ++depth;
        if (IsPunctTok(tf, cursor, ")")) --depth;
        if (depth == 1 && IsPunctTok(tf, cursor, ",")) break;
        ++cursor;
      }
      if (!IsPunctTok(tf, cursor, ",")) continue;
      ++cursor;
    }
    if (!IsStringTok(tf, cursor)) continue;  // dynamic name
    const std::string& name = toks[cursor].text;
    const std::string why =
        ValidateInstrumentName(name, trigger->is_metric);
    if (!why.empty()) {
      findings.push_back({path, toks[cursor].line, "instrument-name",
                          "'" + name + "' (" + std::string(trigger->token) +
                              "): " + why});
    }
  }
  return findings;
}

std::vector<Finding> CheckInstrumentNames(const SourceFile& file) {
  return CheckInstrumentNamesTokens(file.path, Tokenize(file.content));
}

namespace {

/// Validates one observability endpoint path. Empty when conforming.
std::string ValidateEndpointPath(const std::string& path) {
  if (path == "/") return std::string();  // the index page
  if (path.empty() || path[0] != '/') {
    return "must start with '/'";
  }
  if (path.size() > 1 && path.back() == '/') {
    return "must not end with '/'";
  }
  std::vector<std::string> segments;
  std::string segment;
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') {
      segments.push_back(segment);
      segment.clear();
    } else {
      segment.push_back(path[i]);
    }
  }
  segments.push_back(segment);
  for (const std::string& s : segments) {
    if (!IsSegment(s)) {
      return "segment '" + s + "' is not lower_snake_case";
    }
  }
  // Debug pages follow the /...z convention; /metrics is the one
  // sanctioned exception (the well-known Prometheus scrape path).
  const std::string& last = segments.back();
  if (last != "metrics" && last.back() != 'z') {
    return "final segment '" + last +
           "' should end in 'z' (statusz/healthz/... convention; "
           "'metrics' is the only exception)";
  }
  return std::string();
}

}  // namespace

std::vector<Finding> CheckEndpointPathsTokens(const std::string& path,
                                              const TokenFile& tf) {
  std::vector<Finding> findings;
  const auto& toks = tf.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!IsIdentTok(tf, i, "Handle")) continue;
    if (i >= 1 && IsPunctTok(tf, i - 1, "::")) continue;
    // Handle("GET", "/path", ...): both must be literals for the rule
    // to fire (dynamic routes are not this rule's business).
    if (!IsPunctTok(tf, i + 1, "(") || !IsStringTok(tf, i + 2) ||
        !IsPunctTok(tf, i + 3, ",") || !IsStringTok(tf, i + 4)) {
      continue;
    }
    const std::string& method = toks[i + 2].text;
    const std::string& route = toks[i + 4].text;
    if (method != ToUpper(method)) {
      findings.push_back({path, toks[i + 2].line, "endpoint-path",
                          "method '" + method + "' must be upper-case"});
    }
    const std::string why = ValidateEndpointPath(route);
    if (!why.empty()) {
      findings.push_back({path, toks[i + 4].line, "endpoint-path",
                          "'" + route + "': " + why});
    }
  }
  return findings;
}

std::vector<Finding> CheckEndpointPaths(const SourceFile& file) {
  return CheckEndpointPathsTokens(file.path, Tokenize(file.content));
}

std::vector<Finding> CheckIncludeCycles(
    const std::vector<SourceFile>& files) {
  // module -> module -> one witness include ("table/value.cc ->
  // common/status.h") for the error message.
  std::map<std::string, std::map<std::string, std::string>> edges;
  for (const SourceFile& file : files) {
    const std::string from = ModuleOf(file.path);
    if (from.empty()) continue;
    std::istringstream is(file.content);
    std::string line;
    while (std::getline(is, line)) {
      const size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] != '#') continue;
      std::istringstream dir(line);
      std::string tok1, tok2;
      dir >> tok1 >> tok2;
      if (tok1 != "#include" || tok2.size() < 2 || tok2[0] != '"') {
        continue;
      }
      const std::string target = tok2.substr(1, tok2.size() - 2);
      const std::string to = ModuleOf(target);
      if (to.empty() || to == from) continue;
      edges[from].emplace(to, file.path + " includes " + target);
    }
  }

  // Iterative DFS with colors; report each back edge's cycle once.
  std::vector<Finding> findings;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        path.push_back(node);
        auto it = edges.find(node);
        if (it != edges.end()) {
          for (const auto& [next, witness] : it->second) {
            if (color[next] == 1) {
              // Found a cycle: path from `next` to node, closed by this
              // edge.
              auto at = std::find(path.begin(), path.end(), next);
              std::string desc;
              for (auto p = at; p != path.end(); ++p) {
                desc += *p + " -> ";
              }
              desc += next;
              findings.push_back(
                  {witness.substr(0, witness.find(' ')), 0,
                   "include-cycle",
                   "module cycle " + desc + " (" + witness + ")"});
            } else if (color[next] == 0) {
              visit(next);
            }
          }
        }
        path.pop_back();
        color[node] = 2;
      };

  for (const auto& [node, _] : edges) {
    if (color[node] == 0) visit(node);
  }
  return findings;
}

std::vector<Finding> LintSources(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    // One tokenization feeds every rule.
    const TokenFile tf = Tokenize(file.content);
    auto merge = [&findings](std::vector<Finding> more) {
      findings.insert(findings.end(),
                      std::make_move_iterator(more.begin()),
                      std::make_move_iterator(more.end()));
    };
    merge(CheckNakedMutexTokens(file.path, tf));
    merge(CheckBannedCallsTokens(file.path, tf));
    merge(CheckInstrumentNamesTokens(file.path, tf));
    merge(CheckEndpointPathsTokens(file.path, tf));
    if (EndsWith(file.path, ".h")) {
      merge(CheckHeaderGuardTokens(file.path, tf, file.path));
    }
  }
  auto cycles = CheckIncludeCycles(files);
  findings.insert(findings.end(),
                  std::make_move_iterator(cycles.begin()),
                  std::make_move_iterator(cycles.end()));
  return findings;
}

namespace {

/// Shell-quotes a path for the standalone-header probe command.
std::string Quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

}  // namespace

void CheckStandaloneHeader(const LintOptions& options,
                           const std::string& rel_header,
                           std::vector<Finding>* findings) {
  const std::string probe_cc =
      options.tmp_dir + "/ddgms_lint_standalone.cc";
  const std::string probe_err =
      options.tmp_dir + "/ddgms_lint_standalone.err";
  {
    std::ofstream out(probe_cc);
    out << "#include \"" << rel_header << "\"\n";
  }
  const std::string cmd = Quote(options.cxx) +
                          " -std=c++20 -fsyntax-only -I " +
                          Quote(options.src_root) + " " +
                          Quote(probe_cc) + " 2> " + Quote(probe_err);
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::string detail;
    std::ifstream err(probe_err);
    std::string line;
    for (int i = 0; i < 3 && std::getline(err, line); ++i) {
      if (!detail.empty()) detail += " | ";
      detail += line;
    }
    findings->push_back({rel_header, 0, "standalone-header",
                         "header does not compile standalone: " +
                             detail});
  }
  std::remove(probe_cc.c_str());
  std::remove(probe_err.c_str());
}

Result<std::vector<Finding>> RunLint(const LintOptions& options) {
  std::error_code ec;
  fs::directory_entry root(options.src_root, ec);
  if (ec || !root.is_directory()) {
    return Status::NotFound("src root '" + options.src_root +
                            "' is not a readable directory");
  }

  std::vector<SourceFile> files;
  for (auto it = fs::recursive_directory_iterator(options.src_root, ec);
       !ec && it != fs::recursive_directory_iterator();
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(it->path(), options.src_root, ec).generic_string();
    std::ifstream in(it->path());
    if (!in) {
      return Status::DataLoss("cannot read '" + it->path().string() +
                              "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back({rel, content.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  std::vector<Finding> findings = LintSources(files);
  if (!options.cxx.empty()) {
    for (const SourceFile& file : files) {
      if (EndsWith(file.path, ".h")) {
        CheckStandaloneHeader(options, file.path, &findings);
      }
    }
  }
  return findings;
}

}  // namespace ddgms::lint
