#include "ddgms_lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace ddgms::lint {

namespace fs = std::filesystem;

namespace {

/// First path component of a repo-relative path ("table/value.cc" ->
/// "table"); empty when there is none.
std::string ModuleOf(const std::string& rel_path) {
  const size_t slash = rel_path.find('/');
  return slash == std::string::npos ? std::string()
                                    : rel_path.substr(0, slash);
}

/// "common/metrics.cc" -> "metrics" — the file-scope qualifier for
/// locks acquired outside any class.
std::string FileStem(const std::string& path) {
  const size_t slash = path.rfind('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool IsControlKeyword(const std::string& s) {
  static const char* const kKeywords[] = {
      "if",     "for",     "while",    "switch",   "return",
      "sizeof", "catch",   "alignof",  "decltype", "noexcept",
      "new",    "delete",  "co_await", "co_return", "co_yield",
      "throw",  "static_assert", "alignas", "assert", "defined",
  };
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

/// Class-qualified display name for witness messages.
std::string DisplayName(const FunctionFacts& fn) {
  if (fn.name.find("::") != std::string::npos || fn.class_name.empty()) {
    return fn.name;
  }
  return fn.class_name + "::" + fn.name;
}

/// Canonical lock identity: a bare member/variable name is owned by
/// the enclosing class (GUARDED_BY identity); everything is at least
/// file-qualified so unrelated `mu_`s never unify by accident.
std::string CanonicalLockId(const std::string& expr,
                            const std::string& class_name,
                            const std::string& path) {
  std::string e = expr;
  while (!e.empty() && (e[0] == '*' || e[0] == '&')) e.erase(0, 1);
  const std::string owner =
      class_name.empty() ? FileStem(path) : class_name;
  return owner + "::" + e;
}

// ---------------------------------------------------------------------
// Function / lock-op extraction
// ---------------------------------------------------------------------

class Extractor {
 public:
  Extractor(const std::string& path, const TokenFile& tf, FileFacts* out)
      : path_(path), tf_(tf), out_(out) {
    code_.reserve(tf.tokens.size());
    for (const Token& t : tf.tokens) {
      if (!t.pp) code_.push_back(&t);
    }
  }

  void Run() { ParseScope(0, std::string()); }

 private:
  const Token& At(size_t i) const { return *code_[i]; }
  bool IsPunct(size_t i, const char* p) const {
    return i < code_.size() && At(i).kind == TokenKind::kPunct &&
           At(i).text == p;
  }
  bool IsIdent(size_t i) const {
    return i < code_.size() && At(i).kind == TokenKind::kIdentifier;
  }

  /// Skips a balanced '{...}' starting at the opening brace index;
  /// returns the index just past the matching '}'.
  size_t SkipBraces(size_t pos) const {
    int depth = 0;
    while (pos < code_.size()) {
      if (IsPunct(pos, "{")) ++depth;
      if (IsPunct(pos, "}")) {
        --depth;
        if (depth == 0) return pos + 1;
      }
      ++pos;
    }
    return pos;
  }

  struct Signature {
    bool is_function = false;
    std::string name;        // as written ("Registry::Get")
    std::string class_name;  // from qualification or enclosing scope
    size_t line = 0;
  };

  /// Decides whether the declaration tokens `decl` (indices into
  /// code_) followed by '{' form a function definition.
  Signature ParseSignature(const std::vector<size_t>& decl,
                           const std::string& scope_class) const {
    Signature sig;
    // First top-level '('; an '=' before it means an initializer.
    size_t paren = decl.size();
    for (size_t k = 0; k < decl.size(); ++k) {
      const Token& t = At(decl[k]);
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "=") return sig;
      if (t.text == "(") {
        paren = k;
        break;
      }
    }
    if (paren == decl.size() || paren == 0) return sig;
    // Name: identifier sequence (ident ("::" ident)*) ending right
    // before the '('; '~' merges into destructor names.
    size_t k = paren;
    std::vector<std::string> parts;
    while (k >= 1 && IsIdent(decl[k - 1])) {
      std::string part = At(decl[k - 1]).text;
      --k;
      if (k >= 1 && IsPunct(decl[k - 1], "~")) {
        part = "~" + part;
        --k;
      }
      parts.insert(parts.begin(), part);
      if (k >= 1 && IsPunct(decl[k - 1], "::")) {
        --k;
        continue;
      }
      break;
    }
    if (parts.empty()) return sig;
    if (parts.size() == 1 && IsControlKeyword(parts[0])) return sig;
    // Parens must balance inside the declaration (the ')' precedes the
    // '{' that triggered us, possibly with const/noexcept/ctor-inits).
    int depth = 0;
    bool closed = false;
    for (size_t j = paren; j < decl.size(); ++j) {
      if (IsPunct(decl[j], "(")) ++depth;
      if (IsPunct(decl[j], ")")) {
        --depth;
        if (depth == 0) closed = true;
      }
    }
    if (!closed || depth != 0) return sig;
    sig.is_function = true;
    sig.line = At(decl[k]).line;
    std::string name;
    for (size_t p = 0; p < parts.size(); ++p) {
      if (p > 0) name += "::";
      name += parts[p];
    }
    sig.name = name;
    sig.class_name = parts.size() > 1 ? parts[parts.size() - 2]
                                      : scope_class;
    return sig;
  }

  /// Parses one scope (namespace/class body or the file itself) for
  /// function definitions. `pos` points past the opening '{' (or at 0
  /// for the file scope); returns the index past the closing '}'.
  size_t ParseScope(size_t pos, const std::string& scope_class) {
    std::vector<size_t> decl;
    bool hot = false;
    while (pos < code_.size()) {
      if (IsPunct(pos, "}")) return pos + 1;
      if (IsPunct(pos, ";")) {
        decl.clear();
        hot = false;
        ++pos;
        continue;
      }
      if (IsPunct(pos, "{")) {
        // Classify the construct this brace opens.
        bool is_class = false, is_enum = false, is_namespace = false,
             is_init = false;
        std::string class_name;
        for (size_t k = 0; k < decl.size(); ++k) {
          const Token& t = At(decl[k]);
          if (t.kind == TokenKind::kPunct && t.text == "=") {
            is_init = true;
          }
          if (t.kind != TokenKind::kIdentifier) continue;
          if (t.text == "namespace") is_namespace = true;
          if (t.text == "enum") is_enum = true;
          if ((t.text == "class" || t.text == "struct" ||
               t.text == "union") &&
              k + 1 < decl.size() && IsIdent(decl[k + 1])) {
            is_class = true;
            class_name = At(decl[k + 1]).text;
          }
        }
        if (is_init || is_enum) {
          pos = SkipBraces(pos);
        } else if (is_namespace) {
          pos = ParseScope(pos + 1, scope_class);
        } else if (is_class) {
          pos = ParseScope(pos + 1, class_name);
        } else {
          const Signature sig = ParseSignature(decl, scope_class);
          if (sig.is_function) {
            pos = ParseFunctionBody(pos, sig, hot);
          } else {
            pos = ParseScope(pos + 1, scope_class);
          }
        }
        decl.clear();
        hot = false;
        continue;
      }
      if (IsIdent(pos) && At(pos).text == "DDGMS_HOT") {
        hot = true;
      }
      decl.push_back(pos);
      ++pos;
    }
    return pos;
  }

  /// Parses a function body starting at its '{': records MutexLock
  /// acquisitions, same-TU call candidates and scope ends, and runs
  /// the hot-path hygiene checks when the function is DDGMS_HOT.
  size_t ParseFunctionBody(size_t pos, const Signature& sig, bool hot) {
    FunctionFacts fn;
    fn.name = sig.name;
    fn.class_name = sig.class_name;
    const size_t last_sep = sig.name.rfind("::");
    fn.simple_name = last_sep == std::string::npos
                         ? sig.name
                         : sig.name.substr(last_sep + 2);
    fn.line = sig.line;
    fn.hot = hot;

    const size_t body_begin = pos + 1;
    int depth = 0;
    bool any_acquire = false;
    while (pos < code_.size()) {
      if (IsPunct(pos, "{")) {
        ++depth;
        ++pos;
        continue;
      }
      if (IsPunct(pos, "}")) {
        --depth;
        if (any_acquire) {
          fn.ops.push_back({LockOp::kScopeEnd, "", At(pos).line, depth});
        }
        ++pos;
        if (depth == 0) break;
        continue;
      }
      if (IsIdent(pos) && At(pos).text == "MutexLock" && IsIdent(pos + 1) &&
          IsPunct(pos + 2, "(")) {
        // MutexLock <var>(<lock expr>)
        size_t j = pos + 3;
        int pd = 1;
        std::string expr;
        while (j < code_.size() && pd > 0) {
          if (IsPunct(j, "(")) ++pd;
          if (IsPunct(j, ")")) {
            --pd;
            if (pd == 0) break;
          }
          expr += At(j).text;
          ++j;
        }
        fn.ops.push_back(
            {LockOp::kAcquire,
             CanonicalLockId(expr, sig.class_name, path_),
             At(pos).line, depth});
        any_acquire = true;
        pos = j + 1;
        continue;
      }
      if (IsIdent(pos) && IsPunct(pos + 1, "(") &&
          !IsControlKeyword(At(pos).text)) {
        // Candidate call. Method calls on OTHER objects (x.F(), p->F())
        // cannot be resolved statically; implicit-this and qualified
        // same-class calls can.
        const bool member_call =
            pos >= 1 && (IsPunct(pos - 1, ".") || IsPunct(pos - 1, "->"));
        const bool this_call =
            member_call && pos >= 2 && IsIdent(pos - 2) &&
            At(pos - 2).text == "this";
        if (!member_call || this_call) {
          fn.ops.push_back(
              {LockOp::kCall, At(pos).text, At(pos).line, depth});
        }
      }
      ++pos;
    }
    if (hot) CheckHotBody(body_begin, pos, DisplayName(fn));
    out_->functions.push_back(std::move(fn));
    return pos;
  }

  /// Hot-path hygiene over one DDGMS_HOT body: heap allocation,
  /// std::string construction, unreserved push_back, Value boxing.
  void CheckHotBody(size_t begin, size_t end, const std::string& fn) {
    // Receivers that reserve() anywhere in the body sanction their own
    // push_backs (a loop-hoisted reserve is the fix this rule wants).
    std::set<std::string> reserved;
    for (size_t i = begin; i + 2 < end; ++i) {
      if (IsIdent(i) &&
          (IsPunct(i + 1, ".") || IsPunct(i + 1, "->")) &&
          IsIdent(i + 2) && At(i + 2).text == "reserve") {
        reserved.insert(At(i).text);
      }
    }
    auto flag = [&](size_t line, const std::string& what) {
      if (tf_.IsSuppressed(line, "hot-path-alloc")) return;
      out_->findings.push_back(
          {path_, line, "hot-path-alloc",
           what + " in DDGMS_HOT function '" + fn +
               "' - hot paths must not allocate per element"});
    };
    for (size_t i = begin; i < end; ++i) {
      if (!IsIdent(i)) continue;
      const std::string& t = At(i).text;
      const bool qualified = i >= 1 && IsPunct(i - 1, "::");
      if (t == "new" && !qualified) {
        flag(At(i).line, "operator new");
        continue;
      }
      if ((t == "make_unique" || t == "make_shared") &&
          (IsPunct(i + 1, "<") || IsPunct(i + 1, "("))) {
        flag(At(i).line, "std::" + t);
        continue;
      }
      if (t == "string" && i >= 2 && IsPunct(i - 1, "::") &&
          IsIdent(i - 2) && At(i - 2).text == "std") {
        // std::string X / std::string(...) / std::string{...} allocate;
        // references, pointers and nested-type uses do not.
        if (IsIdent(i + 1) || IsPunct(i + 1, "(") || IsPunct(i + 1, "{")) {
          flag(At(i).line, "std::string construction");
        }
        continue;
      }
      if ((t == "push_back" || t == "emplace_back") && i >= 2 &&
          (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) &&
          IsPunct(i + 1, "(")) {
        const std::string recv = IsIdent(i - 2) ? At(i - 2).text : "";
        if (reserved.count(recv) == 0) {
          flag(At(i).line,
               t + " without a prior " +
                   (recv.empty() ? std::string("reserve")
                                 : recv + ".reserve(...)"));
        }
        continue;
      }
      if (t == "Value" && !qualified &&
          (IsPunct(i + 1, "(") || IsPunct(i + 1, "{"))) {
        flag(At(i).line, "Value boxing (Value temporary)");
        continue;
      }
    }
  }

  const std::string& path_;
  const TokenFile& tf_;
  FileFacts* out_;
  std::vector<const Token*> code_;
};

}  // namespace

FileFacts ExtractFileFacts(const SourceFile& file) {
  FileFacts out;
  out.path = file.path;
  out.content_hash = HashContent(file.content);
  const TokenFile tf = Tokenize(file.content);

  // Quoted includes, from preprocessor tokens: # include "target".
  const auto& toks = tf.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].pp && toks[i].kind == TokenKind::kPunct &&
        toks[i].text == "#" && toks[i + 1].kind == TokenKind::kIdentifier &&
        toks[i + 1].text == "include" &&
        toks[i + 2].kind == TokenKind::kString) {
      out.includes.push_back({toks[i + 2].text, toks[i + 2].line});
    }
  }

  // Function facts + hot-path findings.
  Extractor extractor(file.path, tf, &out);
  extractor.Run();

  // Per-file token rules, then NOLINT suppression over everything.
  auto merge = [&out](std::vector<Finding> more) {
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(more.begin()),
                        std::make_move_iterator(more.end()));
  };
  merge(CheckNakedMutexTokens(file.path, tf));
  merge(CheckBannedCallsTokens(file.path, tf));
  merge(CheckInstrumentNamesTokens(file.path, tf));
  merge(CheckEndpointPathsTokens(file.path, tf));
  if (file.path.size() > 2 &&
      file.path.compare(file.path.size() - 2, 2, ".h") == 0) {
    merge(CheckHeaderGuardTokens(file.path, tf, file.path));
  }
  out.findings.erase(
      std::remove_if(out.findings.begin(), out.findings.end(),
                     [&tf](const Finding& f) {
                       return tf.IsSuppressed(f.line, f.rule);
                     }),
      out.findings.end());
  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

// ---------------------------------------------------------------------
// Pass 1: lock-order
// ---------------------------------------------------------------------

namespace {

struct HeldLock {
  std::string id;
  std::string site;  // "path:line Display acquires id"
  int depth = 0;     // brace depth inside its acquiring frame
  size_t frame = 0;  // index into the call chain
};

struct LockGraphBuilder {
  // (held, acquired) -> first witness.
  std::map<std::pair<std::string, std::string>, std::string> edges;

  void Traverse(const FileFacts& file, const FunctionFacts& fn,
                const std::map<std::string,
                               std::vector<const FunctionFacts*>>& tu,
                std::vector<HeldLock>* held,
                std::vector<std::string>* chain,
                std::set<const FunctionFacts*>* active) {
    if (active->count(&fn) > 0 || chain->size() > 12) return;
    active->insert(&fn);
    chain->push_back(DisplayName(fn));
    const size_t frame = chain->size() - 1;
    const size_t base = held->size();
    for (const LockOp& op : fn.ops) {
      switch (op.kind) {
        case LockOp::kAcquire: {
          const std::string site = file.path + ":" +
                                   std::to_string(op.line) + " " +
                                   DisplayName(fn);
          for (const HeldLock& h : *held) {
            auto key = std::make_pair(h.id, op.name);
            if (edges.count(key) > 0) continue;
            std::string witness = h.site + " acquires " + h.id +
                                  ", then " + site + " acquires " +
                                  op.name;
            if (h.frame != frame) {
              std::string path;
              for (size_t i = h.frame; i < chain->size(); ++i) {
                if (!path.empty()) path += " -> ";
                path += (*chain)[i];
              }
              witness += " (call path: " + path + ")";
            }
            edges.emplace(std::move(key), std::move(witness));
          }
          held->push_back({op.name, site, op.depth, frame});
          break;
        }
        case LockOp::kScopeEnd:
          while (held->size() > base && held->back().frame == frame &&
                 held->back().depth > op.depth) {
            held->pop_back();
          }
          break;
        case LockOp::kCall: {
          // Only recurse while a lock is held: lock-free call chains
          // produce no edges here, and every callee is traversed as a
          // root of its own anyway.
          if (held->empty()) break;
          auto it = tu.find(op.name);
          if (it == tu.end()) break;
          // Prefer a same-class overload when one exists.
          const FunctionFacts* callee = nullptr;
          for (const FunctionFacts* cand : it->second) {
            if (cand == &fn) continue;
            if (cand->class_name == fn.class_name) {
              callee = cand;
              break;
            }
            if (callee == nullptr) callee = cand;
          }
          if (callee != nullptr) {
            Traverse(file, *callee, tu, held, chain, active);
          }
          break;
        }
      }
    }
    held->resize(base);
    chain->pop_back();
    active->erase(&fn);
  }
};

}  // namespace

std::vector<LockEdge> BuildLockOrderGraph(
    const std::vector<FileFacts>& facts) {
  LockGraphBuilder builder;
  for (const FileFacts& file : facts) {
    // Same-TU call resolution index.
    std::map<std::string, std::vector<const FunctionFacts*>> tu;
    for (const FunctionFacts& fn : file.functions) {
      tu[fn.simple_name].push_back(&fn);
    }
    for (const FunctionFacts& fn : file.functions) {
      std::vector<HeldLock> held;
      std::vector<std::string> chain;
      std::set<const FunctionFacts*> active;
      builder.Traverse(file, fn, tu, &held, &chain, &active);
    }
  }
  std::vector<LockEdge> edges;
  edges.reserve(builder.edges.size());
  for (const auto& [key, witness] : builder.edges) {
    edges.push_back({key.first, key.second, witness});
  }
  return edges;
}

std::vector<Finding> CheckLockOrder(const std::vector<FileFacts>& facts) {
  const std::vector<LockEdge> edges = BuildLockOrderGraph(facts);
  std::map<std::string, std::map<std::string, const LockEdge*>> adj;
  for (const LockEdge& e : edges) {
    adj[e.held].emplace(e.acquired, &e);
  }

  std::vector<Finding> findings;
  std::set<std::string> reported;  // canonical cycle keys

  // Witness file for a finding: the file of the first edge's witness.
  auto witness_file = [](const std::string& witness) {
    return witness.substr(0, witness.find(':'));
  };

  // Self-deadlock: a lock re-acquired while already held.
  for (const LockEdge& e : edges) {
    if (e.held != e.acquired) continue;
    findings.push_back(
        {witness_file(e.witness), 0, "lock-order",
         "potential self-deadlock: " + e.held +
             " acquired while already held\n  witness: " + e.witness});
  }

  // Cycles via DFS with an explicit grey stack.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto it = adj.find(node);
        if (it != adj.end()) {
          for (const auto& [next, edge] : it->second) {
            if (next == node) continue;  // self edges reported above
            if (color[next] == 1) {
              // Cycle: stack from `next` to node, closed by this edge.
              auto at = std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(at, stack.end());
              // Canonical key: rotate to the smallest lock id.
              auto min_it =
                  std::min_element(cycle.begin(), cycle.end());
              std::vector<std::string> canon(min_it, cycle.end());
              canon.insert(canon.end(), cycle.begin(), min_it);
              std::string key;
              for (const std::string& c : canon) key += c + "|";
              if (!reported.insert(key).second) continue;
              // Describe the cycle and EVERY edge's witness path (for
              // the two-lock inversion this prints both acquisition
              // orders, which is what makes the report actionable).
              std::string desc;
              for (const std::string& c : canon) desc += c + " -> ";
              desc += canon.front();
              std::string message =
                  "potential deadlock: lock-order cycle " + desc;
              std::string file;
              for (size_t i = 0; i < canon.size(); ++i) {
                const std::string& from = canon[i];
                const std::string& to = canon[(i + 1) % canon.size()];
                const LockEdge* w = adj[from][to];
                message += "\n  path " + std::to_string(i + 1) + ": " +
                           w->witness;
                if (file.empty()) file = witness_file(w->witness);
              }
              findings.push_back({file, 0, "lock-order", message});
            } else if (color[next] == 0) {
              visit(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };

  for (const auto& [node, _] : adj) {
    if (color[node] == 0) visit(node);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.message < b.message;
            });
  return findings;
}

// ---------------------------------------------------------------------
// Pass 3: layer DAG
// ---------------------------------------------------------------------

const LayerGraph& RepoLayerGraph() {
  // The codified layering. An edge must be listed to be legal, so new
  // cross-module dependencies are a deliberate one-line diff here —
  // reviewed as architecture, not smuggled in via #include.
  static const LayerGraph* kGraph = new LayerGraph{
      {"common", {}},
      {"table", {"common"}},
      {"etl", {"common", "table"}},
      {"kb", {"common", "table"}},
      {"mining", {"common", "table"}},
      {"predict", {"common", "table"}},
      {"report", {"common", "table"}},
      {"warehouse", {"common", "table"}},
      {"discri", {"common", "table", "etl", "warehouse"}},
      {"olap", {"common", "table", "warehouse"}},
      {"mdx", {"common", "table", "olap", "warehouse"}},
      {"optimize", {"common", "table", "olap", "warehouse"}},
      {"core",
       {"common", "table", "etl", "kb", "mdx", "olap", "warehouse"}},
      {"server", {"common", "core", "mdx", "table", "warehouse"}},
  };
  return *kGraph;
}

std::vector<Finding> CheckLayerDag(const std::vector<FileFacts>& facts,
                                   const LayerGraph& layers) {
  std::vector<Finding> findings;
  for (const FileFacts& file : facts) {
    const std::string from = ModuleOf(file.path);
    if (from.empty()) continue;
    auto it = layers.find(from);
    if (it == layers.end()) {
      findings.push_back(
          {file.path, 0, "layer-dag",
           "module '" + from +
               "' is not registered in the layer DAG - add it (and its "
               "allowed dependencies) to RepoLayerGraph()"});
      continue;
    }
    for (const auto& [target, line] : file.includes) {
      const std::string to = ModuleOf(target);
      if (to.empty() || to == from) continue;
      if (layers.find(to) == layers.end()) {
        findings.push_back(
            {file.path, line, "layer-dag",
             "include of unregistered module '" + to + "' (" + target +
                 ")"});
        continue;
      }
      if (it->second.count(to) == 0) {
        std::string allowed;
        for (const std::string& a : it->second) {
          if (!allowed.empty()) allowed += ", ";
          allowed += a;
        }
        findings.push_back(
            {file.path, line, "layer-dag",
             "layer violation: '" + from + "' may not depend on '" + to +
                 "' (#include \"" + target + "\"); allowed: {" + allowed +
                 "}"});
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// Suppression / baseline
// ---------------------------------------------------------------------

std::string BaselineKey(const Finding& f) {
  // Line numbers churn with unrelated edits; file+rule+first message
  // line is stable. Multi-line messages (lock-order witnesses) keep
  // only the headline.
  std::string first = f.message.substr(0, f.message.find('\n'));
  return f.file + ": [" + f.rule + "] " + first;
}

std::set<std::string> ParseBaseline(const std::string& content) {
  std::set<std::string> baseline;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    size_t end = line.find_last_not_of(" \t\r");
    baseline.insert(line.substr(start, end - start + 1));
  }
  return baseline;
}

std::vector<Finding> ApplyBaseline(std::vector<Finding> findings,
                                   const std::set<std::string>& baseline) {
  if (baseline.empty()) return findings;
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&baseline](const Finding& f) {
                                  return baseline.count(BaselineKey(f)) >
                                         0;
                                }),
                 findings.end());
  return findings;
}

// ---------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindings(const std::vector<Finding>& findings,
                           OutputFormat format) {
  std::string out;
  switch (format) {
    case OutputFormat::kText:
      for (const Finding& f : findings) out += f.ToString() + "\n";
      return out;
    case OutputFormat::kJson: {
      out = "[";
      for (size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        if (i > 0) out += ",";
        out += "\n  {\"file\":\"" + JsonEscape(f.file) +
               "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
               JsonEscape(f.rule) + "\",\"message\":\"" +
               JsonEscape(f.message) + "\"}";
      }
      out += findings.empty() ? "]\n" : "\n]\n";
      return out;
    }
    case OutputFormat::kSarif: {
      // Minimal SARIF 2.1.0: one run, one rule object per distinct
      // rule id, one result per finding. GitHub code scanning and VS
      // Code's SARIF viewer both accept this shape.
      std::set<std::string> rules;
      for (const Finding& f : findings) rules.insert(f.rule);
      out =
          "{\n"
          "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
          "  \"version\": \"2.1.0\",\n"
          "  \"runs\": [{\n"
          "    \"tool\": {\"driver\": {\"name\": \"ddgms_analyzer\", "
          "\"rules\": [";
      size_t i = 0;
      for (const std::string& rule : rules) {
        if (i++ > 0) out += ", ";
        out += "{\"id\": \"ddgms-" + JsonEscape(rule) + "\"}";
      }
      out += "]}},\n    \"results\": [";
      for (size_t r = 0; r < findings.size(); ++r) {
        const Finding& f = findings[r];
        if (r > 0) out += ",";
        out += "\n      {\"ruleId\": \"ddgms-" + JsonEscape(f.rule) +
               "\", \"level\": \"error\", \"message\": {\"text\": \"" +
               JsonEscape(f.message) +
               "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"src/" +
               JsonEscape(f.file) +
               "\"}, \"region\": {\"startLine\": " +
               std::to_string(f.line == 0 ? 1 : f.line) + "}}}]}";
      }
      out += findings.empty() ? "]\n" : "\n    ]\n";
      out += "  }]\n}\n";
      return out;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Parse cache
// ---------------------------------------------------------------------

namespace {

constexpr const char kCacheHeader[] = "ddgms-analyzer-cache v1";

std::string EscapeLine(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLine(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[i + 1] == 'n' ? '\n' : s[i + 1]);
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

std::string SerializeFacts(const std::vector<FileFacts>& facts) {
  std::ostringstream out;
  out << kCacheHeader << "\n";
  for (const FileFacts& f : facts) {
    out << "file " << std::hex << f.content_hash << std::dec << " "
        << f.path << "\n";
    for (const auto& [target, line] : f.includes) {
      out << "i " << line << " " << target << "\n";
    }
    for (const FunctionFacts& fn : f.functions) {
      out << "f " << fn.line << " " << (fn.hot ? 1 : 0) << " "
          << (fn.class_name.empty() ? "-" : fn.class_name) << " "
          << fn.name << "\n";
      for (const LockOp& op : fn.ops) {
        const char kind = op.kind == LockOp::kAcquire  ? 'a'
                          : op.kind == LockOp::kCall   ? 'c'
                                                       : 'e';
        out << "o " << kind << " " << op.depth << " " << op.line << " "
            << op.name << "\n";
      }
    }
    for (const Finding& g : f.findings) {
      out << "g " << g.line << " " << g.rule << " "
          << EscapeLine(g.message) << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

std::map<std::string, FileFacts> DeserializeFacts(
    const std::string& content) {
  std::map<std::string, FileFacts> cache;
  std::istringstream is(content);
  std::string line;
  if (!std::getline(is, line) || line != kCacheHeader) return cache;
  FileFacts current;
  bool open = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "file") {
      std::string hash;
      ls >> hash;
      current = FileFacts();
      current.content_hash = std::stoull(hash, nullptr, 16);
      ls >> std::ws;
      std::getline(ls, current.path);
      open = true;
    } else if (!open) {
      continue;
    } else if (tag == "i") {
      size_t ln = 0;
      std::string target;
      ls >> ln >> target;
      current.includes.push_back({target, ln});
    } else if (tag == "f") {
      FunctionFacts fn;
      int hot = 0;
      std::string cls;
      ls >> fn.line >> hot >> cls >> fn.name;
      fn.hot = hot != 0;
      fn.class_name = cls == "-" ? "" : cls;
      const size_t sep = fn.name.rfind("::");
      fn.simple_name =
          sep == std::string::npos ? fn.name : fn.name.substr(sep + 2);
      current.functions.push_back(std::move(fn));
    } else if (tag == "o" && !current.functions.empty()) {
      char kind = 'c';
      LockOp op;
      ls >> kind >> op.depth >> op.line;
      ls >> std::ws;
      std::getline(ls, op.name);
      op.kind = kind == 'a'   ? LockOp::kAcquire
                : kind == 'c' ? LockOp::kCall
                              : LockOp::kScopeEnd;
      current.functions.back().ops.push_back(std::move(op));
    } else if (tag == "g") {
      Finding f;
      f.file = current.path;
      ls >> f.line >> f.rule;
      ls >> std::ws;
      std::string message;
      std::getline(ls, message);
      f.message = UnescapeLine(message);
      current.findings.push_back(std::move(f));
    } else if (tag == "end") {
      cache[current.path] = std::move(current);
      current = FileFacts();
      open = false;
    }
  }
  return cache;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

std::vector<Finding> AnalyzeSources(const std::vector<SourceFile>& files,
                                    const LayerGraph& layers) {
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    facts.push_back(ExtractFileFacts(file));
    findings.insert(findings.end(), facts.back().findings.begin(),
                    facts.back().findings.end());
  }
  auto merge = [&findings](std::vector<Finding> more) {
    findings.insert(findings.end(),
                    std::make_move_iterator(more.begin()),
                    std::make_move_iterator(more.end()));
  };
  merge(CheckLockOrder(facts));
  merge(CheckLayerDag(facts, layers));
  return findings;
}

Result<AnalyzerReport> RunAnalyzer(const AnalyzerOptions& options) {
  std::error_code ec;
  fs::directory_entry root(options.src_root, ec);
  if (ec || !root.is_directory()) {
    return Status::NotFound("src root '" + options.src_root +
                            "' is not a readable directory");
  }

  std::map<std::string, FileFacts> cache;
  if (!options.cache_path.empty()) {
    std::ifstream in(options.cache_path);
    if (in) {
      std::ostringstream content;
      content << in.rdbuf();
      cache = DeserializeFacts(content.str());
    }
  }

  AnalyzerReport report;
  std::vector<FileFacts> facts;
  std::vector<std::string> headers;
  for (auto it = fs::recursive_directory_iterator(options.src_root, ec);
       !ec && it != fs::recursive_directory_iterator();
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(it->path(), options.src_root, ec).generic_string();
    std::ifstream in(it->path());
    if (!in) {
      return Status::DataLoss("cannot read '" + it->path().string() +
                              "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    const std::string body = content.str();
    if (ext == ".h") headers.push_back(rel);

    const uint64_t hash = HashContent(body);
    auto cached = cache.find(rel);
    if (cached != cache.end() && cached->second.content_hash == hash) {
      facts.push_back(cached->second);
      ++report.cache_hits;
    } else {
      facts.push_back(ExtractFileFacts({rel, body}));
    }
  }
  std::sort(facts.begin(), facts.end(),
            [](const FileFacts& a, const FileFacts& b) {
              return a.path < b.path;
            });
  report.files_analyzed = facts.size();

  std::vector<Finding>& findings = report.findings;
  for (const FileFacts& f : facts) {
    findings.insert(findings.end(), f.findings.begin(),
                    f.findings.end());
  }
  auto merge = [&findings](std::vector<Finding> more) {
    findings.insert(findings.end(),
                    std::make_move_iterator(more.begin()),
                    std::make_move_iterator(more.end()));
  };
  merge(CheckLockOrder(facts));
  merge(CheckLayerDag(facts, RepoLayerGraph()));

  if (!options.cxx.empty()) {
    LintOptions probe;
    probe.src_root = options.src_root;
    probe.cxx = options.cxx;
    probe.tmp_dir = options.tmp_dir;
    for (const std::string& header : headers) {
      CheckStandaloneHeader(probe, header, &findings);
    }
  }

  if (!options.baseline_path.empty()) {
    std::ifstream in(options.baseline_path);
    if (in) {
      std::ostringstream content;
      content << in.rdbuf();
      findings =
          ApplyBaseline(std::move(findings),
                        ParseBaseline(content.str()));
    }
  }

  if (!options.cache_path.empty()) {
    std::ofstream out(options.cache_path, std::ios::trunc);
    if (out) out << SerializeFacts(facts);
  }
  return report;
}

// ---------------------------------------------------------------------
// Self-test (bench_compare --selftest style, wired into CTest)
// ---------------------------------------------------------------------

namespace {

int g_failures = 0;

void Expect(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "ddgms_analyzer selftest FAIL: %s\n",
                 what.c_str());
    ++g_failures;
  }
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

}  // namespace

int RunSelfTest() {
  g_failures = 0;

  // 1. The canonical two-lock inversion: A then B in one TU, B then A
  //    via a same-TU helper call in another.
  {
    std::vector<SourceFile> files = {
        {"alpha/a.cc",
         "#include \"common/sync.h\"\n"
         "void TakeBoth() {\n"
         "  MutexLock l1(a_mu_);\n"
         "  MutexLock l2(b_mu_);\n"
         "}\n"},
        {"beta/b.cc",
         "#include \"common/sync.h\"\n"
         "void HelperTakesA() { MutexLock l(a_mu_); }\n"
         "void TakeReversed() {\n"
         "  MutexLock l(b_mu_);\n"
         "  HelperTakesA();\n"
         "}\n"},
    };
    std::vector<FileFacts> facts;
    for (const auto& f : files) facts.push_back(ExtractFileFacts(f));
    // File-scoped lock ids differ (a::a_mu_ vs b::a_mu_) — that is
    // deliberate in production; the fixture shares ids via classes.
    std::vector<Finding> findings = CheckLockOrder(facts);
    Expect(findings.empty(),
           "file-scoped locks must not unify across TUs");
  }
  {
    const char* kA =
        "class Pair {\n"
        " public:\n"
        "  void TakeBoth() {\n"
        "    MutexLock l1(a_mu_);\n"
        "    MutexLock l2(b_mu_);\n"
        "  }\n"
        "};\n";
    const char* kB =
        "class Pair {\n"
        " public:\n"
        "  void HelperTakesA() { MutexLock l(a_mu_); }\n"
        "  void TakeReversed() {\n"
        "    MutexLock l(b_mu_);\n"
        "    HelperTakesA();\n"
        "  }\n"
        "};\n";
    std::vector<FileFacts> facts = {
        ExtractFileFacts({"alpha/a.cc", kA}),
        ExtractFileFacts({"beta/b.cc", kB})};
    std::vector<Finding> findings = CheckLockOrder(facts);
    Expect(CountRule(findings, "lock-order") == 1,
           "deadlock cycle detected exactly once");
    if (!findings.empty()) {
      const std::string& m = findings[0].message;
      Expect(m.find("path 1:") != std::string::npos &&
                 m.find("path 2:") != std::string::npos,
             "cycle report carries both witness paths");
      Expect(m.find("Pair::a_mu_") != std::string::npos &&
                 m.find("Pair::b_mu_") != std::string::npos,
             "witnesses name the class-qualified locks");
    }
  }

  // 2. Hot-path hygiene: allocation inside DDGMS_HOT flagged, same
  //    code without the annotation quiet, NOLINT suppresses.
  {
    SourceFile hot{"olap/kernel.cc",
                   "DDGMS_HOT void Accumulate(Rows& rows) {\n"
                   "  for (auto& r : rows) {\n"
                   "    out.push_back(r);\n"
                   "    std::string key = r.key();\n"
                   "  }\n"
                   "}\n"
                   "void Cold(Rows& rows) { std::string s; }\n"};
    FileFacts facts = ExtractFileFacts(hot);
    Expect(CountRule(facts.findings, "hot-path-alloc") == 2,
           "hot function flags push_back + std::string, cold is quiet");
    SourceFile suppressed{
        "olap/kernel.cc",
        "DDGMS_HOT void Accumulate(Rows& rows) {\n"
        "  out.reserve(rows.size());\n"
        "  for (auto& r : rows) {\n"
        "    out.push_back(r);\n"
        "    std::string key = r.key();  // NOLINT(ddgms-hot-path-alloc)\n"
        "  }\n"
        "}\n"};
    FileFacts clean = ExtractFileFacts(suppressed);
    Expect(CountRule(clean.findings, "hot-path-alloc") == 0,
           "reserve + NOLINT silence the hot pass");
  }

  // 3. Layer DAG: a forbidden upward edge is an error.
  {
    std::vector<SourceFile> files = {
        {"table/value.cc", "#include \"olap/cube.h\"\n"},
    };
    std::vector<FileFacts> facts = {ExtractFileFacts(files[0])};
    std::vector<Finding> findings =
        CheckLayerDag(facts, RepoLayerGraph());
    Expect(CountRule(findings, "layer-dag") == 1,
           "table -> olap include is a layer violation");
  }

  // 4. Baseline round trip: a finding keyed into a baseline vanishes.
  {
    Finding f{"mdx/executor.cc", 42, "hot-path-alloc", "test finding"};
    std::set<std::string> baseline =
        ParseBaseline("# comment\n" + BaselineKey(f) + "\n");
    std::vector<Finding> left = ApplyBaseline({f}, baseline);
    Expect(left.empty(), "baselined finding suppressed");
    Expect(ApplyBaseline({f}, ParseBaseline("# nothing\n")).size() == 1,
           "unbaselined finding survives");
  }

  if (g_failures == 0) {
    std::printf("ddgms_analyzer selftest: OK\n");
    return 0;
  }
  std::fprintf(stderr, "ddgms_analyzer selftest: %d failure(s)\n",
               g_failures);
  return 1;
}

}  // namespace ddgms::lint
