// Unit tests for the resource accounting subsystem (common/resource):
// hierarchy rollup, RAII attribution, conservation (single-threaded and
// under concurrent charge/release — this suite runs in the CI TSan
// lane), snapshots and the metrics-registry export.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"

namespace ddgms {
namespace {

// Every test owns the global meter: reset to a known state on entry and
// leave it disabled on exit (the shipping default other suites expect).
class ResourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResourceMeter::Enable();
    ResourceMeter::Global().ResetValues();
  }
  void TearDown() override {
    ResourceMeter::Global().ResetValues();
    ResourceMeter::Disable();
  }
};

TEST_F(ResourceTest, DisabledMeterIsInert) {
  ResourceMeter::Disable();
  {
    ScopedAccounting guard("etl");
    EXPECT_FALSE(guard.active());
    EXPECT_EQ(guard.BytesCharged(), 0u);
    DDGMS_RESOURCE_CHARGE(1024);
    DDGMS_RESOURCE_RELEASE(512);
  }
  EXPECT_EQ(ResourceMeter::Global().root().allocated(), 0u);
  EXPECT_EQ(ResourceMeter::Global().root().charges(), 0u);
}

TEST_F(ResourceTest, ChargeRollsUpTheDottedHierarchy) {
  ResourcePool& cache = ResourceMeter::Global().GetPool("olap.cube.cache");
  cache.Charge(100);

  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  for (const char* name : {"olap.cube.cache", "olap.cube", "olap", "total"}) {
    const ResourcePoolStats* stats = snap.pool(name);
    ASSERT_NE(stats, nullptr) << name;
    EXPECT_EQ(stats->allocated, 100u) << name;
    EXPECT_EQ(stats->current, 100) << name;
    EXPECT_EQ(stats->charges, 1u) << name;
  }

  cache.Release(40);
  snap = ResourceMeter::Global().Snapshot();
  for (const char* name : {"olap.cube.cache", "olap.cube", "olap", "total"}) {
    const ResourcePoolStats* stats = snap.pool(name);
    ASSERT_NE(stats, nullptr) << name;
    EXPECT_EQ(stats->current, 60) << name;
    EXPECT_EQ(stats->peak, 100) << name;
    EXPECT_EQ(stats->releases, 1u) << name;
  }
}

TEST_F(ResourceTest, PeakTracksHighWaterNotCurrent) {
  ResourcePool& pool = ResourceMeter::Global().GetPool("warehouse");
  pool.Charge(100);
  pool.Release(100);
  pool.Charge(50);
  EXPECT_EQ(pool.current(), 50);
  EXPECT_EQ(pool.peak(), 100);
  EXPECT_EQ(pool.allocated(), 150u);
  EXPECT_EQ(pool.freed(), 100u);
}

TEST_F(ResourceTest, ScopedAccountingAttributesToInnermostGuard) {
  {
    ScopedAccounting etl("etl");
    ASSERT_TRUE(etl.active());
    DDGMS_RESOURCE_CHARGE(10);
    {
      ScopedAccounting mdx("mdx");
      DDGMS_RESOURCE_CHARGE(5);
      EXPECT_EQ(mdx.BytesCharged(), 5u);
    }
    DDGMS_RESOURCE_CHARGE(7);
    EXPECT_EQ(etl.BytesCharged(), 17u);
  }
  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  EXPECT_EQ(snap.pool("etl")->allocated, 17u);
  EXPECT_EQ(snap.pool("mdx")->allocated, 5u);
  EXPECT_EQ(snap.pool("total")->allocated, 22u);
}

TEST_F(ResourceTest, UnattributedChargesLandInOther) {
  ASSERT_EQ(ScopedAccounting::Current(), nullptr);
  DDGMS_RESOURCE_CHARGE(33);
  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  ASSERT_NE(snap.pool("other"), nullptr);
  EXPECT_EQ(snap.pool("other")->allocated, 33u);
}

TEST_F(ResourceTest, SnapshotListsRootFirstAndExportsJson) {
  ResourceMeter::Global().GetPool("etl").Charge(1);
  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  ASSERT_FALSE(snap.pools.empty());
  EXPECT_EQ(snap.pools[0].name, "total");
  EXPECT_EQ(snap.pool("does.not.exist"), nullptr);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"etl\""), std::string::npos);
}

TEST_F(ResourceTest, PublishToMetricsExportsGauges) {
  MetricsRegistry::Enable();
  MetricsRegistry::Global().ResetValues();
  ResourceMeter::Global().GetPool("etl").Charge(2048);
  ResourceMeter::Global().PublishToMetrics();
  EXPECT_EQ(MetricsRegistry::Global()
                .GetGauge("ddgms.resource.bytes_current:etl")
                .value(),
            2048.0);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetGauge("ddgms.resource.bytes_peak:total")
                .value(),
            2048.0);
  MetricsRegistry::Global().ResetValues();
  MetricsRegistry::Disable();
}

// Conservation under concurrency: many threads charging and releasing
// through nested pools must leave every pool with
// allocated - freed == current at quiescence, and the root equal to
// the sum of its top-level children. Exercised under TSan in CI.
TEST_F(ResourceTest, ConcurrentChargeReleaseConservation) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  const char* kPools[] = {"etl", "warehouse", "olap.cube",
                          "olap.cube.cache"};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &kPools] {
      ScopedAccounting guard(kPools[t % 4]);
      for (int i = 0; i < kIterations; ++i) {
        DDGMS_RESOURCE_CHARGE(64);
        if (i % 2 == 0) DDGMS_RESOURCE_RELEASE(32);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  // Two threads charged each pool name directly; ancestors also absorb
  // their descendants ("olap.cube" gets its own charges plus the
  // rolled-up "olap.cube.cache" traffic).
  const uint64_t per_pool_alloc = 2ull * kIterations * 64;
  const uint64_t per_pool_freed = 2ull * (kIterations / 2) * 32;
  const struct {
    const char* name;
    uint64_t direct_pools;
  } kExpected[] = {{"etl", 1},
                   {"warehouse", 1},
                   {"olap.cube.cache", 1},
                   {"olap.cube", 2},
                   {"olap", 2}};
  for (const auto& expected : kExpected) {
    const ResourcePoolStats* stats = snap.pool(expected.name);
    ASSERT_NE(stats, nullptr) << expected.name;
    EXPECT_EQ(stats->allocated, expected.direct_pools * per_pool_alloc)
        << expected.name;
    EXPECT_EQ(stats->freed, expected.direct_pools * per_pool_freed)
        << expected.name;
    EXPECT_EQ(stats->current,
              static_cast<int64_t>(expected.direct_pools *
                                   (per_pool_alloc - per_pool_freed)))
        << expected.name;
    EXPECT_GE(stats->peak, stats->current) << expected.name;
    EXPECT_LE(stats->peak, static_cast<int64_t>(stats->allocated))
        << expected.name;
  }
  // The root saw every charge from every pool.
  const ResourcePoolStats* total = snap.pool("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->allocated, 4 * per_pool_alloc);
  EXPECT_EQ(total->freed, 4 * per_pool_freed);
  EXPECT_EQ(total->current,
            static_cast<int64_t>(4 * (per_pool_alloc - per_pool_freed)));
}

// Guards opened on different threads are independent: attribution is
// thread-scoped TLS, not process state.
TEST_F(ResourceTest, AttributionIsThreadScoped) {
  ScopedAccounting outer("mdx");
  std::thread worker([] {
    EXPECT_EQ(ScopedAccounting::Current(), nullptr);
    ScopedAccounting inner("telemetry");
    DDGMS_RESOURCE_CHARGE(11);
  });
  worker.join();
  DDGMS_RESOURCE_CHARGE(7);
  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  EXPECT_EQ(snap.pool("telemetry")->allocated, 11u);
  EXPECT_EQ(snap.pool("mdx")->allocated, 7u);
}

}  // namespace
}  // namespace ddgms
