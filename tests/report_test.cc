// Unit tests for the text rendering layer.

#include <gtest/gtest.h>

#include "report/render.h"
#include "table/table.h"

namespace ddgms::report {
namespace {

Table MakeGrid() {
  Table t(Schema::Make({{"AgeBand", DataType::kString},
                        {"F", DataType::kInt64},
                        {"M", DataType::kInt64}})
              .value());
  EXPECT_TRUE(
      t.AppendRow({Value::Str("60-70"), Value::Int(10), Value::Int(7)})
          .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Str("70-80"), Value::Int(12), Value::Null()})
          .ok());
  return t;
}

TEST(RenderPivotTest, TotalsAndNullCells) {
  auto out = RenderPivot(MakeGrid(), {.title = "Counts"});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("Counts"), std::string::npos);
  EXPECT_NE(out->find("AgeBand"), std::string::npos);
  EXPECT_NE(out->find("Total"), std::string::npos);
  EXPECT_NE(out->find("29"), std::string::npos);  // grand total 10+7+12
  EXPECT_NE(out->find("."), std::string::npos);   // null cell marker
}

TEST(RenderPivotTest, NoTotals) {
  PivotRenderOptions opt;
  opt.row_totals = false;
  opt.column_totals = false;
  auto out = RenderPivot(MakeGrid(), opt);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("Total"), std::string::npos);
}

TEST(RenderPivotTest, NeedsDataColumn) {
  Table t(Schema::Make({{"OnlyLabels", DataType::kString}}).value());
  EXPECT_TRUE(RenderPivot(t).status().IsInvalidArgument());
}

TEST(BarChartTest, ScalesToMaxWidth) {
  BarChartOptions opt;
  opt.max_width = 10;
  opt.show_values = false;
  std::string out =
      RenderBarChart({"a", "bb"}, {5.0, 10.0}, opt);
  // Max bar is exactly 10 chars; the other is 5.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(out.find("###########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(BarChartTest, AllZeroValues) {
  std::string out = RenderBarChart({"a"}, {0.0});
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(GroupedBarChartTest, LegendAndSeries) {
  std::string out = RenderGroupedBarChart(
      {"60-70", "70-80"}, {"F", "M"},
      {{10, 12}, {7, 3}});
  EXPECT_NE(out.find("legend: #=F ==M"), std::string::npos);
  EXPECT_NE(out.find("60-70"), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(RenderPivotAsChartTest, FromGrid) {
  auto out = RenderPivotAsChart(MakeGrid());
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("legend"), std::string::npos);
  EXPECT_NE(out->find("70-80"), std::string::npos);
}

}  // namespace
}  // namespace ddgms::report
