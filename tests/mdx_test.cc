// Unit tests for the MDX dialect: lexer, parser, executor.

#include <gtest/gtest.h>

#include "mdx/executor.h"
#include "mdx/lexer.h"
#include "mdx/parser.h"
#include "warehouse/warehouse.h"

namespace ddgms::mdx {
namespace {

using warehouse::DimensionDef;
using warehouse::Hierarchy;
using warehouse::MeasureDef;
using warehouse::StarSchemaBuilder;
using warehouse::StarSchemaDef;
using warehouse::Warehouse;

// ----------------------------------------------------------------- lexer

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT { [A].[B] } ON COLUMNS");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // incl. EOF
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdent);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kLBrace);
  EXPECT_EQ((*tokens)[2].type, TokenType::kBracketed);
  EXPECT_EQ((*tokens)[2].text, "A");
  EXPECT_EQ((*tokens)[3].type, TokenType::kDot);
  EXPECT_EQ((*tokens)[4].text, "B");
  EXPECT_EQ((*tokens)[5].type, TokenType::kRBrace);
  EXPECT_EQ(tokens->back().type, TokenType::kEof);
}

TEST(LexerTest, BracketEscapes) {
  auto tokens = Tokenize("[a]]b]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a]b");
}

TEST(LexerTest, BracketedMayContainSpacesAndPunctuation) {
  auto tokens = Tokenize("[very good].[60-80]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "very good");
  EXPECT_EQ((*tokens)[2].text, "60-80");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 -3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kNumber);
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "-3.5");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("[abc").status().IsParseError());
  EXPECT_TRUE(Tokenize("@").status().IsParseError());
}

// ---------------------------------------------------------------- parser

TEST(ParserTest, FullQuery) {
  auto q = Parse(
      "SELECT NON EMPTY { [P].[Gender].Members } ON COLUMNS, "
      "{ [P].[Age].[<40], [P].[Age].[40-60] } ON ROWS "
      "FROM [Facts] "
      "WHERE ( [C].[Diabetes].[Yes], [Measures].[Count] )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->axes.size(), 2u);
  EXPECT_TRUE(q->axes[0].non_empty);
  EXPECT_EQ(q->axes[0].target, AxisClause::Target::kColumns);
  ASSERT_EQ(q->axes[0].set.members.size(), 1u);
  EXPECT_EQ(q->axes[0].set.members[0].suffix, MemberRef::Suffix::kMembers);
  EXPECT_EQ(q->axes[1].set.members.size(), 2u);
  EXPECT_EQ(q->axes[1].set.members[1].path,
            (std::vector<std::string>{"P", "Age", "40-60"}));
  EXPECT_EQ(q->cube_name, "Facts");
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[1].path[0], "Measures");
}

TEST(ParserTest, CrossJoin) {
  auto q = Parse(
      "SELECT CROSSJOIN( { [P].[A].Members }, { [P].[B].Members } ) "
      "ON ROWS FROM [Facts]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->axes.size(), 1u);
  EXPECT_TRUE(q->axes[0].set.is_crossjoin);
  EXPECT_EQ(q->axes[0].set.cross_left->members[0].path[1], "A");
  EXPECT_EQ(q->axes[0].set.cross_right->members[0].path[1], "B");
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(
      Parse("select [a].[b] on rows from [c] where [d].[e].[f]").ok());
}

TEST(ParserTest, BareSetWithoutBraces) {
  auto q = Parse("SELECT [P].[Gender].Members ON COLUMNS FROM [F]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->axes[0].set.members.size(), 1u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_TRUE(Parse("FOO").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT [a].[b] ON SIDEWAYS FROM [c]")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT [a].[b] ON ROWS").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT { [a].[b] ON ROWS FROM [c]")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT [a].[b] ON ROWS FROM [c] junk")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT [a].bogus ON ROWS FROM [c]")
                  .status()
                  .IsParseError());
}

TEST(ParserTest, ToStringRoundTrips) {
  auto q = Parse(
      "SELECT { [P].[G].Members } ON COLUMNS FROM [F] "
      "WHERE ( [C].[D].[Yes] )");
  ASSERT_TRUE(q.ok());
  auto q2 = Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << "rendered: " << q->ToString();
  EXPECT_EQ(q2->cube_name, "F");
}

// -------------------------------------------------------------- executor

Warehouse MakeWarehouse() {
  auto schema = Schema::Make({{"Gender", DataType::kString},
                              {"AgeBand", DataType::kString},
                              {"Diabetes", DataType::kString},
                              {"FBG", DataType::kDouble}});
  Table t(std::move(schema).value());
  struct R {
    const char* g;
    const char* a;
    const char* d;
    double fbg;
  };
  const R rows[] = {
      {"F", "40-60", "No", 5.1},  {"M", "40-60", "No", 5.3},
      {"F", "60-80", "Yes", 8.2}, {"M", "60-80", "Yes", 7.6},
      {"F", "60-80", "No", 5.6},  {"F", ">80", "Yes", 9.1},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Str(r.g), Value::Str(r.a),
                             Value::Str(r.d), Value::Real(r.fbg)})
                    .ok());
  }
  StarSchemaDef def;
  def.fact_name = "MedicalMeasures";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef person;
  person.name = "Person";
  person.attributes = {"Gender", "AgeBand"};
  DimensionDef condition;
  condition.name = "Condition";
  condition.attributes = {"Diabetes"};
  def.dimensions = {person, condition};
  auto wh = StarSchemaBuilder(def).Build(t);
  EXPECT_TRUE(wh.ok());
  return std::move(wh).value();
}

TEST(ExecutorTest, CrossTabWithSlicerAndCount) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  auto result = executor.Execute(
      "SELECT { [Person].[Gender].Members } ON COLUMNS, "
      "{ [Person].[AgeBand].Members } ON ROWS "
      "FROM [MedicalMeasures] "
      "WHERE ( [Condition].[Diabetes].[Yes], [Measures].[Count] )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cube.facts_aggregated(), 3u);
  auto grid = result->ToGrid();
  ASSERT_TRUE(grid.ok());
  // Rows: 60-80, >80; columns: F, M.
  EXPECT_EQ(grid->num_rows(), 2u);
  EXPECT_EQ(*grid->GetCell(0, "F"), Value::Int(1));
  EXPECT_EQ(*grid->GetCell(0, "M"), Value::Int(1));
}

TEST(ExecutorTest, ExplicitMembersMergeIntoOneAxis) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  auto result = executor.Execute(
      "SELECT { [Person].[AgeBand].[60-80], [Person].[AgeBand].[>80] } "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->cube.num_axes(), 1u);
  EXPECT_EQ(result->cube.facts_aggregated(), 4u);
  EXPECT_EQ(result->cube.AxisMembers(0)[0], Value::Str("60-80"));
}

TEST(ExecutorTest, MeasureSpellings) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  // Explicit aggregate.
  auto avg = executor.Execute(
      "SELECT { [Condition].[Diabetes].Members, [Measures].[Avg(FBG)] } "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  EXPECT_NEAR(avg->cube.CellValue({Value::Str("Yes")}, 0).double_value(),
              (8.2 + 7.6 + 9.1) / 3.0, 1e-9);
  // Bare measure name defaults to Avg.
  auto bare = executor.Execute(
      "SELECT { [Condition].[Diabetes].Members, [Measures].[FBG] } "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->cube.query().measures[0].fn, AggFn::kAvg);
  // Default measure is count when none named.
  auto none = executor.Execute(
      "SELECT [Condition].[Diabetes].Members ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->cube.query().measures[0].fn, AggFn::kCount);
}

TEST(ExecutorTest, CrossJoinProducesTwoAxes) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  auto result = executor.Execute(
      "SELECT CROSSJOIN( { [Person].[AgeBand].Members }, "
      "{ [Person].[Gender].Members } ) ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cube.num_axes(), 2u);
  EXPECT_EQ(result->row_axes.size(), 2u);
  auto grid = result->ToGrid();  // falls back to flat table
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_columns(), 3u);
}

TEST(ExecutorTest, WhereMembersOfSameLevelUnion) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  auto result = executor.Execute(
      "SELECT [Person].[Gender].Members ON ROWS FROM [MedicalMeasures] "
      "WHERE ( [Person].[AgeBand].[60-80], [Person].[AgeBand].[>80] )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cube.facts_aggregated(), 4u);
}

TEST(ExecutorTest, Errors) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  EXPECT_TRUE(executor
                  .Execute("SELECT [Person].[Gender].Members ON ROWS "
                           "FROM [WrongCube]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(executor
                  .Execute("SELECT [Nope].[X].Members ON ROWS "
                           "FROM [MedicalMeasures]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(executor
                  .Execute("SELECT [Person].[Nope].Members ON ROWS "
                           "FROM [MedicalMeasures]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(executor
                  .Execute("SELECT [Measures].[Bogus(FBG)] ON ROWS "
                           "FROM [MedicalMeasures]")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(executor
                  .Execute("SELECT [Measures].[Avg(Nope)] ON ROWS "
                           "FROM [MedicalMeasures]")
                  .status()
                  .IsNotFound());
  // WHERE member must be fully qualified.
  EXPECT_TRUE(executor
                  .Execute("SELECT [Person].[Gender].Members ON ROWS "
                           "FROM [MedicalMeasures] WHERE ( [Person].[X] )")
                  .status()
                  .IsParseError());
}

TEST(ExecutorTest, CaseInsensitiveCubeName) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  EXPECT_TRUE(executor
                  .Execute("SELECT [Person].[Gender].Members ON ROWS "
                           "FROM [medicalmeasures]")
                  .ok());
}

}  // namespace
}  // namespace ddgms::mdx
