// Flight-recorder event log tests: disabled-path inertness, level
// filtering, typed field rendering, ring eviction/seq ordering, sinks,
// span correlation (including the MDX acceptance criterion: an event
// emitted inside an MDX execution carries the enclosing mdx.execute
// span id), the slow-query log, and multi-threaded writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/trace.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "mdx/executor.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms {
namespace {

constexpr size_t kDefaultCapacity = 2048;
constexpr double kDefaultSlowQueryUs = 250000.0;

/// Captures every record handed to the sink.
class CapturingSink : public LogSink {
 public:
  explicit CapturingSink(std::vector<LogRecord>* out) : out_(out) {}
  void Write(const LogRecord& record) override { out_->push_back(record); }

 private:
  std::vector<LogRecord>* out_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventLog::Global().Clear();
    EventLog::Global().ClearSinks();
    EventLog::Global().set_capacity(kDefaultCapacity);
    EventLog::Global().set_min_level(LogLevel::kDebug);
    EventLog::Enable();
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    EventLog::Disable();
    EventLog::Global().Clear();
    EventLog::Global().ClearSinks();
    EventLog::Global().set_capacity(kDefaultCapacity);
    EventLog::Global().set_min_level(LogLevel::kInfo);
    TraceCollector::Disable();
    TraceCollector::Global().Clear();
    mdx::MdxExecutor::SetSlowQueryThresholdMicros(kDefaultSlowQueryUs);
  }

  static const LogRecord* FindEvent(const std::vector<LogRecord>& records,
                                    const std::string& event) {
    for (const LogRecord& r : records) {
      if (r.event == event) return &r;
    }
    return nullptr;
  }

  /// A small clinical warehouse for the MDX-facing tests.
  static warehouse::Warehouse BuildMedicalWarehouse() {
    discri::CohortOptions opt;
    opt.num_patients = 60;
    opt.seed = 20130408;
    auto raw = discri::GenerateCohort(opt);
    EXPECT_TRUE(raw.ok()) << raw.status().ToString();
    etl::TransformPipeline pipeline = discri::MakeDiscriPipeline();
    auto report = pipeline.Run(&raw.value());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
    auto wh = builder.Build(raw.value());
    EXPECT_TRUE(wh.ok()) << wh.status().ToString();
    return std::move(wh).value();
  }
};

TEST_F(LogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    auto parsed = LogLevelFromName(LogLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_TRUE(LogLevelFromName("WARN").ok());  // case-insensitive
  EXPECT_FALSE(LogLevelFromName("verbose").ok());
}

TEST_F(LogTest, DisabledLogIsInert) {
  EventLog::Disable();
  DDGMS_LOG_INFO("t.event").With("k", 1).Message("dropped");
  LogEvent ev(LogLevel::kError, "t.direct");
  EXPECT_FALSE(ev.active());
  EXPECT_EQ(EventLog::Global().size(), 0u);
}

TEST_F(LogTest, MinLevelFiltersAtTheCallSite) {
  EventLog::Global().set_min_level(LogLevel::kWarn);
  DDGMS_LOG_DEBUG("t.debug");
  DDGMS_LOG_INFO("t.info");
  DDGMS_LOG_WARN("t.warn");
  DDGMS_LOG_ERROR("t.error");
  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "t.warn");
  EXPECT_EQ(records[1].event, "t.error");
}

TEST_F(LogTest, RecordCapturesTypedFieldsAndRenders) {
  DDGMS_LOG_WARN("t.typed")
      .Message("hello \"world\"")
      .With("s", "a\nb")
      .With("i", 42)
      .With("d", 1.5)
      .With("b", true);
  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  EXPECT_GT(r.seq, 0u);
  EXPECT_EQ(r.level, LogLevel::kWarn);
  ASSERT_EQ(r.fields.size(), 4u);
  EXPECT_EQ(r.fields[1].second.ToString(), "42");
  EXPECT_FALSE(r.fields[1].second.is_string());

  const std::string text = r.ToString();
  EXPECT_NE(text.find("[warn ]"), std::string::npos) << text;
  EXPECT_NE(text.find("t.typed"), std::string::npos);
  EXPECT_NE(text.find("i=42"), std::string::npos);

  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"level\":\"warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"event\":\"t.typed\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"hello \\\"world\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"s\":\"a\\nb\""), std::string::npos);
  EXPECT_NE(json.find("\"i\":42"), std::string::npos);
  EXPECT_NE(json.find("\"b\":true"), std::string::npos);
}

TEST_F(LogTest, RingEvictsOldestAndCountsDropped) {
  EventLog::Global().set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    DDGMS_LOG_INFO("t.ring").With("i", i);
  }
  EventLog& log = EventLog::Global();
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.dropped(), 12u);
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Ring keeps the newest records, in seq order, contiguous.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
  EXPECT_EQ(records.back().fields[0].second.ToString(), "19");
}

TEST_F(LogTest, ShrinkingCapacityKeepsNewest) {
  for (int i = 0; i < 10; ++i) {
    DDGMS_LOG_INFO("t.shrink").With("i", i);
  }
  EventLog::Global().set_capacity(3);
  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].fields[0].second.ToString(), "7");
  EXPECT_EQ(records[2].fields[0].second.ToString(), "9");
}

TEST_F(LogTest, DrainEmptiesTheRing) {
  for (int i = 0; i < 5; ++i) DDGMS_LOG_INFO("t.drain");
  std::vector<LogRecord> drained = EventLog::Global().Drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(EventLog::Global().size(), 0u);
  EXPECT_EQ(EventLog::Global().dropped(), 0u);
  DDGMS_LOG_INFO("t.drain.after");
  EXPECT_EQ(EventLog::Global().size(), 1u);
}

TEST_F(LogTest, SinksReceiveEveryRecord) {
  std::vector<LogRecord> seen;
  EventLog::Global().AddSink(std::make_unique<CapturingSink>(&seen));
  EventLog::Global().set_capacity(2);  // sinks see past the ring
  for (int i = 0; i < 6; ++i) DDGMS_LOG_INFO("t.sink").With("i", i);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(EventLog::Global().size(), 2u);
}

TEST_F(LogTest, JsonlFileSinkAppendsWellFormedLines) {
  const std::string path = testing::TempDir() + "/ddgms_events.jsonl";
  std::remove(path.c_str());
  auto sink = JsonlFileLogSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  EventLog::Global().AddSink(std::move(sink).value());
  DDGMS_LOG_INFO("t.jsonl").With("k", 7);
  EventLog::Global().ClearSinks();  // closes + flushes the file

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[512] = {};
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  std::fclose(f);
  std::string line(buffer);
  EXPECT_EQ(line.find("{\"seq\":"), 0u) << line;
  EXPECT_NE(line.find("\"event\":\"t.jsonl\""), std::string::npos);
  EXPECT_NE(line.find("\"k\":7"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  std::remove(path.c_str());
}

TEST_F(LogTest, EventsCarryTheEnclosingSpanIds) {
  TraceCollector::Enable();
  DDGMS_LOG_INFO("t.outside");  // no span open
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("t.outer");
    outer_id = outer.id();
    DDGMS_LOG_INFO("t.in_outer");
    {
      TraceSpan inner("t.inner");
      inner_id = inner.id();
      DDGMS_LOG_INFO("t.in_inner");
    }
    DDGMS_LOG_INFO("t.back_in_outer");
  }
  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].span_id, 0u);
  EXPECT_EQ(records[0].parent_span_id, 0u);
  EXPECT_EQ(records[1].span_id, outer_id);
  EXPECT_EQ(records[1].parent_span_id, 0u);
  EXPECT_EQ(records[2].span_id, inner_id);
  EXPECT_EQ(records[2].parent_span_id, outer_id);
  // After the inner span closes the thread-local stack must unwind.
  EXPECT_EQ(records[3].span_id, outer_id);
  EXPECT_EQ(records[3].parent_span_id, 0u);
}

TEST_F(LogTest, MdxExecutionEventCarriesEnclosingExecuteSpanId) {
  // Acceptance criterion: the "mdx.execute" record logged during an
  // MDX execution is stamped with the id of the enclosing mdx.execute
  // trace span.
  TraceCollector::Enable();
  warehouse::Warehouse wh = BuildMedicalWarehouse();
  mdx::MdxExecutor executor(&wh);
  auto result = executor.Execute(
      "SELECT { [Measures].[Count] } ON COLUMNS FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  const LogRecord* event = FindEvent(records, "mdx.execute");
  ASSERT_NE(event, nullptr);
  ASSERT_NE(event->span_id, 0u);

  uint64_t exec_span_id = 0;
  for (const SpanRecord& span : TraceCollector::Global().Snapshot()) {
    if (span.name == "mdx.execute") exec_span_id = span.id;
  }
  ASSERT_NE(exec_span_id, 0u);
  EXPECT_EQ(event->span_id, exec_span_id);
}

TEST_F(LogTest, SlowQueryThresholdLogsPerStageProfile) {
  warehouse::Warehouse wh = BuildMedicalWarehouse();
  mdx::MdxExecutor executor(&wh);

  // Default threshold: a fast query logs mdx.execute but not
  // mdx.slow_query.
  auto fast = executor.Execute(
      "SELECT { [Measures].[Count] } ON COLUMNS FROM [MedicalMeasures]");
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  const std::vector<LogRecord> before = EventLog::Global().Snapshot();
  EXPECT_EQ(FindEvent(before, "mdx.slow_query"), nullptr);

  // Threshold 0: everything is a slow query.
  mdx::MdxExecutor::SetSlowQueryThresholdMicros(0.0);
  auto slow = executor.Execute(
      "SELECT { [Measures].[Count] } ON COLUMNS FROM [MedicalMeasures]");
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  const std::vector<LogRecord> after = EventLog::Global().Snapshot();
  const LogRecord* record = FindEvent(after, "mdx.slow_query");
  ASSERT_NE(record, nullptr);

  // The record carries the per-stage MdxProfile timings.
  bool has_compile = false;
  bool has_execute = false;
  bool has_total = false;
  for (const auto& [key, value] : record->fields) {
    if (key == "compile_us") has_compile = true;
    if (key == "execute_us") has_execute = true;
    if (key == "total_us") has_total = true;
  }
  EXPECT_TRUE(has_compile);
  EXPECT_TRUE(has_execute);
  EXPECT_TRUE(has_total);
}

TEST_F(LogTest, ConcurrentWritersProduceNoTornRecords) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  constexpr size_t kCapacity = 256;
  EventLog::Global().set_capacity(kCapacity);
  // Seq numbers are process-monotonic (Clear() does not rewind them);
  // note where this test starts so eviction can be checked absolutely.
  DDGMS_LOG_INFO("t.mt.baseline");
  const uint64_t base_seq = EventLog::Global().Snapshot().back().seq;
  EventLog::Global().Clear();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        DDGMS_LOG_INFO("t.mt").With("tid", t).With("i", i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EventLog& log = EventLog::Global();
  const size_t total = static_cast<size_t>(kThreads) * kPerThread;
  EXPECT_EQ(log.size(), kCapacity);
  EXPECT_EQ(log.dropped(), total - kCapacity);

  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), kCapacity);
  for (size_t i = 0; i < records.size(); ++i) {
    const LogRecord& r = records[i];
    // No torn records: every field pair intact and in range.
    EXPECT_EQ(r.event, "t.mt");
    ASSERT_EQ(r.fields.size(), 2u);
    EXPECT_EQ(r.fields[0].first, "tid");
    EXPECT_EQ(r.fields[1].first, "i");
    // Correct eviction order: the ring holds the newest `kCapacity`
    // records with contiguous strictly-increasing seq numbers.
    if (i > 0) {
      EXPECT_EQ(r.seq, records[i - 1].seq + 1);
    }
  }
  EXPECT_EQ(records.back().seq, base_seq + total);
}

}  // namespace
}  // namespace ddgms
