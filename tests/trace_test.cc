// Trace collector tests: span nesting and parentage, attributes, ring
// eviction, rendering, and the disabled-path no-op guarantees.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace ddgms {
namespace {

// The collector is process-global: every test starts enabled with an
// empty buffer at default capacity and leaves it disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Clear();
    TraceCollector::Global().set_capacity(4096);
    TraceCollector::Enable();
  }
  void TearDown() override {
    TraceCollector::Disable();
    TraceCollector::Global().Clear();
    TraceCollector::Global().set_capacity(4096);
  }

  static const SpanRecord* FindByName(
      const std::vector<SpanRecord>& spans, const std::string& name) {
    for (const SpanRecord& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

TEST_F(TraceTest, RecordsCompletedSpan) {
  {
    TraceSpan span("unit.work");
    EXPECT_TRUE(span.active());
    EXPECT_GT(span.id(), 0u);
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.work");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_GE(spans[0].duration_us, 0.0);
}

TEST_F(TraceTest, NestingSetsParentAndDepth) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan middle("middle");
      {
        TraceSpan inner("inner");
      }
    }
    // A sibling opened after `middle` closed still parents to outer.
    TraceSpan sibling("sibling");
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* outer = FindByName(spans, "outer");
  const SpanRecord* middle = FindByName(spans, "middle");
  const SpanRecord* inner = FindByName(spans, "inner");
  const SpanRecord* sibling = FindByName(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(middle->parent_id, outer->id);
  EXPECT_EQ(inner->parent_id, middle->id);
  EXPECT_EQ(sibling->parent_id, outer->id);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(middle->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(sibling->depth, 1);
}

TEST_F(TraceTest, CompletionOrderIsInnermostFirst) {
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
}

TEST_F(TraceTest, AttributesOfAllTypes) {
  {
    TraceSpan span("attrs");
    span.SetAttribute("str", std::string("value"));
    span.SetAttribute("lit", "literal");
    span.SetAttribute("count", size_t{42});
    span.SetAttribute("signed", -7);
    span.SetAttribute("ratio", 0.5);
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const auto& attrs = spans[0].attributes;
  ASSERT_EQ(attrs.size(), 5u);
  EXPECT_EQ(attrs[0].first, "str");
  EXPECT_EQ(attrs[0].second, "value");
  EXPECT_EQ(attrs[1].second, "literal");
  EXPECT_EQ(attrs[2].second, "42");
  EXPECT_EQ(attrs[3].second, "-7");
  EXPECT_NE(attrs[4].second.find("0.5"), std::string::npos);
}

TEST_F(TraceTest, RingEvictsOldestAndCountsDropped) {
  TraceCollector::Global().set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(i % 2 == 0 ? "even" : "odd");
  }
  EXPECT_EQ(TraceCollector::Global().size(), 3u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 2u);
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // The three newest survive, oldest first.
  EXPECT_EQ(spans[0].name, "even");
  EXPECT_EQ(spans[1].name, "odd");
  EXPECT_EQ(spans[2].name, "even");
  EXPECT_LT(spans[0].id, spans[1].id);
  EXPECT_LT(spans[1].id, spans[2].id);
}

TEST_F(TraceTest, ClearEmptiesBuffer) {
  { TraceSpan span("work"); }
  ASSERT_EQ(TraceCollector::Global().size(), 1u);
  TraceCollector::Global().Clear();
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 0u);
  EXPECT_TRUE(TraceCollector::Global().Snapshot().empty());
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceCollector::Disable();
  {
    TraceSpan span("invisible");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    span.SetAttribute("k", "v");  // must be a safe no-op
  }
  TraceCollector::Enable();
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
}

TEST_F(TraceTest, DisabledSpanDoesNotBreakNesting) {
  // A span constructed while disabled must not become the parent of
  // spans opened after re-enabling.
  {
    TraceCollector::Disable();
    TraceSpan inert("inert");
    TraceCollector::Enable();
    TraceSpan real("real");
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "real");
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST_F(TraceTest, ToStringRendersTreeWithIndent) {
  {
    TraceSpan outer("outer.op");
    TraceSpan inner("inner.op");
  }
  std::string rendered = TraceCollector::Global().ToString();
  const size_t outer_pos = rendered.find("outer.op");
  const size_t inner_pos = rendered.find("  inner.op");
  EXPECT_NE(outer_pos, std::string::npos);
  EXPECT_NE(inner_pos, std::string::npos);
}

TEST_F(TraceTest, ToJsonContainsSpansAndAttributes) {
  {
    TraceSpan span("json.span");
    span.SetAttribute("rows", 7);
  }
  std::string json = TraceCollector::Global().ToJson();
  EXPECT_NE(json.find("\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"7\""), std::string::npos);
}

TEST_F(TraceTest, ThreadsNestIndependently) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      TraceSpan outer("thread.outer");
      TraceSpan inner("thread.inner");
    });
  }
  for (std::thread& w : workers) w.join();
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  // Every inner parents to SOME outer, never to another inner.
  for (const SpanRecord& s : spans) {
    if (s.name != "thread.inner") continue;
    bool found = false;
    for (const SpanRecord& p : spans) {
      if (p.id == s.parent_id) {
        EXPECT_EQ(p.name, "thread.outer");
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(TraceTest, ShrinkingCapacityKeepsNewest) {
  for (int i = 0; i < 4; ++i) {
    TraceSpan span(i < 2 ? "old" : "new");
  }
  TraceCollector::Global().set_capacity(2);
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "new");
  EXPECT_EQ(spans[1].name, "new");
}

}  // namespace
}  // namespace ddgms
