// Metrics registry tests: counter/gauge/histogram semantics (including
// under concurrent mutation), snapshot ordering, exporter formats and
// the disabled-path no-op guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace ddgms {
namespace {

// The registry is process-global, so every test starts enabled with
// clean values and leaves the registry disabled.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
  }
  void TearDown() override {
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }
};

TEST_F(MetricsTest, CounterIncrementAndReset) {
  Counter& c = MetricsRegistry::Global().GetCounter("t.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GetCounterReturnsSameInstance) {
  Counter& a = MetricsRegistry::Global().GetCounter("t.same");
  Counter& b = MetricsRegistry::Global().GetCounter("t.same");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricsTest, CounterConcurrentIncrements) {
  Counter& c = MetricsRegistry::Global().GetCounter("t.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Global().GetGauge("t.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.Add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, GaugeConcurrentAdds) {
  Gauge& g = MetricsRegistry::Global().GetGauge("t.gauge.conc");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(0.5);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread * 0.5);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.hist", {10, 20, 30});
  h.Observe(5);    // bucket 0: <= 10
  h.Observe(10);   // bucket 0 (upper bounds inclusive)
  h.Observe(15);   // bucket 1
  h.Observe(25);   // bucket 2
  h.Observe(100);  // overflow bucket
  HistogramSnapshot snap = h.Snapshot("t.hist");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 155.0);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 31.0);
}

TEST_F(MetricsTest, HistogramPercentilesAreOrderedAndBounded) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "t.hist.pct", Histogram::DefaultLatencyBounds());
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  HistogramSnapshot snap = h.Snapshot("t.hist.pct");
  const double p50 = snap.Percentile(0.50);
  const double p95 = snap.Percentile(0.95);
  const double p99 = snap.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
  // p50 of 1..1000 should land in the right region despite bucketing.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST_F(MetricsTest, HistogramConcurrentObserve) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "t.hist.conc", {100, 200, 300});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(50.0 * (t + 1));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const double expected_sum = kPerThread * 50.0 * (1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
}

TEST_F(MetricsTest, GaugeAddHighContentionLosesNoUpdates) {
  // Regression guard for Gauge::Add: the CAS loop must not lose
  // updates under write-write contention (a plain load+store would).
  Gauge& g = MetricsRegistry::Global().GetGauge("t.gauge.contended");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST_F(MetricsTest, HistogramConcurrentObserveBucketAccounting) {
  // Bucket counters, count, sum and min/max must all be exact after
  // concurrent writers finish — no observation may be dropped or land
  // in the wrong bucket.
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "t.hist.acct", {100, 200, 300});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      // Thread t observes a fixed value in bucket t % 4.
      const double value = 50.0 + 100.0 * (t % 4);
      for (int i = 0; i < kPerThread; ++i) h.Observe(value);
    });
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot snap = h.Snapshot("t.hist.acct");
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, total);
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  ASSERT_EQ(snap.buckets.size(), 4u);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(snap.buckets[b], total / 4) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(snap.min, 50.0);
  EXPECT_DOUBLE_EQ(snap.max, 350.0);
}

TEST_F(MetricsTest, SnapshotDuringConcurrentObserveIsConsistent) {
  // Sampler-vs-mutator: snapshots taken while writers are mid-flight
  // must never surface the +/-inf min/max sentinels, must keep
  // bucket-sum >= count (count is incremented last), and count must be
  // monotone across snapshots.
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "t.hist.race", {10, 100, 1000});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((i % 2000) + t));
      }
    });
  }
  uint64_t last_count = 0;
  for (int s = 0; s < 200; ++s) {
    HistogramSnapshot snap = h.Snapshot("t.hist.race");
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
    uint64_t bucket_sum = 0;
    for (uint64_t b : snap.buckets) bucket_sum += b;
    EXPECT_GE(bucket_sum, snap.count);
    EXPECT_TRUE(std::isfinite(snap.min)) << snap.min;
    EXPECT_TRUE(std::isfinite(snap.max)) << snap.max;
    if (snap.count > 0) {
      EXPECT_GE(snap.min, 0.0);
      EXPECT_LE(snap.max, 2003.0);
    }
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot final_snap = h.Snapshot("t.hist.race");
  EXPECT_EQ(final_snap.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, SnapshotIsSortedAndQueriable) {
  MetricsRegistry::Global().GetCounter("t.b").Increment(2);
  MetricsRegistry::Global().GetCounter("t.a").Increment();
  MetricsRegistry::Global().GetGauge("t.g").Set(1.5);
  MetricsRegistry::Global().GetHistogram("t.h", {1, 2}).Observe(1.5);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_EQ(snap.counter("t.a"), 1u);
  EXPECT_EQ(snap.counter("t.b"), 2u);
  EXPECT_EQ(snap.counter("t.missing"), 0u);
  const auto* h = snap.histogram("t.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST_F(MetricsTest, ToJsonContainsMetrics) {
  MetricsRegistry::Global().GetCounter("t.json.counter").Increment(7);
  MetricsRegistry::Global().GetGauge("t.json.gauge").Set(0.5);
  MetricsRegistry::Global()
      .GetHistogram("t.json.hist", {10})
      .Observe(3);
  std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"t.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
  EXPECT_NE(json.find("\"t.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"t.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST_F(MetricsTest, ToPrometheusTextSanitizesNames) {
  MetricsRegistry::Global()
      .GetCounter("ddgms.retry.attempts:store.fetch")
      .Increment(3);
  std::string prom =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  // Dots and the :detail separator become legal Prometheus characters.
  EXPECT_NE(prom.find("ddgms_retry_attempts:store_fetch"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  // The original dotted name survives only in # HELP comments (where
  // it documents the sanitized -> registry mapping); every sample
  // line uses the sanitized form.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# HELP", 0) == 0) continue;
    EXPECT_EQ(line.find("ddgms.retry"), std::string::npos) << line;
  }
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrationButZeroes) {
  Counter& c = MetricsRegistry::Global().GetCounter("t.reset");
  c.Increment(9);
  MetricsRegistry::Global().ResetValues();
  EXPECT_EQ(c.value(), 0u);
  // Same instance remains valid and usable.
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(MetricsTest, DisabledPathIsANoOp) {
  Counter& c = MetricsRegistry::Global().GetCounter("t.disabled");
  Gauge& g = MetricsRegistry::Global().GetGauge("t.disabled.g");
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.disabled.h", {1});
  MetricsRegistry::Disable();
  c.Increment();
  g.Set(5.0);
  g.Add(1.0);
  h.Observe(0.5);
  DDGMS_METRIC_INC("t.disabled");
  DDGMS_METRIC_ADD("t.disabled", 10);
  DDGMS_METRIC_GAUGE_SET("t.disabled.g", 2.0);
  DDGMS_METRIC_OBSERVE("t.disabled.h", 0.5);
  MetricsRegistry::Enable();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, MacroCreatesAndIncrements) {
  DDGMS_METRIC_INC("t.macro");
  DDGMS_METRIC_ADD("t.macro", 4);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("t.macro"), 5u);
}

TEST_F(MetricsTest, ScopedLatencyTimerObserves) {
  {
    ScopedLatencyTimer timer("t.latency");
    // Any work; even an empty scope records a >= 0 duration.
  }
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "t.latency", Histogram::DefaultLatencyBounds());
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(MetricsTest, PercentileEdgeCases) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.hist.edge", {10, 20, 30});
  // Empty histogram: every percentile is 0, nothing divides by zero.
  HistogramSnapshot empty = h.Snapshot("t.hist.edge");
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);

  // Single sample: every percentile collapses onto that sample.
  h.Observe(17);
  HistogramSnapshot one = h.Snapshot("t.hist.edge");
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 17.0);
  EXPECT_DOUBLE_EQ(one.Percentile(0.5), 17.0);
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 17.0);

  // p outside [0,1] clamps to min/max; NaN degrades to 0 rather than
  // poisoning downstream arithmetic.
  h.Observe(5);
  h.Observe(100);
  HistogramSnapshot snap = h.Snapshot("t.hist.edge");
  EXPECT_DOUBLE_EQ(snap.Percentile(-0.5), snap.min);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), snap.min);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), snap.max);
  EXPECT_DOUBLE_EQ(snap.Percentile(2.0), snap.max);
  EXPECT_DOUBLE_EQ(snap.Percentile(std::nan("")), 0.0);
}

TEST_F(MetricsTest, PrometheusHistogramBucketsAreCumulative) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.hist.prom", {10, 20, 30});
  h.Observe(5);    // le=10
  h.Observe(10);   // le=10 (bounds inclusive)
  h.Observe(15);   // le=20
  h.Observe(25);   // le=30
  h.Observe(100);  // +Inf only
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  // Buckets are CUMULATIVE counts-at-or-below each bound, ending with
  // +Inf == _count — the exposition-format contract scrapers rely on.
  EXPECT_NE(text.find("t_hist_prom_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t_hist_prom_bucket{le=\"20\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("t_hist_prom_bucket{le=\"30\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("t_hist_prom_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("t_hist_prom_count 5"), std::string::npos);
  EXPECT_NE(text.find("t_hist_prom_sum 155"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_hist_prom histogram"), std::string::npos);
  // HELP lines carry the original dotted name for all instrument kinds.
  MetricsRegistry::Global().GetCounter("t.prom.counter").Increment();
  MetricsRegistry::Global().GetGauge("t.prom.gauge").Set(1.0);
  const std::string full =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  EXPECT_NE(full.find("# HELP t_hist_prom ddgms histogram t.hist.prom"),
            std::string::npos);
  EXPECT_NE(full.find("# HELP t_prom_counter ddgms counter t.prom.counter"),
            std::string::npos);
  EXPECT_NE(full.find("# HELP t_prom_gauge ddgms gauge t.prom.gauge"),
            std::string::npos);
}

TEST_F(MetricsTest, PrometheusHelpTextEscapesBackslashAndNewline) {
  // Instrument names are free-form registry keys; a hostile or buggy
  // one must not be able to break the exposition format by smuggling a
  // raw newline (which would start a bogus sample line) or a raw
  // backslash into # HELP text.
  MetricsRegistry::Global()
      .GetCounter("t.evil\nname\\with\\slashes")
      .Increment();
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  // Escaped forms appear...
  EXPECT_NE(text.find("t.evil\\nname\\\\with\\\\slashes"),
            std::string::npos);
  // ...and the raw (unescaped) fragment does not: a raw newline in
  // HELP would have split the comment and emitted a bogus sample line
  // starting with "name\with\slashes".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.rfind("name\\with", 0), 0u) << line;
  }
}

TEST_F(MetricsTest, PrometheusLabelValuesAreEscaped) {
  // The le label values today are numeric bounds or +Inf, but the
  // writer must escape per spec regardless: backslash, double quote
  // and newline inside a label value.
  using ::ddgms::MetricsSnapshot;
  MetricsSnapshot snapshot;
  HistogramSnapshot h;
  h.name = "t.label.esc";
  h.bounds = {10.0};
  h.buckets = {1, 0};
  h.count = 1;
  h.sum = 5.0;
  snapshot.histograms.push_back(h);
  const std::string text = snapshot.ToPrometheusText();
  EXPECT_NE(text.find("_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
}

TEST_F(MetricsTest, ScopedLatencyTimerInertWhenDisabled) {
  MetricsRegistry::Disable();
  {
    ScopedLatencyTimer timer("t.latency.off");
  }
  MetricsRegistry::Enable();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.histogram("t.latency.off"), nullptr);
}

}  // namespace
}  // namespace ddgms
