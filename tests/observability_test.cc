// End-to-end observability: building a DD-DGMS with metrics + tracing
// enabled must produce the expected counters, latency histograms and
// span tree across ETL -> warehouse -> OLAP/MDX, including the
// fault/retry and quarantine paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/faults.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "table/store.h"
#include "table/table.h"

namespace ddgms {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Reset();
    MetricsRegistry::Global().ResetValues();
    TraceCollector::Global().Clear();
    MetricsRegistry::Enable();
    TraceCollector::Enable();
  }
  void TearDown() override {
    MetricsRegistry::Disable();
    TraceCollector::Disable();
    MetricsRegistry::Global().ResetValues();
    TraceCollector::Global().Clear();
    FaultRegistry::Global().Reset();
  }

  static uint64_t CounterValue(const MetricsSnapshot& snap,
                               const std::string& name) {
    return snap.counter(name);
  }

  static Result<core::DdDgms> BuildSample(
      core::RobustnessOptions robustness = {}) {
    discri::CohortOptions opt;
    opt.num_patients = 60;
    opt.seed = 20130408;
    auto raw = discri::GenerateCohort(opt);
    if (!raw.ok()) return raw.status();
    return core::DdDgms::Build(std::move(raw).value(),
                               discri::MakeDiscriPipeline(),
                               discri::MakeDiscriSchemaDef(),
                               std::move(robustness));
  }
};

TEST_F(ObservabilityTest, BuildEmitsRowCountersAndLatencies) {
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.core.rebuilds"), 1u);
  EXPECT_EQ(CounterValue(snap, "ddgms.etl.runs"), 1u);
  EXPECT_GT(CounterValue(snap, "ddgms.etl.rows_in"), 0u);
  EXPECT_GT(CounterValue(snap, "ddgms.etl.rows_out"), 0u);
  EXPECT_GT(CounterValue(snap, "ddgms.etl.steps_run"), 0u);
  EXPECT_EQ(CounterValue(snap, "ddgms.warehouse.builds"), 1u);
  EXPECT_GT(CounterValue(snap, "ddgms.warehouse.fact_rows_built"), 0u);
  EXPECT_GT(CounterValue(snap, "ddgms.warehouse.surrogate_keys_allocated"),
            0u);

  const auto* rebuild_hist =
      snap.histogram("ddgms.core.rebuild_latency_us");
  ASSERT_NE(rebuild_hist, nullptr);
  EXPECT_EQ(rebuild_hist->count, 1u);
  const auto* step_hist = snap.histogram("ddgms.etl.step_latency_us");
  ASSERT_NE(step_hist, nullptr);
  EXPECT_GT(step_hist->count, 0u);
}

TEST_F(ObservabilityTest, BuildEmitsExpectedSpanTree) {
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* rebuild = nullptr;
  const SpanRecord* etl_run = nullptr;
  const SpanRecord* wh_build = nullptr;
  const SpanRecord* integrity = nullptr;
  size_t etl_steps = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "core.rebuild") rebuild = &s;
    if (s.name == "etl.pipeline.run") etl_run = &s;
    if (s.name == "warehouse.build") wh_build = &s;
    if (s.name == "warehouse.integrity_check") integrity = &s;
    if (s.name == "etl.step") ++etl_steps;
  }
  ASSERT_NE(rebuild, nullptr);
  ASSERT_NE(etl_run, nullptr);
  ASSERT_NE(wh_build, nullptr);
  ASSERT_NE(integrity, nullptr);
  EXPECT_GT(etl_steps, 0u);
  EXPECT_EQ(rebuild->parent_id, 0u);
  EXPECT_EQ(etl_run->parent_id, rebuild->id);
  EXPECT_EQ(wh_build->parent_id, rebuild->id);
  EXPECT_EQ(integrity->parent_id, wh_build->id);
}

TEST_F(ObservabilityTest, MdxQueryEmitsProfileAndMetrics) {
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  auto result = dgms->QueryMdx(
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
      "{ [PersonalInformation].[AgeBand].Members } ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Profile is populated even without the registries (stage list plus
  // query shape), and ToString renders every stage.
  const mdx::MdxProfile& profile = result->profile;
  ASSERT_EQ(profile.stages.size(), 3u);
  EXPECT_EQ(profile.stages[0].name, "parse");
  EXPECT_EQ(profile.stages[1].name, "compile");
  EXPECT_EQ(profile.stages[2].name, "execute");
  EXPECT_GT(profile.total_micros, 0.0);
  EXPECT_EQ(profile.axes, 2u);
  EXPECT_GT(profile.fact_rows, 0u);
  EXPECT_GT(profile.cells, 0u);
  std::string rendered = profile.ToString();
  EXPECT_NE(rendered.find("parse"), std::string::npos);
  EXPECT_NE(rendered.find("execute"), std::string::npos);
  EXPECT_NE(rendered.find("total"), std::string::npos);

  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.mdx.queries"), 1u);
  EXPECT_EQ(CounterValue(snap, "ddgms.olap.queries"), 1u);
  EXPECT_GT(CounterValue(snap, "ddgms.olap.cells_materialized"), 0u);
  EXPECT_GT(CounterValue(snap, "ddgms.olap.facts_scanned"), 0u);

  // The MDX span tree: mdx.execute wrapping olap.cube.execute.
  std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* mdx_exec = nullptr;
  const SpanRecord* cube_exec = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "mdx.execute") mdx_exec = &s;
    if (s.name == "olap.cube.execute") cube_exec = &s;
  }
  ASSERT_NE(mdx_exec, nullptr);
  ASSERT_NE(cube_exec, nullptr);
  EXPECT_EQ(cube_exec->parent_id, mdx_exec->id);
}

TEST_F(ObservabilityTest, ProfileIsPopulatedWithoutRegistries) {
  MetricsRegistry::Disable();
  TraceCollector::Disable();
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
  auto result = dgms->QueryMdx(
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile.stages.size(), 3u);
  EXPECT_GT(result->profile.fact_rows, 0u);
  // Nothing leaked into the disabled registries. Earlier tests in the
  // same process may have registered names, so assert on values: the
  // fixture reset everything to zero and the disabled run must not
  // have mutated anything.
  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  for (const auto& c : snap.counters) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_EQ(h.count, 0u) << h.name;
  }
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
}

TEST_F(ObservabilityTest, OlapOpsCountPerOperation) {
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  olap::CubeQuery query;
  query.axes.push_back(
      olap::AxisSpec{"PersonalInformation", "AgeBand", {}});
  query.axes.push_back(
      olap::AxisSpec{"PersonalInformation", "Gender", {}});
  query.measures.push_back(AggSpec{AggFn::kCount, "", "count"});
  auto cube = dgms->Query(query);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();

  ASSERT_TRUE(cube->Slice("PersonalInformation", "Gender",
                          Value::Str("F"))
                  .ok());
  ASSERT_TRUE(cube->RollUp(1).ok());

  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.olap.ops:slice"), 1u);
  EXPECT_EQ(CounterValue(snap, "ddgms.olap.ops:rollup"), 1u);
  // Base query + slice + rollup each ran the engine.
  EXPECT_EQ(CounterValue(snap, "ddgms.olap.queries"), 3u);
}

TEST_F(ObservabilityTest, QuarantineCountersPerStage) {
  // Two rows carry an unparseable Age. Lenient type inference votes by
  // majority, so Age stays numeric and the bad rows are quarantined
  // during ingestion typing.
  const char kCorrupt[] =
      "PatientId,VisitDate,Age,Gender,FBG\n"
      "P1,2003-01-01,50,F,5.0\n"
      "P2,2003-02-01,not-a-number,M,6.5\n"
      "P3,2003-03-01,47,F,7.2\n"
      "P4,2003-04-01,??,M,5.9\n"
      "P5,2003-05-01,61,F,6.1\n"
      "P6,2003-06-01,39,M,4.8\n";
  QuarantineReport quarantine;
  CsvReadOptions options;
  options.error_mode = ErrorMode::kLenient;
  options.quarantine = &quarantine;
  auto table = Table::FromCsv(kCorrupt, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 4u);

  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.quarantine.rows"), 2u);
  EXPECT_EQ(CounterValue(snap, "ddgms.quarantine.rows:csv-ingest"), 2u);
}

TEST_F(ObservabilityTest, RetryAndFaultCountersFromInjectedFailures) {
  MemoryStore inner;
  ASSERT_TRUE(inner
                  .Store("extract.csv",
                         "PatientId,VisitDate,Age,Gender,FBG\n"
                         "P1,2003-01-01,50,F,5.0\n")
                  .ok());
  ScopedFault fault("store.fetch", [] {
    FaultPlan plan;
    plan.code = StatusCode::kDataLoss;
    plan.fail_first = 2;
    return plan;
  }());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 0.0;
  RetryStats stats;
  auto loaded = LoadTableFromStore(&inner, "extract.csv",
                                   CsvReadOptions{}, policy, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(stats.attempts, 3);

  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.faults.injected"), 2u);
  EXPECT_EQ(CounterValue(snap, "ddgms.faults.injected:store.fetch"), 2u);
  EXPECT_GE(CounterValue(snap, "ddgms.faults.hits"), 3u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.runs"), 1u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.attempts"), 3u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.transient_retries"), 2u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.attempts:store.fetch"), 3u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.exhausted"), 0u);
}

TEST_F(ObservabilityTest, ExhaustedRetryCounts) {
  MemoryStore inner;  // resource never stored -> NotFound
  ScopedFault fault("store.fetch", [] {
    FaultPlan plan;
    plan.code = StatusCode::kDataLoss;
    plan.fail_first = 100;  // never recovers
    return plan;
  }());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;
  auto loaded = LoadTableFromStore(&inner, "extract.csv",
                                   CsvReadOptions{}, policy, nullptr);
  EXPECT_FALSE(loaded.ok());
  MetricsSnapshot snap = core::DdDgms::MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.exhausted"), 1u);
  EXPECT_EQ(CounterValue(snap, "ddgms.retry.attempts"), 3u);
}

}  // namespace
}  // namespace ddgms
