// Unit tests for predicates, aggregates and the OLTP TableQuery engine.

#include <gtest/gtest.h>

#include <cmath>

#include "table/aggregate.h"
#include "table/predicate.h"
#include "table/query.h"
#include "table/table.h"

namespace ddgms {
namespace {

Table MakePatients() {
  auto schema = Schema::Make({{"Id", DataType::kInt64},
                              {"Gender", DataType::kString},
                              {"Age", DataType::kInt64},
                              {"FBG", DataType::kDouble},
                              {"Diabetes", DataType::kString}});
  Table t(std::move(schema).value());
  struct RowSpec {
    int64_t id;
    const char* gender;
    int64_t age;
    double fbg;
    const char* diabetes;
  };
  const RowSpec rows[] = {
      {1, "F", 45, 5.0, "No"},  {2, "M", 52, 5.4, "No"},
      {3, "F", 61, 6.3, "No"},  {4, "M", 66, 7.8, "Yes"},
      {5, "F", 70, 8.4, "Yes"}, {6, "M", 74, 9.0, "Yes"},
      {7, "F", 77, 5.2, "No"},  {8, "F", 81, 7.2, "Yes"},
  };
  for (const RowSpec& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Int(r.id), Value::Str(r.gender),
                             Value::Int(r.age), Value::Real(r.fbg),
                             Value::Str(r.diabetes)})
                    .ok());
  }
  // One row with nulls.
  EXPECT_TRUE(t.AppendRow({Value::Int(9), Value::Str("M"), Value::Null(),
                           Value::Null(), Value::Str("No")})
                  .ok());
  return t;
}

// ------------------------------------------------------------ predicates

TEST(PredicateTest, ComparisonOperators) {
  Table t = MakePatients();
  EXPECT_EQ(t.MatchingRows([p = Eq("Gender", Value::Str("F"))](
                               const Table& tt, size_t i) {
              return p->Matches(tt, i);
            }).size(),
            5u);
  auto count = [&](PredicatePtr p) {
    return t.MatchingRows([&](const Table& tt, size_t i) {
              return p->Matches(tt, i);
            }).size();
  };
  EXPECT_EQ(count(Ne("Gender", Value::Str("F"))), 4u);
  EXPECT_EQ(count(Lt("Age", Value::Int(61))), 2u);
  EXPECT_EQ(count(Le("Age", Value::Int(61))), 3u);
  EXPECT_EQ(count(Gt("Age", Value::Int(74))), 2u);
  EXPECT_EQ(count(Ge("Age", Value::Int(74))), 3u);
}

TEST(PredicateTest, NullCellsFailComparisons) {
  Table t = MakePatients();
  auto p = Ge("Age", Value::Int(0));
  // Row 8 (id 9) has null Age: excluded.
  size_t matches = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (p->Matches(t, i)) ++matches;
  }
  EXPECT_EQ(matches, 8u);
}

TEST(PredicateTest, InBetweenNull) {
  Table t = MakePatients();
  auto count = [&](PredicatePtr p) {
    size_t n = 0;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      if (p->Matches(t, i)) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(In("Id", {Value::Int(1), Value::Int(5)})), 2u);
  EXPECT_EQ(count(Between("Age", Value::Int(60), Value::Int(75))), 4u);
  EXPECT_EQ(count(IsNull("FBG")), 1u);
  EXPECT_EQ(count(NotNull("FBG")), 8u);
}

TEST(PredicateTest, LogicCombinators) {
  Table t = MakePatients();
  auto p = And(Eq("Diabetes", Value::Str("Yes")),
               Eq("Gender", Value::Str("F")));
  size_t n = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (p->Matches(t, i)) ++n;
  }
  EXPECT_EQ(n, 2u);

  auto q = Or(Lt("Age", Value::Int(50)), Gt("Age", Value::Int(80)));
  n = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (q->Matches(t, i)) ++n;
  }
  EXPECT_EQ(n, 2u);

  auto r = Not(Eq("Gender", Value::Str("F")));
  n = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (r->Matches(t, i)) ++n;
  }
  EXPECT_EQ(n, 4u);
}

TEST(PredicateTest, ValidateCatchesUnknownColumn) {
  Table t = MakePatients();
  EXPECT_TRUE(Eq("Nope", Value::Int(1))->Validate(t).IsNotFound());
  EXPECT_TRUE(And(Eq("Id", Value::Int(1)), IsNull("Nope"))
                  ->Validate(t)
                  .IsNotFound());
  EXPECT_TRUE(TruePredicate()->Validate(t).ok());
}

TEST(PredicateTest, ToStringReadable) {
  EXPECT_EQ(Eq("A", Value::Int(1))->ToString(), "A == 1");
  EXPECT_EQ(Between("A", Value::Int(1), Value::Int(2))->ToString(),
            "A BETWEEN 1 AND 2");
  EXPECT_EQ(Not(IsNull("A"))->ToString(), "NOT A IS NULL");
}

// ------------------------------------------------------------ aggregates

TEST(AggregateTest, NamesRoundTrip) {
  EXPECT_STREQ(AggFnName(AggFn::kAvg), "avg");
  EXPECT_EQ(*AggFnFromName("AVG"), AggFn::kAvg);
  EXPECT_EQ(*AggFnFromName("stdev"), AggFn::kStdDev);
  EXPECT_EQ(*AggFnFromName("mean"), AggFn::kAvg);
  EXPECT_FALSE(AggFnFromName("nope").ok());
}

TEST(AggregateTest, AccumulatorBasics) {
  Accumulator count(AggFn::kCount);
  Accumulator sum(AggFn::kSum);
  Accumulator avg(AggFn::kAvg);
  Accumulator min(AggFn::kMin);
  Accumulator max(AggFn::kMax);
  Accumulator stddev(AggFn::kStdDev);
  Accumulator distinct(AggFn::kCountDistinct);
  for (double v : {2.0, 4.0, 4.0, 6.0}) {
    Value val = Value::Real(v);
    count.Add(val);
    sum.Add(val);
    avg.Add(val);
    min.Add(val);
    max.Add(val);
    stddev.Add(val);
    distinct.Add(val);
  }
  count.Add(Value::Null());
  EXPECT_EQ(count.Finish(), Value::Int(5));
  EXPECT_EQ(sum.Finish(), Value::Real(16.0));
  EXPECT_EQ(avg.Finish(), Value::Real(4.0));
  EXPECT_EQ(min.Finish(), Value::Real(2.0));
  EXPECT_EQ(max.Finish(), Value::Real(6.0));
  EXPECT_NEAR(stddev.Finish().double_value(), std::sqrt(2.0), 1e-9);
  EXPECT_EQ(distinct.Finish(), Value::Int(3));
}

TEST(AggregateTest, EmptyGroupSemantics) {
  Accumulator avg(AggFn::kAvg);
  EXPECT_TRUE(avg.Finish().is_null());
  Accumulator count(AggFn::kCount);
  EXPECT_EQ(count.Finish(), Value::Int(0));
  Accumulator min(AggFn::kMin);
  EXPECT_TRUE(min.Finish().is_null());
}

TEST(AggregateTest, SpecOutputName) {
  EXPECT_EQ((AggSpec{AggFn::kCount, "", ""}).OutputName(), "count(*)");
  EXPECT_EQ((AggSpec{AggFn::kAvg, "FBG", ""}).OutputName(), "avg(FBG)");
  EXPECT_EQ((AggSpec{AggFn::kAvg, "FBG", "mean_fbg"}).OutputName(),
            "mean_fbg");
}

// ------------------------------------------------------------ TableQuery

TEST(TableQueryTest, WhereSelectOrderLimit) {
  Table t = MakePatients();
  auto result = TableQuery(&t)
                    .Where(Eq("Diabetes", Value::Str("Yes")))
                    .Select({"Id", "Age"})
                    .OrderBy("Age", /*ascending=*/false)
                    .Limit(2)
                    .Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->num_columns(), 2u);
  EXPECT_EQ(*result->GetCell(0, "Id"), Value::Int(8));  // age 81
  EXPECT_EQ(*result->GetCell(1, "Id"), Value::Int(6));  // age 74
}

TEST(TableQueryTest, GroupByWithAggregates) {
  Table t = MakePatients();
  auto result =
      TableQuery(&t)
          .GroupBy({"Diabetes"})
          .Aggregate({{AggFn::kCount, "", "n"},
                      {AggFn::kAvg, "FBG", "mean_fbg"}})
          .OrderBy("Diabetes")
          .Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(*result->GetCell(0, "Diabetes"), Value::Str("No"));
  EXPECT_EQ(*result->GetCell(0, "n"), Value::Int(5));
  double mean_no = (*result->GetCell(0, "mean_fbg")).double_value();
  EXPECT_NEAR(mean_no, (5.0 + 5.4 + 6.3 + 5.2) / 4.0, 1e-9);
  EXPECT_EQ(*result->GetCell(1, "n"), Value::Int(4));
}

TEST(TableQueryTest, GlobalAggregationWithoutGroupBy) {
  Table t = MakePatients();
  auto result = TableQuery(&t)
                    .Aggregate({{AggFn::kMax, "Age", "oldest"}})
                    .Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(*result->GetCell(0, "oldest"), Value::Int(81));
}

TEST(TableQueryTest, GroupByDefaultCount) {
  Table t = MakePatients();
  auto result = TableQuery(&t).GroupBy({"Gender"}).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_TRUE(result->schema().HasField("count"));
}

TEST(TableQueryTest, NullGroupKeyFormsItsOwnGroup) {
  Table t = MakePatients();
  auto result = TableQuery(&t).GroupBy({"Age"}).Run();
  ASSERT_TRUE(result.ok());
  // 8 distinct ages + 1 null group.
  EXPECT_EQ(result->num_rows(), 9u);
}

TEST(TableQueryTest, SelectWithAggregateIsError) {
  Table t = MakePatients();
  auto result = TableQuery(&t)
                    .GroupBy({"Gender"})
                    .Select({"Id"})
                    .Run();
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TableQueryTest, UnknownColumnsFail) {
  Table t = MakePatients();
  EXPECT_TRUE(TableQuery(&t)
                  .Where(Eq("Nope", Value::Int(1)))
                  .Run()
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      TableQuery(&t).GroupBy({"Nope"}).Run().status().IsNotFound());
  EXPECT_TRUE(TableQuery(&t)
                  .Aggregate({{AggFn::kAvg, "Nope", ""}})
                  .Run()
                  .status()
                  .IsNotFound());
}

TEST(TableQueryTest, AggregateWithoutColumnRequiresCount) {
  Table t = MakePatients();
  EXPECT_TRUE(TableQuery(&t)
                  .Aggregate({{AggFn::kAvg, "", ""}})
                  .Run()
                  .status()
                  .IsInvalidArgument());
}

// Property sweep: group-by counts partition the filtered rows for any
// grouping column.
class GroupByPartitionTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GroupByPartitionTest, CountsSumToTotal) {
  Table t = MakePatients();
  auto result = TableQuery(&t)
                    .GroupBy({GetParam()})
                    .Aggregate({{AggFn::kCount, "", "n"}})
                    .Run();
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  const ColumnVector* n = *result->ColumnByName("n");
  for (size_t i = 0; i < n->size(); ++i) total += n->IntAt(i);
  EXPECT_EQ(total, static_cast<int64_t>(t.num_rows()));
}

INSTANTIATE_TEST_SUITE_P(AllColumns, GroupByPartitionTest,
                         ::testing::Values("Gender", "Diabetes", "Age",
                                           "FBG", "Id"));

}  // namespace
}  // namespace ddgms
