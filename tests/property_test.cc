// Property-based tests: randomized tables and queries checked against
// structural invariants — CSV round-trips, sort/filter laws, warehouse
// vs. flat-query equivalence on random multivariate queries, and
// discretiser partition laws.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/baseline.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "etl/discretize.h"
#include "table/sql.h"
#include "table/table.h"

namespace ddgms {
namespace {

// ---------------------------------------------------------- random data

Table RandomTable(Rng* rng, size_t rows) {
  auto schema = Schema::Make({{"I", DataType::kInt64},
                              {"D", DataType::kDouble},
                              {"S", DataType::kString},
                              {"B", DataType::kBool},
                              {"T", DataType::kDate}})
                    .value();
  Table t(std::move(schema));
  const char* words[] = {"alpha", "beta", "gamma", "delta", ""};
  for (size_t i = 0; i < rows; ++i) {
    auto maybe_null = [&](Value v) {
      return rng->Bernoulli(0.12) ? Value::Null() : v;
    };
    Row row;
    row.push_back(maybe_null(Value::Int(rng->UniformInt(-50, 50))));
    row.push_back(maybe_null(Value::Real(rng->Gaussian(0, 10))));
    row.push_back(maybe_null(Value::Str(
        words[rng->UniformInt(0, 3)])));  // skip "" (null round-trip)
    row.push_back(maybe_null(Value::Bool(rng->Bernoulli(0.5))));
    row.push_back(maybe_null(Value::FromDate(
        Date(static_cast<int32_t>(rng->UniformInt(10000, 20000))))));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

class RandomTableTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTableTest, CsvRoundTripPreservesEverything) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 60);
  auto back = Table::FromCsv(t.ToCsv());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->schema().field(c).type, t.schema().field(c).type)
        << t.schema().field(c).name;
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      Value a = t.column(c).GetValue(r);
      Value b = back->column(c).GetValue(r);
      if (a.type() == DataType::kDouble && !a.is_null() && !b.is_null()) {
        EXPECT_NEAR(a.double_value(), b.double_value(),
                    1e-5 * std::max(1.0, std::fabs(a.double_value())));
      } else {
        EXPECT_TRUE(a.Equals(b))
            << "r" << r << "c" << c << ": " << a.ToString() << " vs "
            << b.ToString();
      }
    }
  }
}

TEST_P(RandomTableTest, SortIsOrderedPermutation) {
  Rng rng(GetParam() + 1000);
  Table t = RandomTable(&rng, 80);
  auto sorted = t.SortBy({"D", "I"});
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->num_rows(), t.num_rows());
  // Ordered by (D, I) with Value semantics (nulls first).
  const ColumnVector& d = *sorted->ColumnByName("D").value();
  const ColumnVector& i = *sorted->ColumnByName("I").value();
  for (size_t r = 1; r < sorted->num_rows(); ++r) {
    int c = d.GetValue(r - 1).Compare(d.GetValue(r));
    EXPECT_LE(c, 0);
    if (c == 0) {
      EXPECT_LE(i.GetValue(r - 1).Compare(i.GetValue(r)), 0);
    }
  }
  // Permutation: multiset of I values preserved.
  std::vector<std::string> before, after;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    before.push_back(t.column(0).GetValue(r).ToString());
    after.push_back(sorted->column(0).GetValue(r).ToString());
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST_P(RandomTableTest, FilterPartitionsRows) {
  Rng rng(GetParam() + 2000);
  Table t = RandomTable(&rng, 70);
  auto pred = [](const Table& tt, size_t r) {
    return !tt.column(0).IsNull(r) && tt.column(0).IntAt(r) >= 0;
  };
  Table yes = t.Filter(pred);
  Table no = t.Filter([&](const Table& tt, size_t r) {
    return !pred(tt, r);
  });
  EXPECT_EQ(yes.num_rows() + no.num_rows(), t.num_rows());
}

TEST_P(RandomTableTest, SqlCountMatchesManualFilter) {
  Rng rng(GetParam() + 3000);
  Table t = RandomTable(&rng, 90);
  SqlEngine engine;
  engine.RegisterTable("t", &t);
  auto result = engine.Execute(
      "SELECT count(*) AS n FROM t WHERE I >= 0 AND B = TRUE");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t manual = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (!t.column(0).IsNull(r) && t.column(0).IntAt(r) >= 0 &&
        !t.column(3).IsNull(r) && t.column(3).BoolAt(r)) {
      ++manual;
    }
  }
  EXPECT_EQ(*result->GetCell(0, "n"),
            Value::Int(static_cast<int64_t>(manual)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------- random discretiser properties

class RandomSchemeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemeTest, BandsPartitionData) {
  Rng rng(GetParam());
  std::vector<double> data;
  std::vector<std::string> labels;
  size_t n = 100 + static_cast<size_t>(rng.UniformInt(0, 300));
  for (size_t i = 0; i < n; ++i) {
    data.push_back(rng.Gaussian(rng.Uniform(-5, 5), rng.Uniform(1, 10)));
    labels.push_back(rng.Bernoulli(0.4) ? "a" : "b");
  }
  size_t bins = static_cast<size_t>(rng.UniformInt(2, 7));
  etl::DiscretizeOptions opt;
  opt.max_bins = bins;
  std::vector<Result<etl::DiscretisationScheme>> schemes;
  schemes.push_back(etl::EqualWidthScheme("x", data, bins));
  schemes.push_back(etl::EqualFrequencyScheme("x", data, bins));
  schemes.push_back(etl::EntropyMdlScheme("x", data, labels, opt));
  schemes.push_back(etl::ChiMergeScheme("x", data, labels, opt));
  for (const auto& scheme : schemes) {
    ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
    std::vector<size_t> counts(scheme->num_bins(), 0);
    for (double v : data) counts[scheme->BinIndex(v)]++;
    size_t total = 0;
    for (size_t c : counts) total += c;
    EXPECT_EQ(total, n);
    // Quality evaluation never fails on valid data.
    EXPECT_TRUE(etl::EvaluateScheme(*scheme, data, labels).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemeTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------- randomized warehouse/baseline equivalence

class RandomQueryEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    discri::CohortOptions opt;
    opt.num_patients = 220;
    opt.seed = 404;
    auto raw = discri::GenerateCohort(opt);
    ASSERT_TRUE(raw.ok());
    auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                    discri::MakeDiscriPipeline(),
                                    discri::MakeDiscriSchemaDef());
    ASSERT_TRUE(dgms.ok());
    dgms_ = new core::DdDgms(std::move(dgms).value());
  }
  static void TearDownTestSuite() {
    delete dgms_;
    dgms_ = nullptr;
  }
  static core::DdDgms* dgms_;
};

core::DdDgms* RandomQueryEquivalenceTest::dgms_ = nullptr;

TEST_P(RandomQueryEquivalenceTest, WarehouseEqualsFlatQuery) {
  Rng rng(GetParam());
  // Pool of (dimension, attribute) pairs with modest cardinalities.
  const std::pair<const char*, const char*> pool[] = {
      {"PersonalInformation", "Gender"},
      {"PersonalInformation", "AgeBand"},
      {"PersonalInformation", "Smoker"},
      {"PersonalInformation", "Education"},
      {"MedicalCondition", "DiabetesStatus"},
      {"MedicalCondition", "HypertensionStatus"},
      {"MedicalCondition", "EwingCategory"},
      {"FastingBloods", "FBGBand"},
      {"LimbHealth", "AnkleReflexes"},
      {"BloodPressure", "LyingDBPBand"},
      {"ExerciseRoutine", "ExerciseRoutine"},
  };
  const size_t pool_n = std::size(pool);

  for (int trial = 0; trial < 6; ++trial) {
    // Random 1-3 axes, possibly a slicer, random measure mix.
    std::vector<size_t> picks;
    size_t num_axes = static_cast<size_t>(rng.UniformInt(1, 3));
    while (picks.size() < num_axes + 1) {
      size_t p = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool_n) - 1));
      if (std::find(picks.begin(), picks.end(), p) == picks.end()) {
        picks.push_back(p);
      }
    }
    olap::CubeQuery q;
    for (size_t a = 0; a < num_axes; ++a) {
      q.axes.push_back({pool[picks[a]].first, pool[picks[a]].second, {}});
    }
    // Slicer on the remaining pick: a random member of that attribute.
    if (rng.Bernoulli(0.7)) {
      const auto& [dim_name, attr] = pool[picks[num_axes]];
      auto dim = dgms_->warehouse().dimension(dim_name);
      ASSERT_TRUE(dim.ok());
      auto col = (*dim)->table().ColumnByName(attr);
      ASSERT_TRUE(col.ok());
      auto distinct = (*col)->DistinctValues();
      if (!distinct.empty()) {
        Value member = distinct[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(distinct.size()) - 1))];
        q.slicers.push_back({dim_name, attr, {member}});
      }
    }
    q.measures = {{AggFn::kCount, "", "n"}};
    if (rng.Bernoulli(0.5)) {
      q.measures.push_back({AggFn::kAvg, "FBG", "m1"});
    }
    if (rng.Bernoulli(0.3)) {
      q.measures.push_back({AggFn::kMax, "BMI", "m2"});
    }

    auto cube = dgms_->Query(q);
    ASSERT_TRUE(cube.ok()) << q.ToString();
    core::BaselineDgms baseline(&dgms_->transformed());
    auto flat = baseline.Execute(q);
    ASSERT_TRUE(flat.ok()) << q.ToString();

    // Every flat row's aggregates match the cube cell.
    ASSERT_EQ(flat->num_rows(), cube->num_cells()) << q.ToString();
    for (size_t r = 0; r < flat->num_rows(); ++r) {
      std::vector<Value> coord;
      for (size_t a = 0; a < num_axes; ++a) {
        coord.push_back(*flat->GetCell(r, q.axes[a].attribute));
      }
      for (size_t m = 0; m < q.measures.size(); ++m) {
        Value flat_v =
            *flat->GetCell(r, q.measures[m].OutputName());
        Value cube_v = cube->CellValue(coord, m);
        if (flat_v.is_null() || cube_v.is_null()) {
          EXPECT_EQ(flat_v.is_null(), cube_v.is_null()) << q.ToString();
        } else if (flat_v.type() == DataType::kDouble) {
          EXPECT_NEAR(flat_v.double_value(), cube_v.double_value(),
                      1e-9)
              << q.ToString();
        } else {
          EXPECT_TRUE(flat_v.Equals(cube_v)) << q.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryEquivalenceTest,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace ddgms
