// AnomalyScanner tests: robust-z scoring of series extracted with MDX
// from the [Telemetry] warehouse — injected gauge spikes, difference
// mode for cumulative counters, flat/short series guards, the
// end-to-end "injected MDX latency spike is flagged" acceptance path,
// and the scan-thread lifecycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "mdx/executor.h"
#include "server/anomaly.h"
#include "warehouse/telemetry.h"

namespace ddgms {
namespace {

using server::AnomalyFinding;
using server::AnomalyScanner;
using server::AnomalyScannerOptions;
using server::AnomalyTarget;
using warehouse::TelemetrySampler;

/// The series-per-snapshot MDX shape the scanner issues (mirrors the
/// scanner's internal query builder).
std::string SeriesMdx(const std::string& where_tuple) {
  return "SELECT { [Measures].[Value] } ON COLUMNS, "
         "{ [SampleTime].[Snapshot].Members } ON ROWS "
         "FROM [Telemetry] WHERE ( " +
         where_tuple + " )";
}

class AnomalyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
    TraceCollector::Global().Clear();
    TraceCollector::Enable();
    EventLog::Global().Clear();
    EventLog::Enable();
  }
  void TearDown() override {
    mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(0);
    TraceCollector::Disable();
    TraceCollector::Global().Clear();
    EventLog::Disable();
    EventLog::Global().Clear();
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }

  /// Options watching one gauge's level per snapshot.
  static AnomalyScannerOptions GaugeOptions(const std::string& gauge) {
    AnomalyScannerOptions options;
    options.targets.push_back(
        {"t_gauge_spike", "test gauge level jumped",
         SeriesMdx("[Instrument].[Name].[" + gauge +
                   "], [Kind].[Kind].[gauge]"),
         /*difference=*/false});
    return options;
  }

  /// Eight baseline snapshots of `gauge` with mild jitter around 100.
  static void SampleBaseline(TelemetrySampler* sampler,
                             const std::string& gauge) {
    const double levels[] = {100, 102, 98, 101, 99, 103, 97, 100};
    for (double level : levels) {
      DDGMS_METRIC_GAUGE_SET(gauge, level);
      ASSERT_TRUE(sampler->Sample().ok());
    }
  }
};

TEST_F(AnomalyTest, InjectedGaugeSpikeIsFlagged) {
  TelemetrySampler sampler;
  SampleBaseline(&sampler, "t.anomaly.signal");
  AnomalyScanner scanner(&sampler, GaugeOptions("t.anomaly.signal"));

  DDGMS_METRIC_GAUGE_SET("t.anomaly.signal", 1000.0);
  auto found = scanner.ScanOnce();
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  const AnomalyFinding& f = (*found)[0];
  EXPECT_EQ(f.target, "t_gauge_spike");
  EXPECT_DOUBLE_EQ(f.value, 1000.0);
  EXPECT_NEAR(f.median, 100.0, 5.0);
  EXPECT_GT(f.mad, 0.0);
  EXPECT_GE(f.robust_z, 3.5);
  EXPECT_EQ(f.snapshot, sampler.num_samples());

  // Surfaced everywhere: the recent list, /alertz JSON, the flight
  // recorder and the detections counter.
  EXPECT_EQ(scanner.findings().size(), 1u);
  EXPECT_NE(scanner.ToJson().find("t_gauge_spike"), std::string::npos);
  EXPECT_NE(EventLog::Global().ToJsonl().find("anomaly.detected"),
            std::string::npos);
  EXPECT_EQ(scanner.scans(), 1u);
}

TEST_F(AnomalyTest, RecoveredSignalStopsFlagging) {
  TelemetrySampler sampler;
  SampleBaseline(&sampler, "t.anomaly.recover");
  AnomalyScanner scanner(&sampler, GaugeOptions("t.anomaly.recover"));

  DDGMS_METRIC_GAUGE_SET("t.anomaly.recover", 1000.0);
  auto spike = scanner.ScanOnce();
  ASSERT_TRUE(spike.ok());
  ASSERT_EQ(spike->size(), 1u);

  DDGMS_METRIC_GAUGE_SET("t.anomaly.recover", 101.0);
  auto calm = scanner.ScanOnce();
  ASSERT_TRUE(calm.ok());
  EXPECT_TRUE(calm->empty());
  EXPECT_EQ(scanner.findings().size(), 1u);
}

TEST_F(AnomalyTest, FlatSeriesIsNeverAnOutlier) {
  TelemetrySampler sampler;
  for (int i = 0; i < 8; ++i) {
    DDGMS_METRIC_GAUGE_SET("t.anomaly.flat", 42.0);
    ASSERT_TRUE(sampler.Sample().ok());
  }
  AnomalyScanner scanner(&sampler, GaugeOptions("t.anomaly.flat"));
  auto found = scanner.ScanOnce();
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

TEST_F(AnomalyTest, ShortSeriesIsNotScored) {
  TelemetrySampler sampler;
  DDGMS_METRIC_GAUGE_SET("t.anomaly.short", 100.0);
  ASSERT_TRUE(sampler.Sample().ok());
  AnomalyScanner scanner(&sampler, GaugeOptions("t.anomaly.short"));
  DDGMS_METRIC_GAUGE_SET("t.anomaly.short", 1000.0);
  auto found = scanner.ScanOnce();
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

TEST_F(AnomalyTest, DifferenceModeFlagsGrowthSpike) {
  TelemetrySampler sampler;
  Counter& c = MetricsRegistry::Global().GetCounter("t.anomaly.grow");
  const uint64_t steps[] = {9, 11, 10, 12, 8, 10, 11, 9};
  for (uint64_t step : steps) {
    c.Increment(step);
    ASSERT_TRUE(sampler.Sample().ok());
  }
  AnomalyScannerOptions options;
  options.targets.push_back(
      {"t_growth", "test counter growth jumped",
       SeriesMdx("[Instrument].[Name].[t.anomaly.grow], "
                 "[Kind].[Kind].[counter]"),
       /*difference=*/true});
  AnomalyScanner scanner(&sampler, options);

  c.Increment(1000);
  auto found = scanner.ScanOnce();
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].target, "t_growth");
  EXPECT_NEAR((*found)[0].value, 1000.0, 1.0);  // the delta, not the level
  EXPECT_GE((*found)[0].robust_z, 3.5);
}

TEST_F(AnomalyTest, InjectedMdxLatencySpikeIsFlaggedViaDefaultTargets) {
  discri::CohortOptions opt;
  opt.num_patients = 40;
  opt.seed = 20130408;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());

  const std::string query =
      "SELECT { [Measures].[Count] } ON COLUMNS "
      "FROM [MedicalMeasures]";
  TelemetrySampler& sampler = dgms->telemetry();
  // Pin the baseline at ~2ms per query so scheduler jitter on a loaded
  // test machine cannot inflate the series MAD enough to mask the spike.
  mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(2000);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dgms->QueryMdx(query).ok());
    ASSERT_TRUE(sampler.Sample().ok());
  }

  // A 300ms injected execute delay dwarfs the ~2ms baseline spread of
  // the avg mdx.execute span duration per snapshot.
  mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(300000);
  ASSERT_TRUE(dgms->QueryMdx(query).ok());
  mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(0);

  AnomalyScanner scanner(&sampler);  // stock targets
  auto found = scanner.ScanOnce();
  ASSERT_TRUE(found.ok());
  bool latency_flagged = false;
  for (const AnomalyFinding& f : *found) {
    if (f.target == "mdx_latency_spike") {
      latency_flagged = true;
      EXPECT_GE(f.value, 300000.0);
      EXPECT_GE(f.robust_z, 3.5);
    }
  }
  EXPECT_TRUE(latency_flagged) << scanner.ToJson();
}

TEST_F(AnomalyTest, ScanThreadLifecycle) {
  TelemetrySampler sampler;
  AnomalyScannerOptions options = GaugeOptions("t.anomaly.thread");
  options.period_ms = 5;
  AnomalyScanner scanner(&sampler, options);
  EXPECT_FALSE(scanner.running());
  ASSERT_TRUE(scanner.Start().ok());
  EXPECT_TRUE(scanner.running());
  EXPECT_FALSE(scanner.Start().ok());  // already running
  ASSERT_TRUE(scanner.Stop().ok());
  EXPECT_FALSE(scanner.running());
  EXPECT_FALSE(scanner.Stop().ok());  // not running
}

}  // namespace
}  // namespace ddgms
