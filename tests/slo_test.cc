// SLO engine tests: definition validation, multi-window burn-rate
// math for all three kinds, the ok → warning → firing → resolved → ok
// state machine driven deterministically through EvaluateAt, transition
// events in the flight recorder, ddgms.slo.* instrumentation, and the
// evaluator thread lifecycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/window.h"

namespace ddgms {
namespace {

constexpr int64_t kT0 = 1000000000;
constexpr int64_t kSecond = 1000000;

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
    EventLog::Global().Clear();
    EventLog::Enable();
    WindowRegistry::Global().ResetForTesting();
    WindowRegistry::Enable();
    SloEngine::Global().ResetForTesting();
    SloEngine::Enable();
  }
  void TearDown() override {
    SloEngine::Disable();
    SloEngine::Global().ResetForTesting();
    WindowRegistry::Disable();
    WindowRegistry::Global().ResetForTesting();
    EventLog::Disable();
    EventLog::Global().Clear();
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }

  /// A latency SLO over a fresh histogram: 99% of observations at or
  /// below 250ms, fast/slow windows 60s/300s, firing at burn 10.
  static SloDef LatencyDef(const std::string& name,
                           const std::string& histogram) {
    MetricsRegistry::Global().GetHistogram(histogram,
                                           {100000.0, 250000.0, 1000000.0});
    SloDef def;
    def.name = name;
    def.kind = SloKind::kLatency;
    def.latency_histogram = histogram;
    def.latency_target_us = 250000;
    def.objective = 0.99;
    return def;
  }

  static SloStatus StatusOf(const std::string& name) {
    for (const SloStatus& s : SloEngine::Global().Snapshot()) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "slo '" << name << "' not registered";
    return SloStatus{};
  }

  static bool LogContains(const std::string& event) {
    return EventLog::Global().ToJsonl().find("\"" + event + "\"") !=
           std::string::npos;
  }
};

TEST_F(SloTest, RegisterRejectsMalformedDefinitions) {
  SloEngine& engine = SloEngine::Global();
  SloDef def = LatencyDef("t_lat", "t.slo.validate");

  SloDef unnamed = def;
  unnamed.name.clear();
  EXPECT_FALSE(engine.Register(unnamed).ok());

  SloDef bad_windows = def;
  bad_windows.fast_window_seconds = 300;
  bad_windows.slow_window_seconds = 60;
  EXPECT_FALSE(engine.Register(bad_windows).ok());

  SloDef bad_burns = def;
  bad_burns.warning_burn_rate = 20.0;  // above firing_burn_rate
  EXPECT_FALSE(engine.Register(bad_burns).ok());

  SloDef no_histogram = def;
  no_histogram.latency_histogram.clear();
  EXPECT_FALSE(engine.Register(no_histogram).ok());

  SloDef bad_objective = def;
  bad_objective.objective = 1.5;
  EXPECT_FALSE(engine.Register(bad_objective).ok());

  SloDef error_rate;
  error_rate.name = "t_err";
  error_rate.kind = SloKind::kErrorRate;
  error_rate.error_counter = "t.slo.err";
  EXPECT_FALSE(engine.Register(error_rate).ok());  // no total counter

  ASSERT_TRUE(engine.Register(def).ok());
  EXPECT_FALSE(engine.Register(def).ok());  // duplicate name
  EXPECT_EQ(engine.slo_count(), 1u);
}

TEST_F(SloTest, LatencySloFiresAndResolvesEndToEnd) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.Register(LatencyDef("t_lat", "t.slo.e2e")).ok());
  engine.EvaluateAt(kT0);
  EXPECT_EQ(StatusOf("t_lat").state, SloState::kOk);

  // Five observations, all beyond the 250ms target: the bad fraction
  // is 1.0 against a 1% error budget, a burn of 100 in both windows.
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.slo.e2e");
  for (int i = 0; i < 5; ++i) h.Observe(400000.0);
  engine.EvaluateAt(kT0 + kSecond);

  SloStatus firing = StatusOf("t_lat");
  EXPECT_EQ(firing.state, SloState::kFiring);
  EXPECT_GE(firing.fast_burn_rate, 10.0);
  EXPECT_GE(firing.slow_burn_rate, 10.0);
  EXPECT_EQ(firing.fast_window_count, 5u);
  EXPECT_EQ(firing.transitions, 1u);
  EXPECT_TRUE(LogContains("slo.firing"));

  // Long after the bad minute left both windows: firing → resolved,
  // then the next healthy evaluation decays resolved → ok.
  engine.EvaluateAt(kT0 + 400 * kSecond);
  EXPECT_EQ(StatusOf("t_lat").state, SloState::kResolved);
  EXPECT_TRUE(LogContains("slo.resolved"));
  engine.EvaluateAt(kT0 + 401 * kSecond);
  EXPECT_EQ(StatusOf("t_lat").state, SloState::kOk);
  EXPECT_EQ(StatusOf("t_lat").transitions, 3u);
}

TEST_F(SloTest, ModerateBurnOnlyWarns) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.Register(LatencyDef("t_warn", "t.slo.warn")).ok());
  engine.EvaluateAt(kT0);

  // 2% of observations bad: burn 2 — at/above the warning threshold
  // (1) but below firing (10).
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.slo.warn");
  for (int i = 0; i < 98; ++i) h.Observe(50000.0);
  for (int i = 0; i < 2; ++i) h.Observe(500000.0);
  engine.EvaluateAt(kT0 + kSecond);

  SloStatus status = StatusOf("t_warn");
  EXPECT_EQ(status.state, SloState::kWarning);
  EXPECT_GE(status.fast_burn_rate, 1.0);
  EXPECT_LT(status.fast_burn_rate, 10.0);
  EXPECT_TRUE(LogContains("slo.warning"));

  // Healthy again: warning drops straight back to ok (no resolved
  // detour — nothing fired).
  engine.EvaluateAt(kT0 + 400 * kSecond);
  EXPECT_EQ(StatusOf("t_warn").state, SloState::kOk);
}

TEST_F(SloTest, ErrorRateSloFires) {
  SloEngine& engine = SloEngine::Global();
  SloDef def;
  def.name = "t_err";
  def.kind = SloKind::kErrorRate;
  def.error_counter = "t.slo.failures";
  def.total_counter = "t.slo.attempts";
  def.objective = 0.99;
  ASSERT_TRUE(engine.Register(def).ok());
  engine.EvaluateAt(kT0);

  MetricsRegistry::Global().GetCounter("t.slo.attempts").Increment(100);
  MetricsRegistry::Global().GetCounter("t.slo.failures").Increment(50);
  engine.EvaluateAt(kT0 + kSecond);

  SloStatus status = StatusOf("t_err");
  EXPECT_EQ(status.state, SloState::kFiring);
  EXPECT_NEAR(status.fast_burn_rate, 50.0, 1.0);
}

TEST_F(SloTest, StallBudgetSloFires) {
  SloEngine& engine = SloEngine::Global();
  SloDef def;
  def.name = "t_stall";
  def.kind = SloKind::kStallBudget;
  def.stall_counter = "t.slo.stalls";
  def.allowed_per_hour = 6.0;
  ASSERT_TRUE(engine.Register(def).ok());
  engine.EvaluateAt(kT0);

  // One stall within a 10s coverage extrapolates to 360/hour — sixty
  // times the budget of 6/hour.
  MetricsRegistry::Global().GetCounter("t.slo.stalls").Increment(1);
  engine.EvaluateAt(kT0 + 10 * kSecond);
  EXPECT_EQ(StatusOf("t_stall").state, SloState::kFiring);
}

TEST_F(SloTest, DisabledEngineDoesNotEvaluate) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.Register(LatencyDef("t_off", "t.slo.off")).ok());
  SloEngine::Disable();
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.slo.off");
  for (int i = 0; i < 5; ++i) h.Observe(400000.0);
  engine.EvaluateAt(kT0);
  engine.EvaluateAt(kT0 + kSecond);
  SloEngine::Enable();
  EXPECT_EQ(StatusOf("t_off").state, SloState::kOk);
  EXPECT_EQ(StatusOf("t_off").transitions, 0u);
}

TEST_F(SloTest, TransitionsBumpCountersAndGauges) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.Register(LatencyDef("t_gauge", "t.slo.gauge")).ok());
  engine.EvaluateAt(kT0);
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.slo.gauge");
  for (int i = 0; i < 5; ++i) h.Observe(400000.0);
  engine.EvaluateAt(kT0 + kSecond);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_transitions = false;
  bool saw_firing_total = false;
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    if (c.name == "ddgms.slo.transitions" && c.value >= 1) {
      saw_transitions = true;
    }
    if (c.name == "ddgms.slo.firing_total" && c.value >= 1) {
      saw_firing_total = true;
    }
  }
  EXPECT_TRUE(saw_transitions);
  EXPECT_TRUE(saw_firing_total);

  bool saw_state_gauge = false;
  for (const MetricsSnapshot::GaugeValue& g : snapshot.gauges) {
    if (g.name == "ddgms.slo.state:t_gauge") {
      saw_state_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 2.0);  // SloState::kFiring
    }
  }
  EXPECT_TRUE(saw_state_gauge);
}

TEST_F(SloTest, RegisterDefaultSlosIsIdempotent) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.RegisterDefaultSlos().ok());
  ASSERT_TRUE(engine.RegisterDefaultSlos().ok());
  EXPECT_EQ(engine.slo_count(), 3u);
  const std::string json = engine.ToJson();
  EXPECT_NE(json.find("mdx_latency"), std::string::npos);
  EXPECT_NE(json.find("server_availability"), std::string::npos);
  EXPECT_NE(json.find("query_stalls"), std::string::npos);
}

TEST_F(SloTest, EvaluatorThreadLifecycle) {
  SloEngine& engine = SloEngine::Global();
  ASSERT_TRUE(engine.Register(LatencyDef("t_thread", "t.slo.thread")).ok());
  SloEvaluatorOptions options;
  options.period_ms = 5;
  ASSERT_TRUE(engine.StartEvaluator(options).ok());
  EXPECT_TRUE(engine.evaluator_running());
  EXPECT_FALSE(engine.StartEvaluator(options).ok());  // already running
  ASSERT_TRUE(engine.StopEvaluator().ok());
  EXPECT_FALSE(engine.evaluator_running());
  EXPECT_FALSE(engine.StopEvaluator().ok());  // not running

  SloEvaluatorOptions bad;
  bad.period_ms = 0;
  EXPECT_FALSE(engine.StartEvaluator(bad).ok());
}

}  // namespace
}  // namespace ddgms
