// Sampling-profiler tests: lifecycle guards, capture over a busy loop,
// the collapsed-stack and JSON exports. Linux-only (ITIMER_REAL +
// backtrace); elsewhere Start() returns Unimplemented and the capture
// tests are skipped. Deliberately NOT part of the CI TSan lane: signal
// delivery inside instrumented code is all noise, no signal.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "common/profiler.h"

namespace ddgms {
namespace {

// Spins for `ms` of wall-clock so the interval timer has something to
// interrupt. volatile sink defeats the optimizer without DoNotOptimize.
void BusyLoopMillis(int ms) {
  volatile uint64_t sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 1000; ++i) {
      sink = sink + static_cast<uint64_t>(i) * i;
    }
  }
  (void)sink;
}

bool StartOrSkip(const ProfilerOptions& options) {
  Status status = Profiler::Global().Start(options);
  if (status.IsUnimplemented()) {
    return false;  // non-Linux: nothing to capture
  }
  EXPECT_TRUE(status.ok()) << status.ToString();
  return status.ok();
}

TEST(ProfilerTest, CapturesSamplesDuringBusyLoop) {
  ProfilerOptions options;
  options.hz = 500;  // fast sampling keeps the test short
  if (!StartOrSkip(options)) GTEST_SKIP() << "profiler unimplemented here";
  EXPECT_TRUE(Profiler::Global().running());

  BusyLoopMillis(200);

  ASSERT_TRUE(Profiler::Global().Stop().ok());
  EXPECT_FALSE(Profiler::Global().running());
  // 200ms at 500Hz nominally ~100 samples; demand a loose floor only —
  // CI schedulers starve timers.
  EXPECT_GE(Profiler::Global().samples_captured(), 5u);

  auto dump = Profiler::Global().Dump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->hz, 500);
  EXPECT_EQ(dump->captured, Profiler::Global().samples_captured());
  ASSERT_FALSE(dump->samples.empty());
  for (const ProfileStack& sample : dump->samples) {
    EXPECT_FALSE(sample.frames.empty());
  }

  // Folded-stack lines: "frame;frame;frame <count>".
  const std::string collapsed = dump->ToCollapsed();
  ASSERT_FALSE(collapsed.empty());
  const size_t eol = collapsed.find('\n');
  ASSERT_NE(eol, std::string::npos);
  const std::string line = collapsed.substr(0, eol);
  const size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_GT(std::stoull(line.substr(space + 1)), 0u);

  const std::string json = dump->ToJson();
  EXPECT_NE(json.find("\"hz\":500"), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(dump->Summary().find("samples"), std::string::npos);

  Profiler::Global().Clear();
  EXPECT_EQ(Profiler::Global().samples_captured(), 0u);
}

TEST(ProfilerTest, LifecycleGuards) {
  // Stop without Start, Dump while running, double Start.
  EXPECT_TRUE(Profiler::Global().Stop().IsFailedPrecondition());
  if (!StartOrSkip(ProfilerOptions{})) {
    GTEST_SKIP() << "profiler unimplemented here";
  }
  EXPECT_TRUE(Profiler::Global().Start().IsFailedPrecondition());
  EXPECT_TRUE(Profiler::Global().Dump().status().IsFailedPrecondition());
  EXPECT_TRUE(Profiler::Global().Stop().ok());
  Profiler::Global().Clear();
}

}  // namespace
}  // namespace ddgms
