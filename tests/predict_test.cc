// Unit tests for the prediction layer: Markov trajectory model and
// Gower-distance patient similarity.

#include <gtest/gtest.h>

#include <cmath>

#include "predict/markov.h"
#include "predict/similarity.h"

namespace ddgms::predict {
namespace {

// ----------------------------------------------------------------- Markov

std::vector<std::vector<std::string>> ProgressionSequences() {
  // Disease mostly progresses normal -> pre -> diabetic and sticks.
  return {
      {"normal", "normal", "pre", "diabetic"},
      {"normal", "pre", "pre", "diabetic", "diabetic"},
      {"normal", "normal", "normal"},
      {"pre", "diabetic", "diabetic"},
      {"normal", "pre", "diabetic"},
      {"diabetic", "diabetic", "diabetic"},
  };
}

TEST(MarkovTest, TrainAndPredictNext) {
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(ProgressionSequences()).ok());
  EXPECT_EQ(model.states().size(), 3u);
  // "diabetic" is absorbing in the training data.
  EXPECT_EQ(*model.PredictNext("diabetic"), "diabetic");
  // Unknown state errors.
  EXPECT_TRUE(model.PredictNext("alien").status().IsNotFound());
}

TEST(MarkovTest, TransitionDistributionSumsToOne) {
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(ProgressionSequences()).ok());
  for (const std::string& s : model.states()) {
    auto dist = model.TransitionDistribution(s);
    ASSERT_TRUE(dist.ok());
    double total = 0.0;
    for (const auto& [state, p] : *dist) {
      EXPECT_GT(p, 0.0);  // Laplace smoothing: never zero
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovTest, PredictAfterMultipleSteps) {
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(ProgressionSequences()).ok());
  auto dist = model.PredictAfter("normal", 4);
  ASSERT_TRUE(dist.ok());
  double total = 0.0;
  double p_diabetic = 0.0;
  for (const auto& [state, p] : *dist) {
    total += p;
    if (state == "diabetic") p_diabetic = p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // After several steps most mass should have progressed.
  EXPECT_GT(p_diabetic, 0.4);
  // Zero steps = point mass on the current state.
  auto zero = model.PredictAfter("pre", 0);
  for (const auto& [state, p] : *zero) {
    EXPECT_NEAR(p, state == "pre" ? 1.0 : 0.0, 1e-12);
  }
}

TEST(MarkovTest, SequenceLikelihoodPrefersTypicalPaths) {
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(ProgressionSequences()).ok());
  double typical =
      *model.SequenceLogLikelihood({"normal", "pre", "diabetic"});
  double atypical =
      *model.SequenceLogLikelihood({"diabetic", "normal", "pre"});
  EXPECT_GT(typical, atypical);
  EXPECT_FALSE(model.SequenceLogLikelihood({}).ok());
}

TEST(MarkovTest, TrainFromTable) {
  Table t(Schema::Make({{"P", DataType::kString},
                        {"D", DataType::kDate},
                        {"S", DataType::kString}})
              .value());
  auto add = [&](const char* p, const char* date, const char* s) {
    ASSERT_TRUE(
        t.AppendRow({Value::Str(p),
                     Value::FromDate(Date::FromString(date).value()),
                     Value::Str(s)})
            .ok());
  };
  add("P1", "2011-01-01", "pre");       // out of order on purpose
  add("P1", "2010-01-01", "normal");
  add("P1", "2012-01-01", "diabetic");
  add("P2", "2010-01-01", "normal");
  add("P2", "2011-01-01", "normal");
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.Train(t, "P", "D", "S").ok());
  // P1's ordered path contributes normal->pre.
  auto dist = model.TransitionDistribution("normal");
  ASSERT_TRUE(dist.ok());
  // normal transitions observed: ->pre (P1), ->normal (P2).
  double p_pre = 0.0;
  for (const auto& [s, p] : *dist) {
    if (s == "pre") p_pre = p;
  }
  EXPECT_GT(p_pre, 0.2);
}

TEST(MarkovTest, EvaluateAgainstBaseline) {
  MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(ProgressionSequences()).ok());
  auto report = EvaluateTrajectories(
      model, {{"normal", "pre", "diabetic", "diabetic"},
              {"pre", "diabetic"}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transitions, 4u);
  EXPECT_GE(report->model_accuracy, report->baseline_accuracy);
}

TEST(MarkovTest, UntrainedFails) {
  MarkovTrajectoryModel model;
  EXPECT_TRUE(
      model.PredictNext("x").status().IsFailedPrecondition());
  EXPECT_TRUE(
      model.TrainFromSequences({}).IsInvalidArgument());
}

// ------------------------------------------------------------- similarity

Table MakeReferenceCohort() {
  Table t(Schema::Make({{"Age", DataType::kInt64},
                        {"BMI", DataType::kDouble},
                        {"Gender", DataType::kString},
                        {"Outcome", DataType::kString}})
              .value());
  struct R {
    int64_t age;
    double bmi;
    const char* g;
    const char* y;
  };
  const R rows[] = {
      {45, 22.0, "F", "good"}, {48, 23.5, "F", "good"},
      {50, 24.0, "M", "good"}, {72, 33.0, "M", "poor"},
      {75, 35.0, "F", "poor"}, {78, 31.0, "M", "poor"},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Int(r.age), Value::Real(r.bmi),
                             Value::Str(r.g), Value::Str(r.y)})
                    .ok());
  }
  return t;
}

TEST(SimilarityTest, PredictsByNeighbourhood) {
  Table cohort = MakeReferenceCohort();
  PatientSimilarityPredictor::Options opt;
  opt.k = 3;
  PatientSimilarityPredictor predictor(opt);
  ASSERT_TRUE(
      predictor.Fit(cohort, {"Age", "BMI", "Gender"}, "Outcome").ok());
  EXPECT_EQ(*predictor.Predict(
                {Value::Int(47), Value::Real(23.0), Value::Str("F")}),
            "good");
  EXPECT_EQ(*predictor.Predict(
                {Value::Int(74), Value::Real(34.0), Value::Str("M")}),
            "poor");
}

TEST(SimilarityTest, GowerDistanceProperties) {
  Table cohort = MakeReferenceCohort();
  PatientSimilarityPredictor predictor;
  ASSERT_TRUE(
      predictor.Fit(cohort, {"Age", "BMI", "Gender"}, "Outcome").ok());
  // Identical to row 0 -> distance 0.
  double d0 =
      *predictor.Distance({Value::Int(45), Value::Real(22.0),
                           Value::Str("F")},
                          0);
  EXPECT_NEAR(d0, 0.0, 1e-12);
  // All distances in [0, 1].
  for (size_t i = 0; i < 6; ++i) {
    double d = *predictor.Distance(
        {Value::Int(60), Value::Real(28.0), Value::Str("M")}, i);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(SimilarityTest, NullFeaturesAreSkipped) {
  Table cohort = MakeReferenceCohort();
  PatientSimilarityPredictor predictor;
  ASSERT_TRUE(
      predictor.Fit(cohort, {"Age", "BMI", "Gender"}, "Outcome").ok());
  // Query with only age known still predicts.
  auto pred = predictor.Predict(
      {Value::Int(46), Value::Null(), Value::Null()});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, "good");
  // All-null query is maximally distant everywhere but still answers.
  EXPECT_TRUE(predictor
                  .Predict({Value::Null(), Value::Null(), Value::Null()})
                  .ok());
}

TEST(SimilarityTest, NearestNeighboursSortedByDistance) {
  Table cohort = MakeReferenceCohort();
  PatientSimilarityPredictor predictor;
  ASSERT_TRUE(
      predictor.Fit(cohort, {"Age", "BMI", "Gender"}, "Outcome").ok());
  auto nn = predictor.NearestNeighbours(
      {Value::Int(45), Value::Real(22.0), Value::Str("F")}, 4);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 4u);
  for (size_t i = 1; i < nn->size(); ++i) {
    EXPECT_LE((*nn)[i - 1].distance, (*nn)[i].distance);
  }
  EXPECT_EQ((*nn)[0].row, 0u);
}

TEST(SimilarityTest, Validation) {
  PatientSimilarityPredictor predictor;
  EXPECT_TRUE(predictor.Predict({Value::Int(1)})
                  .status()
                  .IsFailedPrecondition());
  Table cohort = MakeReferenceCohort();
  ASSERT_TRUE(
      predictor.Fit(cohort, {"Age", "BMI", "Gender"}, "Outcome").ok());
  EXPECT_TRUE(predictor.Predict({Value::Int(1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(predictor.Fit(cohort, {"Nope"}, "Outcome").IsNotFound());
}

}  // namespace
}  // namespace ddgms::predict
