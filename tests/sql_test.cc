// Tests for the SQL SELECT dialect over the OLTP table engine.

#include <gtest/gtest.h>

#include "table/sql.h"

namespace ddgms {
namespace {

Table MakePatients() {
  auto schema = Schema::Make({{"Id", DataType::kInt64},
                              {"Gender", DataType::kString},
                              {"Age", DataType::kInt64},
                              {"FBG", DataType::kDouble},
                              {"Visit", DataType::kDate},
                              {"Active", DataType::kBool}});
  Table t(std::move(schema).value());
  struct R {
    int64_t id;
    const char* g;
    int64_t age;
    double fbg;
    const char* date;
    bool active;
  };
  const R rows[] = {
      {1, "F", 45, 5.0, "2010-02-01", true},
      {2, "M", 52, 5.4, "2010-03-01", true},
      {3, "F", 61, 6.3, "2011-01-15", false},
      {4, "M", 66, 7.8, "2011-06-20", true},
      {5, "F", 70, 8.4, "2012-09-09", false},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(
        t.AppendRow({Value::Int(r.id), Value::Str(r.g), Value::Int(r.age),
                     Value::Real(r.fbg),
                     Value::FromDate(Date::FromString(r.date).value()),
                     Value::Bool(r.active)})
            .ok());
  }
  EXPECT_TRUE(t.AppendRow({Value::Int(6), Value::Str("M"), Value::Null(),
                           Value::Null(), Value::Null(),
                           Value::Bool(false)})
                  .ok());
  return t;
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : patients_(MakePatients()) {
    engine_.RegisterTable("patients", &patients_);
  }
  Table patients_;
  SqlEngine engine_;
};

TEST_F(SqlTest, SelectStar) {
  auto result = engine_.Execute("SELECT * FROM patients");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 6u);
  EXPECT_EQ(result->num_columns(), 6u);
}

TEST_F(SqlTest, ProjectionAndWhere) {
  auto result = engine_.Execute(
      "SELECT Id, FBG FROM patients WHERE Gender = 'F' AND Age >= 60");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->num_columns(), 2u);
  EXPECT_EQ(*result->GetCell(0, "Id"), Value::Int(3));
}

TEST_F(SqlTest, OrPrecedenceAndParens) {
  auto no_parens = engine_.Execute(
      "SELECT Id FROM patients WHERE Gender = 'F' OR Gender = 'M' "
      "AND Age > 60");
  ASSERT_TRUE(no_parens.ok());
  // AND binds tighter: F (3 rows) OR (M AND >60) (1 row) = 4.
  EXPECT_EQ(no_parens->num_rows(), 4u);
  auto parens = engine_.Execute(
      "SELECT Id FROM patients WHERE (Gender = 'F' OR Gender = 'M') "
      "AND Age > 60");
  ASSERT_TRUE(parens.ok());
  EXPECT_EQ(parens->num_rows(), 3u);
}

TEST_F(SqlTest, NotBetweenInNull) {
  EXPECT_EQ(engine_.Execute("SELECT Id FROM patients WHERE Age BETWEEN "
                            "50 AND 66")->num_rows(),
            3u);
  EXPECT_EQ(engine_.Execute("SELECT Id FROM patients WHERE Id IN "
                            "(1, 3, 5)")->num_rows(),
            3u);
  EXPECT_EQ(
      engine_.Execute("SELECT Id FROM patients WHERE FBG IS NULL")
          ->num_rows(),
      1u);
  EXPECT_EQ(
      engine_.Execute("SELECT Id FROM patients WHERE FBG IS NOT NULL")
          ->num_rows(),
      5u);
  EXPECT_EQ(engine_.Execute(
                "SELECT Id FROM patients WHERE NOT Gender = 'F'")
                ->num_rows(),
            3u);
}

TEST_F(SqlTest, BoolAndDateLiterals) {
  EXPECT_EQ(engine_.Execute(
                "SELECT Id FROM patients WHERE Active = TRUE")
                ->num_rows(),
            3u);
  auto result = engine_.Execute(
      "SELECT Id FROM patients WHERE Visit >= DATE '2011-01-01'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(SqlTest, GroupByWithAggregates) {
  auto result = engine_.Execute(
      "SELECT Gender, count(*) AS n, avg(FBG) AS mean_fbg "
      "FROM patients GROUP BY Gender ORDER BY Gender");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(*result->GetCell(0, "Gender"), Value::Str("F"));
  EXPECT_EQ(*result->GetCell(0, "n"), Value::Int(3));
  EXPECT_NEAR((*result->GetCell(0, "mean_fbg")).double_value(),
              (5.0 + 6.3 + 8.4) / 3.0, 1e-9);
}

TEST_F(SqlTest, GlobalAggregate) {
  auto result =
      engine_.Execute("SELECT max(Age) AS oldest FROM patients");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->GetCell(0, "oldest"), Value::Int(70));
}

TEST_F(SqlTest, OrderByDescAndLimit) {
  auto result = engine_.Execute(
      "SELECT Id FROM patients WHERE Age IS NOT NULL "
      "ORDER BY Age DESC LIMIT 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(*result->GetCell(0, "Id"), Value::Int(5));
  EXPECT_EQ(*result->GetCell(1, "Id"), Value::Int(4));
}

TEST_F(SqlTest, QuotedIdentifiersAndCaseInsensitiveKeywords) {
  auto result = engine_.Execute(
      "select \"Id\" from patients where \"Gender\" = 'F' limit 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(SqlTest, StringEscapes) {
  Table t(Schema::Make({{"s", DataType::kString}}).value());
  ASSERT_TRUE(t.AppendRow({Value::Str("it's")}).ok());
  SqlEngine engine;
  engine.RegisterTable("q", &t);
  auto result = engine.Execute("SELECT s FROM q WHERE s = 'it''s'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(SqlTest, TypeMismatchNeverMatches) {
  auto result =
      engine_.Execute("SELECT Id FROM patients WHERE Gender = 42");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(SqlTest, Errors) {
  EXPECT_TRUE(engine_.Execute("SELECT").status().IsParseError());
  EXPECT_TRUE(engine_.Execute("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(engine_.Execute("SELECT * FROM patients WHERE")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(engine_.Execute("SELECT Nope FROM patients")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine_.Execute("SELECT * FROM patients GROUP BY Gender")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      engine_.Execute("SELECT Age, count(*) FROM patients GROUP BY "
                      "Gender")
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("SELECT bogus(Age) FROM patients")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("SELECT * FROM patients LIMIT x")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(engine_.Execute("SELECT * FROM patients extra junk")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(engine_.Execute(
                      "SELECT Id FROM patients WHERE Visit >= DATE 42")
                  .status()
                  .IsParseError());
}

TEST_F(SqlTest, SumCountDistinctStddev) {
  auto result = engine_.Execute(
      "SELECT sum(Age) AS total, count_distinct(Gender) AS genders "
      "FROM patients");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result->GetCell(0, "total"),
            Value::Real(45 + 52 + 61 + 66 + 70));
  EXPECT_EQ(*result->GetCell(0, "genders"), Value::Int(2));
}

}  // namespace
}  // namespace ddgms
