// Fault-tolerance tests: the fault-injection registry, Retry with
// exponential backoff, flaky/retrying store connectors, and lenient
// (row-quarantine) loading through ingestion, ETL, the star-schema
// build and the DdDgms facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/faults.h"
#include "common/quarantine.h"
#include "core/dd_dgms.h"
#include "etl/pipeline.h"
#include "table/store.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms {
namespace {

// Every test starts and ends with an inert registry so fault state
// cannot leak between tests (the registry is process-global).
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// A clean extract: header + 4 rows, all parseable.
const char kCleanCsv[] =
    "PatientId,VisitDate,Age,Gender,FBG\n"
    "P1,2003-01-01,50,F,5.0\n"
    "P2,2003-02-01,61,M,6.5\n"
    "P3,2003-03-01,47,F,7.2\n"
    "P4,2003-04-01,58,M,5.9\n";

// The same extract with three corrupted rows: a ragged row (record 3),
// an unparseable Age (record 5), and an unterminated quote at EOF
// (record 7). Today this CSV cannot be loaded at all in strict mode.
const char kCorruptCsv[] =
    "PatientId,VisitDate,Age,Gender,FBG\n"
    "P1,2003-01-01,50,F,5.0\n"
    "P2,2003-02-01,61,M\n"
    "P3,2003-03-01,forty,F,7.2\n"
    "P4,2003-04-01,58,M,5.9\n"
    "P5,2003-05-01,52,F,6.1\n"
    "\"P6,2003-06-01,49,F,5.5\n";

etl::TransformPipeline MakePipeline() {
  etl::TransformPipeline pipeline;
  pipeline.AddCustomStep(etl::DeriveYearStep("VisitDate", "VisitYear"));
  return pipeline;
}

// A transient-outage plan: fail the first `fail_first` hits with
// kDataLoss, then heal.
FaultPlan TransientDataLoss(size_t fail_first) {
  FaultPlan plan;
  plan.code = StatusCode::kDataLoss;
  plan.fail_first = fail_first;
  return plan;
}

warehouse::StarSchemaDef MakeSchemaDef() {
  warehouse::StarSchemaDef def;
  def.fact_name = "Screenings";
  def.measures = {{"FBG", "FBG"}};
  warehouse::DimensionDef patient;
  patient.name = "Patient";
  patient.attributes = {"PatientId", "Gender"};
  def.dimensions = {patient};
  return def;
}

// ------------------------------------------------------------- Retry

TEST_F(FaultsTest, RetryPolicyClassifiesCodes) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetryable(Status::DataLoss("x")));
  EXPECT_TRUE(policy.IsRetryable(Status::Internal("x")));
  EXPECT_FALSE(policy.IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(policy.IsRetryable(Status::ParseError("x")));
  EXPECT_FALSE(policy.IsRetryable(Status::OK()));
}

TEST_F(FaultsTest, RetryPolicyBackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.backoff_factor = 2.0;
  policy.max_delay_ms = 50.0;
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(3), 40.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(4), 50.0);  // capped
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(10), 50.0);
  // Retry 0 and negative are degenerate but must stay within bounds.
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(0), 10.0);
  EXPECT_GE(policy.DelayMsForRetry(1), 0.0);
  // A base above the cap is clamped from the first retry.
  policy.base_delay_ms = 500.0;
  EXPECT_DOUBLE_EQ(policy.DelayMsForRetry(1), 50.0);
}

TEST_F(FaultsTest, JitteredDelayStaysWithinBoundsAndIsDeterministic) {
  RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.backoff_factor = 2.0;
  policy.max_delay_ms = 50.0;
  policy.jitter_fraction = 0.5;

  // No jitter configured -> identical to the pure schedule.
  RetryPolicy plain = policy;
  plain.jitter_fraction = 0.0;
  Rng rng0(7);
  EXPECT_DOUBLE_EQ(plain.JitteredDelayMsForRetry(2, rng0), 20.0);

  // Every draw lands in [delay*(1-j), delay*(1+j)], clamped to the
  // policy's max.
  Rng rng1(7);
  for (int retry = 1; retry <= 6; ++retry) {
    const double pure = policy.DelayMsForRetry(retry);
    const double jittered = policy.JitteredDelayMsForRetry(retry, rng1);
    EXPECT_GE(jittered, pure * 0.5) << "retry " << retry;
    EXPECT_LE(jittered, std::min(pure * 1.5, policy.max_delay_ms))
        << "retry " << retry;
  }

  // Same seed, same sequence: retry storms are reproducible in tests.
  Rng a(11);
  Rng b(11);
  for (int retry = 1; retry <= 4; ++retry) {
    EXPECT_DOUBLE_EQ(policy.JitteredDelayMsForRetry(retry, a),
                     policy.JitteredDelayMsForRetry(retry, b));
  }
}

TEST_F(FaultsTest, RetryRespectsTotalDeadline) {
  // A deadline of 0 (default) means unlimited: all attempts run.
  int calls = 0;
  RetryPolicy unlimited;
  unlimited.max_attempts = 4;
  unlimited.base_delay_ms = 0.0;
  unlimited.max_delay_ms = 0.0;
  Status st = Retry(unlimited, [&] {
    ++calls;
    return Status::DataLoss("flaky");
  });
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_EQ(calls, 4);

  // A deadline smaller than the first backoff stops after one attempt:
  // Retry refuses to sleep into a blown budget and hands back the
  // transient error while the caller can still act on it.
  calls = 0;
  RetryPolicy tight;
  tight.max_attempts = 10;
  tight.base_delay_ms = 50.0;
  tight.total_deadline_ms = 1.0;
  RetryStats stats;
  st = Retry(tight, [&] {
    ++calls;
    return Status::DataLoss("flaky");
  }, &stats);
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(stats.transient_failures.empty());

  // A roomy deadline changes nothing for a fast success.
  calls = 0;
  RetryPolicy roomy;
  roomy.max_attempts = 3;
  roomy.base_delay_ms = 0.0;
  roomy.total_deadline_ms = 60000.0;
  st = Retry(roomy, [&] {
    ++calls;
    return calls < 2 ? Status::DataLoss("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(FaultsTest, RetryAbsorbsTransientFailuresWithinBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;  // no sleeping in tests
  int calls = 0;
  RetryStats stats;
  Status st = Retry(
      policy,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::DataLoss("transient");
        return Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  ASSERT_EQ(stats.transient_failures.size(), 2u);
  EXPECT_TRUE(stats.transient_failures[0].IsDataLoss());
}

TEST_F(FaultsTest, RetryGivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 0.0;
  int calls = 0;
  Status st = Retry(policy, [&]() -> Status {
    ++calls;
    return Status::Internal("always broken");
  });
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(calls, 2);
}

TEST_F(FaultsTest, RetryDoesNotRetryPermanentErrors) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 0.0;
  int calls = 0;
  Result<int> r = Retry(policy, [&]() -> Result<int> {
    ++calls;
    return Status::NotFound("permanent");
  });
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST_F(FaultsTest, RetryWorksWithResultReturningFunctions) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 0.0;
  int calls = 0;
  Result<int> r = Retry(policy, [&]() -> Result<int> {
    ++calls;
    if (calls == 1) return Status::DataLoss("blip");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

// --------------------------------------------------- FaultRegistry

TEST_F(FaultsTest, DisabledRegistryInjectsNothing) {
  EXPECT_FALSE(FaultRegistry::Global().enabled());
  auto table = Table::FromCsv(kCleanCsv);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(FaultRegistry::Global().SeenPoints().empty());
}

TEST_F(FaultsTest, FailFirstScheduleFiresThenHeals) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultPlan plan;
  plan.code = StatusCode::kDataLoss;
  plan.fail_first = 2;
  reg.Arm("test.point", plan);
  EXPECT_TRUE(reg.OnHit("test.point").IsDataLoss());
  EXPECT_TRUE(reg.OnHit("test.point").IsDataLoss());
  EXPECT_TRUE(reg.OnHit("test.point").ok());
  EXPECT_EQ(reg.hits("test.point"), 3u);
  EXPECT_EQ(reg.injected("test.point"), 2u);
}

TEST_F(FaultsTest, EveryNthScheduleIsPeriodic) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultPlan plan;
  plan.every_n = 3;
  reg.Arm("test.periodic", plan);
  int injected = 0;
  for (int i = 0; i < 9; ++i) {
    if (!reg.OnHit("test.periodic").ok()) ++injected;
  }
  EXPECT_EQ(injected, 3);
}

TEST_F(FaultsTest, ProbabilityScheduleIsDeterministicPerSeed) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultPlan plan;
  plan.probability = 0.5;
  plan.seed = 7;
  auto run = [&] {
    reg.Reset();
    reg.Arm("test.prob", plan);
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) fired.push_back(!reg.OnHit("test.prob").ok());
    return fired;
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
}

TEST_F(FaultsTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault("csv.read_file", TransientDataLoss(0));
    // fail_first of 0 arms a plan that only observes.
  }
  // Disarmed: hitting the point injects nothing.
  EXPECT_TRUE(FaultRegistry::Global().OnHit("csv.read_file").ok());
}

// ------------------------------------------------- Store connectors

TEST_F(FaultsTest, FlakyStoreFailsDeterministicallyThenHeals) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  FlakyStoreOptions options;
  options.fail_first_fetches = 2;
  FlakyStore flaky(&memory, options);
  EXPECT_TRUE(flaky.Fetch("extract.csv").status().IsDataLoss());
  EXPECT_TRUE(flaky.Fetch("extract.csv").status().IsDataLoss());
  auto third = flaky.Fetch("extract.csv");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, kCleanCsv);
  EXPECT_EQ(flaky.fetches_attempted(), 3u);
  EXPECT_EQ(flaky.fetches_failed(), 2u);
}

TEST_F(FaultsTest, RetryingStoreAbsorbsFlakyFetches) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  FlakyStoreOptions options;
  options.fail_first_fetches = 2;
  FlakyStore flaky(&memory, options);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;
  RetryingStore store(&flaky, policy);
  auto fetched = store.Fetch("extract.csv");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(store.last_stats().attempts, 3);
  EXPECT_EQ(store.last_stats().transient_failures.size(), 2u);
}

TEST_F(FaultsTest, RetryingStoreExhaustsBudgetOnPersistentFault) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  FlakyStoreOptions options;
  options.fail_first_fetches = 10;  // outlasts the budget
  FlakyStore flaky(&memory, options);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;
  RetryingStore store(&flaky, policy);
  EXPECT_TRUE(store.Fetch("extract.csv").status().IsDataLoss());
  EXPECT_EQ(store.last_stats().attempts, 3);
}

TEST_F(FaultsTest, LoadTableFromStoreRetriesInjectedDataLoss) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  ScopedFault fault("store.fetch", TransientDataLoss(1));
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;
  RetryStats stats;
  auto table =
      LoadTableFromStore(&memory, "extract.csv", {}, policy, &stats);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 4u);
  EXPECT_EQ(stats.attempts, 2);
}

// ----------------------------------------------- Lenient ingestion

TEST_F(FaultsTest, StrictModeStillFailsFastOnCorruptCsv) {
  // (c) Default behaviour is preserved: the first error aborts.
  auto table = Table::FromCsv(kCorruptCsv);
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
}

TEST_F(FaultsTest, LenientModeQuarantinesCorruptRowsAndLoadsTheRest) {
  // (a) A load that fails today completes in lenient mode with every
  // bad row itemised.
  CsvReadOptions options;
  options.error_mode = ErrorMode::kLenient;
  QuarantineReport quarantine;
  options.quarantine = &quarantine;
  auto table = Table::FromCsv(kCorruptCsv, options);
  ASSERT_TRUE(table.ok()) << table.status();
  // 6 data records; the ragged row, the bad-Age row and the
  // unterminated-quote row are quarantined.
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(quarantine.size(), 3u);
  EXPECT_EQ(quarantine.CountForStage("csv-parse"), 1u);   // open quote
  EXPECT_EQ(quarantine.CountForStage("csv-ingest"), 2u);  // ragged + Age

  // Rows are attributable: record numbers and offending fields.
  bool saw_ragged = false, saw_bad_age = false, saw_open_quote = false;
  for (const QuarantinedRow& row : quarantine.rows()) {
    if (row.row_number == 3) saw_ragged = true;
    if (row.row_number == 4) {
      saw_bad_age = true;
      EXPECT_EQ(row.field, "Age");
      EXPECT_TRUE(row.status.IsParseError());
    }
    if (row.row_number == 7) saw_open_quote = true;
  }
  EXPECT_TRUE(saw_ragged);
  EXPECT_TRUE(saw_bad_age);
  EXPECT_TRUE(saw_open_quote);

  // Majority inference kept Age numeric despite the corrupt field.
  auto age = table->ColumnByName("Age");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ((*age)->type(), DataType::kInt64);
}

TEST_F(FaultsTest, LenientModeWithoutSinkStillSkipsBadRows) {
  CsvReadOptions options;
  options.error_mode = ErrorMode::kLenient;
  auto table = Table::FromCsv(kCorruptCsv, options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
}

// --------------------------------------------- Lenient ETL pipeline

TEST_F(FaultsTest, PipelineLenientModeQuarantinesFailingRows) {
  auto table = Table::FromCsv(kCleanCsv);
  ASSERT_TRUE(table.ok());
  etl::TransformPipeline pipeline;
  // A validation step that rejects the whole batch when any row has
  // FBG > 7 (standing in for an externally enforced constraint).
  pipeline.AddCustomStep([](Table* t) -> Status {
    auto fbg = t->ColumnByName("FBG");
    if (!fbg.ok()) return fbg.status();
    for (size_t i = 0; i < (*fbg)->size(); ++i) {
      if (!(*fbg)->IsNull(i) && (*fbg)->DoubleAt(i) > 7.0) {
        return Status::OutOfRange("implausible FBG");
      }
    }
    return Status::OK();
  });

  Table strict_copy = *table;
  EXPECT_FALSE(pipeline.Run(&strict_copy).ok());  // strict: aborts

  etl::PipelineRunOptions options;
  options.error_mode = ErrorMode::kLenient;
  auto report = pipeline.Run(&table.value(), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(table->num_rows(), 3u);  // P3 (FBG 7.2) quarantined
  EXPECT_EQ(report->quarantine.size(), 1u);
  EXPECT_EQ(report->quarantine.CountForStage("etl:custom 1"), 1u);
  EXPECT_TRUE(report->quarantine.rows()[0].status.IsOutOfRange());
}

TEST_F(FaultsTest, PipelineStepLevelFailureStillFailsInLenientMode) {
  auto table = Table::FromCsv(kCleanCsv);
  ASSERT_TRUE(table.ok());
  etl::TransformPipeline pipeline;
  pipeline.AddCustomStep(
      etl::DeriveYearStep("NoSuchColumn", "VisitYear"));
  etl::PipelineRunOptions options;
  options.error_mode = ErrorMode::kLenient;
  // No individual row explains a missing column: surface the error.
  EXPECT_FALSE(pipeline.Run(&table.value(), options).ok());
}

// ------------------------------------------ Lenient star-schema build

TEST_F(FaultsTest, StarSchemaLenientModeQuarantinesNullDimensionRefs) {
  const char* csv =
      "PatientId,VisitDate,Age,Gender,FBG\n"
      "P1,2003-01-01,50,F,5.0\n"
      ",2003-02-01,61,,6.5\n"  // all-null Patient tuple: dangling ref
      "P3,2003-03-01,,,7.2\n";  // null Gender only: still a member
  auto table = Table::FromCsv(csv);
  ASSERT_TRUE(table.ok());

  // Strict behaviour unchanged: null tuples become members.
  warehouse::StarSchemaBuilder builder(MakeSchemaDef());
  auto strict_wh = builder.Build(*table);
  ASSERT_TRUE(strict_wh.ok());
  EXPECT_EQ(strict_wh->num_fact_rows(), 3u);

  warehouse::BuildOptions options;
  options.error_mode = ErrorMode::kLenient;
  QuarantineReport quarantine;
  options.quarantine = &quarantine;
  auto lenient_wh = builder.Build(*table, options);
  ASSERT_TRUE(lenient_wh.ok()) << lenient_wh.status();
  // Row 2 (all attributes null) is quarantined; row 3 (only Gender
  // null) still identifies a member and is kept.
  EXPECT_EQ(lenient_wh->num_fact_rows(), 2u);
  ASSERT_EQ(quarantine.size(), 1u);
  EXPECT_EQ(quarantine.rows()[0].stage, "star-schema");
  EXPECT_EQ(quarantine.rows()[0].row_number, 2u);
  EXPECT_EQ(quarantine.rows()[0].field, "Patient");
  EXPECT_TRUE(lenient_wh->CheckIntegrity().ok);
}

// -------------------------------------------------- DdDgms end-to-end

TEST_F(FaultsTest, BuildFromStoreAbsorbsTransientFaultAndQuarantines) {
  // (a) + (b) together: the connector loses the first fetch to an
  // injected kDataLoss fault AND the payload is corrupted; a lenient
  // build with a retry budget completes and itemises the bad rows.
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCorruptCsv).ok());
  ScopedFault fault("store.fetch", TransientDataLoss(1));

  core::RobustnessOptions robustness;
  robustness.error_mode = ErrorMode::kLenient;
  robustness.retry.max_attempts = 3;
  robustness.retry.base_delay_ms = 0.0;
  QuarantineReport sink;
  robustness.quarantine_sink = &sink;

  auto dgms = core::DdDgms::BuildFromStore(&memory, "extract.csv", {},
                                           MakePipeline(), MakeSchemaDef(),
                                           robustness);
  ASSERT_TRUE(dgms.ok()) << dgms.status();
  EXPECT_EQ(FaultRegistry::Global().injected("store.fetch"), 1u);
  EXPECT_EQ(dgms->warehouse().num_fact_rows(), 3u);

  const QuarantineReport& report = dgms->transform_report().quarantine;
  EXPECT_EQ(report.size(), 3u);
  EXPECT_EQ(sink.size(), 3u);
  // The merged report surfaces through TransformReport::ToString().
  std::string text = dgms->transform_report().ToString();
  EXPECT_NE(text.find("quarantined 3 rows"), std::string::npos);
  EXPECT_NE(text.find("csv-parse"), std::string::npos);
  EXPECT_NE(text.find("csv-ingest"), std::string::npos);
}

TEST_F(FaultsTest, BuildFromStoreStrictModeFailsFastOnCorruptPayload) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCorruptCsv).ok());
  auto dgms = core::DdDgms::BuildFromStore(
      &memory, "extract.csv", {}, MakePipeline(), MakeSchemaDef(), {});
  EXPECT_FALSE(dgms.ok());
  EXPECT_TRUE(dgms.status().IsParseError());
}

TEST_F(FaultsTest, BuildFromStorePersistentFaultExhaustsRetryBudget) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  ScopedFault fault("store.fetch", TransientDataLoss(99));
  core::RobustnessOptions robustness;
  robustness.retry.max_attempts = 3;
  robustness.retry.base_delay_ms = 0.0;
  auto dgms = core::DdDgms::BuildFromStore(&memory, "extract.csv", {},
                                           MakePipeline(), MakeSchemaDef(),
                                           robustness);
  EXPECT_TRUE(dgms.status().IsDataLoss());
  EXPECT_EQ(FaultRegistry::Global().hits("store.fetch"), 3u);
}

TEST_F(FaultsTest, AcquireDataKeepsRobustnessAndAccumulatesSink) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  core::RobustnessOptions robustness;
  robustness.error_mode = ErrorMode::kLenient;
  robustness.retry.base_delay_ms = 0.0;
  QuarantineReport sink;
  robustness.quarantine_sink = &sink;
  auto dgms = core::DdDgms::BuildFromStore(&memory, "extract.csv", {},
                                           MakePipeline(), MakeSchemaDef(),
                                           robustness);
  ASSERT_TRUE(dgms.ok()) << dgms.status();
  EXPECT_TRUE(sink.empty());

  // A new season arrives with an anonymous row (Patient tuple all
  // null); the lenient rebuild quarantines it at the star-schema
  // stage instead of aborting.
  auto batch = Table::FromCsv(
      "PatientId,VisitDate,Age,Gender,FBG\n"
      ",2004-01-01,70,,6.0\n");
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(dgms->AcquireData(*batch).ok());
  EXPECT_EQ(dgms->warehouse().num_fact_rows(), 4u);
  EXPECT_EQ(
      dgms->transform_report().quarantine.CountForStage("star-schema"),
      1u);
  EXPECT_EQ(sink.CountForStage("star-schema"), 1u);
}

// ------------------------------------- Every registered fault point

// Discovers every injection point the end-to-end ingestion flow passes
// through (observe mode), then arms each one with a one-shot transient
// fault and asserts the system as a whole survives: the fault is
// either absorbed by a retry or the load completes with quarantine.
TEST_F(FaultsTest, EveryRegisteredPointEitherRetriesOrQuarantines) {
  MemoryStore memory;
  ASSERT_TRUE(memory.Store("extract.csv", kCleanCsv).ok());
  core::RobustnessOptions robustness;
  robustness.error_mode = ErrorMode::kLenient;
  robustness.retry.max_attempts = 3;
  robustness.retry.base_delay_ms = 0.0;

  auto build = [&] {
    return core::DdDgms::BuildFromStore(&memory, "extract.csv", {},
                                        MakePipeline(), MakeSchemaDef(),
                                        robustness);
  };

  // Pass 1: observe which points the flow exercises.
  FaultRegistry::Global().Enable();
  ASSERT_TRUE(build().ok());
  std::vector<std::string> points;
  for (const std::string& point : FaultRegistry::Global().SeenPoints()) {
    if (FaultRegistry::Global().hits(point) > 0) points.push_back(point);
  }
  FaultRegistry::Global().Reset();
  // The flow must cross all architectural layers.
  ASSERT_GE(points.size(), 5u) << "expected points in store, table, etl, "
                                  "warehouse and core layers";

  // Pass 2: one transient fault per point; an outer retry (standing in
  // for the orchestration layer's policy) must always recover.
  RetryPolicy outer;
  outer.max_attempts = 2;
  outer.base_delay_ms = 0.0;
  for (const std::string& point : points) {
    FaultRegistry::Global().Reset();
    FaultPlan plan;
    plan.code = StatusCode::kDataLoss;
    plan.fail_first = 1;
    FaultRegistry::Global().Arm(point, plan);
    auto dgms = Retry(outer, build);
    EXPECT_TRUE(dgms.ok()) << "point '" << point
                           << "' not survivable: " << dgms.status();
    EXPECT_EQ(FaultRegistry::Global().injected(point), 1u)
        << "point '" << point << "' never fired";
    if (dgms.ok()) {
      EXPECT_EQ(dgms->warehouse().num_fact_rows(), 4u);
    }
  }
  FaultRegistry::Global().Reset();
}

}  // namespace
}  // namespace ddgms
