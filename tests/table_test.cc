// Unit tests for src/table: Value, ColumnVector, Schema, Table.

#include <gtest/gtest.h>

#include "table/column.h"
#include "table/describe.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace ddgms {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Str("x").string_value(), "x");
  Date d = Date::FromYmd(2020, 5, 1).value();
  EXPECT_EQ(Value::FromDate(d).date_value(), d);
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Real(1.5).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_FALSE(Value::Str("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_TRUE(Value::Int(5).Equals(Value::Real(5.0)));
  EXPECT_LT(Value::Int(4), Value::Real(4.5));
  EXPECT_GT(Value::Real(4.5).Compare(Value::Int(4)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(-1000000));
  EXPECT_LT(Value::Null(), Value::Str(""));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  // 5 and 5.0 compare equal, so they must hash equal.
  EXPECT_EQ(Value::Int(5).Hash(), Value::Real(5.0).Hash());
  EXPECT_EQ(Value::Str("a").Hash(), Value::Str("a").Hash());
}

TEST(ValueTest, VectorHashAndEq) {
  ValueVectorHash hash;
  ValueVectorEq eq;
  std::vector<Value> a = {Value::Int(1), Value::Str("x")};
  std::vector<Value> b = {Value::Int(1), Value::Str("x")};
  std::vector<Value> c = {Value::Int(2), Value::Str("x")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_FALSE(eq(a, c));
}

// ---------------------------------------------------------- ColumnVector

TEST(ColumnTest, AppendAndGet) {
  ColumnVector col("x", DataType::kInt64);
  ASSERT_TRUE(col.Append(Value::Int(1)).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  ASSERT_TRUE(col.Append(Value::Int(3)).ok());
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_EQ(col.GetValue(0), Value::Int(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), 3);
}

TEST(ColumnTest, TypeMismatchRejected) {
  ColumnVector col("x", DataType::kInt64);
  EXPECT_TRUE(col.Append(Value::Str("no")).IsInvalidArgument());
  EXPECT_EQ(col.size(), 0u);
}

TEST(ColumnTest, IntPromotesIntoDoubleColumn) {
  ColumnVector col("x", DataType::kDouble);
  ASSERT_TRUE(col.Append(Value::Int(2)).ok());
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 2.0);
}

TEST(ColumnTest, SetValueUpdatesNullCount) {
  ColumnVector col("x", DataType::kString);
  col.AppendString("a");
  col.AppendNull();
  ASSERT_TRUE(col.SetValue(0, Value::Null()).ok());
  ASSERT_TRUE(col.SetValue(1, Value::Str("b")).ok());
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_EQ(col.StringAt(1), "b");
}

TEST(ColumnTest, SetValueOutOfRange) {
  ColumnVector col("x", DataType::kInt64);
  EXPECT_TRUE(col.SetValue(0, Value::Int(1)).IsOutOfRange());
}

TEST(ColumnTest, NumericAt) {
  ColumnVector col("x", DataType::kBool);
  col.AppendBool(true);
  col.AppendNull();
  EXPECT_DOUBLE_EQ(*col.NumericAt(0), 1.0);
  EXPECT_FALSE(col.NumericAt(1).ok());

  ColumnVector s("y", DataType::kString);
  s.AppendString("a");
  EXPECT_FALSE(s.NumericAt(0).ok());
}

TEST(ColumnTest, TakeReordersAndDuplicates) {
  ColumnVector col("x", DataType::kInt64);
  for (int i = 0; i < 5; ++i) col.AppendInt(i * 10);
  ColumnVector out = col.Take({4, 0, 0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.IntAt(0), 40);
  EXPECT_EQ(out.IntAt(1), 0);
  EXPECT_EQ(out.IntAt(2), 0);
}

TEST(ColumnTest, DistinctValuesFirstAppearanceOrder) {
  ColumnVector col("x", DataType::kString);
  for (const char* v : {"b", "a", "b", "c", "a"}) col.AppendString(v);
  col.AppendNull();
  auto distinct = col.DistinctValues();
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value::Str("b"));
  EXPECT_EQ(distinct[1], Value::Str("a"));
  EXPECT_EQ(distinct[2], Value::Str("c"));
}

TEST(ColumnTest, MinMaxSkipNulls) {
  ColumnVector col("x", DataType::kDouble);
  col.AppendNull();
  col.AppendDouble(2.0);
  col.AppendDouble(-1.0);
  EXPECT_EQ(col.Min(), Value::Real(-1.0));
  EXPECT_EQ(col.Max(), Value::Real(2.0));

  ColumnVector empty("y", DataType::kDouble);
  EXPECT_TRUE(empty.Min().is_null());
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, MakeAndLookup) {
  auto schema = Schema::Make(
      {{"a", DataType::kInt64}, {"b", DataType::kString}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 2u);
  EXPECT_EQ(*schema->FieldIndex("b"), 1u);
  EXPECT_TRUE(schema->FieldIndex("c").status().IsNotFound());
  EXPECT_TRUE(schema->HasField("a"));
}

TEST(SchemaTest, RejectsDuplicatesAndNullType) {
  EXPECT_TRUE(Schema::Make({{"a", DataType::kInt64},
                            {"a", DataType::kString}})
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(Schema::Make({{"a", DataType::kNull}})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, ToStringListsFields) {
  auto schema =
      Schema::Make({{"a", DataType::kInt64}, {"b", DataType::kDate}});
  EXPECT_EQ(schema->ToString(), "a:int64, b:date");
}

// ----------------------------------------------------------------- Table

Table MakeSampleTable() {
  auto schema = Schema::Make({{"Id", DataType::kInt64},
                              {"Name", DataType::kString},
                              {"Score", DataType::kDouble}});
  Table t(std::move(schema).value());
  EXPECT_TRUE(
      t.AppendRow({Value::Int(1), Value::Str("ann"), Value::Real(3.5)})
          .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Int(2), Value::Str("bob"), Value::Null()}).ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Int(3), Value::Str("cid"), Value::Real(1.5)})
          .ok());
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeSampleTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(*t.GetCell(0, "Name"), Value::Str("ann"));
  EXPECT_TRUE((*t.GetCell(1, "Score")).is_null());
  Row row = t.GetRow(2);
  EXPECT_EQ(row[0], Value::Int(3));
}

TEST(TableTest, AppendRowValidatesArityAndTypesAtomically) {
  Table t = MakeSampleTable();
  EXPECT_TRUE(t.AppendRow({Value::Int(4)}).IsInvalidArgument());
  // Type error in the *last* column must not leave partial data.
  EXPECT_TRUE(
      t.AppendRow({Value::Int(4), Value::Str("dee"), Value::Str("bad")})
          .IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.column(0).size(), t.column(1).size());
}

TEST(TableTest, SetCell) {
  Table t = MakeSampleTable();
  ASSERT_TRUE(t.SetCell(1, "Score", Value::Real(9.0)).ok());
  EXPECT_EQ(*t.GetCell(1, "Score"), Value::Real(9.0));
  EXPECT_TRUE(t.SetCell(99, "Score", Value::Real(0.0)).IsOutOfRange());
  EXPECT_TRUE(t.SetCell(0, "Nope", Value::Real(0.0)).IsNotFound());
}

TEST(TableTest, AddDropRenameColumn) {
  Table t = MakeSampleTable();
  ColumnVector extra("Flag", DataType::kBool);
  extra.AppendBool(true);
  extra.AppendBool(false);
  extra.AppendBool(true);
  ASSERT_TRUE(t.AddColumn(std::move(extra)).ok());
  EXPECT_TRUE(t.schema().HasField("Flag"));

  ColumnVector wrong("Short", DataType::kBool);
  wrong.AppendBool(true);
  EXPECT_TRUE(t.AddColumn(std::move(wrong)).IsInvalidArgument());

  ASSERT_TRUE(t.RenameColumn("Flag", "Active").ok());
  EXPECT_TRUE(t.schema().HasField("Active"));
  EXPECT_TRUE(t.RenameColumn("Active", "Id").IsAlreadyExists());

  ASSERT_TRUE(t.DropColumn("Active").ok());
  EXPECT_FALSE(t.schema().HasField("Active"));
  EXPECT_EQ(*t.GetCell(0, "Name"), Value::Str("ann"));
}

TEST(TableTest, ProjectAndTake) {
  Table t = MakeSampleTable();
  auto proj = t.Project({"Score", "Id"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 2u);
  EXPECT_EQ(proj->schema().field(0).name, "Score");

  Table taken = t.Take({2, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(*taken.GetCell(0, "Id"), Value::Int(3));
}

TEST(TableTest, FilterByPredicateFunction) {
  Table t = MakeSampleTable();
  Table f = t.Filter([](const Table& table, size_t i) {
    return !table.column(2).IsNull(i);
  });
  EXPECT_EQ(f.num_rows(), 2u);
}

TEST(TableTest, SortByWithNullsFirst) {
  Table t = MakeSampleTable();
  auto sorted = t.SortBy({"Score"});
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->column(2).IsNull(0));  // null first
  EXPECT_EQ(*sorted->GetCell(1, "Score"), Value::Real(1.5));
  auto desc = t.SortBy({"Score"}, /*ascending=*/false);
  EXPECT_EQ(*desc->GetCell(0, "Score"), Value::Real(3.5));
}

TEST(TableTest, ConcatRequiresSameSchema) {
  Table a = MakeSampleTable();
  Table b = MakeSampleTable();
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 6u);
  Table c(Schema::Make({{"Other", DataType::kInt64}}).value());
  EXPECT_TRUE(a.Concat(c).IsInvalidArgument());
}

TEST(TableTest, CsvRoundTrip) {
  Table t = MakeSampleTable();
  std::string csv = t.ToCsv();
  auto back = Table::FromCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(*back->GetCell(0, "Name"), Value::Str("ann"));
  EXPECT_TRUE((*back->GetCell(1, "Score")).is_null());
  EXPECT_EQ(back->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(back->schema().field(2).type, DataType::kDouble);
}

TEST(TableTest, CsvTypeInference) {
  auto t = Table::FromCsv(
      "i,d,s,b,date\n1,1.5,x,true,2020-01-02\n2,2,y,false,2021-03-04\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t->schema().field(2).type, DataType::kString);
  EXPECT_EQ(t->schema().field(3).type, DataType::kBool);
  EXPECT_EQ(t->schema().field(4).type, DataType::kDate);
}

TEST(TableTest, CsvIntWidensToDouble) {
  auto t = Table::FromCsv("x\n1\n2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kDouble);
  EXPECT_EQ(*t->GetCell(0, "x"), Value::Real(1.0));
}

TEST(TableTest, CsvConflictWidensToString) {
  auto t = Table::FromCsv("x\n1\nhello\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
}

TEST(TableTest, CsvNullTokens) {
  auto t = Table::FromCsv("x,y\n1,NA\n?,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t->GetCell(0, "y")).is_null());
  EXPECT_TRUE((*t->GetCell(1, "x")).is_null());
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
}

TEST(TableTest, CsvRaggedRowIsError) {
  EXPECT_TRUE(Table::FromCsv("a,b\n1\n").status().IsParseError());
}

TEST(TableTest, CsvNoHeader) {
  CsvReadOptions opt;
  opt.has_header = false;
  auto t = Table::FromCsv("1,2\n3,4\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_TRUE(t->schema().HasField("col0"));
}

TEST(DescribeTest, ProfilesEveryColumn) {
  Table t = MakeSampleTable();
  auto profile = Describe(t);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->num_rows(), 3u);  // Id, Name, Score
  // Score: 2 valid + 1 null, mean of {3.5, 1.5} = 2.5.
  EXPECT_EQ(*profile->GetCell(2, "Column"), Value::Str("Score"));
  EXPECT_EQ(*profile->GetCell(2, "Count"), Value::Int(3));
  EXPECT_EQ(*profile->GetCell(2, "Nulls"), Value::Int(1));
  EXPECT_EQ(*profile->GetCell(2, "Distinct"), Value::Int(2));
  EXPECT_EQ(*profile->GetCell(2, "Min"), Value::Str("1.5"));
  EXPECT_EQ(*profile->GetCell(2, "Max"), Value::Str("3.5"));
  EXPECT_NEAR((*profile->GetCell(2, "Mean")).double_value(), 2.5, 1e-9);
  // Non-numeric columns have null Mean/StdDev but valid Min/Max.
  EXPECT_TRUE((*profile->GetCell(1, "Mean")).is_null());
  EXPECT_EQ(*profile->GetCell(1, "Min"), Value::Str("ann"));
  EXPECT_EQ(*profile->GetCell(1, "Max"), Value::Str("cid"));
}

TEST(TableTest, PrettyStringTruncates) {
  Table t = MakeSampleTable();
  std::string s = t.ToPrettyString(2);
  EXPECT_NE(s.find("(1 more rows)"), std::string::npos);
  EXPECT_NE(s.find("(null)"), std::string::npos);
}

}  // namespace
}  // namespace ddgms
