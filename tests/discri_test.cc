// Tests for the DiScRi substitution layer: clinical schemes (paper
// Table I), the synthetic cohort generator's published statistical
// shapes, and the Fig 3 dimensional model.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "discri/cohort.h"
#include "discri/model.h"
#include "discri/schemes.h"

namespace ddgms::discri {
namespace {

// ----------------------------------------------------- clinical schemes

TEST(SchemesTest, TableOneMatchesPaper) {
  auto entries = TableOneSchemes();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].attribute, "Age");
  EXPECT_EQ(entries[1].attribute, "DiagnosticHTYears");
  EXPECT_EQ(entries[2].attribute, "FBG");
  EXPECT_EQ(entries[3].attribute, "LyingDBPAverage");

  // Age: <40, 40-60, 60-80, >80.
  EXPECT_EQ(entries[0].scheme.LabelFor(39), "<40");
  EXPECT_EQ(entries[0].scheme.LabelFor(40), "40-60");
  EXPECT_EQ(entries[0].scheme.LabelFor(79.9), "60-80");
  EXPECT_EQ(entries[0].scheme.LabelFor(81), ">80");

  // Diagnostic HT years: <2, 2-5, 5-10, 10-20, >20.
  EXPECT_EQ(entries[1].scheme.num_bins(), 5u);
  EXPECT_EQ(entries[1].scheme.LabelFor(1.0), "<2");
  EXPECT_EQ(entries[1].scheme.LabelFor(7.0), "5-10");
  EXPECT_EQ(entries[1].scheme.LabelFor(25.0), ">20");

  // FBG: <5.5 very good, 5.5-6.1 high, 6.1-7 preDiabetic, >=7 Diabetic.
  EXPECT_EQ(entries[2].scheme.LabelFor(5.4), "very good");
  EXPECT_EQ(entries[2].scheme.LabelFor(5.8), "high");
  EXPECT_EQ(entries[2].scheme.LabelFor(6.5), "preDiabetic");
  EXPECT_EQ(entries[2].scheme.LabelFor(7.0), "Diabetic");

  // Lying DBP: <60 low, 60-80 normal, 80-90 high normal, >90 HT.
  EXPECT_EQ(entries[3].scheme.LabelFor(55), "low");
  EXPECT_EQ(entries[3].scheme.LabelFor(75), "normal");
  EXPECT_EQ(entries[3].scheme.LabelFor(85), "high normal");
  EXPECT_EQ(entries[3].scheme.LabelFor(95), "hypertension");
}

TEST(SchemesTest, AgeBandHierarchyNests) {
  // Every 5-year band must map into exactly one 10-year band.
  auto b5 = AgeBand5Scheme();
  auto b10 = AgeBand10Scheme();
  std::map<std::string, std::set<std::string>> mapping;
  for (int age = 30; age <= 100; ++age) {
    mapping[b5.LabelFor(age)].insert(b10.LabelFor(age));
  }
  for (const auto& [fine, coarse_set] : mapping) {
    EXPECT_EQ(coarse_set.size(), 1u) << "band " << fine;
  }
}

TEST(SchemesTest, AuxiliarySchemesCoverClinicalRanges) {
  EXPECT_EQ(BmiScheme().LabelFor(31), "obese");
  EXPECT_EQ(SystolicBpScheme().LabelFor(118), "normal");
  EXPECT_EQ(EgfrScheme().LabelFor(95), "normal");
  EXPECT_EQ(CholesterolScheme().LabelFor(7.0), "very high");
  EXPECT_EQ(Hba1cScheme().LabelFor(7.0), "Diabetic");
  EXPECT_EQ(HeartRateScheme().LabelFor(72), "normal");
  EXPECT_EQ(QtcScheme().LabelFor(460), "prolonged");
}

// ----------------------------------------------------- prevalence model

TEST(PrevalenceTest, RisesWithAge) {
  EXPECT_LT(DiabetesPrevalence(40, "M"), DiabetesPrevalence(60, "M"));
  EXPECT_LT(DiabetesPrevalence(60, "M"), DiabetesPrevalence(72, "M"));
}

TEST(PrevalenceTest, Fig5GenderCrossover) {
  // Males dominate 70-75.
  EXPECT_GT(DiabetesPrevalence(72, "M"), DiabetesPrevalence(72, "F"));
  // Females peak in 75-78.
  EXPECT_GT(DiabetesPrevalence(76, "F"), DiabetesPrevalence(76, "M"));
  // Female prevalence drops substantially past 78.
  EXPECT_GT(DiabetesPrevalence(77, "F"),
            DiabetesPrevalence(83, "F") + 0.1);
}

TEST(PrevalenceTest, Fig6DurationDipAt70s) {
  // Weight of the 5-10y bucket dips for 70-80 year olds.
  std::vector<double> w60 = HtDurationWeights(65);
  std::vector<double> w70 = HtDurationWeights(74);
  std::vector<double> w80 = HtDurationWeights(82);
  ASSERT_EQ(w70.size(), 5u);
  EXPECT_LT(w70[2], w60[2] / 2.0);
  EXPECT_LT(w70[2], w80[2] / 2.0);
}

// -------------------------------------------------------- cohort shapes

class CohortTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CohortOptions opt;
    opt.num_patients = 900;
    auto table = GenerateCohort(opt);
    ASSERT_TRUE(table.ok());
    cohort_ = new Table(std::move(table).value());
  }
  static void TearDownTestSuite() {
    delete cohort_;
    cohort_ = nullptr;
  }
  static Table* cohort_;
};

Table* CohortTest::cohort_ = nullptr;

TEST_F(CohortTest, ScaleMatchesPaper) {
  // ~900 patients, ~2500 attendances (paper: "over 2500 attendances of
  // nearly 900 patients").
  const ColumnVector* patient = *cohort_->ColumnByName("PatientId");
  EXPECT_EQ(patient->DistinctValues().size(), 900u);
  EXPECT_GT(cohort_->num_rows(), 2100u);
  EXPECT_LT(cohort_->num_rows(), 3100u);
  EXPECT_GE(cohort_->num_columns(), 50u);
}

TEST_F(CohortTest, DeterministicForSeed) {
  CohortOptions opt;
  opt.num_patients = 30;
  auto a = GenerateCohort(opt);
  auto b = GenerateCohort(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToCsv(), b->ToCsv());
  opt.seed = 999;
  auto c = GenerateCohort(opt);
  EXPECT_NE(a->ToCsv(), c->ToCsv());
}

TEST_F(CohortTest, DiabetesConsistentWithFbg) {
  // Diabetic attendances should mostly carry diabetic-range FBG.
  const ColumnVector* status = *cohort_->ColumnByName("DiabetesStatus");
  const ColumnVector* fbg = *cohort_->ColumnByName("FBG");
  size_t diabetic = 0, diabetic_high_fbg = 0;
  for (size_t i = 0; i < cohort_->num_rows(); ++i) {
    if (status->StringAt(i) != "Type2" || fbg->IsNull(i)) continue;
    double v = fbg->DoubleAt(i);
    if (v > 40) continue;  // injected entry error
    ++diabetic;
    if (v >= 7.0) ++diabetic_high_fbg;
  }
  ASSERT_GT(diabetic, 100u);
  EXPECT_GT(static_cast<double>(diabetic_high_fbg) /
                static_cast<double>(diabetic),
            0.75);
}

TEST_F(CohortTest, Fig5ShapeInRawCounts) {
  // Count first-visit diabetics by gender in the 70-75 and 75-80 bands.
  const ColumnVector* status = *cohort_->ColumnByName("DiabetesStatus");
  const ColumnVector* gender = *cohort_->ColumnByName("Gender");
  const ColumnVector* age = *cohort_->ColumnByName("Age");
  std::map<std::pair<std::string, std::string>, size_t> counts;
  for (size_t i = 0; i < cohort_->num_rows(); ++i) {
    if (status->StringAt(i) != "Type2") continue;
    int a = static_cast<int>(age->IntAt(i));
    std::string band = a >= 70 && a < 75   ? "70-75"
                       : a >= 75 && a < 80 ? "75-80"
                       : a >= 80           ? "80+"
                                           : "other";
    counts[{band, gender->StringAt(i)}]++;
  }
  // Males dominate 70-75; females dominate 75-80 (paper Fig 5).
  size_t m_70_75 = counts[{"70-75", "M"}];
  size_t f_70_75 = counts[{"70-75", "F"}];
  size_t m_75_80 = counts[{"75-80", "M"}];
  size_t f_75_80 = counts[{"75-80", "F"}];
  size_t f_80_plus = counts[{"80+", "F"}];
  EXPECT_GT(m_70_75, f_70_75);
  EXPECT_GT(f_75_80, m_75_80);
  // Female diabetic counts collapse past 80 relative to their 75-80
  // peak.
  EXPECT_LT(f_80_plus, f_75_80);
}

TEST_F(CohortTest, Fig6DipVisibleInData) {
  const ColumnVector* ht = *cohort_->ColumnByName("HypertensionStatus");
  const ColumnVector* years = *cohort_->ColumnByName("DiagnosticHTYears");
  const ColumnVector* age = *cohort_->ColumnByName("Age");
  auto scheme = DiagnosticHtYearsScheme();
  std::map<std::string, size_t> bands_70s;
  size_t total_70s = 0;
  for (size_t i = 0; i < cohort_->num_rows(); ++i) {
    if (ht->StringAt(i) != "Yes" || years->IsNull(i)) continue;
    int a = static_cast<int>(age->IntAt(i));
    if (a < 70 || a >= 80) continue;
    bands_70s[scheme.LabelFor(years->DoubleAt(i))]++;
    ++total_70s;
  }
  ASSERT_GT(total_70s, 50u);
  double frac_5_10 = static_cast<double>(bands_70s["5-10"]) /
                     static_cast<double>(total_70s);
  // The generator's target weight is 0.07 against ~0.25 elsewhere.
  EXPECT_LT(frac_5_10, 0.15);
}

TEST_F(CohortTest, HandgripMissingnessGrowsWithAge) {
  const ColumnVector* handgrip = *cohort_->ColumnByName("EwingHandGrip");
  const ColumnVector* age = *cohort_->ColumnByName("Age");
  size_t young = 0, young_missing = 0, old = 0, old_missing = 0;
  for (size_t i = 0; i < cohort_->num_rows(); ++i) {
    int a = static_cast<int>(age->IntAt(i));
    if (a < 60) {
      ++young;
      if (handgrip->IsNull(i)) ++young_missing;
    } else if (a >= 75) {
      ++old;
      if (handgrip->IsNull(i)) ++old_missing;
    }
  }
  ASSERT_GT(young, 50u);
  ASSERT_GT(old, 50u);
  double young_rate = static_cast<double>(young_missing) / young;
  double old_rate = static_cast<double>(old_missing) / old;
  EXPECT_GT(old_rate, young_rate + 0.15);
}

TEST_F(CohortTest, InjectedErrorsPresent) {
  // A few implausible SBP entries (999) must exist for the cleaner.
  const ColumnVector* sbp = *cohort_->ColumnByName("LyingSBPAverage");
  size_t errors = 0;
  for (size_t i = 0; i < sbp->size(); ++i) {
    if (!sbp->IsNull(i) && sbp->DoubleAt(i) > 500) ++errors;
  }
  EXPECT_GT(errors, 0u);
  EXPECT_LT(errors, cohort_->num_rows() / 50);
}

TEST_F(CohortTest, BiomarkersHaveMissingness) {
  const ColumnVector* crp = *cohort_->ColumnByName("CRP");
  double rate = static_cast<double>(crp->null_count()) /
                static_cast<double>(crp->size());
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.2);
}

TEST_F(CohortTest, RepeatVisitsOrderedDates) {
  // Visit dates strictly increase within a patient.
  const ColumnVector* patient = *cohort_->ColumnByName("PatientId");
  const ColumnVector* date = *cohort_->ColumnByName("VisitDate");
  std::map<std::string, int32_t> last;
  size_t repeat_rows = 0;
  for (size_t i = 0; i < cohort_->num_rows(); ++i) {
    const std::string& p = patient->StringAt(i);
    int32_t d = date->DateAt(i).days_since_epoch();
    auto it = last.find(p);
    if (it != last.end()) {
      ++repeat_rows;
      EXPECT_GT(d, it->second) << "patient " << p;
      it->second = d;
    } else {
      last[p] = d;
    }
  }
  EXPECT_GT(repeat_rows, 800u);  // plenty of longitudinal structure
}

TEST(CohortOptionsTest, ZeroPatientsRejected) {
  CohortOptions opt;
  opt.num_patients = 0;
  EXPECT_FALSE(GenerateCohort(opt).ok());
}

TEST(SampleDataTest, CommittedSampleLoadsAndBuilds) {
  // data/discri_sample.csv is the checked-in miniature extract used by
  // documentation; it must stay loadable end to end.
  Result<Table> raw = Status::NotFound("unset");
  for (const char* path :
       {"data/discri_sample.csv", "../data/discri_sample.csv",
        "../../data/discri_sample.csv", "/root/repo/data/discri_sample.csv"}) {
    raw = Table::FromCsvFile(path);
    if (raw.ok()) break;
  }
  if (!raw.ok()) {
    GTEST_SKIP() << "sample data not found relative to test cwd";
  }
  EXPECT_GT(raw->num_rows(), 100u);
  EXPECT_EQ(raw->num_columns(), 51u);
  auto wh = BuildDiscriWarehouse(&*raw);
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  EXPECT_TRUE(wh->CheckIntegrity().ok);
}

// -------------------------------------------------------- Fig 3 model

TEST(DiscriModelTest, BuildsFig3Warehouse) {
  CohortOptions opt;
  opt.num_patients = 150;
  auto raw = GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  etl::TransformReport report;
  auto wh = BuildDiscriWarehouse(&*raw, &report);
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();

  // Fig 3: eight dimensions around the MedicalMeasures fact.
  EXPECT_EQ(wh->def().fact_name, "MedicalMeasures");
  ASSERT_EQ(wh->dimensions().size(), 8u);
  const char* expected[] = {"PersonalInformation", "MedicalCondition",
                            "FastingBloods",       "LimbHealth",
                            "ExerciseRoutine",     "BloodPressure",
                            "ECG",                 "Cardinality"};
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(wh->dimensions()[i].name(), expected[i]);
  }
  EXPECT_EQ(wh->num_fact_rows(), raw->num_rows());
  EXPECT_TRUE(wh->CheckIntegrity().ok);
  EXPECT_GT(report.cleaning.cells_nulled, 0u);
  EXPECT_EQ(report.cardinality.num_entities, 150u);

  // The age-band hierarchy is navigable.
  const auto* person = *wh->dimension("PersonalInformation");
  EXPECT_EQ(*person->FinerLevel("AgeBand10"), "AgeBand5");
}

}  // namespace
}  // namespace ddgms::discri
