// Tests for numeric trend forecasting and higher-order Markov
// prediction.

#include <gtest/gtest.h>

#include "predict/forecast.h"
#include "predict/markov.h"

namespace ddgms::predict {
namespace {

Table MakeLinearVisits() {
  Table t(Schema::Make({{"P", DataType::kString},
                        {"D", DataType::kDate},
                        {"V", DataType::kDouble}})
              .value());
  auto add = [&](const char* p, const char* date, double v) {
    ASSERT_TRUE(
        t.AppendRow({Value::Str(p),
                     Value::FromDate(Date::FromString(date).value()),
                     Value::Real(v)})
            .ok());
  };
  // P1: rises exactly 1.0/year from 5.0.
  add("P1", "2010-01-01", 5.0);
  add("P1", "2011-01-01", 6.0);
  add("P1", "2012-01-01", 7.0);
  add("P1", "2013-01-01", 8.0);
  // P2: flat at 4.2.
  add("P2", "2010-06-01", 4.2);
  add("P2", "2012-06-01", 4.2);
  // P3: single reading.
  add("P3", "2011-03-01", 9.9);
  return t;
}

TEST(TrendForecasterTest, FitsPerEntityLines) {
  Table t = MakeLinearVisits();
  TrendForecaster forecaster;
  ASSERT_TRUE(forecaster.Fit(t, "P", "D", "V").ok());
  EXPECT_EQ(forecaster.num_entities(), 3u);

  // P1 extrapolates the 1/year trend.
  Date future = Date::FromString("2014-01-01").value();
  auto p1 = forecaster.Predict(Value::Str("P1"), future);
  ASSERT_TRUE(p1.ok());
  EXPECT_NEAR(*p1, 9.0, 0.05);
  auto slope = forecaster.SlopePerYear(Value::Str("P1"));
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(*slope, 1.0, 0.01);

  // P2 flat.
  auto p2 = forecaster.Predict(Value::Str("P2"), future);
  EXPECT_NEAR(*p2, 4.2, 1e-9);
  EXPECT_NEAR(*forecaster.SlopePerYear(Value::Str("P2")), 0.0, 1e-9);

  // P3 single reading -> flat at the value.
  auto p3 = forecaster.Predict(Value::Str("P3"), future);
  EXPECT_NEAR(*p3, 9.9, 1e-9);

  // Unknown entity.
  EXPECT_TRUE(forecaster.Predict(Value::Str("P9"), future)
                  .status()
                  .IsNotFound());
}

TEST(TrendForecasterTest, Validation) {
  Table t(Schema::Make({{"P", DataType::kString},
                        {"D", DataType::kString},
                        {"V", DataType::kDouble}})
              .value());
  ASSERT_TRUE(
      t.AppendRow({Value::Str("x"), Value::Str("nodate"), Value::Real(1)})
          .ok());
  TrendForecaster forecaster;
  EXPECT_TRUE(
      forecaster.Fit(t, "P", "D", "V").IsInvalidArgument());
}

TEST(TrendForecasterTest, EvaluationBeatsBaselineOnLinearData) {
  Table t = MakeLinearVisits();
  auto report = EvaluateForecaster(t, "P", "D", "V");
  ASSERT_TRUE(report.ok());
  // Only P1 has >= 3 readings. Model predicts 8.0 exactly; baseline
  // carries 7.0 forward (error 1.0).
  EXPECT_EQ(report->evaluated, 1u);
  EXPECT_LT(report->model_mae, 0.05);
  EXPECT_NEAR(report->baseline_mae, 1.0, 1e-9);
}

// ---------------------------------------------------- higher-order Markov

TEST(HigherOrderMarkovTest, ContextBeatsOrderOne) {
  // Alternating process: next state depends on the previous TWO states
  // (a,b -> a; b,a -> b = strict alternation), which order-1 cannot
  // capture when marginals are symmetric.
  std::vector<std::vector<std::string>> sequences;
  for (int i = 0; i < 10; ++i) {
    sequences.push_back({"a", "b", "a", "b", "a", "b", "a"});
    sequences.push_back({"b", "a", "b", "a", "b", "a", "b"});
  }
  MarkovTrajectoryModel order2(/*order=*/2, /*laplace_alpha=*/0.5);
  ASSERT_TRUE(order2.TrainFromSequences(sequences).ok());
  EXPECT_EQ(order2.order(), 2u);
  EXPECT_EQ(*order2.PredictNextFromHistory({"a", "b"}), "a");
  EXPECT_EQ(*order2.PredictNextFromHistory({"b", "a"}), "b");
}

TEST(HigherOrderMarkovTest, BacksOffToOrderOne) {
  std::vector<std::vector<std::string>> sequences = {
      {"x", "y", "z"}, {"x", "y", "z"}, {"y", "z", "z"}};
  MarkovTrajectoryModel model(/*order=*/3, /*laplace_alpha=*/1.0);
  ASSERT_TRUE(model.TrainFromSequences(sequences).ok());
  // Unseen 2-context ("z","x") backs off to P(next|x) -> y.
  EXPECT_EQ(*model.PredictNextFromHistory({"z", "x"}), "y");
  // History shorter than order works too.
  EXPECT_EQ(*model.PredictNextFromHistory({"x"}), "y");
  // Unknown final state errors.
  EXPECT_TRUE(model.PredictNextFromHistory({"nope"})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      model.PredictNextFromHistory({}).status().IsInvalidArgument());
}

TEST(HigherOrderMarkovTest, OrderZeroClampsToOne) {
  MarkovTrajectoryModel model(/*order=*/0, /*laplace_alpha=*/1.0);
  EXPECT_EQ(model.order(), 1u);
}

}  // namespace
}  // namespace ddgms::predict
