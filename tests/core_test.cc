// Tests for the DD-DGMS facade and the no-warehouse baseline, including
// cell-for-cell equivalence of the two execution paths.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"

namespace ddgms::core {
namespace {

class DdDgmsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    discri::CohortOptions opt;
    opt.num_patients = 200;
    opt.seed = 99;
    auto raw = discri::GenerateCohort(opt);
    ASSERT_TRUE(raw.ok());
    auto dgms = DdDgms::Build(std::move(raw).value(),
                              discri::MakeDiscriPipeline(),
                              discri::MakeDiscriSchemaDef());
    ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
    dgms_ = new DdDgms(std::move(dgms).value());
  }
  static void TearDownTestSuite() {
    delete dgms_;
    dgms_ = nullptr;
  }
  static DdDgms* dgms_;
};

DdDgms* DdDgmsTest::dgms_ = nullptr;

TEST_F(DdDgmsTest, BuildPopulatesEverything) {
  EXPECT_GT(dgms_->transformed().num_rows(), 0u);
  EXPECT_TRUE(dgms_->transformed().schema().HasField("FBGBand"));
  EXPECT_EQ(dgms_->warehouse().dimensions().size(), 8u);
  EXPECT_EQ(dgms_->transform_report().cardinality.num_entities, 200u);
}

TEST_F(DdDgmsTest, QueryAndMdxAgree) {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "Gender", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());
  auto mdx = dgms_->QueryMdx(
      "SELECT [PersonalInformation].[Gender].Members ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(mdx.ok());
  for (const Value& member : cube->AxisMembers(0)) {
    EXPECT_EQ(cube->CellValue({member}),
              mdx->cube.CellValue({member}));
  }
}

TEST_F(DdDgmsTest, IsolateSubsetForMining) {
  auto view = dgms_->IsolateSubset({"FBGBand", "DiabetesStatus"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_rows(), dgms_->warehouse().num_fact_rows());
  EXPECT_TRUE(view->schema().HasField("FBGBand"));
  EXPECT_TRUE(view->schema().HasField("FBG"));  // measures included
}

TEST_F(DdDgmsTest, KnowledgeBaseRoundTrip) {
  int64_t id =
      dgms_->knowledge_base().RecordEvidence("test finding", "olap", 0.5);
  EXPECT_TRUE(dgms_->knowledge_base().Get(id).ok());
}

TEST(DdDgmsLifecycleTest, FeedbackDimensionQueryable) {
  discri::CohortOptions opt;
  opt.num_patients = 80;
  opt.seed = 5;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto dgms = DdDgms::Build(std::move(raw).value(),
                            discri::MakeDiscriPipeline(),
                            discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());
  // Accepted finding becomes a feedback dimension: high-FBG flag.
  ASSERT_TRUE(dgms->AddFeedbackDimension(
                      "GlucoseRisk", "Flag",
                      [](const warehouse::Warehouse& wh, size_t row) {
                        auto v = wh.fact().GetCell(row, "FBG");
                        double fbg = v.ok() && !(*v).is_null()
                                         ? (*v).AsDouble().value_or(0)
                                         : 0.0;
                        return Value::Str(fbg >= 7.0 ? "high" : "normal");
                      })
                  .ok());
  olap::CubeQuery q;
  q.axes = {{"GlucoseRisk", "Flag", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms->Query(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_cells(), 2u);
}

TEST(DdDgmsLifecycleTest, AcquireDataGrowsWarehouse) {
  discri::CohortOptions opt;
  opt.num_patients = 60;
  opt.seed = 6;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  size_t first_batch = raw->num_rows();
  auto dgms = DdDgms::Build(std::move(raw).value(),
                            discri::MakeDiscriPipeline(),
                            discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());
  EXPECT_EQ(dgms->warehouse().num_fact_rows(), first_batch);

  discri::CohortOptions opt2;
  opt2.num_patients = 40;
  opt2.seed = 7;
  auto more = discri::GenerateCohort(opt2);
  ASSERT_TRUE(more.ok());
  size_t second_batch = more->num_rows();
  ASSERT_TRUE(dgms->AcquireData(*more).ok());
  EXPECT_EQ(dgms->warehouse().num_fact_rows(),
            first_batch + second_batch);
}

// ----------------------------------------------------- baseline parity

TEST_F(DdDgmsTest, BaselineMatchesWarehouseCellForCell) {
  // The same multivariate query through both architectures must produce
  // identical aggregates (bench A1 compares their latency; this test
  // pins their semantics together).
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand", {}},
            {"PersonalInformation", "Gender", {}}};
  q.slicers = {{"MedicalCondition", "DiabetesStatus",
                {Value::Str("Type2")}}};
  q.measures = {{AggFn::kCount, "", "n"}, {AggFn::kAvg, "FBG", "avg_fbg"}};

  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());
  BaselineDgms baseline(&dgms_->transformed());
  auto flat = baseline.Execute(q);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();

  size_t non_empty_cells = 0;
  for (size_t i = 0; i < flat->num_rows(); ++i) {
    Value band = *flat->GetCell(i, "AgeBand");
    Value gender = *flat->GetCell(i, "Gender");
    Value n = *flat->GetCell(i, "n");
    Value avg = *flat->GetCell(i, "avg_fbg");
    Value cube_n = cube->CellValue({band, gender}, 0);
    Value cube_avg = cube->CellValue({band, gender}, 1);
    EXPECT_EQ(n, cube_n) << band.ToString() << "/" << gender.ToString();
    if (!avg.is_null() && !cube_avg.is_null()) {
      EXPECT_NEAR(avg.double_value(), cube_avg.double_value(), 1e-9);
    } else {
      EXPECT_EQ(avg.is_null(), cube_avg.is_null());
    }
    ++non_empty_cells;
  }
  EXPECT_EQ(non_empty_cells, cube->num_cells());
}

TEST_F(DdDgmsTest, BaselineHandlesAxisRestrictions) {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation",
             "AgeBand5",
             {Value::Str("70-75"), Value::Str("75-80")}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());
  BaselineDgms baseline(&dgms_->transformed());
  auto flat = baseline.Execute(q);
  ASSERT_TRUE(flat.ok());
  int64_t flat_total = 0;
  for (size_t i = 0; i < flat->num_rows(); ++i) {
    flat_total += (*flat->GetCell(i, "n")).int_value();
  }
  EXPECT_EQ(flat_total,
            static_cast<int64_t>(cube->facts_aggregated()));
}

TEST(BaselineTest, Validation) {
  BaselineDgms baseline(nullptr);
  olap::CubeQuery q;
  q.measures = {{AggFn::kCount, "", "n"}};
  EXPECT_TRUE(baseline.Execute(q).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ddgms::core
