// Tests for the second extension batch: DdDgms::QuerySql, the random
// forest, and SVG chart rendering.

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/rng.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "mining/eval.h"
#include "mining/random_forest.h"
#include "report/svg.h"

namespace ddgms {
namespace {

class ExtrasTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    discri::CohortOptions opt;
    opt.num_patients = 180;
    opt.seed = 71;
    auto raw = discri::GenerateCohort(opt);
    ASSERT_TRUE(raw.ok());
    auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                    discri::MakeDiscriPipeline(),
                                    discri::MakeDiscriSchemaDef());
    ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
    dgms_ = new core::DdDgms(std::move(dgms).value());
  }
  static void TearDownTestSuite() {
    delete dgms_;
    dgms_ = nullptr;
  }
  static core::DdDgms* dgms_;
};

core::DdDgms* ExtrasTest::dgms_ = nullptr;

// ---------------------------------------------------------- QuerySql

TEST_F(ExtrasTest, SqlOverExtractMatchesOlap) {
  auto sql = dgms_->QuerySql(
      "SELECT Gender, count(*) AS n FROM extract "
      "WHERE DiabetesStatus = 'Type2' GROUP BY Gender ORDER BY Gender");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();

  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "Gender", {}}};
  q.slicers = {{"MedicalCondition", "DiabetesStatus",
                {Value::Str("Type2")}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());

  for (size_t r = 0; r < sql->num_rows(); ++r) {
    Value gender = *sql->GetCell(r, "Gender");
    EXPECT_EQ(*sql->GetCell(r, "n"), cube->CellValue({gender}));
  }
}

TEST_F(ExtrasTest, SqlOverDimensionTable) {
  auto result = dgms_->QuerySql(
      "SELECT count(*) AS members FROM PersonalInformation");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto dim = dgms_->warehouse().dimension("PersonalInformation");
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ(*result->GetCell(0, "members"),
            Value::Int(static_cast<int64_t>((*dim)->num_members())));
}

TEST_F(ExtrasTest, SqlOverFactTable) {
  auto result = dgms_->QuerySql(
      "SELECT avg(FBG) AS m FROM fact WHERE FBG IS NOT NULL");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE((*result->GetCell(0, "m")).is_null());
  EXPECT_TRUE(dgms_->QuerySql("SELECT * FROM nosuch")
                  .status()
                  .IsNotFound());
}

// ------------------------------------------------------ random forest

mining::CategoricalDataset MakeForestData(size_t n, uint64_t seed) {
  // y = (a XOR b) — a concept single shallow trees struggle with when
  // noise features abound, but bagging handles robustly.
  mining::CategoricalDataset ds;
  ds.feature_names = {"a", "b", "n1", "n2", "n3"};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    bool a = rng.Bernoulli(0.5);
    bool b = rng.Bernoulli(0.5);
    bool y = a != b;
    if (rng.Bernoulli(0.05)) y = !y;
    auto noise = [&] { return rng.Bernoulli(0.5) ? "u" : "v"; };
    ds.rows.push_back({a ? "t" : "f", b ? "t" : "f", noise(), noise(),
                       noise()});
    ds.labels.push_back(y ? "pos" : "neg");
  }
  return ds;
}

TEST(RandomForestTest, LearnsXorConcept) {
  auto data = MakeForestData(600, 81);
  Rng rng(82);
  auto split = data.Split(0.3, &rng);
  mining::RandomForestClassifier::Options opt;
  opt.num_trees = 31;
  opt.feature_fraction = 0.8;
  mining::RandomForestClassifier forest(opt);
  ASSERT_TRUE(forest.Train(split->first).ok());
  EXPECT_EQ(forest.num_trees(), 31u);
  auto report = mining::Evaluate(forest, split->second);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.85);
}

TEST(RandomForestTest, Validation) {
  mining::RandomForestClassifier forest;
  EXPECT_TRUE(
      forest.Predict({"x"}).status().IsFailedPrecondition());
  auto data = MakeForestData(40, 83);
  ASSERT_TRUE(forest.Train(data).ok());
  EXPECT_TRUE(forest.Predict({"t"}).status().IsInvalidArgument());
  mining::RandomForestClassifier::Options opt;
  opt.num_trees = 0;
  mining::RandomForestClassifier bad(opt);
  EXPECT_TRUE(bad.Train(data).IsInvalidArgument());
}

TEST(RandomForestTest, DeterministicForSeed) {
  auto data = MakeForestData(150, 84);
  mining::RandomForestClassifier a;
  mining::RandomForestClassifier b;
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(*a.Predict(data.rows[i]), *b.Predict(data.rows[i]));
  }
}

// --------------------------------------------------------------- SVG

Table MakeGrid() {
  Table grid(Schema::Make({{"Band", DataType::kString},
                           {"F", DataType::kInt64},
                           {"M", DataType::kInt64}})
                 .value());
  EXPECT_TRUE(grid.AppendRow({Value::Str("60-70"), Value::Int(12),
                              Value::Int(7)})
                  .ok());
  EXPECT_TRUE(grid.AppendRow({Value::Str("70-80 <y>"), Value::Int(9),
                              Value::Null()})
                  .ok());
  return grid;
}

TEST(SvgTest, RendersWellFormedChart) {
  auto svg = report::RenderSvgColumnChart(
      MakeGrid(), {.title = "Diabetics & co"});
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("<svg"), std::string::npos);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
  // Title and labels XML-escaped.
  EXPECT_NE(svg->find("Diabetics &amp; co"), std::string::npos);
  EXPECT_NE(svg->find("70-80 &lt;y&gt;"), std::string::npos);
  // One legend entry per series.
  EXPECT_NE(svg->find(">F<"), std::string::npos);
  EXPECT_NE(svg->find(">M<"), std::string::npos);
  // 2 groups x 2 series bars + 2 legend swatches + background.
  size_t rects = 0;
  for (size_t pos = 0;
       (pos = svg->find("<rect", pos)) != std::string::npos; ++pos) {
    ++rects;
  }
  EXPECT_EQ(rects, 7u);
}

TEST(SvgTest, WriteToFile) {
  std::string path = testing::TempDir() + "/ddgms_chart.svg";
  ASSERT_TRUE(report::WriteSvgColumnChart(MakeGrid(), path).ok());
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<svg"), std::string::npos);
}

TEST(SvgTest, Validation) {
  Table empty(Schema::Make({{"L", DataType::kString}}).value());
  EXPECT_TRUE(report::RenderSvgColumnChart(empty)
                  .status()
                  .IsInvalidArgument());
  Table no_rows(Schema::Make({{"L", DataType::kString},
                              {"V", DataType::kInt64}})
                    .value());
  EXPECT_TRUE(report::RenderSvgColumnChart(no_rows)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ddgms
