// Crash-safety tests for the durable warehouse tier: snapshot codec
// round-trips, journal replay/truncation, the commit protocol, and a
// fault-injection crash matrix asserting the durability invariant —
// after a failure at ANY write step, recovery yields either the full
// acknowledged state or a loud error, never silently wrong data.

#include <filesystem>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/io.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "gtest/gtest.h"
#include "olap/cache.h"
#include "table/table.h"
#include "warehouse/journal.h"
#include "warehouse/persist.h"
#include "warehouse/snapshot.h"
#include "warehouse/warehouse.h"

namespace ddgms {
namespace {

// ------------------------------------------------------------ helpers

/// Transformed DiScRi batch in Warehouse::AppendRows source form.
Table MakeBatch(size_t patients, uint64_t seed) {
  discri::CohortOptions opt;
  opt.num_patients = patients;
  opt.seed = seed;
  auto raw = discri::GenerateCohort(opt);
  EXPECT_TRUE(raw.ok()) << raw.status().ToString();
  Table batch = std::move(raw).value();
  auto pipeline = discri::MakeDiscriPipeline();
  EXPECT_TRUE(pipeline.Run(&batch).ok());
  return batch;
}

Result<warehouse::Warehouse> MakeWarehouse(size_t patients,
                                           uint64_t seed) {
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  return builder.Build(MakeBatch(patients, seed));
}

/// Fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void CorruptFile(const std::string& path, size_t offset) {
  auto bytes = ReadFileBinary(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ASSERT_LT(offset, bytes->size());
  (*bytes)[offset] ^= 0x5a;
  ASSERT_TRUE(WriteFileDurable(path, *bytes, /*sync=*/false).ok());
}

olap::CubeQuery CountByGenderQuery() {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "Gender", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  return q;
}

// ----------------------------------------------------- snapshot codec

TEST(SnapshotCodecTest, RoundTripBitExact) {
  auto wh = MakeWarehouse(120, 7);
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  std::string image = warehouse::EncodeSnapshot(*wh);
  auto decoded = warehouse::DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_fact_rows(), wh->num_fact_rows());
  EXPECT_EQ(decoded->dimensions().size(), wh->dimensions().size());
  EXPECT_TRUE(decoded->CheckIntegrity().ok);
  // Bit-exactness: the decoded warehouse re-encodes to the identical
  // byte string, so every double, date and string survived untouched.
  EXPECT_EQ(warehouse::EncodeSnapshot(*decoded), image);
  // Same OLAP answers.
  olap::CubeEngine a(&*wh);
  olap::CubeEngine b(&*decoded);
  auto ca = a.Execute(CountByGenderQuery());
  auto cb = b.Execute(CountByGenderQuery());
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  for (const Value& m : ca->AxisMembers(0)) {
    EXPECT_EQ(ca->CellValue({m}), cb->CellValue({m}));
  }
}

TEST(SnapshotCodecTest, TableEmptyStringDistinctFromNull) {
  ColumnVector col("Note", DataType::kString);
  col.AppendString("x");
  col.AppendString("");  // present but empty
  col.AppendNull();
  Table t;
  ASSERT_TRUE(t.AddColumn(std::move(col)).ok());

  std::string bytes;
  warehouse::EncodeTable(t, &bytes);
  auto back = warehouse::DecodeTable(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(back->column(0).IsNull(1));
  EXPECT_EQ(back->GetCell(1, "Note")->string_value(), "");
  EXPECT_TRUE(back->column(0).IsNull(2));
}

TEST(SnapshotCodecTest, EveryTruncationDetected) {
  auto wh = MakeWarehouse(30, 11);
  ASSERT_TRUE(wh.ok());
  std::string image = warehouse::EncodeSnapshot(*wh);
  // A snapshot cut off at any point must never decode.
  const size_t step = image.size() / 41 + 1;
  for (size_t cut = 0; cut < image.size(); cut += step) {
    auto r = warehouse::DecodeSnapshot(
        std::string_view(image).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(SnapshotCodecTest, EveryBitFlipDetected) {
  auto wh = MakeWarehouse(30, 13);
  ASSERT_TRUE(wh.ok());
  std::string image = warehouse::EncodeSnapshot(*wh);
  const size_t step = image.size() / 41 + 1;
  for (size_t at = 0; at < image.size(); at += step) {
    std::string bad = image;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    auto r = warehouse::DecodeSnapshot(bad);
    EXPECT_FALSE(r.ok()) << "flip at byte " << at << " went unnoticed";
  }
}

TEST(SnapshotCodecTest, FileRoundTripAndShortRead) {
  std::string dir = FreshDir("ddgms_snap_file");
  auto wh = MakeWarehouse(40, 17);
  ASSERT_TRUE(wh.ok());
  std::string path = dir + "/wh.ddws";
  ASSERT_TRUE(
      warehouse::WriteSnapshotFile(*wh, path, /*sync=*/false).ok());
  auto back = warehouse::ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_fact_rows(), wh->num_fact_rows());
  // Short read (torn write surfaced at the file layer).
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(path, *size / 2).ok());
  EXPECT_FALSE(warehouse::ReadSnapshotFile(path).ok());
}

// ------------------------------------------------- CSV empty strings

TEST(CsvEmptyStringTest, QuotedEmptyRoundTripsBareEmptyStaysNull) {
  ColumnVector ids("Id", DataType::kInt64);
  ids.AppendInt(1);
  ids.AppendInt(2);
  ids.AppendInt(3);
  ColumnVector col("Note", DataType::kString);
  col.AppendString("hello");
  col.AppendString("");
  col.AppendNull();
  Table t;
  ASSERT_TRUE(t.AddColumn(std::move(ids)).ok());
  ASSERT_TRUE(t.AddColumn(std::move(col)).ok());

  CsvWriteOptions wopt;
  wopt.quote_empty_strings = true;
  std::string csv = t.ToCsv(wopt);
  // The empty string is written quoted, the null bare.
  EXPECT_NE(csv.find("\"\""), std::string::npos);

  CsvReadOptions ropt;
  ropt.quoted_empty_is_string = true;
  auto back = Table::FromCsv(csv, ropt);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_FALSE(back->column(1).IsNull(1));
  EXPECT_EQ(back->GetCell(1, "Note")->string_value(), "");
  EXPECT_TRUE(back->column(1).IsNull(2));

  // Files written before the quoted-empty encoding (bare empties
  // everywhere) still read exactly as they always did: null.
  auto legacy = Table::FromCsv("Id,Note\n1,hello\n2,\n", ropt);
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(legacy->num_rows(), 2u);
  EXPECT_TRUE(legacy->column(1).IsNull(1));
}

TEST(CsvEmptyStringTest, SaveLoadWarehousePreservesEmptyStrings) {
  // End-to-end through the CSV persistence tier: a dimension member
  // whose attribute is the empty string must come back as "" (not
  // null), or integrity checks would pass while queries change.
  std::string dir = FreshDir("ddgms_csv_empty");
  auto wh = MakeWarehouse(50, 19);
  ASSERT_TRUE(wh.ok());
  ASSERT_TRUE(warehouse::SaveWarehouse(*wh, dir).ok());
  auto loaded = warehouse::LoadWarehouse(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_fact_rows(), wh->num_fact_rows());
}

// ------------------------------------------------------------ journal

TEST(JournalTest, AppendReplayRoundTrip) {
  std::string dir = FreshDir("ddgms_journal_rt");
  std::string path = dir + "/j.wal";
  Table b1 = MakeBatch(20, 23);
  Table b2 = MakeBatch(10, 29);
  {
    auto writer = warehouse::JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendBatch(b1, /*sync=*/false).ok());
    ASSERT_TRUE(writer->AppendBatch(b2, /*sync=*/false).ok());
  }
  std::vector<size_t> rows;
  auto stats = warehouse::ReplayJournal(
      path, [&](Table batch, size_t) {
        rows.push_back(batch.num_rows());
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->clean());
  EXPECT_EQ(stats->records_applied, 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], b1.num_rows());
  EXPECT_EQ(rows[1], b2.num_rows());
  ASSERT_EQ(stats->record_end_offsets.size(), 2u);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(stats->record_end_offsets[1], *size);
}

TEST(JournalTest, MissingJournalIsEmpty) {
  auto stats = warehouse::ReplayJournal(
      testing::TempDir() + "/ddgms_no_such.wal",
      [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->clean());
  EXPECT_EQ(stats->records_applied, 0u);
}

TEST(JournalTest, TornTailDetectedAndTruncated) {
  std::string dir = FreshDir("ddgms_journal_torn");
  std::string path = dir + "/j.wal";
  {
    auto writer = warehouse::JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendBatch(MakeBatch(15, 31), false).ok());
    ASSERT_TRUE(writer->AppendBatch(MakeBatch(15, 37), false).ok());
  }
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  // Tear the second record: keep its header plus some payload.
  auto clean_stats = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(clean_stats.ok());
  const uint64_t first_end = clean_stats->record_end_offsets[0];
  ASSERT_TRUE(TruncateFile(path, first_end + 40).ok());

  auto stats = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->clean());
  EXPECT_EQ(stats->records_applied, 1u);
  EXPECT_EQ(stats->valid_bytes, first_end);
  EXPECT_EQ(stats->dropped_bytes, 40u);

  ASSERT_TRUE(warehouse::TruncateJournalTail(path, *stats).ok());
  auto after = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->clean());
  EXPECT_EQ(after->records_applied, 1u);
}

TEST(JournalTest, CorruptRecordStopsReplay) {
  std::string dir = FreshDir("ddgms_journal_flip");
  std::string path = dir + "/j.wal";
  {
    auto writer = warehouse::JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendBatch(MakeBatch(12, 41), false).ok());
    ASSERT_TRUE(writer->AppendBatch(MakeBatch(12, 43), false).ok());
  }
  auto clean_stats = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(clean_stats.ok());
  // Flip a payload byte inside the second record.
  CorruptFile(path, clean_stats->record_end_offsets[0] + 20);
  auto stats = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 1u);
  EXPECT_FALSE(stats->clean());

  // Flip inside the first record: nothing applies.
  CorruptFile(path, 16);
  auto none = warehouse::ReplayJournal(
      path, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->records_applied, 0u);
  EXPECT_EQ(none->valid_bytes, 0u);
}

// ----------------------------------------------------- durable store

warehouse::DurabilityOptions FastOptions() {
  warehouse::DurabilityOptions opt;
  opt.sync = false;  // no power-loss simulation in these tests
  return opt;
}

TEST(DurableStoreTest, CommitLoadRoundTrip) {
  std::string dir = FreshDir("ddgms_store_rt");
  auto wh = MakeWarehouse(60, 47);
  ASSERT_TRUE(wh.ok());
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE(store->has_snapshot());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    EXPECT_EQ(store->seq(), 1u);
  }
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->seq(), 1u);
  auto loaded = store->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_fact_rows(), wh->num_fact_rows());
  EXPECT_TRUE(loaded->CheckIntegrity().ok);
}

TEST(DurableStoreTest, JournaledBatchesReplayOnLoad) {
  std::string dir = FreshDir("ddgms_store_journal");
  auto wh = MakeWarehouse(40, 53);
  ASSERT_TRUE(wh.ok());
  Table b1 = MakeBatch(10, 59);
  Table b2 = MakeBatch(5, 61);
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(b1).ok());
    ASSERT_TRUE(store->AppendBatch(b2).ok());
  }
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  auto loaded = store->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_fact_rows(),
            wh->num_fact_rows() + b1.num_rows() + b2.num_rows());
  EXPECT_TRUE(loaded->CheckIntegrity().ok);
  // Checkpointing compacts the journal into generation 2.
  ASSERT_TRUE(store->CommitSnapshot(*loaded).ok());
  EXPECT_EQ(store->seq(), 2u);
  auto size = FileSize(store->JournalPath(2));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST(DurableStoreTest, AppendBeforeCommitFails) {
  std::string dir = FreshDir("ddgms_store_nocommit");
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->AppendBatch(MakeBatch(3, 67)).IsFailedPrecondition());
  EXPECT_TRUE(store->Load().status().IsNotFound());
}

TEST(DurableStoreTest, PruneKeepsRetentionWindow) {
  std::string dir = FreshDir("ddgms_store_prune");
  auto wh = MakeWarehouse(20, 71);
  ASSERT_TRUE(wh.ok());
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
  }
  EXPECT_EQ(store->seq(), 3u);
  EXPECT_FALSE(FileExists(store->SnapshotPath(1)));
  EXPECT_TRUE(FileExists(store->SnapshotPath(2)));
  EXPECT_TRUE(FileExists(store->SnapshotPath(3)));
}

TEST(DurableStoreTest, CorruptManifestLoadFailsRecoverScans) {
  std::string dir = FreshDir("ddgms_store_badmanifest");
  auto wh = MakeWarehouse(30, 73);
  ASSERT_TRUE(wh.ok());
  Table batch = MakeBatch(8, 79);
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(batch).ok());
  }
  CorruptFile(dir + "/MANIFEST", 4);
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());  // Open tolerates it; Load must not.
    EXPECT_TRUE(store->Load().status().IsDataLoss());
    warehouse::RecoveryReport report;
    auto recovered = store->Recover(&report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_FALSE(report.manifest_intact);
    EXPECT_EQ(report.seq, 1u);
    EXPECT_EQ(report.journal_records_applied, 1u);
    EXPECT_EQ(recovered->num_fact_rows(),
              wh->num_fact_rows() + batch.num_rows());
  }
  // Recovery re-pointed the MANIFEST: a fresh strict load succeeds.
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Load().ok());
}

TEST(DurableStoreTest, CorruptSnapshotFallsBackToPreviousGeneration) {
  std::string dir = FreshDir("ddgms_store_fallback");
  auto wh = MakeWarehouse(30, 83);
  ASSERT_TRUE(wh.ok());
  Table batch = MakeBatch(10, 89);
  uint64_t expected_rows = 0;
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(batch).ok());
    auto full = store->Load();
    ASSERT_TRUE(full.ok());
    expected_rows = full->num_fact_rows();
    ASSERT_TRUE(store->CommitSnapshot(*full).ok());  // generation 2
  }
  // Generation 2's snapshot is destroyed; generation 1 + its journal
  // hold the same logical state.
  CorruptFile(dir + "/snapshot-000002.ddws", 100);
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  warehouse::RecoveryReport report;
  auto recovered = store->Recover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.used_fallback);
  EXPECT_EQ(report.seq, 1u);
  ASSERT_EQ(report.skipped_snapshots.size(), 1u);
  EXPECT_EQ(recovered->num_fact_rows(), expected_rows);
  EXPECT_FALSE(report.clean());
}

TEST(DurableStoreTest, TornJournalTailRecoveredAndTruncated) {
  std::string dir = FreshDir("ddgms_store_torn");
  auto wh = MakeWarehouse(30, 97);
  ASSERT_TRUE(wh.ok());
  Table batch = MakeBatch(10, 101);
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(batch).ok());
    ASSERT_TRUE(store->AppendBatch(MakeBatch(10, 103)).ok());
  }
  // Tear the second record mid-payload, as a crash during a journaled
  // acquisition would.
  std::string journal = dir + "/journal-000001.wal";
  auto stats = warehouse::ReplayJournal(
      journal, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(
      TruncateFile(journal, stats->record_end_offsets[0] + 30).ok());

  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Load().status().IsDataLoss());  // strict says no
  warehouse::RecoveryReport report;
  auto recovered = store->Recover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.journal_records_applied, 1u);
  EXPECT_FALSE(report.journal_corruption.empty());
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_GT(report.journal_bytes_dropped, 0u);
  EXPECT_EQ(recovered->num_fact_rows(),
            wh->num_fact_rows() + batch.num_rows());
  // The journal is clean again: appends and strict loads both work.
  Table more = MakeBatch(5, 107);
  ASSERT_TRUE(store->AppendBatch(more).ok());
  auto reopened =
      warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(reopened.ok());
  auto strict = reopened->Load();
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->num_fact_rows(),
            wh->num_fact_rows() + batch.num_rows() + more.num_rows());
}

TEST(DurableStoreTest, UnappliableJournalRecordRollsBackToPrefix) {
  std::string dir = FreshDir("ddgms_store_badrecord");
  auto wh = MakeWarehouse(30, 109);
  ASSERT_TRUE(wh.ok());
  Table good = MakeBatch(10, 113);
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(good).ok());
  }
  // Append a record that decodes fine but cannot be applied (wrong
  // schema — AppendRows will reject it).
  {
    auto writer =
        warehouse::JournalWriter::Open(dir + "/journal-000001.wal");
    ASSERT_TRUE(writer.ok());
    ColumnVector col("NotAColumn", DataType::kInt64);
    col.AppendInt(1);
    Table bogus;
    ASSERT_TRUE(bogus.AddColumn(std::move(col)).ok());
    ASSERT_TRUE(writer->AppendBatch(bogus, /*sync=*/false).ok());
  }
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Load().ok());
  warehouse::RecoveryReport report;
  auto recovered = store->Recover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.journal_records_applied, 1u);
  EXPECT_EQ(report.journal_records_dropped, 1u);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_EQ(recovered->num_fact_rows(),
            wh->num_fact_rows() + good.num_rows());
  EXPECT_TRUE(recovered->CheckIntegrity().ok);
}

TEST(DurableStoreTest, NothingReadableFailsLoudly) {
  std::string dir = FreshDir("ddgms_store_hopeless");
  auto wh = MakeWarehouse(20, 127);
  ASSERT_TRUE(wh.ok());
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
  }
  CorruptFile(dir + "/snapshot-000001.ddws", 50);
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  warehouse::RecoveryReport report;
  auto recovered = store->Recover(&report);
  EXPECT_TRUE(recovered.status().IsDataLoss());
  EXPECT_EQ(report.skipped_snapshots.size(), 1u);
}

// ------------------------------------------------------- crash matrix
//
// The durability invariant, checked at every write-path fault point:
// whatever step fails, afterwards (a) every acknowledged batch is
// still recoverable, (b) recovery itself succeeds, and (c) the store
// ends in a state a strict Load accepts. Faults are injected as
// errors at the exact syscalls a crash would tear.

class CrashMatrixTest : public testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_P(CrashMatrixTest, RecoversAfterFaultAtEveryWriteStep) {
  const std::string point = GetParam();
  std::string dir =
      FreshDir("ddgms_crash_" + std::to_string(
          std::hash<std::string>{}(point) % 100000));
  auto wh = MakeWarehouse(25, 131);
  ASSERT_TRUE(wh.ok());
  Table batch = MakeBatch(8, 137);
  const size_t base_rows = wh->num_fact_rows();
  const size_t full_rows = base_rows + batch.num_rows();

  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
  warehouse::Warehouse full = *wh;
  ASSERT_TRUE(full.AppendRows(batch).ok());

  bool append_acknowledged = false;
  {
    // Every subsequent hit of the point fails, covering first-hit and
    // retry-hit positions along both the append and commit paths.
    FaultPlan plan;
    plan.code = StatusCode::kDataLoss;
    plan.fail_first = 1000;
    ScopedFault fault(point, plan);
    append_acknowledged = store->AppendBatch(batch).ok();
    (void)store->CommitSnapshot(full);  // may fail; must not corrupt
  }
  FaultRegistry::Global().Reset();

  auto reopened =
      warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  warehouse::RecoveryReport report;
  auto recovered = reopened->Recover(&report);
  ASSERT_TRUE(recovered.ok())
      << point << ": " << recovered.status().ToString();
  EXPECT_TRUE(recovered->CheckIntegrity().ok) << point;
  if (append_acknowledged) {
    // An acknowledged append must survive whatever happened next.
    EXPECT_EQ(recovered->num_fact_rows(), full_rows) << point;
  } else {
    EXPECT_TRUE(recovered->num_fact_rows() == base_rows ||
                recovered->num_fact_rows() == full_rows)
        << point << ": " << recovered->num_fact_rows();
  }
  // Recovery leaves a state the strict path accepts.
  auto fresh = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Load().ok()) << point;
}

INSTANTIATE_TEST_SUITE_P(
    WritePath, CrashMatrixTest,
    testing::Values("io.durable.open", "io.durable.write",
                    "io.durable.sync", "io.durable.rename",
                    "io.durable.dirsync", "io.append.open",
                    "io.append.write", "io.append.sync",
                    "snapshot.write", "journal.open",
                    "journal.append_batch", "journal.sync",
                    "persist.commit", "persist.manifest.write"));

/// Read-side faults must surface loudly from the strict path and clear
/// once the transient goes away.
class ReadFaultTest : public testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_P(ReadFaultTest, StrictLoadFailsLoudlyThenRecovers) {
  const std::string point = GetParam();
  std::string dir =
      FreshDir("ddgms_readfault_" + std::to_string(
          std::hash<std::string>{}(point) % 100000));
  auto wh = MakeWarehouse(20, 139);
  ASSERT_TRUE(wh.ok());
  {
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->CommitSnapshot(*wh).ok());
    ASSERT_TRUE(store->AppendBatch(MakeBatch(6, 149)).ok());
  }
  {
    FaultPlan plan;
    plan.code = StatusCode::kDataLoss;
    plan.fail_first = 1000;
    ScopedFault fault(point, plan);
    auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
    if (store.ok()) {
      EXPECT_FALSE(store->Load().ok()) << point;
    }
  }
  FaultRegistry::Global().Reset();
  auto store = warehouse::DurableWarehouseStore::Open(dir, FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Load().ok()) << point;
}

INSTANTIATE_TEST_SUITE_P(
    ReadPath, ReadFaultTest,
    testing::Values("io.read_file", "snapshot.read",
                    "snapshot.read_section", "journal.replay_record",
                    "persist.load"));

// ------------------------------------------- cache across recovery

TEST(CacheRecoveryTest, GenerationStampInvalidatesOnReloadSameRowCount) {
  // A recovered warehouse can have the same fact-row count as the
  // cached one (here: an identical reload); the generation stamp
  // (not a row-count heuristic) must still invalidate the cache.
  auto wh1 = MakeWarehouse(40, 151);
  auto wh2 = MakeWarehouse(40, 151);
  ASSERT_TRUE(wh1.ok());
  ASSERT_TRUE(wh2.ok());
  ASSERT_EQ(wh1->num_fact_rows(), wh2->num_fact_rows());
  ASSERT_NE(wh1->generation(), wh2->generation());

  warehouse::Warehouse wh = std::move(wh1).value();
  olap::CachingCubeEngine engine(&wh);
  ASSERT_TRUE(engine.Execute(CountByGenderQuery()).ok());
  ASSERT_TRUE(engine.Execute(CountByGenderQuery()).ok());
  EXPECT_EQ(engine.hits(), 1u);
  const size_t misses_before = engine.misses();

  // In-place reload, as LoadDurable/RecoverDurable's facade does.
  wh = std::move(wh2).value();
  auto after = engine.Execute(CountByGenderQuery());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(engine.misses(), misses_before + 1);
  int64_t total = 0;
  for (const Value& m : (*after)->AxisMembers(0)) {
    total += (*after)->CellValue({m}).int_value();
  }
  EXPECT_EQ(total, static_cast<int64_t>(wh.num_fact_rows()));
}

// -------------------------------------------------- facade round trip

TEST(DurableFacadeTest, AttachAcquireLoadRecover) {
  std::string dir = FreshDir("ddgms_facade");
  discri::CohortOptions opt;
  opt.num_patients = 50;
  opt.seed = 163;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());
  EXPECT_FALSE(dgms->durable());
  EXPECT_TRUE(dgms->Checkpoint().IsFailedPrecondition());
  warehouse::DurabilityOptions fast = FastOptions();
  ASSERT_TRUE(dgms->AttachDurableStorage(dir, fast).ok());
  EXPECT_TRUE(dgms->durable());
  EXPECT_TRUE(
      dgms->AttachDurableStorage(dir, fast).IsFailedPrecondition());

  opt.num_patients = 20;
  opt.seed = 167;
  auto extra = discri::GenerateCohort(opt);
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(dgms->AcquireData(*extra).ok());
  const size_t rows = dgms->warehouse().num_fact_rows();

  // Strict load sees snapshot + journaled acquisition.
  auto loaded = core::DdDgms::LoadDurable(
      dir, discri::MakeDiscriPipeline(), {}, fast);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->warehouse().num_fact_rows(), rows);
  auto mdx = loaded->QueryMdx(
      "SELECT [PersonalInformation].[Gender].Members ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(mdx.ok()) << mdx.status().ToString();

  warehouse::RecoveryReport report;
  auto recovered = core::DdDgms::RecoverDurable(
      dir, discri::MakeDiscriPipeline(), &report, {}, fast);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(recovered->warehouse().num_fact_rows(), rows);
}

}  // namespace
}  // namespace ddgms
