// Unit tests for the OLAP cube engine: execution, slice/dice,
// roll-up/drill-down, pivot.

#include <gtest/gtest.h>

#include <cmath>

#include "olap/cube.h"
#include "warehouse/warehouse.h"

namespace ddgms::olap {
namespace {

using warehouse::Dimension;
using warehouse::DimensionDef;
using warehouse::Hierarchy;
using warehouse::MeasureDef;
using warehouse::StarSchemaBuilder;
using warehouse::StarSchemaDef;
using warehouse::Warehouse;

// Same fixture extract as warehouse_test, kept local for independence.
Table MakeExtract() {
  auto schema = Schema::Make({{"Gender", DataType::kString},
                              {"AgeBand10", DataType::kString},
                              {"AgeBand5", DataType::kString},
                              {"Diabetes", DataType::kString},
                              {"FBG", DataType::kDouble}});
  Table t(std::move(schema).value());
  struct R {
    const char* g;
    const char* b10;
    const char* b5;
    const char* d;
    double fbg;
  };
  const R rows[] = {
      {"F", "70-80", "70-75", "Yes", 8.0},
      {"M", "70-80", "70-75", "Yes", 7.5},
      {"F", "70-80", "75-80", "Yes", 9.0},
      {"F", "70-80", "75-80", "No", 5.0},
      {"M", "60-70", "60-65", "No", 5.4},
      {"M", "60-70", "65-70", "Yes", 8.8},
      {"F", "60-70", "65-70", "No", 5.2},
      {"F", "70-80", "70-75", "Yes", 7.9},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Str(r.g), Value::Str(r.b10),
                             Value::Str(r.b5), Value::Str(r.d),
                             Value::Real(r.fbg)})
                    .ok());
  }
  return t;
}

Warehouse MakeWarehouse() {
  StarSchemaDef def;
  def.fact_name = "Facts";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef person;
  person.name = "Person";
  person.attributes = {"Gender", "AgeBand10", "AgeBand5"};
  person.hierarchies = {Hierarchy{"AgeBands", {"AgeBand10", "AgeBand5"}}};
  DimensionDef condition;
  condition.name = "Condition";
  condition.attributes = {"Diabetes"};
  def.dimensions = {person, condition};
  auto wh = StarSchemaBuilder(def).Build(MakeExtract());
  EXPECT_TRUE(wh.ok()) << wh.status().ToString();
  return std::move(wh).value();
}

CubeQuery CountByGender() {
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  return q;
}

TEST(CubeTest, CountByOneAxis) {
  Warehouse wh = MakeWarehouse();
  auto cube = CubeEngine(&wh).Execute(CountByGender());
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_cells(), 2u);
  EXPECT_EQ(cube->facts_aggregated(), 8u);
  EXPECT_EQ(cube->CellValue({Value::Str("F")}), Value::Int(5));
  EXPECT_EQ(cube->CellValue({Value::Str("M")}), Value::Int(3));
  EXPECT_EQ(cube->CellCount({Value::Str("F")}), 5u);
  EXPECT_TRUE(cube->CellValue({Value::Str("X")}).is_null());
}

TEST(CubeTest, TwoAxesWithSlicer) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "AgeBand5", {}},
            AxisSpec{"Person", "Gender", {}}};
  q.slicers = {SlicerSpec{"Condition", "Diabetes", {Value::Str("Yes")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->facts_aggregated(), 5u);
  EXPECT_EQ(cube->CellValue({Value::Str("70-75"), Value::Str("F")}),
            Value::Int(2));
  EXPECT_EQ(cube->CellValue({Value::Str("70-75"), Value::Str("M")}),
            Value::Int(1));
  EXPECT_EQ(cube->CellValue({Value::Str("75-80"), Value::Str("F")}),
            Value::Int(1));
}

TEST(CubeTest, MultipleMeasures) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Condition", "Diabetes", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"},
                AggSpec{AggFn::kAvg, "FBG", "avg_fbg"},
                AggSpec{AggFn::kMax, "FBG", "max_fbg"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  std::vector<Value> yes = {Value::Str("Yes")};
  EXPECT_EQ(cube->CellValue(yes, 0), Value::Int(5));
  EXPECT_NEAR(cube->CellValue(yes, 1).double_value(),
              (8.0 + 7.5 + 9.0 + 8.8 + 7.9) / 5.0, 1e-9);
  EXPECT_EQ(cube->CellValue(yes, 2), Value::Real(9.0));
}

TEST(CubeTest, AxisMemberRestrictionPreservesOrder) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person",
                     "AgeBand5",
                     {Value::Str("75-80"), Value::Str("70-75")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  // Only restricted members, in the caller's order.
  ASSERT_EQ(cube->AxisMembers(0).size(), 2u);
  EXPECT_EQ(cube->AxisMembers(0)[0], Value::Str("75-80"));
  EXPECT_EQ(cube->AxisMembers(0)[1], Value::Str("70-75"));
  // 3 facts in 70-75 + 2 in 75-80.
  EXPECT_EQ(cube->facts_aggregated(), 5u);
}

TEST(CubeTest, SliceRemovesAxisAndFilters) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender", {}},
            AxisSpec{"Condition", "Diabetes", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  auto sliced = cube->Slice("Condition", "Diabetes", Value::Str("Yes"));
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->num_axes(), 1u);
  EXPECT_EQ(sliced->CellValue({Value::Str("F")}), Value::Int(3));
  EXPECT_EQ(sliced->CellValue({Value::Str("M")}), Value::Int(2));
}

TEST(CubeTest, DiceRestrictsMembers) {
  Warehouse wh = MakeWarehouse();
  auto cube = CubeEngine(&wh).Execute(CountByGender());
  ASSERT_TRUE(cube.ok());
  auto diced = cube->Dice("Person", "Gender", {Value::Str("F")});
  ASSERT_TRUE(diced.ok());
  EXPECT_EQ(diced->facts_aggregated(), 5u);
  // Dice on a non-axis attribute becomes a slicer.
  auto diced2 = cube->Dice("Condition", "Diabetes", {Value::Str("No")});
  ASSERT_TRUE(diced2.ok());
  EXPECT_EQ(diced2->facts_aggregated(), 3u);
}

TEST(CubeTest, RollUpRemovesAxis) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender", {}},
            AxisSpec{"Condition", "Diabetes", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  auto rolled = cube->RollUp(1);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->num_axes(), 1u);
  EXPECT_EQ(rolled->CellValue({Value::Str("F")}), Value::Int(5));
  EXPECT_TRUE(cube->RollUp(5).status().IsOutOfRange());
}

TEST(CubeTest, DrillDownFollowsHierarchy) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "AgeBand10", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->CellValue({Value::Str("70-80")}), Value::Int(5));

  auto drilled = cube->DrillDown(0);
  ASSERT_TRUE(drilled.ok());
  EXPECT_EQ(drilled->query().axes[0].attribute, "AgeBand5");
  EXPECT_EQ(drilled->CellValue({Value::Str("70-75")}), Value::Int(3));
  EXPECT_EQ(drilled->CellValue({Value::Str("75-80")}), Value::Int(2));

  // Drill-down sums must reproduce the coarse counts.
  int64_t total_70_80 =
      drilled->CellValue({Value::Str("70-75")}).int_value() +
      drilled->CellValue({Value::Str("75-80")}).int_value();
  EXPECT_EQ(total_70_80, 5);

  // Rolling the drilled cube back up restores the coarse level.
  auto rolled = drilled->RollUpToCoarser(0);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->CellValue({Value::Str("70-80")}), Value::Int(5));

  // AgeBand5 is the finest level.
  EXPECT_TRUE(drilled->DrillDown(0).status().IsNotFound());
  // Gender has no hierarchy.
  auto gender_cube = CubeEngine(&wh).Execute(CountByGender());
  EXPECT_TRUE(gender_cube->DrillDown(0).status().IsNotFound());
}

TEST(CubeTest, ToTableSortedAndNonEmpty) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender", {}},
            AxisSpec{"Condition", "Diabetes", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  auto table = cube->ToTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 4u);  // F/M x Yes/No all non-empty
  EXPECT_EQ(table->schema().field(0).name, "Gender");
  EXPECT_EQ(table->schema().field(1).name, "Diabetes");
  EXPECT_EQ(table->schema().field(2).name, "n");
  // Sorted by coordinates: F/No, F/Yes, M/No, M/Yes.
  EXPECT_EQ(*table->GetCell(0, "Gender"), Value::Str("F"));
  EXPECT_EQ(*table->GetCell(0, "Diabetes"), Value::Str("No"));
  EXPECT_EQ(*table->GetCell(0, "n"), Value::Int(2));
}

TEST(CubeTest, PivotGrid) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "AgeBand10", {}},
            AxisSpec{"Person", "Gender", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  auto grid = cube->Pivot(0, 1);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_rows(), 2u);     // 60-70, 70-80
  EXPECT_EQ(grid->num_columns(), 3u);  // label, F, M
  EXPECT_EQ(*grid->GetCell(1, "F"), Value::Int(4));
  EXPECT_EQ(*grid->GetCell(1, "M"), Value::Int(1));
  // Empty cells are null.
  EXPECT_TRUE(grid->schema().HasField("F"));
  // Pivot on a 1-axis cube fails.
  auto cube1 = CubeEngine(&wh).Execute(CountByGender());
  EXPECT_TRUE(cube1->Pivot(0, 1).status().IsFailedPrecondition());
}

TEST(CubeTest, ErrorsOnBadQuery) {
  Warehouse wh = MakeWarehouse();
  CubeEngine engine(&wh);
  CubeQuery no_measures;
  no_measures.axes = {AxisSpec{"Person", "Gender", {}}};
  EXPECT_TRUE(engine.Execute(no_measures).status().IsInvalidArgument());

  CubeQuery bad_dim = CountByGender();
  bad_dim.axes[0].dimension = "Nope";
  EXPECT_TRUE(engine.Execute(bad_dim).status().IsNotFound());

  CubeQuery bad_attr = CountByGender();
  bad_attr.axes[0].attribute = "Nope";
  EXPECT_TRUE(engine.Execute(bad_attr).status().IsNotFound());

  CubeQuery bad_measure = CountByGender();
  bad_measure.measures = {AggSpec{AggFn::kAvg, "Nope", ""}};
  EXPECT_TRUE(engine.Execute(bad_measure).status().IsNotFound());

  CubeQuery avg_no_col = CountByGender();
  avg_no_col.measures = {AggSpec{AggFn::kAvg, "", ""}};
  EXPECT_TRUE(engine.Execute(avg_no_col).status().IsInvalidArgument());
}

TEST(CubeTest, ZeroAxesGrandTotal) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.measures = {AggSpec{AggFn::kCount, "", "n"},
                AggSpec{AggFn::kAvg, "FBG", "avg"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_cells(), 1u);
  EXPECT_EQ(cube->CellValue({}, 0), Value::Int(8));
}

TEST(CubeTest, ParallelScanMatchesSerial) {
  // Build a bigger warehouse so the parallel path engages, then check
  // every cell of a multi-measure query against the serial engine.
  auto schema = Schema::Make({{"G", DataType::kString},
                              {"B", DataType::kString},
                              {"V", DataType::kDouble}});
  Table t(std::move(schema).value());
  for (int i = 0; i < 40000; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Str(i % 2 == 0 ? "x" : "y"),
                     Value::Str(std::to_string(i % 7)),
                     Value::Real(static_cast<double>(i % 113) / 3.0)})
            .ok());
  }
  StarSchemaDef def;
  def.fact_name = "F";
  def.measures = {MeasureDef{"V", "V"}};
  DimensionDef d{"D", {"G", "B"}, {}};
  def.dimensions = {d};
  auto wh = StarSchemaBuilder(def).Build(t);
  ASSERT_TRUE(wh.ok());

  CubeQuery q;
  q.axes = {AxisSpec{"D", "G", {}}, AxisSpec{"D", "B", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"},
                AggSpec{AggFn::kSum, "V", "s"},
                AggSpec{AggFn::kMin, "V", "lo"},
                AggSpec{AggFn::kMax, "V", "hi"},
                AggSpec{AggFn::kCountDistinct, "V", "d"}};
  auto serial = CubeEngine(&*wh).Execute(q);
  ASSERT_TRUE(serial.ok());
  CubeEngineOptions opt;
  opt.num_threads = 4;
  opt.parallel_threshold = 1000;
  auto parallel = CubeEngine(&*wh, opt).Execute(q);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(parallel->num_cells(), serial->num_cells());
  EXPECT_EQ(parallel->facts_aggregated(), serial->facts_aggregated());
  for (const Value& g : serial->AxisMembers(0)) {
    for (const Value& b : serial->AxisMembers(1)) {
      for (size_t m = 0; m < q.measures.size(); ++m) {
        Value sv = serial->CellValue({g, b}, m);
        Value pv = parallel->CellValue({g, b}, m);
        if (sv.is_null() || pv.is_null()) {
          EXPECT_EQ(sv.is_null(), pv.is_null());
        } else if (sv.type() == DataType::kDouble) {
          EXPECT_NEAR(sv.double_value(), pv.double_value(),
                      1e-6 * std::max(1.0, std::fabs(sv.double_value())));
        } else {
          EXPECT_TRUE(sv.Equals(pv));
        }
      }
    }
  }
}

TEST(CubeTest, TopCellsRanking) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "AgeBand5", {}},
            AxisSpec{"Person", "Gender", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  auto top = cube->TopCells(2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  // Largest cell: (70-75, F) with 2 facts (rows 1,8).
  EXPECT_EQ((*top)[0].coordinates[0], Value::Str("70-75"));
  EXPECT_EQ((*top)[0].coordinates[1], Value::Str("F"));
  EXPECT_DOUBLE_EQ((*top)[0].value, 2.0);
  EXPECT_GE((*top)[0].value, (*top)[1].value);

  auto bottom = cube->TopCells(1, 0, /*largest=*/false);
  ASSERT_TRUE(bottom.ok());
  EXPECT_DOUBLE_EQ((*bottom)[0].value, 1.0);

  // k larger than cell count returns everything.
  auto all = cube->TopCells(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), cube->num_cells());
  EXPECT_TRUE(cube->TopCells(3, 9).status().IsOutOfRange());
}

TEST(CubeTest, NullAttributeValuesFormCoordinates) {
  // A null attribute value is a legitimate dimension member and must
  // group facts like any other coordinate.
  Table extract = MakeExtract();
  ASSERT_TRUE(extract.SetCell(0, "Diabetes", Value::Null()).ok());
  ASSERT_TRUE(extract.SetCell(4, "Diabetes", Value::Null()).ok());
  StarSchemaDef def;
  def.fact_name = "Facts";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef condition;
  condition.name = "Condition";
  condition.attributes = {"Diabetes"};
  def.dimensions = {condition};
  auto wh = StarSchemaBuilder(def).Build(extract);
  ASSERT_TRUE(wh.ok());
  CubeQuery q;
  q.axes = {AxisSpec{"Condition", "Diabetes", {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&*wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_cells(), 3u);  // Yes, No, null
  EXPECT_EQ(cube->CellValue({Value::Null()}), Value::Int(2));
  // Null sorts first in the member list.
  EXPECT_TRUE(cube->AxisMembers(0).front().is_null());
}

TEST(CubeTest, RestrictedMemberAbsentFromDimensionIsEmpty) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender",
                     {Value::Str("F"), Value::Str("X")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  q.non_empty = true;
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  // "X" never occurs: dropped from the axis under non_empty.
  ASSERT_EQ(cube->AxisMembers(0).size(), 1u);
  EXPECT_EQ(cube->AxisMembers(0)[0], Value::Str("F"));
  EXPECT_TRUE(cube->CellValue({Value::Str("X")}).is_null());

  // With non_empty=false the restricted member stays visible.
  q.non_empty = false;
  auto padded = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(padded.ok());
  ASSERT_EQ(padded->AxisMembers(0).size(), 2u);
  EXPECT_EQ(padded->AxisMembers(0)[1], Value::Str("X"));
}

TEST(CubeTest, DuplicateRestrictionMembersDeduplicated) {
  Warehouse wh = MakeWarehouse();
  CubeQuery q;
  q.axes = {AxisSpec{"Person", "Gender",
                     {Value::Str("F"), Value::Str("F")}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->AxisMembers(0).size(), 1u);
  EXPECT_EQ(cube->facts_aggregated(), 5u);
}

// Property sweep: for any axis attribute, per-cell counts sum to the
// slicer-admitted fact count.
class CubePartitionTest : public ::testing::TestWithParam<
                              std::pair<const char*, const char*>> {};

TEST_P(CubePartitionTest, CellCountsPartitionFacts) {
  Warehouse wh = MakeWarehouse();
  auto [dim, attr] = GetParam();
  CubeQuery q;
  q.axes = {AxisSpec{dim, attr, {}}};
  q.measures = {AggSpec{AggFn::kCount, "", "n"}};
  auto cube = CubeEngine(&wh).Execute(q);
  ASSERT_TRUE(cube.ok());
  int64_t total = 0;
  for (const Value& member : cube->AxisMembers(0)) {
    total += cube->CellValue({member}).int_value();
  }
  EXPECT_EQ(total, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, CubePartitionTest,
    ::testing::Values(std::make_pair("Person", "Gender"),
                      std::make_pair("Person", "AgeBand10"),
                      std::make_pair("Person", "AgeBand5"),
                      std::make_pair("Condition", "Diabetes")));

}  // namespace
}  // namespace ddgms::olap
