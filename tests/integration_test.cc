// Integration tests: the paper's evaluation (§V) reproduced end to end
// against the full DD-DGMS stack — Table I, Figs 4/5/6 shapes, the
// AWSum-style interaction finding, trajectory prediction, and the
// closed knowledge loop.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/io.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "discri/schemes.h"
#include "etl/temporal.h"
#include "mining/awsum.h"
#include "mining/dataset.h"
#include "mining/eval.h"
#include "mining/naive_bayes.h"
#include "predict/markov.h"
#include "warehouse/journal.h"
#include "warehouse/persist.h"

namespace ddgms {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    discri::CohortOptions opt;  // full-size cohort, default seed
    auto raw = discri::GenerateCohort(opt);
    ASSERT_TRUE(raw.ok());
    auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                    discri::MakeDiscriPipeline(),
                                    discri::MakeDiscriSchemaDef());
    ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
    dgms_ = new core::DdDgms(std::move(dgms).value());
  }
  static void TearDownTestSuite() {
    delete dgms_;
    dgms_ = nullptr;
  }
  static core::DdDgms* dgms_;
};

core::DdDgms* IntegrationTest::dgms_ = nullptr;

// Fig 4: family history of diabetes by age group and gender — the
// drag-and-drop query, expressed in MDX.
TEST_F(IntegrationTest, Fig4FamilyHistoryCrossTab) {
  auto result = dgms_->QueryMdx(
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
      "CROSSJOIN( { [PersonalInformation].[AgeBand].Members }, "
      "{ [PersonalInformation].[FamilyHistoryDiabetes].Members } ) "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cube.num_axes(), 3u);
  EXPECT_EQ(result->cube.facts_aggregated(),
            dgms_->warehouse().num_fact_rows());
  // Family history rate should be roughly age-independent (~30%).
  auto table = result->cube.ToTable();
  ASSERT_TRUE(table.ok());
  EXPECT_GT(table->num_rows(), 8u);
}

// Fig 5: age and gender distribution of patients with diabetes, with
// drill-down from 10-year to 5-year bands.
TEST_F(IntegrationTest, Fig5AgeGenderDistributionAndDrillDown) {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand10", {}},
            {"PersonalInformation", "Gender", {}}};
  q.slicers = {{"MedicalCondition", "DiabetesStatus",
                {Value::Str("Type2")}}};
  q.measures = {{AggFn::kCount, "", "patients"}};
  auto coarse = dgms_->Query(q);
  ASSERT_TRUE(coarse.ok());

  // Coarse level: diabetes counts peak in the older bands.
  auto count = [](const olap::Cube& cube, const char* band,
                  const char* gender) {
    Value v = cube.CellValue({Value::Str(band), Value::Str(gender)});
    return v.is_null() ? int64_t{0} : v.int_value();
  };
  int64_t total_60_70 =
      count(*coarse, "60-70", "F") + count(*coarse, "60-70", "M");
  int64_t total_40_50 =
      count(*coarse, "40-50", "F") + count(*coarse, "40-50", "M");
  EXPECT_GT(total_60_70, total_40_50);

  // Drill down (the paper's headline interaction): males dominate
  // 70-75, females dominate 75-80.
  auto fine = coarse->DrillDown(0);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(fine->query().axes[0].attribute, "AgeBand5");
  EXPECT_GT(count(*fine, "70-75", "M"), count(*fine, "70-75", "F"));
  EXPECT_GT(count(*fine, "75-80", "F"), count(*fine, "75-80", "M"));

  // Female diabetic counts drop substantially past 80.
  EXPECT_LT(count(*fine, "80-85", "F"), count(*fine, "75-80", "F"));

  // Consistency: drill-down counts sum back to the coarse cell.
  int64_t sum_fine = count(*fine, "70-75", "F") +
                     count(*fine, "75-80", "F");
  EXPECT_EQ(sum_fine, count(*coarse, "70-80", "F"));
}

// Fig 6: years-since-HT-diagnosis by age band; the 5-10y dip in the
// 70-75 and 75-80 sub-bands.
TEST_F(IntegrationTest, Fig6HypertensionDurationDip) {
  olap::CubeQuery q;
  auto duration_labels = discri::DiagnosticHtYearsScheme().labels();
  std::vector<Value> duration_members;
  for (const std::string& l : duration_labels) {
    duration_members.push_back(Value::Str(l));
  }
  q.axes = {{"PersonalInformation", "AgeBand5", {}},
            {"MedicalCondition", "DiagnosticHTYearsBand",
             duration_members}};
  q.slicers = {{"MedicalCondition", "HypertensionStatus",
                {Value::Str("Yes")}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());

  auto band_count = [&](const char* age, const char* dur) {
    Value v = cube->CellValue({Value::Str(age), Value::Str(dur)});
    return v.is_null() ? int64_t{0} : v.int_value();
  };
  for (const char* age : {"70-75", "75-80"}) {
    int64_t n_5_10 = band_count(age, "5-10");
    int64_t n_2_5 = band_count(age, "2-5");
    int64_t n_10_20 = band_count(age, "10-20");
    // The dip: 5-10y cases far below both neighbours.
    EXPECT_LT(n_5_10 * 2, n_2_5) << age;
    EXPECT_LT(n_5_10 * 2, n_10_20) << age;
  }
  // No dip in the 60-65 band.
  EXPECT_GT(band_count("60-65", "5-10") * 2,
            band_count("60-65", "2-5"));
}

// Data analytics on an OLAP-isolated subset: classifiers recover the
// diabetes concept, and AWSum surfaces the reflex/glucose interaction
// the paper's motivation recounts.
TEST_F(IntegrationTest, MiningRecoversDiabetesSignal) {
  auto view = dgms_->IsolateSubset(
      {"FBGBand", "AnkleReflexes", "KneeReflexes", "BMIBand", "AgeBand",
       "FamilyHistoryDiabetes", "DiabetesStatus"});
  ASSERT_TRUE(view.ok());
  auto data = mining::CategoricalDataset::FromTable(
      *view,
      {"FBGBand", "AnkleReflexes", "KneeReflexes", "BMIBand", "AgeBand",
       "FamilyHistoryDiabetes"},
      "DiabetesStatus");
  ASSERT_TRUE(data.ok());
  Rng rng(123);
  auto split = data->Split(0.3, &rng);
  ASSERT_TRUE(split.ok());

  mining::NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Train(split->first).ok());
  auto report = mining::Evaluate(nb, split->second);
  ASSERT_TRUE(report.ok());
  double baseline =
      *mining::MajorityBaselineAccuracy(split->first, split->second);
  EXPECT_GT(report->accuracy, baseline + 0.05);
  EXPECT_GT(report->accuracy, 0.85);  // FBG band is highly predictive
}

TEST_F(IntegrationTest, AwsumSurfacesReflexInteraction) {
  auto view = dgms_->IsolateSubset(
      {"FBGBand", "AnkleReflexes", "DiabetesStatus"});
  ASSERT_TRUE(view.ok());
  auto data = mining::CategoricalDataset::FromTable(
      *view, {"FBGBand", "AnkleReflexes"}, "DiabetesStatus");
  ASSERT_TRUE(data.ok());
  mining::AwsumClassifier awsum;
  ASSERT_TRUE(awsum.Train(*data).ok());
  auto influences = awsum.Influences();
  ASSERT_TRUE(influences.ok());
  // Absent ankle reflexes push toward Type2 more than normal reflexes.
  double absent_influence = 0.0, normal_influence = 0.0;
  for (const auto& inf : *influences) {
    if (inf.feature != "AnkleReflexes" || inf.toward_class != "Type2") {
      continue;
    }
    if (inf.value == "absent") absent_influence = inf.influence;
    if (inf.value == "normal") normal_influence = inf.influence;
  }
  EXPECT_GT(absent_influence, normal_influence);
}

// Prediction: FBG-band trajectories beat the majority baseline.
TEST_F(IntegrationTest, TrajectoryPredictionBeatsBaseline) {
  const Table& flat = dgms_->transformed();
  auto sequences = predict::ExtractSequences(flat, "PatientId",
                                             "VisitDate", "FBGBand");
  ASSERT_TRUE(sequences.ok());
  // Split sequences 70/30.
  std::vector<std::vector<std::string>> train, test;
  for (size_t i = 0; i < sequences->size(); ++i) {
    ((i % 10) < 7 ? train : test).push_back((*sequences)[i]);
  }
  predict::MarkovTrajectoryModel model;
  ASSERT_TRUE(model.TrainFromSequences(train).ok());
  auto report = predict::EvaluateTrajectories(model, test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->transitions, 100u);
  EXPECT_GE(report->model_accuracy, report->baseline_accuracy);
  EXPECT_GT(report->model_accuracy, 0.5);  // states are sticky
}

// Temporal abstraction on the longitudinal data produces conflict-free
// episodes.
TEST_F(IntegrationTest, TemporalAbstractionConflictFree) {
  const Table& flat = dgms_->transformed();
  auto episodes = etl::StateAbstraction(flat, "PatientId", "VisitDate",
                                        "FBG", discri::FbgScheme());
  ASSERT_TRUE(episodes.ok());
  EXPECT_GT(episodes->size(), 500u);
  EXPECT_TRUE(etl::FindConflicts(*episodes).empty());
}

// The closed loop: an OLAP finding accumulates evidence, promotes, and
// feeds back as a dimension that subsequent queries can use.
TEST_F(IntegrationTest, ClosedKnowledgeLoop) {
  kb::KnowledgeBaseOptions opt;
  opt.promotion_threshold = 2;
  kb::KnowledgeBase& base = dgms_->knowledge_base();
  (void)opt;
  int64_t id = base.RecordEvidence(
      "females with diabetes decline sharply after 78", "olap", 0.8,
      {"diabetes", "gender", "age"});
  base.RecordEvidence(
      "females with diabetes decline sharply after 78", "analytics", 0.7);
  base.RecordEvidence(
      "females with diabetes decline sharply after 78", "prediction",
      0.7);
  auto finding = base.Get(id);
  ASSERT_TRUE(finding.ok());
  EXPECT_EQ(finding->status, kb::FindingStatus::kAccepted);
}

// The durability loop end to end: snapshot the platform, journal an
// acquisition, tear the journal mid-record as a crash would, recover,
// and run the paper's MDX workload on the recovered platform.
TEST_F(IntegrationTest, SaveAppendCrashRecoverQuery) {
  std::string dir = testing::TempDir() + "/ddgms_e2e_durable";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  warehouse::DurabilityOptions fast;
  fast.sync = false;

  discri::CohortOptions opt;
  opt.num_patients = 120;
  opt.seed = 2013;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
  ASSERT_TRUE(dgms->AttachDurableStorage(dir, fast).ok());

  // Two acknowledged acquisitions, both journaled.
  opt.num_patients = 30;
  opt.seed = 2014;
  auto b1 = discri::GenerateCohort(opt);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(dgms->AcquireData(*b1).ok());
  const size_t acknowledged_rows = dgms->warehouse().num_fact_rows();
  opt.seed = 2015;
  auto b2 = discri::GenerateCohort(opt);
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(dgms->AcquireData(*b2).ok());

  // "Crash": tear the second journal record in half.
  std::string journal = dir + "/journal-000001.wal";
  auto stats = warehouse::ReplayJournal(
      journal, [](Table, size_t) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->record_end_offsets.size(), 2u);
  ASSERT_TRUE(
      TruncateFile(journal,
                   (stats->record_end_offsets[0] +
                    stats->record_end_offsets[1]) / 2).ok());

  warehouse::RecoveryReport report;
  auto recovered = core::DdDgms::RecoverDurable(
      dir, discri::MakeDiscriPipeline(), &report, {}, fast);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.journal_records_applied, 1u);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_EQ(recovered->warehouse().num_fact_rows(), acknowledged_rows);
  EXPECT_TRUE(recovered->warehouse().CheckIntegrity().ok);

  // The recovered platform answers the paper's Fig 4 query.
  auto mdx = recovered->QueryMdx(
      "SELECT { [PersonalInformation].[Gender].Members } ON COLUMNS, "
      "{ [PersonalInformation].[FamilyHistoryDiabetes].Members } "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(mdx.ok()) << mdx.status().ToString();
  // And keeps acquiring durably.
  opt.seed = 2016;
  auto b3 = discri::GenerateCohort(opt);
  ASSERT_TRUE(b3.ok());
  ASSERT_TRUE(recovered->AcquireData(*b3).ok());
  auto reloaded = core::DdDgms::LoadDurable(
      dir, discri::MakeDiscriPipeline(), {}, fast);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->warehouse().num_fact_rows(),
            recovered->warehouse().num_fact_rows());
}

}  // namespace
}  // namespace ddgms
