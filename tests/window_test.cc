// WindowRegistry tests: delta attribution from cumulative instruments,
// ring slot aging, ramp-up coverage, counter-reset detection, windowed
// percentiles over merged histogram buckets, and FractionAbove (the
// burn-rate primitive).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/window.h"

namespace ddgms {
namespace {

/// An arbitrary but fixed test epoch (microseconds).
constexpr int64_t kT0 = 1000000000;
constexpr int64_t kSecond = 1000000;

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
    WindowRegistry::Global().ResetForTesting();
    WindowRegistry::Enable();
  }
  void TearDown() override {
    WindowRegistry::Disable();
    WindowRegistry::Global().ResetForTesting();
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }
};

TEST_F(WindowTest, StatsNotFoundForUntrackedInstrument) {
  auto stats = WindowRegistry::Global().Stats("t.win.ghost", 60);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(WindowTest, StatsNotFoundForUntrackedWindowLength) {
  ASSERT_TRUE(
      WindowRegistry::Global().TrackCounter("t.win.narrow", {60}).ok());
  EXPECT_TRUE(WindowRegistry::Global().Stats("t.win.narrow", 60).ok());
  EXPECT_FALSE(WindowRegistry::Global().Stats("t.win.narrow", 300).ok());
}

TEST_F(WindowTest, CounterDeltaAndRate) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.requests", {60}).ok());
  windows.TickAt(kT0);
  MetricsRegistry::Global().GetCounter("t.win.requests").Increment(30);
  windows.TickAt(kT0 + 5 * kSecond);

  auto stats = windows.Stats("t.win.requests", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 30u);
  EXPECT_DOUBLE_EQ(stats->covered_seconds, 5.0);
  EXPECT_DOUBLE_EQ(stats->rate_per_sec, 6.0);
}

TEST_F(WindowTest, PreTrackingHistoryIsNotAttributed) {
  Counter& c = MetricsRegistry::Global().GetCounter("t.win.old");
  c.Increment(1000);  // before tracking: must not appear in any window
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.old", {60}).ok());
  windows.TickAt(kT0);
  c.Increment(3);
  windows.TickAt(kT0 + kSecond);

  auto stats = windows.Stats("t.win.old", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 3u);
}

TEST_F(WindowTest, DeltasAgeOutOfTheWindow) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.aging", {60}).ok());
  windows.TickAt(kT0);
  MetricsRegistry::Global().GetCounter("t.win.aging").Increment(12);
  windows.TickAt(kT0 + 5 * kSecond);
  ASSERT_EQ(windows.Stats("t.win.aging", 60)->count, 12u);

  // Advance past the whole window with no new increments: every slot
  // that held the delta has been reused or zeroed.
  windows.TickAt(kT0 + 70 * kSecond);
  auto stats = windows.Stats("t.win.aging", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 0u);
  EXPECT_DOUBLE_EQ(stats->rate_per_sec, 0.0);
}

TEST_F(WindowTest, CounterResetIsTreatedAsFreshStart) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.reset", {60}).ok());
  windows.TickAt(kT0);
  MetricsRegistry::Global().GetCounter("t.win.reset").Increment(5);
  windows.TickAt(kT0 + kSecond);
  MetricsRegistry::Global().ResetValues();  // cumulative drops to zero
  MetricsRegistry::Global().GetCounter("t.win.reset").Increment(3);
  windows.TickAt(kT0 + 2 * kSecond);

  // No unsigned underflow: the post-reset value counts as the delta.
  auto stats = windows.Stats("t.win.reset", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 8u);
}

TEST_F(WindowTest, DisabledTickAccumulatesNothing) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.gated", {60}).ok());
  WindowRegistry::Disable();
  MetricsRegistry::Global().GetCounter("t.win.gated").Increment(7);
  windows.TickAt(kT0);
  windows.TickAt(kT0 + kSecond);
  WindowRegistry::Enable();

  auto stats = windows.Stats("t.win.gated", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 0u);
}

TEST_F(WindowTest, HistogramPercentilesOverWindow) {
  MetricsRegistry::Global().GetHistogram("t.win.lat",
                                         {10.0, 100.0, 1000.0});
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackHistogram("t.win.lat", {60}).ok());
  windows.TickAt(kT0);
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.win.lat");
  for (int i = 0; i < 90; ++i) h.Observe(9.0);
  for (int i = 0; i < 10; ++i) h.Observe(500.0);
  windows.TickAt(kT0 + 5 * kSecond);

  auto stats = windows.Stats("t.win.lat", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 100u);
  EXPECT_DOUBLE_EQ(stats->sum, 90 * 9.0 + 10 * 500.0);
  EXPECT_LE(stats->p50, 10.0);
  EXPECT_GT(stats->p99, 100.0);
}

TEST_F(WindowTest, FractionAboveInterpolates) {
  MetricsRegistry::Global().GetHistogram("t.win.frac",
                                         {100.0, 1000.0});
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackHistogram("t.win.frac", {60}).ok());
  windows.TickAt(kT0);
  Histogram& h = MetricsRegistry::Global().GetHistogram("t.win.frac");
  for (int i = 0; i < 90; ++i) h.Observe(50.0);
  for (int i = 0; i < 10; ++i) h.Observe(500.0);
  windows.TickAt(kT0 + kSecond);

  auto stats = windows.Stats("t.win.frac", 60);
  ASSERT_TRUE(stats.ok());
  // The threshold sits exactly on the first bucket's upper bound, so
  // the fraction above is the second bucket's share.
  EXPECT_NEAR(FractionAbove(stats->merged, 100.0), 0.10, 0.02);
  EXPECT_DOUBLE_EQ(FractionAbove(stats->merged, 1e12), 0.0);

  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(FractionAbove(empty, 100.0), 0.0);
}

TEST_F(WindowTest, TrackIsIdempotentAndAddsWindows) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.twice", {60}).ok());
  ASSERT_TRUE(windows.TrackCounter("t.win.twice", {60, 300}).ok());
  EXPECT_EQ(windows.tracked_count(), 1u);
  EXPECT_TRUE(windows.Stats("t.win.twice", 60).ok());
  EXPECT_TRUE(windows.Stats("t.win.twice", 300).ok());
}

TEST_F(WindowTest, CoverageIsCappedAtTheWindowLength) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.capped", {60}).ok());
  windows.TickAt(kT0);
  for (int s = 1; s <= 120; ++s) {
    MetricsRegistry::Global().GetCounter("t.win.capped").Increment(1);
    windows.TickAt(kT0 + s * kSecond);
  }
  auto stats = windows.Stats("t.win.capped", 60);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->covered_seconds, 60.0);
  // One increment per second sustained: the windowed rate is ~1/s even
  // though the cumulative counter is at 120.
  EXPECT_NEAR(stats->rate_per_sec, 1.0, 0.25);
}

TEST_F(WindowTest, SnapshotAndJsonListTrackedInstruments) {
  WindowRegistry& windows = WindowRegistry::Global();
  ASSERT_TRUE(windows.TrackCounter("t.win.json", {60}).ok());
  windows.TickAt(kT0);
  EXPECT_FALSE(windows.Snapshot().empty());
  const std::string json = windows.ToJson();
  EXPECT_NE(json.find("t.win.json"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
}

}  // namespace
}  // namespace ddgms
