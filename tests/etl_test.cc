// Unit + property tests for the ETL layer: discretisation, cleaning,
// temporal abstraction, cardinality, pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "etl/cardinality.h"
#include "etl/cleaner.h"
#include "etl/discretize.h"
#include "etl/pipeline.h"
#include "etl/temporal.h"
#include "table/table.h"

namespace ddgms::etl {
namespace {

// ---------------------------------------------------- DiscretisationScheme

TEST(SchemeTest, PaperFbgSchemeSemantics) {
  auto scheme = DiscretisationScheme::Make(
      "FBG", {5.5, 6.1, 7.0},
      {"very good", "high", "preDiabetic", "Diabetic"});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->num_bins(), 4u);
  EXPECT_EQ(scheme->LabelFor(4.9), "very good");
  EXPECT_EQ(scheme->LabelFor(5.5), "high");       // boundary inclusive right
  EXPECT_EQ(scheme->LabelFor(6.0999), "high");
  EXPECT_EQ(scheme->LabelFor(6.1), "preDiabetic");
  EXPECT_EQ(scheme->LabelFor(6.99), "preDiabetic");
  EXPECT_EQ(scheme->LabelFor(7.0), "Diabetic");   // ">=7 Diabetic"
  EXPECT_EQ(scheme->LabelFor(15.0), "Diabetic");
}

TEST(SchemeTest, RejectsBadInput) {
  EXPECT_TRUE(DiscretisationScheme::Make("x", {2, 2}, {"a", "b", "c"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DiscretisationScheme::Make("x", {1, 2}, {"a", "b"})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemeTest, AutoLabels) {
  auto scheme = DiscretisationScheme::MakeAutoLabeled("x", {10, 20});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->labels(),
            (std::vector<std::string>{"<10", "10-20", ">=20"}));
  auto no_cuts = DiscretisationScheme::MakeAutoLabeled("x", {});
  ASSERT_TRUE(no_cuts.ok());
  EXPECT_EQ(no_cuts->num_bins(), 1u);
  EXPECT_EQ(no_cuts->LabelFor(123.0), "all");
}

// Property: BinIndex is monotone and hits every bin.
TEST(SchemeTest, BinIndexMonotone) {
  auto scheme =
      DiscretisationScheme::MakeAutoLabeled("x", {1, 2, 3, 5, 8, 13});
  ASSERT_TRUE(scheme.ok());
  size_t prev = 0;
  for (double v = -2.0; v < 16.0; v += 0.01) {
    size_t b = scheme->BinIndex(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_EQ(prev, scheme->num_bins() - 1);
}

// ------------------------------------------------- algorithmic schemes

std::vector<double> LinearData(size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(n - 1);
  }
  return out;
}

TEST(EqualWidthTest, CutsEquallySpaced) {
  auto scheme = EqualWidthScheme("x", LinearData(101, 0, 100), 4);
  ASSERT_TRUE(scheme.ok());
  ASSERT_EQ(scheme->cuts().size(), 3u);
  EXPECT_NEAR(scheme->cuts()[0], 25.0, 1e-9);
  EXPECT_NEAR(scheme->cuts()[1], 50.0, 1e-9);
  EXPECT_NEAR(scheme->cuts()[2], 75.0, 1e-9);
}

TEST(EqualWidthTest, Errors) {
  EXPECT_FALSE(EqualWidthScheme("x", {}, 4).ok());
  EXPECT_FALSE(EqualWidthScheme("x", {1, 1, 1}, 4).ok());
  EXPECT_FALSE(EqualWidthScheme("x", {1, 2}, 1).ok());
}

TEST(EqualFrequencyTest, BalancedPopulations) {
  // Heavily skewed data: equal-frequency adapts, equal-width does not.
  std::vector<double> data;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    data.push_back(std::exp(rng.Gaussian(0, 1)));
  }
  auto scheme = EqualFrequencyScheme("x", data, 4);
  ASSERT_TRUE(scheme.ok());
  auto quality = EvaluateScheme(
      *scheme, data, std::vector<std::string>(data.size(), "c"));
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->min_bin_fraction, 0.2);  // near 0.25 ideal
}

TEST(EqualFrequencyTest, DegenerateDataFails) {
  EXPECT_FALSE(EqualFrequencyScheme("x", {3, 3, 3, 3}, 2).ok());
}

std::pair<std::vector<double>, std::vector<std::string>>
SeparableLabeledData(size_t n, double boundary) {
  // Values below `boundary` are class "neg", above are "pos", with a
  // little noise-free separation: ideal for supervised discretisers.
  std::vector<double> data;
  std::vector<std::string> labels;
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    bool pos = rng.Bernoulli(0.5);
    double v = pos ? rng.Uniform(boundary + 0.1, boundary + 5.0)
                   : rng.Uniform(boundary - 5.0, boundary - 0.1);
    data.push_back(v);
    labels.push_back(pos ? "pos" : "neg");
  }
  return {data, labels};
}

TEST(EntropyMdlTest, FindsSeparatingBoundary) {
  auto [data, labels] = SeparableLabeledData(400, 7.0);
  auto scheme = EntropyMdlScheme("fbg", data, labels);
  ASSERT_TRUE(scheme.ok());
  ASSERT_GE(scheme->cuts().size(), 1u);
  // Some cut must sit near the true boundary.
  double best = 1e9;
  for (double c : scheme->cuts()) {
    best = std::min(best, std::fabs(c - 7.0));
  }
  EXPECT_LT(best, 0.5);
  // And the resulting bands should be highly informative.
  auto q = EvaluateScheme(*scheme, data, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q->information_gain, 0.9);  // ~1 bit for a clean split
}

TEST(EntropyMdlTest, PureDataYieldsNoCuts) {
  std::vector<double> data = LinearData(100, 0, 10);
  std::vector<std::string> labels(100, "same");
  auto scheme = EntropyMdlScheme("x", data, labels);
  ASSERT_TRUE(scheme.ok());
  EXPECT_TRUE(scheme->cuts().empty());
}

TEST(EntropyMdlTest, SizeMismatchIsError) {
  EXPECT_FALSE(EntropyMdlScheme("x", {1, 2}, {"a"}).ok());
}

TEST(ChiMergeTest, FindsSeparatingBoundary) {
  auto [data, labels] = SeparableLabeledData(400, 3.0);
  DiscretizeOptions opt;
  opt.max_bins = 4;
  auto scheme = ChiMergeScheme("x", data, labels, opt);
  ASSERT_TRUE(scheme.ok());
  EXPECT_LE(scheme->num_bins(), 4u);
  double best = 1e9;
  for (double c : scheme->cuts()) {
    best = std::min(best, std::fabs(c - 3.0));
  }
  EXPECT_LT(best, 0.5);
}

TEST(ChiMergeTest, RespectsMaxBins) {
  Rng rng(3);
  std::vector<double> data;
  std::vector<std::string> labels;
  for (int i = 0; i < 500; ++i) {
    data.push_back(rng.Uniform(0, 100));
    labels.push_back(rng.Bernoulli(0.5) ? "a" : "b");  // no signal
  }
  DiscretizeOptions opt;
  opt.max_bins = 3;
  auto scheme = ChiMergeScheme("x", data, labels, opt);
  ASSERT_TRUE(scheme.ok());
  EXPECT_LE(scheme->num_bins(), 3u);
}

// Property sweep over bin counts: every algorithm produces valid,
// monotone schemes whose bins cover all data.
class BinCountSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BinCountSweepTest, AllAlgorithmsProduceValidSchemes) {
  size_t bins = GetParam();
  Rng rng(bins);
  std::vector<double> data;
  std::vector<std::string> labels;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Gaussian(50, 15);
    data.push_back(v);
    labels.push_back(v > 55 ? "hi" : "lo");
  }
  DiscretizeOptions opt;
  opt.num_bins = bins;
  opt.max_bins = bins;

  auto ew = EqualWidthScheme("x", data, bins);
  auto ef = EqualFrequencyScheme("x", data, bins);
  auto cm = ChiMergeScheme("x", data, labels, opt);
  for (const auto& scheme : {ew, ef, cm}) {
    ASSERT_TRUE(scheme.ok());
    // Cuts strictly increasing.
    for (size_t i = 1; i < scheme->cuts().size(); ++i) {
      EXPECT_LT(scheme->cuts()[i - 1], scheme->cuts()[i]);
    }
    // Every point lands in a valid bin.
    for (double v : data) {
      EXPECT_LT(scheme->BinIndex(v), scheme->num_bins());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, BinCountSweepTest,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(ApplySchemeTest, AppendsBandColumnAndPropagatesNulls) {
  Table t(Schema::Make({{"FBG", DataType::kDouble}}).value());
  ASSERT_TRUE(t.AppendRow({Value::Real(5.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Real(8.0)}).ok());
  auto scheme = DiscretisationScheme::Make(
      "FBG", {5.5, 6.1, 7.0},
      {"very good", "high", "preDiabetic", "Diabetic"});
  ASSERT_TRUE(ApplyScheme(&t, "FBG", *scheme, "FBGBand").ok());
  EXPECT_EQ(*t.GetCell(0, "FBGBand"), Value::Str("very good"));
  EXPECT_TRUE((*t.GetCell(1, "FBGBand")).is_null());
  EXPECT_EQ(*t.GetCell(2, "FBGBand"), Value::Str("Diabetic"));
  // Original column retained (paper duplicates attributes).
  EXPECT_TRUE(t.schema().HasField("FBG"));
}

TEST(ApplySchemeTest, NonNumericColumnRejected) {
  Table t(Schema::Make({{"Name", DataType::kString}}).value());
  ASSERT_TRUE(t.AppendRow({Value::Str("x")}).ok());
  auto scheme = DiscretisationScheme::MakeAutoLabeled("n", {1});
  EXPECT_TRUE(ApplyScheme(&t, "Name", *scheme, "Band")
                  .IsInvalidArgument());
}

// ----------------------------------------------------------------- Cleaner

Table MakeDirtyTable() {
  Table t(Schema::Make({{"SBP", DataType::kDouble},
                        {"Age", DataType::kInt64}})
              .value());
  EXPECT_TRUE(t.AppendRow({Value::Real(120), Value::Int(50)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Real(999), Value::Int(60)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Real(-80), Value::Int(250)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Int(70)}).ok());
  return t;
}

TEST(CleanerTest, SetNullAction) {
  Table t = MakeDirtyTable();
  Cleaner cleaner;
  cleaner.AddRangeRule({"SBP", 60, 260, ErrorAction::kSetNull});
  auto report = cleaner.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells_nulled, 2u);
  EXPECT_EQ(report->errors_by_column.at("SBP"), 2u);
  EXPECT_TRUE((*t.GetCell(1, "SBP")).is_null());
  EXPECT_TRUE((*t.GetCell(2, "SBP")).is_null());
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST(CleanerTest, ClampAction) {
  Table t = MakeDirtyTable();
  Cleaner cleaner;
  cleaner.AddRangeRule({"SBP", 60, 260, ErrorAction::kClamp});
  auto report = cleaner.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells_clamped, 2u);
  EXPECT_EQ(*t.GetCell(1, "SBP"), Value::Real(260));
  EXPECT_EQ(*t.GetCell(2, "SBP"), Value::Real(60));
}

TEST(CleanerTest, DropRowAction) {
  Table t = MakeDirtyTable();
  Cleaner cleaner;
  cleaner.AddRangeRule({"Age", 0, 120, ErrorAction::kDropRow});
  auto report = cleaner.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_dropped, 1u);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(CleanerTest, ImputeMeanMedianModeConstant) {
  Table t(Schema::Make({{"x", DataType::kDouble},
                        {"c", DataType::kString}})
              .value());
  ASSERT_TRUE(t.AppendRow({Value::Real(1), Value::Str("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Real(3), Value::Str("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  Cleaner cleaner;
  cleaner.AddImputeRule({"x", ImputeMethod::kMean, Value()});
  cleaner.AddImputeRule({"c", ImputeMethod::kMode, Value()});
  auto report = cleaner.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells_imputed, 2u);
  EXPECT_EQ(*t.GetCell(2, "x"), Value::Real(2.0));
  EXPECT_EQ(*t.GetCell(2, "c"), Value::Str("a"));
}

TEST(CleanerTest, ImputeMedianEvenCount) {
  Table t(Schema::Make({{"x", DataType::kDouble}}).value());
  for (double v : {1.0, 2.0, 10.0, 20.0}) {
    ASSERT_TRUE(t.AppendRow({Value::Real(v)}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  Cleaner cleaner;
  cleaner.AddImputeRule({"x", ImputeMethod::kMedian, Value()});
  ASSERT_TRUE(cleaner.Run(&t).ok());
  EXPECT_EQ(*t.GetCell(4, "x"), Value::Real(6.0));
}

TEST(CleanerTest, ImputeConstant) {
  Table t(Schema::Make({{"x", DataType::kInt64}}).value());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  Cleaner cleaner;
  cleaner.AddImputeRule({"x", ImputeMethod::kConstant, Value::Int(-1)});
  ASSERT_TRUE(cleaner.Run(&t).ok());
  EXPECT_EQ(*t.GetCell(0, "x"), Value::Int(-1));
}

TEST(CleanerTest, DedupeByKeyColumnsKeepsFirst) {
  Table t(Schema::Make({{"P", DataType::kString},
                        {"D", DataType::kInt64},
                        {"V", DataType::kDouble}})
              .value());
  ASSERT_TRUE(t.AppendRow({Value::Str("a"), Value::Int(1),
                           Value::Real(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Str("a"), Value::Int(1),
                           Value::Real(2.0)}).ok());  // dup key
  ASSERT_TRUE(t.AppendRow({Value::Str("a"), Value::Int(2),
                           Value::Real(3.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(1),
                           Value::Real(4.0)}).ok());  // null key: keep
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(1),
                           Value::Real(5.0)}).ok());  // null key: keep
  Cleaner cleaner;
  cleaner.set_dedupe_keys({"P", "D"});
  auto report = cleaner.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->duplicates_dropped, 1u);
  EXPECT_EQ(t.num_rows(), 4u);
  // First record for (a,1) kept.
  EXPECT_EQ(*t.GetCell(0, "V"), Value::Real(1.0));
  EXPECT_TRUE(
      Cleaner().set_dedupe_keys({"Nope"}).Run(&t).status().IsNotFound());
}

TEST(CleanerTest, RuleValidation) {
  Table t = MakeDirtyTable();
  Cleaner bad_range;
  bad_range.AddRangeRule({"SBP", 100, 50, ErrorAction::kSetNull});
  EXPECT_TRUE(bad_range.Run(&t).status().IsInvalidArgument());

  Cleaner unknown;
  unknown.AddRangeRule({"Nope", 0, 1, ErrorAction::kSetNull});
  EXPECT_TRUE(unknown.Run(&t).status().IsNotFound());
}

// ------------------------------------------------------------ Cardinality

Table MakeVisitsTable() {
  Table t(Schema::Make({{"Patient", DataType::kString},
                        {"Date", DataType::kDate},
                        {"FBG", DataType::kDouble}})
              .value());
  auto add = [&](const char* p, const char* date, double fbg) {
    ASSERT_TRUE(t.AppendRow({Value::Str(p),
                             Value::FromDate(
                                 Date::FromString(date).value()),
                             Value::Real(fbg)})
                    .ok());
  };
  add("P2", "2010-05-01", 5.0);
  add("P1", "2011-02-01", 6.3);
  add("P1", "2009-01-01", 5.2);
  add("P1", "2013-03-01", 7.4);
  add("P2", "2010-05-01", 5.1);  // duplicate same-day visit
  return t;
}

TEST(CardinalityTest, AssignsVisitNumbersByDate) {
  Table t = MakeVisitsTable();
  auto report = AssignCardinality(&t, "Patient", "Date");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_entities, 2u);
  EXPECT_EQ(report->max_visits, 3u);
  EXPECT_EQ(report->duplicate_visits, 1u);
  // P1's 2009 visit is #1, 2011 #2, 2013 #3.
  EXPECT_EQ(*t.GetCell(2, "VisitNumber"), Value::Int(1));
  EXPECT_EQ(*t.GetCell(1, "VisitNumber"), Value::Int(2));
  EXPECT_EQ(*t.GetCell(3, "VisitNumber"), Value::Int(3));
  EXPECT_EQ(*t.GetCell(1, "VisitCount"), Value::Int(3));
  EXPECT_EQ(*t.GetCell(0, "VisitCount"), Value::Int(2));
}

TEST(CardinalityTest, NullDatesSortLast) {
  Table t(Schema::Make({{"Patient", DataType::kString},
                        {"Date", DataType::kDate}})
              .value());
  ASSERT_TRUE(t.AppendRow({Value::Str("P1"), Value::Null()}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Str("P1"),
                   Value::FromDate(Date::FromYmd(2010, 1, 1).value())})
          .ok());
  auto report = AssignCardinality(&t, "Patient", "Date");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_missing_date, 1u);
  EXPECT_EQ(*t.GetCell(0, "VisitNumber"), Value::Int(2));
  EXPECT_EQ(*t.GetCell(1, "VisitNumber"), Value::Int(1));
}

TEST(CardinalityTest, RequiresDateColumn) {
  Table t(Schema::Make({{"Patient", DataType::kString},
                        {"Date", DataType::kString}})
              .value());
  ASSERT_TRUE(t.AppendRow({Value::Str("P1"), Value::Str("x")}).ok());
  EXPECT_TRUE(AssignCardinality(&t, "Patient", "Date")
                  .status()
                  .IsInvalidArgument());
}

// -------------------------------------------------------------- Temporal

TEST(TemporalTest, StateAbstractionMergesEpisodes) {
  Table t = MakeVisitsTable();
  auto scheme = DiscretisationScheme::Make(
      "FBG", {5.5, 6.1, 7.0},
      {"very good", "high", "preDiabetic", "Diabetic"});
  auto episodes =
      StateAbstraction(t, "Patient", "Date", "FBG", *scheme);
  ASSERT_TRUE(episodes.ok());
  // P1: 5.2 (very good), 6.3 (preDiabetic), 7.4 (Diabetic) -> 3 episodes
  // P2: 5.0, 5.1 both very good -> 1 episode of 2 readings.
  ASSERT_EQ(episodes->size(), 4u);
  const Episode* p2 = nullptr;
  for (const Episode& ep : *episodes) {
    if (ep.entity.ToString() == "P2") p2 = &ep;
  }
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->abstraction, "very good");
  EXPECT_EQ(p2->num_readings, 2u);
  EXPECT_NEAR(p2->mean_value, 5.05, 1e-9);
}

TEST(TemporalTest, TrendAbstraction) {
  Table t(Schema::Make({{"Patient", DataType::kString},
                        {"Date", DataType::kDate},
                        {"W", DataType::kDouble}})
              .value());
  auto add = [&](const char* date, double w) {
    ASSERT_TRUE(
        t.AppendRow({Value::Str("P1"),
                     Value::FromDate(Date::FromString(date).value()),
                     Value::Real(w)})
            .ok());
  };
  add("2010-01-01", 100);
  add("2011-01-01", 110);  // +10%/yr -> increasing
  add("2012-01-01", 121);  // increasing
  add("2013-01-01", 121.5);  // ~0.4%/yr -> steady
  add("2014-01-01", 100);  // decreasing
  auto episodes = TrendAbstraction(t, "Patient", "Date", "W");
  ASSERT_TRUE(episodes.ok());
  ASSERT_EQ(episodes->size(), 3u);
  EXPECT_EQ((*episodes)[0].abstraction, "increasing");
  EXPECT_EQ((*episodes)[1].abstraction, "steady");
  EXPECT_EQ((*episodes)[2].abstraction, "decreasing");
}

TEST(TemporalTest, SingleVisitPatientsProduceNoTrends) {
  Table t = MakeVisitsTable();
  Table single = t.Take({0});
  auto episodes = TrendAbstraction(single, "Patient", "Date", "FBG");
  ASSERT_TRUE(episodes.ok());
  EXPECT_TRUE(episodes->empty());
}

TEST(TemporalTest, EpisodesToTable) {
  Table t = MakeVisitsTable();
  auto scheme = DiscretisationScheme::MakeAutoLabeled("FBG", {6.0});
  auto episodes =
      StateAbstraction(t, "Patient", "Date", "FBG", *scheme);
  ASSERT_TRUE(episodes.ok());
  auto table = EpisodesToTable(*episodes);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), episodes->size());
  EXPECT_TRUE(table->schema().HasField("Abstraction"));
}

TEST(TemporalTest, FindConflictsDetectsOverlap) {
  Episode a;
  a.entity = Value::Str("P1");
  a.variable = "FBG";
  a.abstraction = "high";
  a.start = Date::FromYmd(2010, 1, 1).value();
  a.end = Date::FromYmd(2011, 1, 1).value();
  Episode b = a;
  b.abstraction = "low";
  b.start = Date::FromYmd(2010, 6, 1).value();
  b.end = Date::FromYmd(2012, 1, 1).value();
  EXPECT_EQ(FindConflicts({a, b}).size(), 1u);

  // Touching endpoints are legitimate transitions, not conflicts.
  b.start = a.end;
  EXPECT_TRUE(FindConflicts({a, b}).empty());

  // Abstractions from state abstraction never conflict by construction.
  Table t = MakeVisitsTable();
  auto scheme = DiscretisationScheme::MakeAutoLabeled("FBG", {6.0});
  auto episodes = StateAbstraction(t, "Patient", "Date", "FBG", *scheme);
  EXPECT_TRUE(FindConflicts(*episodes).empty());
}

// -------------------------------------------------------------- Pipeline

TEST(PipelineTest, RunsAllStages) {
  Table t = MakeVisitsTable();
  Cleaner cleaner;
  cleaner.AddRangeRule({"FBG", 1, 35, ErrorAction::kSetNull});
  TransformPipeline pipeline;
  pipeline.set_cleaner(std::move(cleaner));
  pipeline.AddDiscretisation(DiscretisationStep{
      "FBG",
      DiscretisationScheme::MakeAutoLabeled("FBG", {6.0}).value(),
      ""});
  pipeline.set_cardinality("Patient", "Date");
  auto report = pipeline.Run(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->input_rows, 5u);
  EXPECT_EQ(report->output_rows, 5u);
  EXPECT_EQ(report->discretised_columns,
            std::vector<std::string>{"FBGBand"});
  EXPECT_TRUE(t.schema().HasField("FBGBand"));
  EXPECT_TRUE(t.schema().HasField("VisitNumber"));
  EXPECT_TRUE(t.schema().HasField("VisitCount"));
  EXPECT_EQ(report->cardinality.num_entities, 2u);
  EXPECT_FALSE(report->ToString().empty());
}

TEST(PipelineTest, FailsOnUnknownColumn) {
  Table t = MakeVisitsTable();
  TransformPipeline pipeline;
  pipeline.AddDiscretisation(DiscretisationStep{
      "Nope",
      DiscretisationScheme::MakeAutoLabeled("x", {1}).value(), ""});
  EXPECT_TRUE(pipeline.Run(&t).status().IsNotFound());
}

}  // namespace
}  // namespace ddgms::etl
