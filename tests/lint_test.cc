// Tests for tools/ddgms_lint: every rule must fire on a violating
// fixture and stay quiet on a conforming one, and the real src/ tree
// must pass clean (the same gate CI runs).

#include "ddgms_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "ddgms_lint/analyzer.h"
#include "ddgms_lint/tokenizer.h"
#include "gtest/gtest.h"

namespace ddgms::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(StripTest, RemovesCommentsAndStringsButKeepsLines) {
  const std::string src =
      "int a; // std::mutex in a comment\n"
      "/* std::mutex\n"
      "   in a block */ int b;\n"
      "const char* s = \"std::mutex in a string\";\n"
      "char c = 'x';\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("mutex"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, RawStringLiteral) {
  const std::string src =
      "const char* s = R\"(std::lock_guard here)\"; int x;\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("lock_guard"), std::string::npos);
  EXPECT_NE(stripped.find("int x;"), std::string::npos);
}

TEST(NakedMutexTest, FlagsRawPrimitives) {
  SourceFile file{"warehouse/cache.h",
                  "#include <mutex>\n"
                  "class C {\n"
                  "  std::mutex mu_;\n"
                  "  void F() { std::lock_guard<std::mutex> l(mu_); }\n"
                  "  std::condition_variable_any cv_;\n"
                  "};\n"};
  std::vector<Finding> findings = CheckNakedMutex(file);
  ASSERT_EQ(findings.size(), 4u);  // mutex, lock_guard, mutex, condvar
  EXPECT_EQ(findings[0].rule, "naked-mutex");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[1].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
  EXPECT_NE(findings[3].message.find("condition_variable_any"),
            std::string::npos);
}

TEST(NakedMutexTest, SyncHeaderItselfIsExempt) {
  SourceFile file{"common/sync.h", "std::mutex mu_;\n"};
  EXPECT_TRUE(CheckNakedMutex(file).empty());
  // ...but a sync.h in another directory is not.
  SourceFile impostor{"etl/sync.h", "std::mutex mu_;\n"};
  EXPECT_EQ(CheckNakedMutex(impostor).size(), 1u);
}

TEST(NakedMutexTest, QuietOnAnnotatedWrappersAndProse) {
  SourceFile file{"common/metrics.cc",
                  "// prefer std::mutex? no: see common/sync.h\n"
                  "#include \"common/sync.h\"\n"
                  "void F() { MutexLock lock(mu_); }\n"};
  EXPECT_TRUE(CheckNakedMutex(file).empty());
}

TEST(HeaderGuardTest, AcceptsPathDerivedGuard) {
  SourceFile file{"common/metrics.h",
                  "#ifndef DDGMS_COMMON_METRICS_H_\n"
                  "#define DDGMS_COMMON_METRICS_H_\n"
                  "#endif  // DDGMS_COMMON_METRICS_H_\n"};
  EXPECT_TRUE(CheckHeaderGuard(file, file.path).empty());
}

TEST(HeaderGuardTest, FlagsWrongName) {
  SourceFile file{"common/metrics.h",
                  "#ifndef DDGMS_METRICS_H\n"
                  "#define DDGMS_METRICS_H\n"
                  "#endif\n"};
  std::vector<Finding> findings = CheckHeaderGuard(file, file.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
  EXPECT_NE(findings[0].message.find("DDGMS_COMMON_METRICS_H_"),
            std::string::npos);
}

TEST(HeaderGuardTest, FlagsMissingGuardAndPragmaOnce) {
  SourceFile missing{"etl/cleaner.h", "class Cleaner {};\n"};
  std::vector<Finding> findings = CheckHeaderGuard(missing, missing.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("missing include guard"),
            std::string::npos);

  SourceFile pragma{"etl/cleaner.h", "#pragma once\nclass Cleaner {};\n"};
  findings = CheckHeaderGuard(pragma, pragma.path);
  // #pragma once plus the missing guard itself.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("#pragma once"), std::string::npos);
}

TEST(HeaderGuardTest, FlagsMismatchedDefine) {
  SourceFile file{"mdx/ast.h",
                  "#ifndef DDGMS_MDX_AST_H_\n"
                  "#define DDGMS_MDX_AST_H\n"
                  "#endif\n"};
  std::vector<Finding> findings = CheckHeaderGuard(file, file.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("does not match #ifndef"),
            std::string::npos);
}

TEST(BannedCallTest, FlagsRandAndStrtok) {
  SourceFile file{"mining/clustering.cc",
                  "int a = rand();\n"
                  "int b = std::rand();\n"
                  "char* t = strtok(buf, \",\");\n"};
  std::vector<Finding> findings = CheckBannedCalls(file);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "banned-call");
  EXPECT_NE(findings[0].message.find("Rng"), std::string::npos);
  EXPECT_EQ(findings[2].line, 3u);
}

TEST(BannedCallTest, QuietOnLookalikes) {
  SourceFile file{"mining/clustering.cc",
                  "int strand(int);\n"            // different identifier
                  "int x = strand(1);\n"          // call to it
                  "int y = rng.rand();\n"         // member
                  "int z = mylib::rand();\n"      // other namespace
                  "// rand() in a comment\n"
                  "const char* s = \"rand()\";\n"  // in a string
                  "int rando = 3;\n"};
  EXPECT_TRUE(CheckBannedCalls(file).empty());
}

TEST(IncludeCycleTest, FlagsDirectoryCycle) {
  std::vector<SourceFile> files = {
      {"alpha/a.h", "#include \"beta/b.h\"\n"},
      {"beta/b.h", "#include \"gamma/c.h\"\n"},
      {"gamma/c.h", "#include \"alpha/a.h\"\n"},
  };
  std::vector<Finding> findings = CheckIncludeCycles(files);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("alpha"), std::string::npos);
  EXPECT_NE(findings[0].message.find("->"), std::string::npos);
}

TEST(IncludeCycleTest, QuietOnDagAndSelfIncludes) {
  std::vector<SourceFile> files = {
      {"common/status.h", "#include <string>\n"},
      {"common/result.h", "#include \"common/status.h\"\n"},
      {"table/value.cc", "#include \"table/value.h\"\n"
                         "#include \"common/status.h\"\n"},
      {"etl/pipeline.cc", "#include \"table/table.h\"\n"},
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

TEST(InstrumentNameTest, AcceptsConformingNames) {
  SourceFile file{
      "olap/cube.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.olap.cache.hits\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.olap.ops:dice\");\n"
      "  registry.GetCounter(\"ddgms.retry.attempts:\" + op);\n"
      "  ScopedLatencyTimer timer(\"ddgms.olap.execute_latency_us\");\n"
      "  TraceSpan span(\"olap.cube.execute\");\n"
      "  DDGMS_LOG_WARN(\"quarantine.row\");\n"
      "  LogEvent slow(LogLevel::kWarn, \"mdx.slow_query\");\n"
      "  ScopedAccounting accounting(\"olap.cube\");\n"
      "  meter.GetPool(\"other\");\n"
      "  DDGMS_FAULT_POINT(\"persist.commit\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(InstrumentNameTest, FlagsBadNames) {
  SourceFile file{
      "olap/cube.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"olap.cache.hits\");\n"           // no ddgms.
      "  DDGMS_METRIC_INC(\"ddgms.nolayer.hits\");\n"        // bad layer
      "  DDGMS_METRIC_INC(\"ddgms.olap\");\n"                // too short
      "  TraceSpan span(\"fault.injected\");\n"              // bad layer
      "  DDGMS_LOG_WARN(\"olap.CamelCase\");\n"              // bad seg
      "  TraceSpan span(\"olap.a.b.c.d\");\n"                // too deep
      "  ScopedAccounting accounting(\"olap.cube:hot\");\n"  // ':' pool
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  EXPECT_EQ(findings.size(), 7u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "instrument-name");
  }
}

TEST(InstrumentNameTest, AcceptsServerAndQueriesLayers) {
  SourceFile file{
      "common/http.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.server.requests\");\n"
      "  DDGMS_METRIC_GAUGE_SET(\"ddgms.queries.active\", 1.0);\n"
      "  ScopedLatencyTimer timer(\"ddgms.server.request_latency_us\");\n"
      "  TraceSpan span(\"server.request\");\n"
      "  DDGMS_LOG_WARN(\"queries.watchdog_start\");\n"
      "  DDGMS_FAULT_POINT(\"server.accept\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(InstrumentNameTest, AcceptsSloAndAnomalyLayers) {
  SourceFile file{
      "common/slo.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.slo.transitions\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.slo.firing_total\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.anomaly.detections\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.anomaly.scans\");\n"
      "  DDGMS_LOG_WARN(\"slo.firing\");\n"
      "  DDGMS_LOG_WARN(\"anomaly.detected\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(EndpointPathTest, AcceptsConformingRoutes) {
  SourceFile file{
      "server/observability.cc",
      "void F(HttpServer& s, HttpHandler h) {\n"
      "  s.Handle(\"GET\", \"/\", h);\n"
      "  s.Handle(\"GET\", \"/statusz\", h);\n"
      "  s.Handle(\"GET\", \"/healthz\", h);\n"
      "  s.Handle(\"GET\", \"/debug/queryz\", h);\n"
      "  s.Handle(\"POST\", \"/metrics\", h);\n"  // sanctioned exception
      "}\n"};
  std::vector<Finding> findings = CheckEndpointPaths(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(EndpointPathTest, FlagsBadRoutes) {
  SourceFile file{
      "server/observability.cc",
      "void F(HttpServer& s, HttpHandler h) {\n"
      "  s.Handle(\"get\", \"/statusz\", h);\n"    // lower-case method
      "  s.Handle(\"GET\", \"statusz\", h);\n"     // no leading slash
      "  s.Handle(\"GET\", \"/statusz/\", h);\n"   // trailing slash
      "  s.Handle(\"GET\", \"/Statusz\", h);\n"    // upper-case segment
      "  s.Handle(\"GET\", \"/status\", h);\n"     // no trailing 'z'
      "}\n"};
  std::vector<Finding> findings = CheckEndpointPaths(file);
  EXPECT_EQ(findings.size(), 5u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "endpoint-path");
  }
}

TEST(EndpointPathTest, IgnoresDynamicArgsAndOtherHandles) {
  SourceFile file{
      "server/observability.cc",
      "// s.Handle(\"GET\", \"/bad\") in prose is not a route.\n"
      "void F(HttpServer& s, HttpHandler h, std::string p) {\n"
      "  s.Handle(\"GET\", p, h);\n"           // dynamic path
      "  s.Handle(method, \"/whoz\", h);\n"    // dynamic method
      "  file.Handle(42);\n"                   // unrelated Handle()
      "  s.PreHandle(\"GET\", \"/bad\", h);\n"  // not the Handle token
      "}\n"};
  EXPECT_TRUE(CheckEndpointPaths(file).empty());
}

TEST(InstrumentNameTest, IgnoresCommentsAndDynamicNames) {
  SourceFile file{
      "common/faults.h",
      "// Use DDGMS_FAULT_POINT(\"name\") to add a fault point.\n"
      "#define DDGMS_FAULT_POINT(name) Hit(name)\n"
      "void F(const std::string& n) { registry.GetCounter(n); }\n"};
  EXPECT_TRUE(CheckInstrumentNames(file).empty());
}

TEST(LintSourcesTest, AggregatesAcrossRules) {
  std::vector<SourceFile> files = {
      {"alpha/a.h",
       "#ifndef WRONG_GUARD_H_\n"
       "#define WRONG_GUARD_H_\n"
       "#include \"beta/b.h\"\n"
       "std::mutex mu;\n"
       "int r = rand();\n"
       "#endif\n"},
      {"beta/b.h",
       "#ifndef DDGMS_BETA_B_H_\n"
       "#define DDGMS_BETA_B_H_\n"
       "#include \"alpha/a.h\"\n"
       "#endif\n"},
  };
  std::vector<std::string> rules = RulesOf(LintSources(files));
  EXPECT_NE(std::find(rules.begin(), rules.end(), "naked-mutex"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "banned-call"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "header-guard"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "include-cycle"),
            rules.end());
}

// The gate itself: the real src/ tree must pass every textual rule.
// (The standalone-header compile probe also runs over the tree, but
// from the ddgms_lint CTest where a compiler is configured — here we
// keep the test milliseconds-fast.)
TEST(SelfCheckTest, RealSourceTreeIsClean) {
  LintOptions options;
  options.src_root = std::string(DDGMS_SOURCE_ROOT) + "/src";
  Result<std::vector<Finding>> result = RunLint(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Finding& f : result.value()) {
    ADD_FAILURE() << f.ToString();
  }
}

TEST(SelfCheckTest, RunLintRejectsMissingRoot) {
  LintOptions options;
  options.src_root = "/nonexistent/ddgms/src";
  Result<std::vector<Finding>> result = RunLint(options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

// ---------------------------------------------------------------------
// Tokenizer: the shared lexical layer every pass consumes.
// ---------------------------------------------------------------------

std::vector<std::string> TextsOf(const TokenFile& tf) {
  std::vector<std::string> out;
  out.reserve(tf.tokens.size());
  for (const Token& t : tf.tokens) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, RawStringsAreSingleStringTokens) {
  // The close-paren inside the raw body must not terminate the
  // literal: only the matching )delim" does.
  TokenFile tf = Tokenize(
      "const char* s = R\"x(a \"quote\" and )\" inside)x\"; int z;\n");
  std::vector<std::string> texts = TextsOf(tf);
  auto it = std::find(texts.begin(), texts.end(),
                      "a \"quote\" and )\" inside");
  ASSERT_NE(it, texts.end());
  EXPECT_EQ(tf.tokens[static_cast<size_t>(it - texts.begin())].kind,
            TokenKind::kString);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "z"), texts.end());
}

TEST(TokenizerTest, LineContinuationsSpliceButKeepStartLine) {
  // `lock_\<newline>guard` is ONE identifier starting on line 2.
  TokenFile tf = Tokenize(
      "int a;\n"
      "std::lock_\\\n"
      "guard x;\n");
  auto it = std::find_if(tf.tokens.begin(), tf.tokens.end(),
                         [](const Token& t) {
                           return t.text == "lock_guard";
                         });
  ASSERT_NE(it, tf.tokens.end());
  EXPECT_EQ(it->kind, TokenKind::kIdentifier);
  EXPECT_EQ(it->line, 2u);
  // The token after the spliced identifier is back on line 3.
  auto x = std::find_if(tf.tokens.begin(), tf.tokens.end(),
                        [](const Token& t) { return t.text == "x"; });
  ASSERT_NE(x, tf.tokens.end());
  EXPECT_EQ(x->line, 3u);
}

TEST(TokenizerTest, BlockCommentsWithEmbeddedOpeners) {
  // An embedded "/*" must not restart the comment (C++ block comments
  // do not nest); the first "*/" closes it.
  TokenFile tf = Tokenize("int a; /* one /* still one */ int b;\n");
  std::vector<std::string> texts = TextsOf(tf);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "a"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "b"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "one"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "still"), texts.end());
}

TEST(TokenizerTest, MultiCharPunctAndPreprocessorFlag) {
  TokenFile tf = Tokenize(
      "#include \"common/sync.h\"\n"
      "a->b; std::mutex m;\n");
  std::vector<std::string> texts = TextsOf(tf);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  // The include target is a string token carrying the pp flag; code
  // tokens on line 2 are not pp.
  bool saw_include_target = false;
  for (const Token& t : tf.tokens) {
    if (t.kind == TokenKind::kString && t.text == "common/sync.h") {
      saw_include_target = true;
      EXPECT_TRUE(t.pp);
    }
    if (t.text == "mutex") {
      EXPECT_FALSE(t.pp);
    }
  }
  EXPECT_TRUE(saw_include_target);
}

TEST(TokenizerTest, NolintMarkersPerLineAndPerRule) {
  TokenFile tf = Tokenize(
      "int a;  // NOLINT(ddgms-hot-path-alloc)\n"
      "int b;  // NOLINT\n"
      "int c;\n");
  EXPECT_TRUE(tf.IsSuppressed(1, "hot-path-alloc"));
  EXPECT_FALSE(tf.IsSuppressed(1, "naked-mutex"));
  EXPECT_TRUE(tf.IsSuppressed(2, "hot-path-alloc"));  // bare NOLINT
  EXPECT_TRUE(tf.IsSuppressed(2, "naked-mutex"));
  EXPECT_FALSE(tf.IsSuppressed(3, "hot-path-alloc"));
}

// ---------------------------------------------------------------------
// Pass 1: lock-order. The canonical inversion — A then B in one TU,
// B then A through a same-TU helper in another — must surface exactly
// one cycle carrying BOTH witness acquisition paths.
// ---------------------------------------------------------------------

TEST(LockOrderTest, TwoTuInversionReportsBothWitnessPaths) {
  std::vector<FileFacts> facts = {
      ExtractFileFacts({"alpha/a.cc",
                        "class Pair {\n"
                        " public:\n"
                        "  void TakeBoth() {\n"
                        "    MutexLock l1(a_mu_);\n"
                        "    MutexLock l2(b_mu_);\n"
                        "  }\n"
                        "};\n"}),
      ExtractFileFacts({"beta/b.cc",
                        "class Pair {\n"
                        " public:\n"
                        "  void HelperTakesA() { MutexLock l(a_mu_); }\n"
                        "  void TakeReversed() {\n"
                        "    MutexLock l(b_mu_);\n"
                        "    HelperTakesA();\n"
                        "  }\n"
                        "};\n"})};
  std::vector<Finding> findings = CheckLockOrder(facts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  const std::string& m = findings[0].message;
  // Both edges of the cycle carry a witness path, and the witnesses
  // name the class-qualified lock identities.
  EXPECT_NE(m.find("path 1:"), std::string::npos) << m;
  EXPECT_NE(m.find("path 2:"), std::string::npos) << m;
  EXPECT_NE(m.find("Pair::a_mu_"), std::string::npos) << m;
  EXPECT_NE(m.find("Pair::b_mu_"), std::string::npos) << m;
  // The reversed path was reached through the helper call.
  EXPECT_NE(m.find("TakeReversed"), std::string::npos) << m;
}

TEST(LockOrderTest, ConsistentOrderAndScopedReleaseAreQuiet) {
  // Same order in both TUs, and a re-acquire after the first lock's
  // scope closed — neither is an inversion.
  std::vector<FileFacts> facts = {
      ExtractFileFacts({"alpha/a.cc",
                        "class Pair {\n"
                        "  void F() {\n"
                        "    MutexLock l1(a_mu_);\n"
                        "    MutexLock l2(b_mu_);\n"
                        "  }\n"
                        "  void G() {\n"
                        "    { MutexLock l(b_mu_); }\n"
                        "    MutexLock l(a_mu_);\n"
                        "  }\n"
                        "};\n"})};
  EXPECT_TRUE(CheckLockOrder(facts).empty());
}

TEST(LockOrderTest, FileScopedLocksDoNotUnifyAcrossTus) {
  // Without a class, lock ids are file-scoped: a_mu_ in alpha/ and
  // a_mu_ in beta/ are different locks, so no cycle exists.
  std::vector<FileFacts> facts = {
      ExtractFileFacts({"alpha/a.cc",
                        "void TakeBoth() {\n"
                        "  MutexLock l1(a_mu_);\n"
                        "  MutexLock l2(b_mu_);\n"
                        "}\n"}),
      ExtractFileFacts({"beta/b.cc",
                        "void TakeReversed() {\n"
                        "  MutexLock l(b_mu_);\n"
                        "  MutexLock l2(a_mu_);\n"
                        "}\n"})};
  EXPECT_TRUE(CheckLockOrder(facts).empty());
}

TEST(LockOrderTest, GraphExposesHeldAcquiredEdges) {
  std::vector<FileFacts> facts = {
      ExtractFileFacts({"alpha/a.cc",
                        "class Pair {\n"
                        "  void F() {\n"
                        "    MutexLock l1(a_mu_);\n"
                        "    MutexLock l2(b_mu_);\n"
                        "  }\n"
                        "};\n"})};
  std::vector<LockEdge> edges = BuildLockOrderGraph(facts);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].held, "Pair::a_mu_");
  EXPECT_EQ(edges[0].acquired, "Pair::b_mu_");
  EXPECT_NE(edges[0].witness.find("alpha/a.cc"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pass 2: hot-path hygiene under DDGMS_HOT.
// ---------------------------------------------------------------------

size_t CountRuleIn(const std::vector<Finding>& findings,
                   const std::string& rule) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

TEST(HotPathTest, FlagsAllocationsOnlyInHotFunctions) {
  FileFacts facts = ExtractFileFacts(
      {"olap/kernel.cc",
       "DDGMS_HOT void Accumulate(Rows& rows) {\n"
       "  auto p = std::make_unique<Row>();\n"
       "  Row* q = new Row();\n"
       "  std::string key;\n"
       "  out.push_back(key);\n"
       "}\n"
       "void Cold(Rows& rows) {\n"
       "  auto p = std::make_unique<Row>();\n"
       "  std::string key;\n"
       "}\n"});
  EXPECT_EQ(CountRuleIn(facts.findings, "hot-path-alloc"), 4u);
  for (const Finding& f : facts.findings) {
    if (f.rule == "hot-path-alloc") {
      EXPECT_LE(f.line, 6u);
    }
  }
}

TEST(HotPathTest, ReserveAndNolintSanctionAppends) {
  FileFacts facts = ExtractFileFacts(
      {"olap/kernel.cc",
       "DDGMS_HOT void Accumulate(Rows& rows) {\n"
       "  out.reserve(rows.size());\n"
       "  for (auto& r : rows) {\n"
       "    out.push_back(r);\n"
       "    std::string k = r.key();  // NOLINT(ddgms-hot-path-alloc)\n"
       "  }\n"
       "}\n"});
  EXPECT_EQ(CountRuleIn(facts.findings, "hot-path-alloc"), 0u);
}

// ---------------------------------------------------------------------
// Pass 3: layer DAG from real include edges.
// ---------------------------------------------------------------------

TEST(LayerDagTest, FlagsUpwardEdgeAndUnregisteredModule) {
  std::vector<FileFacts> facts = {
      ExtractFileFacts({"table/value.cc", "#include \"olap/cube.h\"\n"}),
      ExtractFileFacts(
          {"newmod/thing.cc", "#include \"common/status.h\"\n"}),
      ExtractFileFacts(
          {"olap/cube.cc", "#include \"table/table.h\"\n"})};
  std::vector<Finding> findings = CheckLayerDag(facts, RepoLayerGraph());
  EXPECT_EQ(CountRuleIn(findings, "layer-dag"), 2u);
  bool saw_upward = false;
  bool saw_unregistered = false;
  for (const Finding& f : findings) {
    if (f.file == "table/value.cc") saw_upward = true;
    if (f.file == "newmod/thing.cc") saw_unregistered = true;
  }
  EXPECT_TRUE(saw_upward);
  EXPECT_TRUE(saw_unregistered);
}

// ---------------------------------------------------------------------
// Suppression: baseline round trip and output formats.
// ---------------------------------------------------------------------

TEST(BaselineTest, KeyIsLineNumberIndependent) {
  Finding at42{"mdx/executor.cc", 42, "hot-path-alloc", "boxed Value"};
  Finding at99{"mdx/executor.cc", 99, "hot-path-alloc", "boxed Value"};
  EXPECT_EQ(BaselineKey(at42), BaselineKey(at99));
  std::set<std::string> baseline =
      ParseBaseline("# justified: see DESIGN.md\n" + BaselineKey(at42) +
                    "\n\n");
  EXPECT_TRUE(ApplyBaseline({at99}, baseline).empty());
  // A different rule at the same site survives.
  Finding other{"mdx/executor.cc", 42, "naked-mutex", "boxed Value"};
  EXPECT_EQ(ApplyBaseline({other}, baseline).size(), 1u);
}

TEST(FormatTest, JsonAndSarifCarryEveryFinding) {
  std::vector<Finding> findings = {
      {"olap/cube.cc", 7, "hot-path-alloc", "operator new in hot path"},
      {"table/value.cc", 3, "layer-dag", "table may not include olap"}};
  std::string json = FormatFindings(findings, OutputFormat::kJson);
  EXPECT_NE(json.find("\"olap/cube.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"hot-path-alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  std::string sarif = FormatFindings(findings, OutputFormat::kSarif);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"ddgms-layer-dag\""),
            std::string::npos);
  EXPECT_NE(sarif.find("table/value.cc"), std::string::npos);
}

TEST(ParseCacheTest, FactsRoundTripThroughSerialization) {
  SourceFile file{"alpha/a.cc",
                  "#include \"common/sync.h\"\n"
                  "class Pair {\n"
                  "  void F() {\n"
                  "    MutexLock l1(a_mu_);\n"
                  "    MutexLock l2(b_mu_);\n"
                  "  }\n"
                  "};\n"};
  std::vector<FileFacts> facts = {ExtractFileFacts(file)};
  std::map<std::string, FileFacts> loaded =
      DeserializeFacts(SerializeFacts(facts));
  ASSERT_EQ(loaded.count("alpha/a.cc"), 1u);
  const FileFacts& back = loaded["alpha/a.cc"];
  EXPECT_EQ(back.content_hash, facts[0].content_hash);
  ASSERT_EQ(back.includes.size(), 1u);
  EXPECT_EQ(back.includes[0].first, "common/sync.h");
  // The deserialized facts drive the same lock-order analysis.
  std::vector<LockEdge> edges = BuildLockOrderGraph({back});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].held, "Pair::a_mu_");
}

// ---------------------------------------------------------------------
// Drivers: in-memory aggregation and the real-tree analyzer gate.
// ---------------------------------------------------------------------

TEST(AnalyzeSourcesTest, AggregatesWholeProgramPasses) {
  std::vector<SourceFile> files = {
      {"table/value.cc",
       "#include \"olap/cube.h\"\n"
       "DDGMS_HOT void F() { std::string s; }\n"}};
  std::vector<Finding> findings =
      AnalyzeSources(files, RepoLayerGraph());
  EXPECT_EQ(CountRuleIn(findings, "layer-dag"), 1u);
  EXPECT_EQ(CountRuleIn(findings, "hot-path-alloc"), 1u);
}

// The analyzer gate: every pass over the real src/ tree with the
// checked-in baseline must be clean — the same invariant CI enforces
// from the ddgms_analyzer CTest.
TEST(SelfCheckTest, AnalyzerPassesOverRealTreeAreClean) {
  AnalyzerOptions options;
  options.src_root = std::string(DDGMS_SOURCE_ROOT) + "/src";
  options.baseline_path = std::string(DDGMS_SOURCE_ROOT) +
                          "/tools/ddgms_lint/baseline.txt";
  Result<AnalyzerReport> report = RunAnalyzer(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->files_analyzed, 100u);
  for (const Finding& f : report->findings) {
    ADD_FAILURE() << f.ToString();
  }
}

}  // namespace
}  // namespace ddgms::lint
