// Tests for tools/ddgms_lint: every rule must fire on a violating
// fixture and stay quiet on a conforming one, and the real src/ tree
// must pass clean (the same gate CI runs).

#include "ddgms_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ddgms::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(StripTest, RemovesCommentsAndStringsButKeepsLines) {
  const std::string src =
      "int a; // std::mutex in a comment\n"
      "/* std::mutex\n"
      "   in a block */ int b;\n"
      "const char* s = \"std::mutex in a string\";\n"
      "char c = 'x';\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("mutex"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, RawStringLiteral) {
  const std::string src =
      "const char* s = R\"(std::lock_guard here)\"; int x;\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("lock_guard"), std::string::npos);
  EXPECT_NE(stripped.find("int x;"), std::string::npos);
}

TEST(NakedMutexTest, FlagsRawPrimitives) {
  SourceFile file{"warehouse/cache.h",
                  "#include <mutex>\n"
                  "class C {\n"
                  "  std::mutex mu_;\n"
                  "  void F() { std::lock_guard<std::mutex> l(mu_); }\n"
                  "  std::condition_variable_any cv_;\n"
                  "};\n"};
  std::vector<Finding> findings = CheckNakedMutex(file);
  ASSERT_EQ(findings.size(), 4u);  // mutex, lock_guard, mutex, condvar
  EXPECT_EQ(findings[0].rule, "naked-mutex");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[1].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
  EXPECT_NE(findings[3].message.find("condition_variable_any"),
            std::string::npos);
}

TEST(NakedMutexTest, SyncHeaderItselfIsExempt) {
  SourceFile file{"common/sync.h", "std::mutex mu_;\n"};
  EXPECT_TRUE(CheckNakedMutex(file).empty());
  // ...but a sync.h in another directory is not.
  SourceFile impostor{"etl/sync.h", "std::mutex mu_;\n"};
  EXPECT_EQ(CheckNakedMutex(impostor).size(), 1u);
}

TEST(NakedMutexTest, QuietOnAnnotatedWrappersAndProse) {
  SourceFile file{"common/metrics.cc",
                  "// prefer std::mutex? no: see common/sync.h\n"
                  "#include \"common/sync.h\"\n"
                  "void F() { MutexLock lock(mu_); }\n"};
  EXPECT_TRUE(CheckNakedMutex(file).empty());
}

TEST(HeaderGuardTest, AcceptsPathDerivedGuard) {
  SourceFile file{"common/metrics.h",
                  "#ifndef DDGMS_COMMON_METRICS_H_\n"
                  "#define DDGMS_COMMON_METRICS_H_\n"
                  "#endif  // DDGMS_COMMON_METRICS_H_\n"};
  EXPECT_TRUE(CheckHeaderGuard(file, file.path).empty());
}

TEST(HeaderGuardTest, FlagsWrongName) {
  SourceFile file{"common/metrics.h",
                  "#ifndef DDGMS_METRICS_H\n"
                  "#define DDGMS_METRICS_H\n"
                  "#endif\n"};
  std::vector<Finding> findings = CheckHeaderGuard(file, file.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
  EXPECT_NE(findings[0].message.find("DDGMS_COMMON_METRICS_H_"),
            std::string::npos);
}

TEST(HeaderGuardTest, FlagsMissingGuardAndPragmaOnce) {
  SourceFile missing{"etl/cleaner.h", "class Cleaner {};\n"};
  std::vector<Finding> findings = CheckHeaderGuard(missing, missing.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("missing include guard"),
            std::string::npos);

  SourceFile pragma{"etl/cleaner.h", "#pragma once\nclass Cleaner {};\n"};
  findings = CheckHeaderGuard(pragma, pragma.path);
  // #pragma once plus the missing guard itself.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("#pragma once"), std::string::npos);
}

TEST(HeaderGuardTest, FlagsMismatchedDefine) {
  SourceFile file{"mdx/ast.h",
                  "#ifndef DDGMS_MDX_AST_H_\n"
                  "#define DDGMS_MDX_AST_H\n"
                  "#endif\n"};
  std::vector<Finding> findings = CheckHeaderGuard(file, file.path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("does not match #ifndef"),
            std::string::npos);
}

TEST(BannedCallTest, FlagsRandAndStrtok) {
  SourceFile file{"mining/clustering.cc",
                  "int a = rand();\n"
                  "int b = std::rand();\n"
                  "char* t = strtok(buf, \",\");\n"};
  std::vector<Finding> findings = CheckBannedCalls(file);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "banned-call");
  EXPECT_NE(findings[0].message.find("Rng"), std::string::npos);
  EXPECT_EQ(findings[2].line, 3u);
}

TEST(BannedCallTest, QuietOnLookalikes) {
  SourceFile file{"mining/clustering.cc",
                  "int strand(int);\n"            // different identifier
                  "int x = strand(1);\n"          // call to it
                  "int y = rng.rand();\n"         // member
                  "int z = mylib::rand();\n"      // other namespace
                  "// rand() in a comment\n"
                  "const char* s = \"rand()\";\n"  // in a string
                  "int rando = 3;\n"};
  EXPECT_TRUE(CheckBannedCalls(file).empty());
}

TEST(IncludeCycleTest, FlagsDirectoryCycle) {
  std::vector<SourceFile> files = {
      {"alpha/a.h", "#include \"beta/b.h\"\n"},
      {"beta/b.h", "#include \"gamma/c.h\"\n"},
      {"gamma/c.h", "#include \"alpha/a.h\"\n"},
  };
  std::vector<Finding> findings = CheckIncludeCycles(files);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("alpha"), std::string::npos);
  EXPECT_NE(findings[0].message.find("->"), std::string::npos);
}

TEST(IncludeCycleTest, QuietOnDagAndSelfIncludes) {
  std::vector<SourceFile> files = {
      {"common/status.h", "#include <string>\n"},
      {"common/result.h", "#include \"common/status.h\"\n"},
      {"table/value.cc", "#include \"table/value.h\"\n"
                         "#include \"common/status.h\"\n"},
      {"etl/pipeline.cc", "#include \"table/table.h\"\n"},
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

TEST(InstrumentNameTest, AcceptsConformingNames) {
  SourceFile file{
      "olap/cube.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.olap.cache.hits\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.olap.ops:dice\");\n"
      "  registry.GetCounter(\"ddgms.retry.attempts:\" + op);\n"
      "  ScopedLatencyTimer timer(\"ddgms.olap.execute_latency_us\");\n"
      "  TraceSpan span(\"olap.cube.execute\");\n"
      "  DDGMS_LOG_WARN(\"quarantine.row\");\n"
      "  LogEvent slow(LogLevel::kWarn, \"mdx.slow_query\");\n"
      "  ScopedAccounting accounting(\"olap.cube\");\n"
      "  meter.GetPool(\"other\");\n"
      "  DDGMS_FAULT_POINT(\"persist.commit\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(InstrumentNameTest, FlagsBadNames) {
  SourceFile file{
      "olap/cube.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"olap.cache.hits\");\n"           // no ddgms.
      "  DDGMS_METRIC_INC(\"ddgms.nolayer.hits\");\n"        // bad layer
      "  DDGMS_METRIC_INC(\"ddgms.olap\");\n"                // too short
      "  TraceSpan span(\"fault.injected\");\n"              // bad layer
      "  DDGMS_LOG_WARN(\"olap.CamelCase\");\n"              // bad seg
      "  TraceSpan span(\"olap.a.b.c.d\");\n"                // too deep
      "  ScopedAccounting accounting(\"olap.cube:hot\");\n"  // ':' pool
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  EXPECT_EQ(findings.size(), 7u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "instrument-name");
  }
}

TEST(InstrumentNameTest, AcceptsServerAndQueriesLayers) {
  SourceFile file{
      "common/http.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.server.requests\");\n"
      "  DDGMS_METRIC_GAUGE_SET(\"ddgms.queries.active\", 1.0);\n"
      "  ScopedLatencyTimer timer(\"ddgms.server.request_latency_us\");\n"
      "  TraceSpan span(\"server.request\");\n"
      "  DDGMS_LOG_WARN(\"queries.watchdog_start\");\n"
      "  DDGMS_FAULT_POINT(\"server.accept\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(InstrumentNameTest, AcceptsSloAndAnomalyLayers) {
  SourceFile file{
      "common/slo.cc",
      "void F() {\n"
      "  DDGMS_METRIC_INC(\"ddgms.slo.transitions\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.slo.firing_total\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.anomaly.detections\");\n"
      "  DDGMS_METRIC_INC(\"ddgms.anomaly.scans\");\n"
      "  DDGMS_LOG_WARN(\"slo.firing\");\n"
      "  DDGMS_LOG_WARN(\"anomaly.detected\");\n"
      "}\n"};
  std::vector<Finding> findings = CheckInstrumentNames(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(EndpointPathTest, AcceptsConformingRoutes) {
  SourceFile file{
      "server/observability.cc",
      "void F(HttpServer& s, HttpHandler h) {\n"
      "  s.Handle(\"GET\", \"/\", h);\n"
      "  s.Handle(\"GET\", \"/statusz\", h);\n"
      "  s.Handle(\"GET\", \"/healthz\", h);\n"
      "  s.Handle(\"GET\", \"/debug/queryz\", h);\n"
      "  s.Handle(\"POST\", \"/metrics\", h);\n"  // sanctioned exception
      "}\n"};
  std::vector<Finding> findings = CheckEndpointPaths(file);
  for (const Finding& f : findings) ADD_FAILURE() << f.ToString();
}

TEST(EndpointPathTest, FlagsBadRoutes) {
  SourceFile file{
      "server/observability.cc",
      "void F(HttpServer& s, HttpHandler h) {\n"
      "  s.Handle(\"get\", \"/statusz\", h);\n"    // lower-case method
      "  s.Handle(\"GET\", \"statusz\", h);\n"     // no leading slash
      "  s.Handle(\"GET\", \"/statusz/\", h);\n"   // trailing slash
      "  s.Handle(\"GET\", \"/Statusz\", h);\n"    // upper-case segment
      "  s.Handle(\"GET\", \"/status\", h);\n"     // no trailing 'z'
      "}\n"};
  std::vector<Finding> findings = CheckEndpointPaths(file);
  EXPECT_EQ(findings.size(), 5u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "endpoint-path");
  }
}

TEST(EndpointPathTest, IgnoresDynamicArgsAndOtherHandles) {
  SourceFile file{
      "server/observability.cc",
      "// s.Handle(\"GET\", \"/bad\") in prose is not a route.\n"
      "void F(HttpServer& s, HttpHandler h, std::string p) {\n"
      "  s.Handle(\"GET\", p, h);\n"           // dynamic path
      "  s.Handle(method, \"/whoz\", h);\n"    // dynamic method
      "  file.Handle(42);\n"                   // unrelated Handle()
      "  s.PreHandle(\"GET\", \"/bad\", h);\n"  // not the Handle token
      "}\n"};
  EXPECT_TRUE(CheckEndpointPaths(file).empty());
}

TEST(InstrumentNameTest, IgnoresCommentsAndDynamicNames) {
  SourceFile file{
      "common/faults.h",
      "// Use DDGMS_FAULT_POINT(\"name\") to add a fault point.\n"
      "#define DDGMS_FAULT_POINT(name) Hit(name)\n"
      "void F(const std::string& n) { registry.GetCounter(n); }\n"};
  EXPECT_TRUE(CheckInstrumentNames(file).empty());
}

TEST(LintSourcesTest, AggregatesAcrossRules) {
  std::vector<SourceFile> files = {
      {"alpha/a.h",
       "#ifndef WRONG_GUARD_H_\n"
       "#define WRONG_GUARD_H_\n"
       "#include \"beta/b.h\"\n"
       "std::mutex mu;\n"
       "int r = rand();\n"
       "#endif\n"},
      {"beta/b.h",
       "#ifndef DDGMS_BETA_B_H_\n"
       "#define DDGMS_BETA_B_H_\n"
       "#include \"alpha/a.h\"\n"
       "#endif\n"},
  };
  std::vector<std::string> rules = RulesOf(LintSources(files));
  EXPECT_NE(std::find(rules.begin(), rules.end(), "naked-mutex"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "banned-call"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "header-guard"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "include-cycle"),
            rules.end());
}

// The gate itself: the real src/ tree must pass every textual rule.
// (The standalone-header compile probe also runs over the tree, but
// from the ddgms_lint CTest where a compiler is configured — here we
// keep the test milliseconds-fast.)
TEST(SelfCheckTest, RealSourceTreeIsClean) {
  LintOptions options;
  options.src_root = std::string(DDGMS_SOURCE_ROOT) + "/src";
  Result<std::vector<Finding>> result = RunLint(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Finding& f : result.value()) {
    ADD_FAILURE() << f.ToString();
  }
}

TEST(SelfCheckTest, RunLintRejectsMissingRoot) {
  LintOptions options;
  options.src_root = "/nonexistent/ddgms/src";
  Result<std::vector<Finding>> result = RunLint(options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

}  // namespace
}  // namespace ddgms::lint
