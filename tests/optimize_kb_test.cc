// Unit tests for decision optimisation (stability, regimen) and the
// knowledge base.

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "optimize/regimen.h"
#include "optimize/stability.h"
#include "warehouse/warehouse.h"

namespace ddgms {
namespace {

using optimize::EstimateBenefitFromCohort;
using optimize::GreedyRegimen;
using optimize::OptimizeRegimen;
using optimize::StabilityAnalyzer;
using optimize::StabilityOptions;
using optimize::TreatmentOption;
using warehouse::DimensionDef;
using warehouse::MeasureDef;
using warehouse::StarSchemaBuilder;
using warehouse::StarSchemaDef;
using warehouse::Warehouse;

// -------------------------------------------------------------- stability

Warehouse MakeStabilityWarehouse() {
  // FBG mean is ~8 for diabetics regardless of gender (stable), but
  // varies wildly across Site (unstable confounder).
  auto schema = Schema::Make({{"Gender", DataType::kString},
                              {"Site", DataType::kString},
                              {"Diabetes", DataType::kString},
                              {"FBG", DataType::kDouble}});
  Table t(std::move(schema).value());
  struct R {
    const char* g;
    const char* s;
    const char* d;
    double fbg;
  };
  const R rows[] = {
      {"F", "north", "Yes", 10.0}, {"M", "north", "Yes", 10.2},
      {"F", "north", "Yes", 9.8},  {"M", "north", "Yes", 10.1},
      {"F", "south", "Yes", 6.0},  {"M", "south", "Yes", 6.1},
      {"F", "south", "Yes", 5.9},  {"M", "south", "Yes", 6.2},
      {"F", "north", "No", 5.0},   {"M", "south", "No", 5.1},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Str(r.g), Value::Str(r.s),
                             Value::Str(r.d), Value::Real(r.fbg)})
                    .ok());
  }
  StarSchemaDef def;
  def.fact_name = "Facts";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef person{"Person", {"Gender", "Site"}, {}};
  DimensionDef condition{"Condition", {"Diabetes"}, {}};
  def.dimensions = {person, condition};
  auto wh = StarSchemaBuilder(def).Build(t);
  EXPECT_TRUE(wh.ok());
  return std::move(wh).value();
}

TEST(StabilityTest, FlagsConfounderAndPassesStableDimension) {
  Warehouse wh = MakeStabilityWarehouse();
  StabilityOptions opt;
  opt.instability_threshold = 0.2;
  opt.min_subgroup_fraction = 0.0;
  StabilityAnalyzer analyzer(&wh, opt);
  auto report = analyzer.Analyze(
      AggSpec{AggFn::kAvg, "FBG", "mean_fbg"},
      {olap::SlicerSpec{"Condition", "Diabetes", {Value::Str("Yes")}}},
      {{"Person", "Gender"}, {"Person", "Site"}});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NEAR(report->base_value, 8.0375, 1e-3);
  ASSERT_EQ(report->candidates.size(), 2u);
  EXPECT_TRUE(report->candidates[0].stable);    // Gender
  EXPECT_FALSE(report->candidates[1].stable);   // Site
  EXPECT_FALSE(report->all_stable);
  EXPECT_GT(report->candidates[1].relative_spread,
            report->candidates[0].relative_spread);
  EXPECT_FALSE(report->ToString().empty());
}

TEST(StabilityTest, EmptySlicerSelectionFails) {
  Warehouse wh = MakeStabilityWarehouse();
  StabilityAnalyzer analyzer(&wh);
  auto report = analyzer.Analyze(
      AggSpec{AggFn::kAvg, "FBG", ""},
      {olap::SlicerSpec{"Condition", "Diabetes", {Value::Str("Maybe")}}},
      {{"Person", "Gender"}});
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------- regimen

TEST(RegimenTest, KnapsackBeatsGreedyWhenRatiosMislead) {
  // Classic case: greedy picks the high-ratio small item and wastes
  // budget; DP finds the better pair.
  std::vector<TreatmentOption> options = {
      {"screening", 6.0, 9.0},   // ratio 1.5
      {"education", 5.0, 6.0},   // ratio 1.2
      {"exercise", 5.0, 6.0},    // ratio 1.2
  };
  auto dp = OptimizeRegimen(options, 10.0);
  ASSERT_TRUE(dp.ok());
  EXPECT_DOUBLE_EQ(dp->total_benefit, 12.0);  // education + exercise
  EXPECT_EQ(dp->selected.size(), 2u);

  auto greedy = GreedyRegimen(options, 10.0);
  ASSERT_TRUE(greedy.ok());
  EXPECT_DOUBLE_EQ(greedy->total_benefit, 9.0);  // screening only
  EXPECT_GE(dp->total_benefit, greedy->total_benefit);
}

TEST(RegimenTest, RespectsBudgetExactly) {
  std::vector<TreatmentOption> options = {
      {"a", 3.0, 5.0}, {"b", 4.0, 6.0}, {"c", 5.0, 7.0}};
  auto plan = OptimizeRegimen(options, 7.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->total_cost, 7.0 + 1e-9);
  EXPECT_DOUBLE_EQ(plan->total_benefit, 11.0);  // a + b
}

TEST(RegimenTest, NegativeBenefitNeverSelected) {
  std::vector<TreatmentOption> options = {{"harmful", 1.0, -5.0},
                                          {"helpful", 1.0, 2.0}};
  auto plan = OptimizeRegimen(options, 10.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->selected, std::vector<std::string>{"helpful"});
}

TEST(RegimenTest, ZeroBudgetSelectsNothingWithPositiveCost) {
  std::vector<TreatmentOption> options = {{"a", 1.0, 2.0}};
  auto plan = OptimizeRegimen(options, 0.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->selected.empty());
}

TEST(RegimenTest, Validation) {
  EXPECT_FALSE(OptimizeRegimen({{"a", 1, 1}}, -1.0).ok());
  EXPECT_FALSE(OptimizeRegimen({{"a", -1, 1}}, 1.0).ok());
  EXPECT_FALSE(OptimizeRegimen({{"a", 1, 1}}, 1.0, -5.0).ok());
  EXPECT_FALSE(GreedyRegimen({{"a", 1, 1}}, -1.0).ok());
}

TEST(RegimenTest, EstimateBenefitFromCohort) {
  Table t(Schema::Make({{"Treated", DataType::kBool},
                        {"HbA1c", DataType::kDouble}})
              .value());
  // Treated patients have lower HbA1c by ~1.0.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Bool(true), Value::Real(6.5)}).ok());
    ASSERT_TRUE(
        t.AppendRow({Value::Bool(false), Value::Real(7.5)}).ok());
  }
  auto benefit = EstimateBenefitFromCohort(t, "Treated", "HbA1c",
                                           /*lower_is_better=*/true);
  ASSERT_TRUE(benefit.ok());
  EXPECT_NEAR(*benefit, 1.0, 1e-9);
  // No unexposed rows -> error.
  Table all_on = t.Filter([](const Table& tt, size_t i) {
    return tt.column(0).BoolAt(i);
  });
  EXPECT_TRUE(EstimateBenefitFromCohort(all_on, "Treated", "HbA1c")
                  .status()
                  .IsFailedPrecondition());
}

// --------------------------------------------------------- knowledge base

TEST(KnowledgeBaseTest, EvidenceAccumulationAndPromotion) {
  kb::KnowledgeBaseOptions opt;
  opt.promotion_threshold = 3;
  opt.promotion_confidence = 0.5;
  kb::KnowledgeBase base(opt);
  int64_t id = base.RecordEvidence("finding A", "olap", 0.6, {"diabetes"});
  EXPECT_EQ(base.RecordEvidence("finding A", "mining", 0.7), id);
  auto f = base.Get(id);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->evidence_count, 2u);
  EXPECT_EQ(f->status, kb::FindingStatus::kCandidate);
  base.RecordEvidence("finding A", "prediction", 0.4);
  f = base.Get(id);
  EXPECT_EQ(f->status, kb::FindingStatus::kAccepted);
  EXPECT_DOUBLE_EQ(f->confidence, 0.7);  // max retained
}

TEST(KnowledgeBaseTest, LowConfidenceBlocksPromotion) {
  kb::KnowledgeBaseOptions opt;
  opt.promotion_threshold = 2;
  opt.promotion_confidence = 0.9;
  kb::KnowledgeBase base(opt);
  int64_t id = base.RecordEvidence("weak", "olap", 0.3);
  base.RecordEvidence("weak", "olap", 0.4);
  base.RecordEvidence("weak", "olap", 0.4);
  EXPECT_EQ(base.Get(id)->status, kb::FindingStatus::kCandidate);
}

TEST(KnowledgeBaseTest, RetireAndQueries) {
  kb::KnowledgeBase base;
  int64_t a = base.RecordEvidence("A", "olap", 0.5, {"x", "y"});
  base.RecordEvidence("B", "mining", 0.5, {"y"});
  ASSERT_TRUE(base.Retire(a).ok());
  EXPECT_EQ(base.WithStatus(kb::FindingStatus::kRetired).size(), 1u);
  EXPECT_EQ(base.WithTag("y").size(), 2u);
  EXPECT_EQ(base.WithTag("x").size(), 1u);
  EXPECT_TRUE(base.Retire(999).IsNotFound());
  EXPECT_TRUE(base.Get(999).status().IsNotFound());
}

TEST(KnowledgeBaseTest, TagsDeduplicatedOnMerge) {
  kb::KnowledgeBase base;
  int64_t id = base.RecordEvidence("A", "olap", 0.5, {"x"});
  base.RecordEvidence("A", "olap", 0.5, {"x", "z"});
  auto f = base.Get(id);
  EXPECT_EQ(f->tags, (std::vector<std::string>{"x", "z"}));
}

TEST(KnowledgeBaseTest, ToTable) {
  kb::KnowledgeBase base;
  base.RecordEvidence("A", "olap", 0.5, {"x"});
  auto table = base.ToTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(*table->GetCell(0, "Statement"), Value::Str("A"));
}

TEST(KnowledgeBaseTest, CsvRoundTrip) {
  kb::KnowledgeBase base;
  base.RecordEvidence("finding, with comma", "olap", 0.5, {"x", "y"});
  base.RecordEvidence("another", "mining", 0.25);
  std::string csv = base.ToCsv();
  auto back = kb::KnowledgeBase::FromCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  auto f = back->Get(1);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->statement, "finding, with comma");
  EXPECT_EQ(f->tags, (std::vector<std::string>{"x", "y"}));
  // New ids continue after the max loaded id.
  int64_t next = back->RecordEvidence("new", "olap", 0.1);
  EXPECT_EQ(next, 3);
}

TEST(KnowledgeBaseTest, FromCsvRejectsMalformed) {
  EXPECT_FALSE(kb::KnowledgeBase::FromCsv("").ok());
  EXPECT_FALSE(
      kb::KnowledgeBase::FromCsv("header\n1,2\n").ok());
  EXPECT_FALSE(kb::KnowledgeBase::FromCsv(
                   "h\nx,s,src,,1,0.5,candidate\n")
                   .ok());  // non-integer id
}

}  // namespace
}  // namespace ddgms
