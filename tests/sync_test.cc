// Tests for common/sync.h plus concurrency stress for the subsystems
// it retrofitted (metrics, event log, telemetry sampler). The stress
// tests are deliberately contention-heavy: they are the workload the
// TSan CI lane runs under -fsanitize=thread to catch data races that
// single-threaded unit tests cannot.

#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "gtest/gtest.h"
#include "warehouse/telemetry.h"

namespace ddgms {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must not get the lock while we hold it.
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    acquired.store(mu.TryLock());
    if (acquired.load()) mu.Unlock();
  });
  t.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockSerializesIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (plain int on purpose)

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  constexpr int kItems = 5000;
  Mutex mu;
  CondVar cv;
  std::deque<int> queue;  // guarded by mu
  bool done = false;      // guarded by mu
  int64_t consumed_sum = 0;

  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(mu);
      cv.Wait(mu, [&] { return !queue.empty() || done; });
      if (queue.empty() && done) return;
      while (!queue.empty()) {
        consumed_sum += queue.front();
        queue.pop_front();
      }
    }
  });

  int64_t produced_sum = 0;
  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(mu);
      queue.push_back(i);
    }
    produced_sum += i;
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum, produced_sum);
}

TEST(CondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  const bool woke =
      cv.WaitFor(mu, std::chrono::milliseconds(20), [] { return false; });
  EXPECT_FALSE(woke);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool go = false;     // guarded by mu
  int waiting = 0;     // guarded by mu
  int released = 0;    // guarded by mu

  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      MutexLock lock(mu);
      ++waiting;
      cv.NotifyOne();  // tell the main thread we are parked
      cv.Wait(mu, [&] { return go; });
      ++released;
    });
  }
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return waiting == kWaiters; });
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(released, kWaiters);
}

// ---------------------------------------------------------------------
// Subsystem stress (the TSan lane's main diet).
// ---------------------------------------------------------------------

class SubsystemStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Enable();
    MetricsRegistry::Global().ResetValues();
    EventLog::Enable();
    EventLog::Global().Clear();
    EventLog::Global().set_capacity(2048);
    TraceCollector::Enable();
    TraceCollector::Global().Clear();
  }

  void TearDown() override {
    TraceCollector::Disable();
    TraceCollector::Global().Clear();
    EventLog::Disable();
    EventLog::Global().Clear();
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }
};

TEST_F(SubsystemStressTest, MetricsRegistryUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<bool> stop{false};

  // Reader thread: snapshots continuously while writers mutate and
  // create instruments (exercises map growth vs. iteration).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
      ASSERT_LE(snap.counters.size(), 1u + kThreads);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      const std::string mine =
          "ddgms.test.sync_stress:" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        // Shared instrument: every thread contends on creation (first
        // iteration) and on the counter word after.
        MetricsRegistry::Global()
            .GetCounter("ddgms.test.sync_stress.shared")
            .Increment();
        MetricsRegistry::Global().GetCounter(mine).Increment();
        MetricsRegistry::Global()
            .GetGauge("ddgms.test.sync_stress.gauge")
            .Set(static_cast<double>(i));
        MetricsRegistry::Global()
            .GetHistogram("ddgms.test.sync_stress.lat")
            .Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("ddgms.test.sync_stress.shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  const HistogramSnapshot* hist =
      snap.histogram("ddgms.test.sync_stress.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(SubsystemStressTest, EventLogRingEvictionUnderContention) {
  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  // Small ring so eviction churns constantly.
  EventLog::Global().set_capacity(64);

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<LogRecord> records = EventLog::Global().Snapshot();
      // Ring order must stay oldest-first with strictly increasing seq
      // even while writers race the eviction cursor.
      for (size_t i = 1; i < records.size(); ++i) {
        ASSERT_LT(records[i - 1].seq, records[i].seq);
      }
      ASSERT_LE(records.size(), 64u);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        DDGMS_LOG_INFO("test.sync_stress")
            .With("thread", t)
            .With("iter", i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  // Every record was either evicted (counted in dropped()) or is still
  // in the ring — nothing vanished.
  EXPECT_EQ(EventLog::Global().size() + EventLog::Global().dropped(),
            static_cast<size_t>(kThreads) * kIters);
}

TEST_F(SubsystemStressTest, DrainNeverLosesOrDuplicatesRecords) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  // Capacity large enough that nothing is evicted: drained seqs must
  // then form an exact partition of all emitted seqs.
  EventLog::Global().set_capacity(static_cast<size_t>(kThreads) * kIters +
                                  16);

  std::atomic<bool> done{false};
  std::set<uint64_t> seen;
  std::thread drainer([&] {
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      for (LogRecord& record : EventLog::Global().Drain()) {
        const bool inserted = seen.insert(record.seq).second;
        ASSERT_TRUE(inserted) << "seq " << record.seq << " drained twice";
      }
      if (finished) break;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        DDGMS_LOG_WARN("test.sync_drain").With("thread", t);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kIters);
  EXPECT_EQ(EventLog::Global().dropped(), 0u);
}

TEST_F(SubsystemStressTest, TelemetrySamplerRacesEmitters) {
  constexpr int kSamples = 40;
  constexpr int kEmitters = 4;
  constexpr int kIters = 1500;

  warehouse::TelemetrySampler sampler;
  std::atomic<bool> stop{false};

  std::vector<std::thread> emitters;
  emitters.reserve(kEmitters);
  for (int t = 0; t < kEmitters; ++t) {
    emitters.emplace_back([&stop, t] {
      for (int i = 0; i < kIters && !stop.load(std::memory_order_relaxed);
           ++i) {
        DDGMS_METRIC_INC("ddgms.test.telemetry_stress");
        DDGMS_LOG_INFO("test.telemetry_stress").With("thread", t);
        TraceSpan span("test.telemetry_stress.span");
      }
    });
  }

  int64_t last_snapshot = 0;
  for (int s = 0; s < kSamples; ++s) {
    Result<warehouse::TelemetrySampleStats> stats = sampler.Sample();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats.value().snapshot, last_snapshot);
    last_snapshot = stats.value().snapshot;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : emitters) t.join();

  EXPECT_EQ(sampler.num_samples(), kSamples);
  // Rows staged under contention must be readable as coherent tables.
  EXPECT_EQ(sampler.metric_samples().num_rows() +
                sampler.span_facts().num_rows() +
                sampler.event_facts().num_rows(),
            sampler.num_rows());
}

}  // namespace
}  // namespace ddgms
