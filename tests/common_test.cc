// Unit tests for src/common: Status, Result, strings, CSV, Date, Rng.

#include <gtest/gtest.h>

#include <set>

#include "common/csv.h"
#include "common/date.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace ddgms {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EveryCodeHasACanonicalName) {
  std::set<std::string> names;
  for (StatusCode code : kAllStatusCodes) {
    std::string name = StatusCodeName(code);
    EXPECT_NE(name, "Unknown") << "unnamed code";
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  // Names are distinct — one per enumerator.
  EXPECT_EQ(names.size(), std::size(kAllStatusCodes));
}

TEST(StatusTest, StatusCodeNameRoundTripsThroughFromName) {
  for (StatusCode code : kAllStatusCodes) {
    StatusCode parsed;
    ASSERT_TRUE(StatusCodeFromName(StatusCodeName(code), &parsed))
        << StatusCodeName(code);
    EXPECT_EQ(parsed, code);
  }
  StatusCode ignored;
  EXPECT_FALSE(StatusCodeFromName("NoSuchCode", &ignored));
  EXPECT_FALSE(StatusCodeFromName("", &ignored));
}

TEST(StatusTest, ToStringRoundTripsForEveryCode) {
  for (StatusCode code : kAllStatusCodes) {
    if (code == StatusCode::kOk) {
      EXPECT_EQ(Status::OK().ToString(), "OK");
      continue;
    }
    Status status(code, "some detail");
    std::string text = status.ToString();
    // "<Name>: <message>" — both halves must be recoverable.
    size_t colon = text.find(": ");
    ASSERT_NE(colon, std::string::npos) << text;
    StatusCode parsed;
    ASSERT_TRUE(StatusCodeFromName(text.substr(0, colon), &parsed));
    EXPECT_EQ(parsed, code);
    EXPECT_EQ(text.substr(colon + 2), "some detail");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status HelperReturnIfError(bool fail) {
  DDGMS_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(HelperReturnIfError(false).ok());
  EXPECT_TRUE(HelperReturnIfError(true).IsInternal());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> HelperAssignOrReturn(Result<int> input) {
  DDGMS_ASSIGN_OR_RETURN(int v, input);
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*HelperAssignOrReturn(1), 2);
  EXPECT_TRUE(HelperAssignOrReturn(Status::ParseError("x"))
                  .status()
                  .IsParseError());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// --------------------------------------------------------------- strings

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a ;  b;c ", ';'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "Selects"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("warehouse", "ware"));
  EXPECT_FALSE(StartsWith("ware", "warehouse"));
  EXPECT_TRUE(EndsWith("warehouse", "house"));
  EXPECT_FALSE(EndsWith("house", "warehouse"));
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -4e2 "), -400.0);
  EXPECT_TRUE(ParseDouble("3.25x").status().IsParseError());
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("nanx").status().IsParseError());
}

TEST(StringsTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-5"), -5);
  EXPECT_TRUE(ParseInt64("12.5").status().IsParseError());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsParseError());
}

TEST(StringsTest, ParseBool) {
  EXPECT_TRUE(*ParseBool("true"));
  EXPECT_TRUE(*ParseBool("YES"));
  EXPECT_FALSE(*ParseBool("0"));
  EXPECT_TRUE(ParseBool("maybe").status().IsParseError());
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(2.50000001, 4), "2.5");
  EXPECT_EQ(FormatDouble(-0.25), "-0.25");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto fields = ParseCsvLine(R"("a,b",c,"say ""hi""")");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"a,b", "c", "say \"hi\""}));
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_TRUE(ParseCsvLine("\"abc").status().IsParseError());
}

TEST(CsvTest, ParseDocumentWithCrlfAndEmbeddedNewline) {
  auto rows = ParseCsv("a,b\r\n\"x\ny\",z\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "x\ny");
}

TEST(CsvTest, FormatRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     "multi\nline"};
  std::string line = FormatCsvLine(fields);
  auto rows = ParseCsv(line);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], fields);
}

TEST(CsvTest, CrlfAndLoneCrBothTerminateRecords) {
  auto rows = ParseCsv("a,b\r\nc,d\re,f\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"e", "f"}));
}

TEST(CsvTest, CrlfInsideQuotesIsPreserved) {
  auto rows = ParseCsv("\"x\r\ny\",z\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "x\r\ny");
}

TEST(CsvTest, UnterminatedQuotedFieldAtEofIsDiagnosed) {
  auto rows = ParseCsv("a,b\nc,\"unclosed");
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsParseError());
  // The diagnostic locates the damage after the last complete record.
  EXPECT_NE(rows.status().message().find("unterminated quoted field"),
            std::string::npos);
  EXPECT_NE(rows.status().message().find("after 1 complete record"),
            std::string::npos);
}

TEST(CsvTest, TrailingDelimiterYieldsEmptyFinalField) {
  auto fields = ParseCsvLine("a,b,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", ""}));
  auto rows = ParseCsv("a,b,\nc,d,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", ""}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d", ""}));
}

TEST(CsvTest, ParseCsvLenientQuarantinesOnlyBadRecords) {
  // An unterminated quote swallows the rest of the input, so the bad
  // record is the final one; everything before it survives with its
  // physical record number.
  QuarantineReport quarantine;
  auto records =
      ParseCsvLenient("a,b\nok,fine\n\"bad", ',', &quarantine);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].record_number, 1u);
  EXPECT_EQ((*records)[0].fields,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*records)[1].record_number, 2u);
  EXPECT_EQ((*records)[1].fields,
            (std::vector<std::string>{"ok", "fine"}));
  ASSERT_EQ(quarantine.size(), 1u);
  EXPECT_EQ(quarantine.rows()[0].stage, "csv-parse");
  EXPECT_EQ(quarantine.rows()[0].row_number, 3u);
  EXPECT_TRUE(quarantine.rows()[0].status.IsParseError());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  EXPECT_TRUE(ReadFile("/nonexistent/zzz.csv").status().IsNotFound());
}

TEST(CsvTest, ReadFileErrorNamesPathAndCause) {
  auto text = ReadFile("/nonexistent/zzz.csv");
  ASSERT_FALSE(text.ok());
  // The message carries the offending path and the OS-level cause.
  EXPECT_NE(text.status().message().find("'/nonexistent/zzz.csv'"),
            std::string::npos);
  EXPECT_NE(text.status().message().find("No such file or directory"),
            std::string::npos);
}

TEST(CsvTest, WriteFileErrorNamesPathAndCause) {
  Status st = WriteFile("/nonexistent/dir/out.csv", "x\n");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'/nonexistent/dir/out.csv'"),
            std::string::npos);
  EXPECT_NE(st.message().find("No such file or directory"),
            std::string::npos);
}

TEST(CsvTest, WriteAndReadFile) {
  std::string path = testing::TempDir() + "/ddgms_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "x,y\n1,2\n").ok());
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "x,y\n1,2\n");
}

// ------------------------------------------------------------------ Date

TEST(DateTest, EpochIsZero) {
  Date d = Date::FromYmd(1970, 1, 1).value();
  EXPECT_EQ(d.days_since_epoch(), 0);
}

TEST(DateTest, RoundTripYmd) {
  Date d = Date::FromYmd(2013, 4, 8).value();
  EXPECT_EQ(d.year(), 2013);
  EXPECT_EQ(d.month(), 4);
  EXPECT_EQ(d.day(), 8);
  EXPECT_EQ(d.ToString(), "2013-04-08");
}

TEST(DateTest, ValidatesMonthAndDay) {
  EXPECT_TRUE(Date::FromYmd(2013, 13, 1).status().IsInvalidArgument());
  EXPECT_TRUE(Date::FromYmd(2013, 2, 29).status().IsInvalidArgument());
  EXPECT_TRUE(Date::FromYmd(2012, 2, 29).ok());  // leap year
}

TEST(DateTest, ParseString) {
  auto d = Date::FromString("1999-12-31");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year(), 1999);
  EXPECT_TRUE(Date::FromString("31/12/1999").status().IsParseError());
  EXPECT_TRUE(Date::FromString("1999-12-31x").status().IsParseError());
}

TEST(DateTest, ArithmeticAndComparison) {
  Date a = Date::FromYmd(2010, 1, 1).value();
  Date b = a.AddDays(365);
  EXPECT_EQ(b.ToString(), "2011-01-01");
  EXPECT_EQ(b.DaysSince(a), 365);
  EXPECT_NEAR(b.YearsSince(a), 1.0, 0.01);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ddgms
