// Observability server tests: HTTP parse/serialize round trips, the
// listener's routing (404/405), fault-injected accept/read failures,
// the live query registry + stall watchdog (fires exactly once per
// query), the bounded completed-query history, /profilez input
// validation, the /sloz + /alertz surface, and a concurrent
// scrape-while-query stress run under the TSan lane.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "common/http.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/query_registry.h"
#include "common/slo.h"
#include "common/trace.h"
#include "common/window.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "mdx/executor.h"
#include "server/observability.h"

namespace ddgms {
namespace {

// ---------------------------------------------------------------- //
// HTTP message parsing / serialization (no sockets involved)
// ---------------------------------------------------------------- //

TEST(HttpParseTest, ParsesRequestLineHeadersAndQuery) {
  auto request = ParseHttpRequest(
      "GET /profilez?seconds=2&format=json HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom: hello world\r\n"
      "\r\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/profilez");
  EXPECT_EQ(request->target, "/profilez?seconds=2&format=json");
  EXPECT_EQ(request->QueryParam("seconds"), "2");
  EXPECT_EQ(request->QueryParam("format"), "json");
  EXPECT_EQ(request->QueryParam("absent", "fallback"), "fallback");
  // Header names are lower-cased; values keep their case.
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->headers.at("x-custom"), "hello world");
}

TEST(HttpParseTest, PercentDecodesPathAndQuery) {
  auto request = ParseHttpRequest(
      "GET /logz?level=warn&q=a%20b%2Bc+d HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->QueryParam("q"), "a b+c d");
}

TEST(HttpParseTest, ParsesContentLengthBody) {
  auto request = ParseHttpRequest(
      "POST /queryz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->body, "hello");
}

TEST(HttpParseTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n\r\n").ok());  // no version
  EXPECT_FALSE(ParseHttpRequest("garbage\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nbad header line\r\n\r\n").ok());
}

TEST(HttpParseTest, SerializeResponseRoundTrips) {
  HttpResponse response = HttpResponse::Json("{\"a\":1}");
  const std::string raw = SerializeHttpResponse(response);
  EXPECT_NE(raw.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 7\r\n"), std::string::npos);
  auto parsed = ParseHttpResponse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, 200);
  EXPECT_EQ(parsed->second, "{\"a\":1}");
}

TEST(HttpParseTest, ReasonPhrases) {
  EXPECT_STREQ(HttpReasonPhrase(200), "OK");
  EXPECT_STREQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_STREQ(HttpReasonPhrase(405), "Method Not Allowed");
  EXPECT_STREQ(HttpReasonPhrase(777), "Unknown");
}

// ---------------------------------------------------------------- //
// HttpServer: loopback round trips, routing, faults
// ---------------------------------------------------------------- //

class HttpServerTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }

  /// GET `target` against `server`, returning (status, body).
  static std::pair<int, std::string> Get(const HttpServer& server,
                                         const std::string& target) {
    auto raw = HttpGet("127.0.0.1", server.port(), target);
    EXPECT_TRUE(raw.ok()) << raw.status().ToString();
    if (!raw.ok()) return {0, ""};
    auto parsed = ParseHttpResponse(*raw);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return {0, ""};
    return *parsed;
  }
};

TEST_F(HttpServerTest, ServesRegisteredRoutes) {
  HttpServer server;
  server.Handle("GET", "/pingz", [](const HttpRequest&) {
    return HttpResponse::Text("pong\n");
  });
  server.Handle("GET", "/echoz", [](const HttpRequest& request) {
    return HttpResponse::Text(request.QueryParam("msg"));
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  EXPECT_EQ(Get(server, "/pingz"),
            (std::pair<int, std::string>{200, "pong\n"}));
  EXPECT_EQ(Get(server, "/echoz?msg=hello").second, "hello");
  ASSERT_TRUE(server.Stop().ok());
  EXPECT_FALSE(server.running());
}

TEST_F(HttpServerTest, UnknownPathIs404WrongMethodIs405) {
  HttpServer server;
  server.Handle("POST", "/postz", [](const HttpRequest&) {
    return HttpResponse::Text("posted");
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Get(server, "/missingz").first, 404);
  EXPECT_EQ(Get(server, "/postz").first, 405);  // GET on a POST route
  ASSERT_TRUE(server.Stop().ok());
}

TEST_F(HttpServerTest, StartTwiceFailsStopWithoutStartFails) {
  HttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  EXPECT_FALSE(server.Stop().ok());
}

TEST_F(HttpServerTest, SurvivesInjectedAcceptFailures) {
  HttpServer server;
  server.Handle("GET", "/pingz", [](const HttpRequest&) {
    return HttpResponse::Text("pong");
  });
  ASSERT_TRUE(server.Start().ok());
  // First two accepted connections are dropped; the listener must keep
  // serving afterwards.
  FaultPlan plan;
  plan.fail_first = 2;
  FaultRegistry::Global().Arm("server.accept", plan);
  EXPECT_FALSE(HttpGet("127.0.0.1", server.port(), "/pingz", 2000).ok());
  EXPECT_FALSE(HttpGet("127.0.0.1", server.port(), "/pingz", 2000).ok());
  EXPECT_EQ(Get(server, "/pingz").first, 200);
  ASSERT_TRUE(server.Stop().ok());
}

TEST_F(HttpServerTest, SurvivesInjectedReadFailures) {
  HttpServer server;
  server.Handle("GET", "/pingz", [](const HttpRequest&) {
    return HttpResponse::Text("pong");
  });
  ASSERT_TRUE(server.Start().ok());
  FaultPlan plan;
  plan.code = StatusCode::kDataLoss;
  plan.fail_first = 1;
  FaultRegistry::Global().Arm("server.read", plan);
  EXPECT_FALSE(HttpGet("127.0.0.1", server.port(), "/pingz", 2000).ok());
  EXPECT_EQ(Get(server, "/pingz").first, 200);
  ASSERT_TRUE(server.Stop().ok());
}

TEST_F(HttpServerTest, OversizedRequestIsRejected) {
  HttpServerOptions options;
  options.max_request_bytes = 128;
  HttpServer server(options);
  server.Handle("GET", "/pingz", [](const HttpRequest&) {
    return HttpResponse::Text("pong");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string long_target = "/pingz?pad=" + std::string(500, 'x');
  auto raw = HttpGet("127.0.0.1", server.port(), long_target, 2000);
  if (raw.ok()) {
    auto parsed = ParseHttpResponse(*raw);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->first, 413);
  }
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------- //
// QueryRegistry + watchdog
// ---------------------------------------------------------------- //

class QueryRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryRegistry::Global().ResetForTesting();
    QueryRegistry::Global().set_history_capacity(128);
    QueryRegistry::Enable();
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
  }
  void TearDown() override {
    QueryRegistry::Disable();
    QueryRegistry::Global().ResetForTesting();
    QueryRegistry::Global().set_history_capacity(128);
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }
};

TEST_F(QueryRegistryTest, BeginSnapshotEndLifecycle) {
  QueryRegistry& registry = QueryRegistry::Global();
  const uint64_t id = registry.Begin("mdx", "SELECT ...");
  ASSERT_NE(id, 0u);
  EXPECT_EQ(registry.active(), 1u);

  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].id, id);
  EXPECT_EQ(snapshot[0].kind, "mdx");
  EXPECT_EQ(snapshot[0].text, "SELECT ...");
  EXPECT_EQ(snapshot[0].stage, "start");
  EXPECT_FALSE(snapshot[0].stalled);
  EXPECT_GE(snapshot[0].elapsed_ms, 0.0);

  registry.SetStage(id, "execute");
  EXPECT_EQ(registry.Snapshot()[0].stage, "execute");

  registry.End(id);
  EXPECT_EQ(registry.active(), 0u);
  MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(metrics.counter("ddgms.queries.started"), 1u);
  EXPECT_EQ(metrics.counter("ddgms.queries.finished"), 1u);
}

TEST_F(QueryRegistryTest, DisabledRegistryRegistersNothing) {
  QueryRegistry::Disable();
  const uint64_t id = QueryRegistry::Global().Begin("mdx", "q");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(QueryRegistry::Global().active(), 0u);
  QueryRegistry::Global().End(id);  // no-op, must not crash
}

TEST_F(QueryRegistryTest, ScopedRecordRoutesCurrentStage) {
  {
    ScopedQueryRecord record("mdx", "outer");
    ASSERT_NE(record.id(), 0u);
    QueryRegistry::SetCurrentStage("compile");
    EXPECT_EQ(QueryRegistry::Global().Snapshot()[0].stage, "compile");
    {
      ScopedQueryRecord inner("mdx", "inner");
      QueryRegistry::SetCurrentStage("execute");
      // The innermost record gets the stage update.
      for (const auto& q : QueryRegistry::Global().Snapshot()) {
        if (q.id == inner.id()) EXPECT_EQ(q.stage, "execute");
        if (q.id == record.id()) EXPECT_EQ(q.stage, "compile");
      }
    }
    // TLS restored: updates target the outer record again.
    QueryRegistry::SetCurrentStage("finish");
    EXPECT_EQ(QueryRegistry::Global().Snapshot()[0].stage, "finish");
  }
  EXPECT_EQ(QueryRegistry::Global().active(), 0u);
  // Stage updates after the record ends are silently dropped.
  QueryRegistry::SetCurrentStage("late");
}

TEST_F(QueryRegistryTest, WatchdogFlagsStalledQueryExactlyOnce) {
  EventLog::Global().Clear();
  EventLog::Enable();
  QueryRegistry& registry = QueryRegistry::Global();
  const uint64_t id = registry.Begin("mdx", "slow query");
  ASSERT_NE(id, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  registry.SweepForTesting(/*deadline_ms=*/1);
  registry.SweepForTesting(/*deadline_ms=*/1);
  registry.SweepForTesting(/*deadline_ms=*/1);

  // Flagged exactly once despite three sweeps.
  EXPECT_EQ(registry.stalled_total(), 1u);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().counter(
                "ddgms.queries.stalled_total"),
            1u);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].stalled);

  // Exactly one mdx.stalled flight-recorder event.
  size_t stalled_events = 0;
  for (const LogRecord& record : EventLog::Global().Snapshot()) {
    if (record.event == "mdx.stalled") ++stalled_events;
  }
  EXPECT_EQ(stalled_events, 1u);

  // The gauge reflects in-flight stalled queries and drops on End.
  auto stalled_gauge = [] {
    double value = -1.0;
    for (const auto& g : MetricsRegistry::Global().Snapshot().gauges) {
      if (g.name == "ddgms.queries.stalled") value = g.value;
    }
    return value;
  };
  EXPECT_EQ(stalled_gauge(), 1.0);
  registry.End(id);
  EXPECT_EQ(stalled_gauge(), 0.0);
  EXPECT_EQ(registry.stalled_total(), 1u);  // monotonic

  EventLog::Disable();
  EventLog::Global().Clear();
}

TEST_F(QueryRegistryTest, WatchdogThreadStartStop) {
  QueryRegistry& registry = QueryRegistry::Global();
  EXPECT_FALSE(registry.watchdog_running());
  QueryWatchdogOptions options;
  options.deadline_ms = 1;
  options.poll_ms = 1;
  ASSERT_TRUE(registry.StartWatchdog(options).ok());
  EXPECT_TRUE(registry.watchdog_running());
  EXPECT_FALSE(registry.StartWatchdog(options).ok());  // already running

  const uint64_t id = registry.Begin("mdx", "stalls under the thread");
  // The real watchdog thread (1ms deadline, 1ms poll) must flag it.
  for (int i = 0; i < 500 && registry.stalled_total() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(registry.stalled_total(), 1u);
  registry.End(id);

  ASSERT_TRUE(registry.StopWatchdog().ok());
  EXPECT_FALSE(registry.watchdog_running());
  EXPECT_FALSE(registry.StopWatchdog().ok());
}

TEST_F(QueryRegistryTest, ToJsonListsQueries) {
  QueryRegistry& registry = QueryRegistry::Global();
  EXPECT_EQ(registry.ToJson(), "[]");
  const uint64_t id = registry.Begin("mdx", "SELECT \"x\"");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"kind\":\"mdx\""), std::string::npos);
  EXPECT_NE(json.find("SELECT \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\":false"), std::string::npos);
  registry.End(id);
}

TEST_F(QueryRegistryTest, CompletedQueriesMoveIntoBoundedHistory) {
  QueryRegistry& registry = QueryRegistry::Global();
  registry.set_history_capacity(4);
  EXPECT_EQ(registry.history_capacity(), 4u);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const uint64_t id = registry.Begin("mdx", "q" + std::to_string(i));
    registry.SetStage(id, "execute");
    registry.End(id);
    ids.push_back(id);
  }
  EXPECT_EQ(registry.active(), 0u);
  // Only the newest `capacity` records survive, oldest first.
  auto history = registry.History();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(registry.history_size(), 4u);
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].id, ids[ids.size() - 4 + i]);
    EXPECT_EQ(history[i].stage, "execute");
    EXPECT_GE(history[i].duration_ms, 0.0);
    EXPECT_FALSE(history[i].stalled);
  }
  const std::string json = registry.HistoryToJson();
  EXPECT_NE(json.find("\"duration_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"q9\""), std::string::npos);
  EXPECT_EQ(json.find("\"q0\""), std::string::npos);  // evicted

  // Shrinking evicts immediately; zero disables capture entirely.
  registry.set_history_capacity(2);
  EXPECT_EQ(registry.history_size(), 2u);
  registry.set_history_capacity(0);
  EXPECT_EQ(registry.history_size(), 0u);
  registry.End(registry.Begin("mdx", "uncaptured"));
  EXPECT_EQ(registry.history_size(), 0u);
}

TEST_F(QueryRegistryTest, HistoryRecordsStalledFlag) {
  QueryRegistry& registry = QueryRegistry::Global();
  const uint64_t id = registry.Begin("mdx", "was stalled");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  registry.SweepForTesting(/*deadline_ms=*/1);
  registry.End(id);
  auto history = registry.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(history[0].stalled);
}

TEST_F(QueryRegistryTest, HistoryStaysBoundedUnderConcurrentLoad) {
  // The TSan lane runs this: concurrent Begin/End churn against the
  // bounded history plus snapshot readers must stay race-free, and
  // /queryz-visible state must never grow without bound.
  QueryRegistry& registry = QueryRegistry::Global();
  registry.set_history_capacity(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        ScopedQueryRecord record("mdx",
                                 "w" + std::to_string(t) + "-q" +
                                     std::to_string(i));
        QueryRegistry::SetCurrentStage("execute");
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.HistoryToJson();
      EXPECT_LE(registry.history_size(), 8u);
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.active(), 0u);
  EXPECT_EQ(registry.history_size(), 8u);
}

// ---------------------------------------------------------------- //
// ObservabilityServer endpoints
// ---------------------------------------------------------------- //

class ObservabilityServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::Enable();
    TraceCollector::Enable();
    EventLog::Enable();
    QueryRegistry::Global().ResetForTesting();
    QueryRegistry::Enable();
  }
  void TearDown() override {
    QueryRegistry::Disable();
    QueryRegistry::Global().ResetForTesting();
    EventLog::Disable();
    EventLog::Global().Clear();
    TraceCollector::Disable();
    TraceCollector::Global().Clear();
    MetricsRegistry::Disable();
    MetricsRegistry::Global().ResetValues();
  }

  /// GET returning (status, body, raw-with-headers).
  static std::tuple<int, std::string, std::string> Get(
      int port, const std::string& target) {
    auto raw = HttpGet("127.0.0.1", port, target);
    EXPECT_TRUE(raw.ok()) << raw.status().ToString();
    if (!raw.ok()) return {0, "", ""};
    auto parsed = ParseHttpResponse(*raw);
    EXPECT_TRUE(parsed.ok());
    if (!parsed.ok()) return {0, "", *raw};
    return {parsed->first, parsed->second, *raw};
  }
};

TEST_F(ObservabilityServerTest, ServesAllEndpointsWithoutWarehouse) {
  server::ObservabilityOptions options;
  options.start_watchdog = false;
  server::ObservabilityServer obs(options, /*dgms=*/nullptr);
  ASSERT_TRUE(obs.Start().ok());
  DDGMS_METRIC_INC("ddgms.server.requests");  // something to scrape

  auto [metrics_status, metrics_body, metrics_raw] =
      Get(obs.port(), "/metrics");
  EXPECT_EQ(metrics_status, 200);
  EXPECT_NE(metrics_raw.find(
                "Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics_body.find("# TYPE"), std::string::npos);

  auto [healthz_status, healthz_body, healthz_raw] =
      Get(obs.port(), "/healthz");
  EXPECT_EQ(healthz_status, 200);
  EXPECT_NE(healthz_body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz_raw.find("Content-Type: application/json"),
            std::string::npos);

  // No warehouse attached: alive but not ready.
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/readyz")), 503);

  auto [statusz_status, statusz_body, statusz_raw] =
      Get(obs.port(), "/statusz");
  EXPECT_EQ(statusz_status, 200);
  EXPECT_NE(statusz_raw.find("Content-Type: text/html"),
            std::string::npos);
  EXPECT_NE(statusz_body.find("/queryz"), std::string::npos);
  EXPECT_NE(statusz_body.find("/metrics"), std::string::npos);

  // The index page serves the same overview.
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/")), 200);

  auto [queryz_status, queryz_body, queryz_raw] =
      Get(obs.port(), "/queryz");
  EXPECT_EQ(queryz_status, 200);
  EXPECT_NE(queryz_body.find("\"queries\":[]"), std::string::npos);

  EXPECT_EQ(std::get<0>(Get(obs.port(), "/varz")), 200);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/tracez")), 200);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/tracez?format=json")), 200);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/logz")), 200);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/logz?level=bogus")), 400);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/resourcez")), 200);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/nothere")), 404);

  ASSERT_TRUE(obs.Stop().ok());
}

TEST_F(ObservabilityServerTest, StalledMdxQueryTripsTheWatchdog) {
  discri::CohortOptions cohort;
  cohort.num_patients = 40;
  cohort.seed = 7;
  auto raw = discri::GenerateCohort(cohort);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  server::ObservabilityOptions options;
  options.watchdog.deadline_ms = 20;
  options.watchdog.poll_ms = 5;
  server::ObservabilityServer obs(options, &*dgms);
  ASSERT_TRUE(obs.Start().ok());
  EXPECT_TRUE(QueryRegistry::Global().watchdog_running());

  // Readiness now reports the warehouse.
  auto ready = HttpGet("127.0.0.1", obs.port(), "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_NE(ready->find("\"warehouse_generation\""), std::string::npos);

  // Deliberately slow every MDX execute stage well past the deadline,
  // and run a query on a second thread while scraping /queryz.
  mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(200000);
  std::thread query([&dgms] {
    auto result = dgms->QueryMdx(
        "SELECT [PersonalInformation].[Gender].Members ON ROWS "
        "FROM [MedicalMeasures]");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });

  // Poll /queryz until the in-flight query shows up as stalled.
  bool saw_stalled = false;
  for (int i = 0; i < 200 && !saw_stalled; ++i) {
    auto queryz = HttpGet("127.0.0.1", obs.port(), "/queryz");
    if (queryz.ok() &&
        queryz->find("\"stalled\":true") != std::string::npos) {
      saw_stalled = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  query.join();
  mdx::MdxExecutor::SetExecuteDelayMicrosForTesting(0);
  EXPECT_TRUE(saw_stalled);
  EXPECT_GE(QueryRegistry::Global().stalled_total(), 1u);

  // The flight recorder holds the mdx.stalled event.
  bool saw_event = false;
  for (const LogRecord& record : EventLog::Global().Snapshot()) {
    if (record.event == "mdx.stalled") saw_event = true;
  }
  EXPECT_TRUE(saw_event);

  ASSERT_TRUE(obs.Stop().ok());
  EXPECT_FALSE(QueryRegistry::Global().watchdog_running());
}

TEST_F(ObservabilityServerTest, ProfilezValidatesSecondsParam) {
  server::ObservabilityOptions options;
  options.start_watchdog = false;
  options.start_slo_evaluator = false;
  options.start_anomaly_scanner = false;
  server::ObservabilityServer obs(options, /*dgms=*/nullptr);
  ASSERT_TRUE(obs.Start().ok());

  // Non-numeric and non-positive values are client errors, not silent
  // defaults.
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/profilez?seconds=abc")), 400);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/profilez?seconds=-3")), 400);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/profilez?seconds=0")), 400);
  EXPECT_EQ(std::get<0>(Get(obs.port(), "/profilez?seconds=2x")), 400);
  auto [status, body, raw] = Get(obs.port(), "/profilez?seconds=abc");
  EXPECT_NE(body.find("seconds must be a positive integer"),
            std::string::npos);

  ASSERT_TRUE(obs.Stop().ok());
}

TEST_F(ObservabilityServerTest, QueryzIncludesBoundedHistory) {
  server::ObservabilityOptions options;
  options.start_watchdog = false;
  options.start_slo_evaluator = false;
  options.start_anomaly_scanner = false;
  server::ObservabilityServer obs(options, /*dgms=*/nullptr);
  ASSERT_TRUE(obs.Start().ok());

  QueryRegistry& registry = QueryRegistry::Global();
  registry.set_history_capacity(128);
  registry.End(registry.Begin("mdx", "done already"));

  auto [status, body, raw] = Get(obs.port(), "/queryz");
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"history_capacity\":128"), std::string::npos);
  EXPECT_NE(body.find("\"recent_completed\":["), std::string::npos);
  EXPECT_NE(body.find("done already"), std::string::npos);

  ASSERT_TRUE(obs.Stop().ok());
}

TEST_F(ObservabilityServerTest, SlozAndAlertzSurfaceSloState) {
  WindowRegistry::Global().ResetForTesting();
  WindowRegistry::Enable();
  SloEngine::Global().ResetForTesting();
  SloEngine::Enable();

  MetricsRegistry::Global().GetHistogram("t.server.slo_lat",
                                         {100000.0, 250000.0, 1000000.0});
  SloDef def;
  def.name = "t_server_latency";
  def.kind = SloKind::kLatency;
  def.latency_histogram = "t.server.slo_lat";
  def.latency_target_us = 250000;
  def.objective = 0.99;
  ASSERT_TRUE(SloEngine::Global().Register(def).ok());

  server::ObservabilityOptions options;
  options.start_watchdog = false;
  options.start_slo_evaluator = false;  // driven explicitly below
  options.start_anomaly_scanner = false;
  server::ObservabilityServer obs(options, /*dgms=*/nullptr);
  ASSERT_TRUE(obs.Start().ok());

  SloEngine::Global().EvaluateAt(1000000000);
  auto [sloz_status, sloz_body, sloz_raw] = Get(obs.port(), "/sloz");
  EXPECT_EQ(sloz_status, 200);
  EXPECT_NE(sloz_raw.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(sloz_body.find("t_server_latency"), std::string::npos);
  EXPECT_NE(sloz_body.find("\"windows\""), std::string::npos);

  // Healthy: /alertz lists nothing.
  auto [calm_status, calm_body, calm_raw] = Get(obs.port(), "/alertz");
  EXPECT_EQ(calm_status, 200);
  EXPECT_NE(calm_body.find("\"firing\":0"), std::string::npos);
  EXPECT_EQ(calm_body.find("t_server_latency"), std::string::npos);
  // No facade: the scanner section is a stub, not an error.
  EXPECT_NE(calm_body.find("\"anomaly\":{\"running\":false"),
            std::string::npos);

  // Burn the budget: every observation beyond the target.
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("t.server.slo_lat");
  for (int i = 0; i < 5; ++i) h.Observe(400000.0);
  SloEngine::Global().EvaluateAt(1001000000);

  auto [hot_status, hot_body, hot_raw] = Get(obs.port(), "/alertz");
  EXPECT_EQ(hot_status, 200);
  EXPECT_NE(hot_body.find("\"firing\":1"), std::string::npos);
  EXPECT_NE(hot_body.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(hot_body.find("t_server_latency"), std::string::npos);

  // The HTML overview gains the SLO table and endpoint index rows.
  auto [statusz_status, statusz_body, statusz_raw] =
      Get(obs.port(), "/statusz");
  EXPECT_EQ(statusz_status, 200);
  EXPECT_NE(statusz_body.find("/sloz"), std::string::npos);
  EXPECT_NE(statusz_body.find("/alertz"), std::string::npos);
  EXPECT_NE(statusz_body.find("t_server_latency"), std::string::npos);

  ASSERT_TRUE(obs.Stop().ok());
  SloEngine::Disable();
  SloEngine::Global().ResetForTesting();
  WindowRegistry::Disable();
  WindowRegistry::Global().ResetForTesting();
}

TEST_F(ObservabilityServerTest, StartStopOwnsEvaluatorAndScanner) {
  discri::CohortOptions cohort;
  cohort.num_patients = 30;
  cohort.seed = 11;
  auto raw = discri::GenerateCohort(cohort);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());

  SloEngine::Global().ResetForTesting();
  server::ObservabilityOptions options;
  options.watchdog.poll_ms = 5;
  server::ObservabilityServer obs(options, &*dgms);
  ASSERT_TRUE(obs.Start().ok());
  EXPECT_TRUE(SloEngine::Global().evaluator_running());

  // /alertz reads the server-owned scanner over the facade's sampler.
  auto [status, body, raw_response] = Get(obs.port(), "/alertz");
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"anomaly\":{\"running\":true"),
            std::string::npos);

  ASSERT_TRUE(obs.Stop().ok());
  EXPECT_FALSE(SloEngine::Global().evaluator_running());
}

TEST_F(ObservabilityServerTest, ConcurrentScrapeWhileQueryStress) {
  // Drives the full external surface from several threads at once
  // while registry traffic churns — the TSan lane runs this test to
  // vet the locking in HttpServer + QueryRegistry.
  server::ObservabilityOptions options;
  options.start_watchdog = true;
  options.watchdog.deadline_ms = 5;
  options.watchdog.poll_ms = 1;
  server::ObservabilityServer obs(options, /*dgms=*/nullptr);
  ASSERT_TRUE(obs.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const char* const kTargets[] = {"/metrics", "/queryz", "/varz",
                                  "/healthz"};
  for (const char* target : kTargets) {
    scrapers.emplace_back([&, target] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto raw = HttpGet("127.0.0.1", obs.port(), target, 2000);
        if (!raw.ok()) failures.fetch_add(1);
      }
    });
  }
  std::thread churn([&] {
    for (int i = 0; i < 300; ++i) {
      ScopedQueryRecord record("mdx", "stress query");
      QueryRegistry::SetCurrentStage("execute");
      DDGMS_METRIC_INC("ddgms.server.requests");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  churn.join();
  stop.store(true);
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(obs.Stop().ok());
}

}  // namespace
}  // namespace ddgms
