// Unit tests for the data-analytics layer: datasets, classifiers
// (naive Bayes, decision tree, AWSum), Apriori, clustering, logistic
// regression, evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "mining/apriori.h"
#include "mining/awsum.h"
#include "mining/clustering.h"
#include "mining/dataset.h"
#include "mining/decision_tree.h"
#include "mining/eval.h"
#include "mining/logistic.h"
#include "mining/naive_bayes.h"

namespace ddgms::mining {
namespace {

// A clean separable categorical dataset: label == "sick" iff
// (glucose == high) or (reflex == absent && glucose == mid).
CategoricalDataset MakeReflexGlucoseData(size_t n, uint64_t seed) {
  CategoricalDataset ds;
  ds.feature_names = {"glucose", "reflex", "noise"};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::string glucose =
        std::vector<std::string>{"low", "mid", "high"}[rng.Categorical(
            {0.4, 0.35, 0.25})];
    std::string reflex = rng.Bernoulli(0.25) ? "absent" : "normal";
    std::string noise = rng.Bernoulli(0.5) ? "a" : "b";
    bool sick =
        glucose == "high" || (reflex == "absent" && glucose == "mid");
    ds.rows.push_back({glucose, reflex, noise});
    ds.labels.push_back(sick ? "sick" : "well");
  }
  return ds;
}

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, FromTableStringifiesAndSkipsNullLabels) {
  Table t(Schema::Make({{"A", DataType::kInt64},
                        {"B", DataType::kString},
                        {"Y", DataType::kString}})
              .value());
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::Str("x"), Value::Str("pos")})
          .ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Null(), Value::Str("y"), Value::Str("neg")})
          .ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Int(3), Value::Str("z"), Value::Null()}).ok());
  auto ds = CategoricalDataset::FromTable(t, {"A", "B"}, "Y");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);  // null-label row skipped
  EXPECT_EQ(ds->rows[0][0], "1");
  EXPECT_EQ(ds->rows[1][0], CategoricalDataset::kMissing);
  EXPECT_EQ(ds->DistinctLabels(),
            (std::vector<std::string>{"pos", "neg"}));
}

TEST(DatasetTest, SplitPartitions) {
  CategoricalDataset ds = MakeReflexGlucoseData(100, 1);
  Rng rng(2);
  auto split = ds.Split(0.3, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first.size() + split->second.size(), 100u);
  EXPECT_EQ(split->second.size(), 30u);
  EXPECT_FALSE(ds.Split(0.0, &rng).ok());
  EXPECT_FALSE(ds.Split(1.0, &rng).ok());
}

TEST(DatasetTest, NumericFromTableSkipsIncompleteRows) {
  Table t(Schema::Make({{"X", DataType::kDouble},
                        {"Y", DataType::kString}})
              .value());
  ASSERT_TRUE(t.AppendRow({Value::Real(1.0), Value::Str("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Str("a")}).ok());
  auto ds = NumericDataset::FromTable(t, {"X"}, "Y");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 1u);
  // Non-numeric feature rejected.
  EXPECT_FALSE(NumericDataset::FromTable(t, {"Y"}, "Y").ok());
}

// ------------------------------------------------------------ classifiers

template <typename Model>
double TrainedAccuracy(Model* model) {
  CategoricalDataset data = MakeReflexGlucoseData(600, 42);
  Rng rng(7);
  auto split = data.Split(0.25, &rng);
  EXPECT_TRUE(model->Train(split->first).ok());
  auto report = Evaluate(*model, split->second);
  EXPECT_TRUE(report.ok());
  return report->accuracy;
}

TEST(NaiveBayesTest, LearnsSeparableConcept) {
  NaiveBayesClassifier nb;
  // NB cannot express the interaction perfectly but must beat majority.
  double acc = TrainedAccuracy(&nb);
  EXPECT_GT(acc, 0.80);
}

TEST(NaiveBayesTest, PredictBeforeTrainFails) {
  NaiveBayesClassifier nb;
  EXPECT_TRUE(nb.Predict({"a"}).status().IsFailedPrecondition());
}

TEST(NaiveBayesTest, WrongArityFails) {
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(50, 3);
  ASSERT_TRUE(nb.Train(data).ok());
  EXPECT_TRUE(nb.Predict({"high"}).status().IsInvalidArgument());
}

TEST(NaiveBayesTest, MissingFeaturesIgnored) {
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(200, 4);
  ASSERT_TRUE(nb.Train(data).ok());
  auto pred = nb.Predict({"high", CategoricalDataset::kMissing,
                          CategoricalDataset::kMissing});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, "sick");
}

TEST(NaiveBayesTest, ScoresCoverAllClasses) {
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(200, 5);
  ASSERT_TRUE(nb.Train(data).ok());
  auto scores = nb.Scores({"low", "normal", "a"});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 2u);
}

TEST(NaiveBayesTest, PosteriorSumsToOne) {
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(200, 6);
  ASSERT_TRUE(nb.Train(data).ok());
  auto posterior = nb.Posterior({"high", "normal", "a"});
  ASSERT_TRUE(posterior.ok());
  double total = 0.0;
  for (const auto& [cls, p] : *posterior) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NaiveBayesTest, ValueOfInformationRanksInformativeTest) {
  // glucose determines the label far more than the pure-noise feature;
  // for a patient missing both, acquiring glucose must score higher.
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(800, 7);
  ASSERT_TRUE(nb.Train(data).ok());
  auto voi = nb.ValueOfInformation(
      {CategoricalDataset::kMissing, "normal",
       CategoricalDataset::kMissing});
  ASSERT_TRUE(voi.ok());
  ASSERT_EQ(voi->size(), 2u);  // only the missing features
  EXPECT_EQ((*voi)[0].feature, "glucose");
  EXPECT_GT((*voi)[0].expected_entropy_reduction,
            (*voi)[1].expected_entropy_reduction + 0.05);
  EXPECT_GE((*voi)[1].expected_entropy_reduction, 0.0);
}

TEST(NaiveBayesTest, ValueOfInformationEmptyWhenComplete) {
  NaiveBayesClassifier nb;
  CategoricalDataset data = MakeReflexGlucoseData(100, 8);
  ASSERT_TRUE(nb.Train(data).ok());
  auto voi = nb.ValueOfInformation({"high", "normal", "a"});
  ASSERT_TRUE(voi.ok());
  EXPECT_TRUE(voi->empty());
}

TEST(DecisionTreeTest, LearnsInteractionExactly) {
  DecisionTreeClassifier tree;
  double acc = TrainedAccuracy(&tree);
  // The tree can represent the glucose x reflex interaction.
  EXPECT_GT(acc, 0.97);
}

TEST(DecisionTreeTest, DepthLimitProducesSmallerTree) {
  CategoricalDataset data = MakeReflexGlucoseData(400, 9);
  DecisionTreeClassifier deep;
  ASSERT_TRUE(deep.Train(data).ok());
  DecisionTreeOptions opt;
  opt.max_depth = 1;
  DecisionTreeClassifier shallow(opt);
  ASSERT_TRUE(shallow.Train(data).ok());
  EXPECT_LT(shallow.num_nodes(), deep.num_nodes());
  EXPECT_FALSE(shallow.ToString().empty());
}

TEST(DecisionTreeTest, UnseenValueFallsBackToMajority) {
  CategoricalDataset data = MakeReflexGlucoseData(200, 10);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Train(data).ok());
  auto pred = tree.Predict({"martian", "normal", "a"});
  ASSERT_TRUE(pred.ok());  // backs off, never crashes
}

TEST(AwsumTest, LearnsAndBeatsBaseline) {
  AwsumClassifier awsum;
  double acc = TrainedAccuracy(&awsum);
  EXPECT_GT(acc, 0.75);
}

TEST(AwsumTest, InfluencesRankHighGlucoseTowardSick) {
  AwsumClassifier awsum;
  CategoricalDataset data = MakeReflexGlucoseData(800, 11);
  ASSERT_TRUE(awsum.Train(data).ok());
  auto influences = awsum.Influences();
  ASSERT_TRUE(influences.ok());
  // Find influence of glucose=high toward sick: must be near 1.
  double found = -1.0;
  for (const auto& inf : *influences) {
    if (inf.feature == "glucose" && inf.value == "high" &&
        inf.toward_class == "sick") {
      found = inf.influence;
    }
  }
  EXPECT_GT(found, 0.9);
}

TEST(AwsumTest, InteractionsSurfaceReflexGlucosePair) {
  // The paper's motivating insight: absent reflexes + mid-range glucose
  // jointly predict disease far better than either alone.
  AwsumClassifier awsum;
  CategoricalDataset data = MakeReflexGlucoseData(800, 12);
  ASSERT_TRUE(awsum.Train(data).ok());
  auto interactions = awsum.Interactions(/*min_support=*/10);
  ASSERT_TRUE(interactions.ok());
  ASSERT_FALSE(interactions->empty());
  bool found = false;
  for (const auto& inter : *interactions) {
    bool is_pair = (inter.feature_a == "glucose" &&
                    inter.value_a == "mid" &&
                    inter.feature_b == "reflex" &&
                    inter.value_b == "absent") ||
                   (inter.feature_a == "reflex" &&
                    inter.value_a == "absent" &&
                    inter.feature_b == "glucose" &&
                    inter.value_b == "mid");
    if (is_pair && inter.toward_class == "sick" && inter.lift > 0.2) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Property sweep: all three categorical classifiers beat the majority
// baseline on the separable concept at several training sizes.
class ClassifierSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ClassifierSweepTest, BeatsMajorityBaseline) {
  CategoricalDataset data = MakeReflexGlucoseData(GetParam(), 77);
  Rng rng(88);
  auto split = data.Split(0.3, &rng);
  double baseline =
      *MajorityBaselineAccuracy(split->first, split->second);
  std::vector<std::unique_ptr<Classifier>> models;
  models.push_back(std::make_unique<NaiveBayesClassifier>());
  models.push_back(std::make_unique<DecisionTreeClassifier>());
  models.push_back(std::make_unique<AwsumClassifier>());
  for (auto& model : models) {
    ASSERT_TRUE(model->Train(split->first).ok());
    auto report = Evaluate(*model, split->second);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->accuracy, baseline)
        << model->name() << " at n=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClassifierSweepTest,
                         ::testing::Values(120, 300, 600));

// ---------------------------------------------------------------- Apriori

TEST(AprioriTest, FindsFrequentItemsetsAndRules) {
  CategoricalDataset data = MakeReflexGlucoseData(500, 20);
  AprioriOptions opt;
  opt.min_support = 0.08;
  opt.min_confidence = 0.7;
  Apriori apriori(opt);
  auto itemsets = apriori.MineItemsets(data, "label");
  ASSERT_TRUE(itemsets.ok());
  EXPECT_FALSE(itemsets->empty());
  // Support must be monotone: every itemset's support >= min_support.
  for (const auto& fi : *itemsets) {
    EXPECT_GE(fi.support, 0.08);
    // Subset support >= superset support (spot check pairs vs singles).
  }
  auto rules = apriori.MineRules(data, "label");
  ASSERT_TRUE(rules.ok());
  // Expect a strong rule glucose=high => label=sick.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.lhs.size() == 1 && rule.lhs[0].feature == "glucose" &&
        rule.lhs[0].value == "high" && rule.rhs[0].feature == "label" &&
        rule.rhs[0].value == "sick") {
      found = true;
      EXPECT_GT(rule.confidence, 0.95);
      EXPECT_GT(rule.lift, 1.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, SupportMonotonicity) {
  CategoricalDataset data = MakeReflexGlucoseData(300, 21);
  AprioriOptions opt;
  opt.min_support = 0.05;
  Apriori apriori(opt);
  auto itemsets = apriori.MineItemsets(data);
  ASSERT_TRUE(itemsets.ok());
  // Index supports by itemset.
  std::map<std::vector<Item>, double> support;
  for (const auto& fi : *itemsets) support[fi.items] = fi.support;
  for (const auto& fi : *itemsets) {
    if (fi.items.size() < 2) continue;
    for (size_t drop = 0; drop < fi.items.size(); ++drop) {
      std::vector<Item> sub;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != drop) sub.push_back(fi.items[i]);
      }
      auto it = support.find(sub);
      ASSERT_NE(it, support.end());
      EXPECT_GE(it->second + 1e-12, fi.support);
    }
  }
}

TEST(AprioriTest, NoTwoValuesOfOneFeature) {
  CategoricalDataset data = MakeReflexGlucoseData(300, 22);
  AprioriOptions opt;
  opt.min_support = 0.01;
  Apriori apriori(opt);
  auto itemsets = apriori.MineItemsets(data);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& fi : *itemsets) {
    std::set<std::string> features;
    for (const Item& item : fi.items) {
      EXPECT_TRUE(features.insert(item.feature).second)
          << fi.ToString();
    }
  }
}

TEST(AprioriTest, BadOptionsRejected) {
  CategoricalDataset data = MakeReflexGlucoseData(50, 23);
  AprioriOptions opt;
  opt.min_support = 0.0;
  EXPECT_FALSE(Apriori(opt).MineItemsets(data).ok());
  EXPECT_FALSE(Apriori().MineItemsets(CategoricalDataset{}).ok());
}

// -------------------------------------------------------------- clustering

NumericDataset MakeBlobs(size_t per_cluster, uint64_t seed) {
  NumericDataset ds;
  ds.feature_names = {"x", "y"};
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      ds.rows.push_back({rng.Gaussian(centers[c][0], 1.0),
                         rng.Gaussian(centers[c][1], 1.0)});
      ds.labels.push_back(std::string(1, static_cast<char>('a' + c)));
    }
  }
  return ds;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  NumericDataset ds = MakeBlobs(60, 31);
  KMeansOptions opt;
  opt.k = 3;
  auto result = KMeans(ds, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments.size(), ds.size());
  double purity = *ClusterPurity(*result, ds.labels);
  EXPECT_GT(purity, 0.98);
}

TEST(KMeansTest, DeterministicForSeed) {
  NumericDataset ds = MakeBlobs(40, 32);
  KMeansOptions opt;
  opt.k = 3;
  auto a = KMeans(ds, opt);
  auto b = KMeans(ds, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(KMeansTest, InvalidK) {
  NumericDataset ds = MakeBlobs(5, 33);
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_FALSE(KMeans(ds, opt).ok());
  opt.k = ds.size() + 1;
  EXPECT_FALSE(KMeans(ds, opt).ok());
}

TEST(KModesTest, ClustersCategoricalData) {
  // Two obvious categorical clusters.
  CategoricalDataset ds;
  ds.feature_names = {"a", "b", "c"};
  Rng rng(34);
  for (int i = 0; i < 100; ++i) {
    bool first = i < 50;
    auto flip = [&](const std::string& v, const std::string& alt) {
      return rng.Bernoulli(0.9) ? v : alt;
    };
    if (first) {
      ds.rows.push_back({flip("x", "p"), flip("y", "q"), flip("z", "r")});
      ds.labels.push_back("c1");
    } else {
      ds.rows.push_back({flip("p", "x"), flip("q", "y"), flip("r", "z")});
      ds.labels.push_back("c2");
    }
  }
  KModesOptions opt;
  opt.k = 2;
  auto result = KModes(ds, opt);
  ASSERT_TRUE(result.ok());
  double purity = *ClusterPurity(*result, ds.labels);
  EXPECT_GT(purity, 0.9);
}

TEST(ClusterPurityTest, Validation) {
  ClusteringResult r;
  r.num_clusters = 1;
  r.assignments = {0, 0};
  EXPECT_FALSE(ClusterPurity(r, {"a"}).ok());
  EXPECT_DOUBLE_EQ(*ClusterPurity(r, {"a", "a"}), 1.0);
}

// ---------------------------------------------------------------- logistic

NumericDataset MakeLogisticData(size_t n, uint64_t seed) {
  // P(pos) = sigmoid(1.5*x1 - 1.0*x2).
  NumericDataset ds;
  ds.feature_names = {"x1", "x2"};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x1 = rng.Gaussian(0, 1);
    double x2 = rng.Gaussian(0, 1);
    double z = 1.5 * x1 - 1.0 * x2;
    double p = 1.0 / (1.0 + std::exp(-z));
    ds.rows.push_back({x1, x2});
    ds.labels.push_back(rng.Bernoulli(p) ? "pos" : "neg");
  }
  return ds;
}

TEST(LogisticTest, LearnsLinearConcept) {
  NumericDataset ds = MakeLogisticData(2000, 41);
  Rng rng(42);
  auto split = ds.Split(0.25, &rng);
  LogisticRegression::Options opt;
  opt.learning_rate = 0.5;
  opt.max_iterations = 2000;
  LogisticRegression model(opt);
  ASSERT_TRUE(model.Train(split->first, "pos").ok());
  size_t correct = 0;
  for (size_t i = 0; i < split->second.size(); ++i) {
    auto pred = model.Predict(split->second.rows[i]);
    ASSERT_TRUE(pred.ok());
    if (*pred == split->second.labels[i]) ++correct;
  }
  double acc =
      static_cast<double>(correct) / static_cast<double>(
                                         split->second.size());
  EXPECT_GT(acc, 0.72);  // Bayes-optimal is ~0.77 for this noise level

  auto coefs = model.Coefficients();
  ASSERT_TRUE(coefs.ok());
  ASSERT_EQ(coefs->size(), 2u);
  EXPECT_GT((*coefs)[0].weight, 0.0);  // x1 pushes positive
  EXPECT_LT((*coefs)[1].weight, 0.0);  // x2 pushes negative
  EXPECT_GT(std::fabs((*coefs)[0].weight),
            std::fabs((*coefs)[1].weight));
}

TEST(LogisticTest, ProbabilitiesInRange) {
  NumericDataset ds = MakeLogisticData(300, 43);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(ds, "pos").ok());
  for (size_t i = 0; i < 20; ++i) {
    auto p = model.PredictProbability(ds.rows[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_GE(*p, 0.0);
    EXPECT_LE(*p, 1.0);
  }
  EXPECT_TRUE(model.Intercept().ok());
}

TEST(LogisticTest, Validation) {
  LogisticRegression model;
  EXPECT_TRUE(model.PredictProbability({0.0})
                  .status()
                  .IsFailedPrecondition());
  NumericDataset ds = MakeLogisticData(50, 44);
  EXPECT_TRUE(
      model.Train(ds, "no_such_label").IsInvalidArgument());
  ASSERT_TRUE(model.Train(ds, "pos").ok());
  EXPECT_TRUE(
      model.PredictProbability({1.0}).status().IsInvalidArgument());
}

// --------------------------------------------------------------- eval

TEST(EvalTest, ConfusionAndPerClassMetrics) {
  std::vector<std::string> actual = {"a", "a", "a", "b", "b", "b"};
  std::vector<std::string> predicted = {"a", "a", "b", "b", "b", "a"};
  auto report = EvaluateLabels(actual, predicted);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total, 6u);
  EXPECT_EQ(report->correct, 4u);
  EXPECT_NEAR(report->accuracy, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(report->confusion.at("a").at("b"), 1u);
  auto& a = report->per_class.at("a");
  EXPECT_NEAR(a.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.f1, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(a.support, 3u);
  EXPECT_FALSE(report->ToString().empty());
}

TEST(EvalTest, SizeMismatchIsError) {
  EXPECT_FALSE(EvaluateLabels({"a"}, {}).ok());
}

TEST(EvalTest, CrossValidateRunsAllFolds) {
  CategoricalDataset data = MakeReflexGlucoseData(200, 51);
  auto accs = CrossValidate(data, 5, 99, [] {
    return std::make_unique<NaiveBayesClassifier>();
  });
  ASSERT_TRUE(accs.ok());
  EXPECT_EQ(accs->size(), 5u);
  for (double a : *accs) {
    EXPECT_GT(a, 0.6);
  }
  EXPECT_FALSE(CrossValidate(data, 1, 99, [] {
                 return std::make_unique<NaiveBayesClassifier>();
               }).ok());
}

}  // namespace
}  // namespace ddgms::mining
