// Telemetry sampler tests: layer derivation, snapshot/drain semantics,
// the self-observation loop, the [Telemetry] star schema (including the
// acceptance criterion: an MDX SELECT over [Telemetry] returns rows
// derived from sampler snapshots), and the sampler-vs-mutator race.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "warehouse/telemetry.h"
#include "warehouse/warehouse.h"

namespace ddgms {
namespace {

using warehouse::TelemetrySampler;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetValues();
    TraceCollector::Global().Clear();
    EventLog::Global().Clear();
    MetricsRegistry::Enable();
    TraceCollector::Enable();
    EventLog::Enable();
  }
  void TearDown() override {
    MetricsRegistry::Disable();
    TraceCollector::Disable();
    EventLog::Disable();
    MetricsRegistry::Global().ResetValues();
    TraceCollector::Global().Clear();
    EventLog::Global().Clear();
    TraceCollector::Global().set_capacity(4096);
    EventLog::Global().set_capacity(2048);
  }

  static Result<core::DdDgms> BuildSample() {
    discri::CohortOptions opt;
    opt.num_patients = 60;
    opt.seed = 20130408;
    auto raw = discri::GenerateCohort(opt);
    if (!raw.ok()) return raw.status();
    return core::DdDgms::Build(std::move(raw).value(),
                               discri::MakeDiscriPipeline(),
                               discri::MakeDiscriSchemaDef());
  }

  /// Count of rows in `table` whose `column` equals `value`.
  static size_t CountWhere(const Table& table, const std::string& column,
                           const std::string& value) {
    auto col = table.ColumnByName(column);
    EXPECT_TRUE(col.ok());
    size_t n = 0;
    for (size_t i = 0; i < (*col)->size(); ++i) {
      if ((*col)->GetValue(i).ToString() == value) ++n;
    }
    return n;
  }
};

TEST_F(TelemetryTest, LayerOfDerivesFromNames) {
  EXPECT_EQ(TelemetrySampler::LayerOf("ddgms.etl.rows_in"), "etl");
  EXPECT_EQ(TelemetrySampler::LayerOf("ddgms.retry.attempts:store.fetch"),
            "retry");
  EXPECT_EQ(TelemetrySampler::LayerOf("warehouse.build"), "warehouse");
  EXPECT_EQ(TelemetrySampler::LayerOf("mdx.slow_query"), "mdx");
  EXPECT_EQ(TelemetrySampler::LayerOf("standalone"), "standalone");
  EXPECT_EQ(TelemetrySampler::LayerOf(""), "other");
}

TEST_F(TelemetryTest, SampleCapturesMetricsSpansAndEvents) {
  DDGMS_METRIC_INC("ddgms.test.counter");
  DDGMS_METRIC_GAUGE_SET("ddgms.test.gauge", 2.5);
  DDGMS_METRIC_OBSERVE("ddgms.test.latency_us", 10.0);
  {
    TraceSpan span("test.span");
  }
  DDGMS_LOG_WARN("test.event").With("k", 1);

  TelemetrySampler sampler;
  auto stats = sampler.Sample();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->snapshot, 1);
  EXPECT_GE(stats->metric_rows, 3u);
  EXPECT_EQ(stats->span_rows, 1u);
  EXPECT_EQ(stats->event_rows, 1u);
  EXPECT_EQ(sampler.num_samples(), 1);
  EXPECT_EQ(sampler.num_rows(),
            stats->metric_rows + stats->span_rows + stats->event_rows);

  // Spans and events were drained (consumed); metrics were snapshotted.
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
  EXPECT_EQ(EventLog::Global().size(), 1u);  // the sampler's own event

  const Table metrics = sampler.metric_samples();
  EXPECT_EQ(CountWhere(metrics, "Name", "ddgms.test.counter"), 1u);
  EXPECT_EQ(CountWhere(metrics, "Kind", "gauge") > 0, true);
  const Table events = sampler.event_facts();
  EXPECT_EQ(CountWhere(events, "Name", "test.event"), 1u);
  EXPECT_EQ(CountWhere(events, "Severity", "warn"), 1u);
  const Table spans = sampler.span_facts();
  EXPECT_EQ(CountWhere(spans, "Name", "test.span"), 1u);
  EXPECT_EQ(CountWhere(spans, "Layer", "test"), 1u);
}

TEST_F(TelemetryTest, SamplerObservesItselfOnTheNextSnapshot) {
  TelemetrySampler sampler;
  ASSERT_TRUE(sampler.Sample().ok());
  // The first Sample() emitted its own metric + event after draining;
  // the second snapshot must pick them up.
  auto second = sampler.Sample();
  ASSERT_TRUE(second.ok());
  const Table events = sampler.event_facts();
  EXPECT_EQ(CountWhere(events, "Name", "telemetry.sample"), 1u);
  // (>= because ResetValues() keeps instruments registered, so earlier
  // tests in this process may have left a zero-valued row in snapshot 1.)
  const Table metrics = sampler.metric_samples();
  EXPECT_GE(CountWhere(metrics, "Name", "ddgms.telemetry.samples"), 1u);
}

TEST_F(TelemetryTest, BuildWarehouseRequiresASample) {
  TelemetrySampler sampler;
  auto wh = sampler.BuildWarehouse();
  ASSERT_FALSE(wh.ok());
  EXPECT_EQ(wh.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TelemetryTest, TelemetrySchemaValidatesAndBuilds) {
  ASSERT_TRUE(TelemetrySampler::TelemetrySchemaDef().Validate().ok());

  DDGMS_METRIC_INC("ddgms.test.counter");
  {
    TraceSpan span("test.span");
  }
  DDGMS_LOG_INFO("test.event");
  TelemetrySampler sampler;
  ASSERT_TRUE(sampler.Sample().ok());

  auto wh = sampler.BuildWarehouse();
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  EXPECT_EQ(wh->def().fact_name, "Telemetry");
  EXPECT_EQ(wh->num_fact_rows(), sampler.num_rows());
  EXPECT_EQ(wh->dimensions().size(), 4u);
  EXPECT_TRUE(wh->CheckIntegrity().ok);

  // The Instrument dimension rolls up Name -> Layer.
  auto dim = wh->dimension("Instrument");
  ASSERT_TRUE(dim.ok());
  auto coarser = (*dim)->CoarserLevel("Name");
  ASSERT_TRUE(coarser.ok());
  EXPECT_EQ(*coarser, "Layer");
}

TEST_F(TelemetryTest, MdxOverTelemetryReturnsSampledRows) {
  // Acceptance criterion: an MDX SELECT over [Telemetry] returns rows
  // derived from at least one sampler snapshot.
  auto dgms = BuildSample();
  ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();

  // Before any sample the cube is not queryable.
  auto premature = dgms->QueryMdx(
      "SELECT { [Kind].[Kind].Members } ON COLUMNS FROM [Telemetry]");
  EXPECT_FALSE(premature.ok());

  auto sample = dgms->telemetry().Sample();
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  EXPECT_GT(sample->metric_rows, 0u);
  EXPECT_GT(sample->span_rows, 0u);   // the build's spans
  EXPECT_GT(sample->event_rows, 0u);  // the build's events

  auto result = dgms->QueryMdx(
      "SELECT { [Measures].[Sum(Value)] } ON COLUMNS, "
      "{ [Instrument].[Layer].Members } ON ROWS FROM [Telemetry]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->cube.num_cells(), 0u);

  // The layer axis must contain the layers the build exercised.
  auto grid = result->ToGrid();
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_GT(grid->num_rows(), 0u);
  bool saw_etl = false;
  bool saw_warehouse = false;
  auto layer_col = grid->ColumnByName("Layer");
  ASSERT_TRUE(layer_col.ok());
  for (size_t i = 0; i < (*layer_col)->size(); ++i) {
    const std::string layer = (*layer_col)->GetValue(i).ToString();
    if (layer == "etl") saw_etl = true;
    if (layer == "warehouse") saw_warehouse = true;
  }
  EXPECT_TRUE(saw_etl);
  EXPECT_TRUE(saw_warehouse);

  // The medical cube still routes to the clinical warehouse.
  auto medical = dgms->QueryMdx(
      "SELECT { [Measures].[Count] } ON COLUMNS FROM [MedicalMeasures]");
  EXPECT_TRUE(medical.ok()) << medical.status().ToString();
}

TEST_F(TelemetryTest, OlapOpsWorkOverTheTelemetryCube) {
  DDGMS_METRIC_INC("ddgms.test.counter");
  {
    TraceSpan span("test.span");
  }
  DDGMS_LOG_INFO("test.event");
  TelemetrySampler sampler;
  ASSERT_TRUE(sampler.Sample().ok());
  auto wh = sampler.BuildWarehouse();
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();

  olap::CubeEngine engine(&wh.value());
  olap::CubeQuery query;
  query.axes.push_back(olap::AxisSpec{"Instrument", "Name", {}});
  query.measures.push_back(AggSpec{AggFn::kCount, "", "count"});
  auto cube = engine.Execute(query);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_GT(cube->num_cells(), 0u);

  // Roll up Name -> Layer via the Instrument hierarchy.
  auto rolled = cube->RollUpToCoarser(0);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_GT(rolled->num_cells(), 0u);
  EXPECT_LE(rolled->num_cells(), cube->num_cells());

  // Slice to events only.
  auto sliced = cube->Slice("Kind", "Kind", Value::Str("event"));
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
}

TEST_F(TelemetryTest, SamplerVsMutatorRaceLosesNothing) {
  // Concurrent emitters + a sampling thread: every span/event must land
  // in exactly one snapshot (rings sized to avoid eviction), and the
  // final counter value must be exact.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  const size_t kRing = 32768;
  TraceCollector::Global().set_capacity(kRing);
  EventLog::Global().set_capacity(kRing);

  TelemetrySampler sampler;
  std::atomic<bool> done{false};
  std::thread sampling([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(sampler.Sample().ok());
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        DDGMS_METRIC_INC("ddgms.race.counter");
        MetricsRegistry::Global().GetGauge("ddgms.race.gauge").Add(1.0);
        DDGMS_METRIC_OBSERVE("ddgms.race.hist", static_cast<double>(i));
        TraceSpan span("race.span");
        DDGMS_LOG_INFO("race.event").With("tid", t).With("i", i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  sampling.join();
  // Collect whatever the sampling thread had not yet drained.
  ASSERT_TRUE(sampler.Sample().ok());

  const size_t total = static_cast<size_t>(kThreads) * kPerThread;
  EXPECT_EQ(TraceCollector::Global().dropped(), 0u);
  EXPECT_EQ(EventLog::Global().dropped(), 0u);

  // Conservation: every emitted span/event appears in exactly one
  // snapshot.
  EXPECT_EQ(CountWhere(sampler.span_facts(), "Name", "race.span"), total);
  EXPECT_EQ(CountWhere(sampler.event_facts(), "Name", "race.event"),
            total);

  // And the mutators lost no updates while being sampled.
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("ddgms.race.counter"), total);
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    if (g.name == "ddgms.race.gauge") {
      EXPECT_DOUBLE_EQ(g.value, static_cast<double>(total));
    }
  }
  const HistogramSnapshot* hist = snap.histogram("ddgms.race.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, total);
  uint64_t bucket_sum = 0;
  for (uint64_t b : hist->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);

  // The accumulated history still builds a queryable warehouse.
  auto wh = sampler.BuildWarehouse();
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  EXPECT_TRUE(wh->CheckIntegrity().ok);
}

TEST_F(TelemetryTest, ClearResetsStagingAndSnapshotCounter) {
  DDGMS_METRIC_INC("ddgms.test.counter");
  TelemetrySampler sampler;
  ASSERT_TRUE(sampler.Sample().ok());
  EXPECT_GT(sampler.num_rows(), 0u);
  sampler.Clear();
  EXPECT_EQ(sampler.num_rows(), 0u);
  EXPECT_EQ(sampler.num_samples(), 0);
  auto stats = sampler.Sample();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->snapshot, 1);
}

}  // namespace
}  // namespace ddgms
