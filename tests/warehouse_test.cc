// Unit tests for the star-schema warehouse: builder, surrogate keys,
// hierarchies, integrity checks, joined views, feedback dimensions.

#include <gtest/gtest.h>

#include "warehouse/schema_def.h"
#include "warehouse/warehouse.h"

namespace ddgms::warehouse {
namespace {

Table MakeExtract() {
  auto schema = Schema::Make({{"RecordId", DataType::kInt64},
                              {"Gender", DataType::kString},
                              {"AgeBand10", DataType::kString},
                              {"AgeBand5", DataType::kString},
                              {"Diabetes", DataType::kString},
                              {"FBG", DataType::kDouble}});
  Table t(std::move(schema).value());
  struct R {
    int64_t id;
    const char* g;
    const char* b10;
    const char* b5;
    const char* d;
    double fbg;
  };
  const R rows[] = {
      {1, "F", "70-80", "70-75", "Yes", 8.0},
      {2, "M", "70-80", "70-75", "Yes", 7.5},
      {3, "F", "70-80", "75-80", "Yes", 9.0},
      {4, "F", "70-80", "75-80", "No", 5.0},
      {5, "M", "60-70", "60-65", "No", 5.4},
      {6, "M", "60-70", "65-70", "Yes", 8.8},
      {7, "F", "60-70", "65-70", "No", 5.2},
      {8, "F", "70-80", "70-75", "Yes", 7.9},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Int(r.id), Value::Str(r.g),
                             Value::Str(r.b10), Value::Str(r.b5),
                             Value::Str(r.d), Value::Real(r.fbg)})
                    .ok());
  }
  return t;
}

StarSchemaDef MakeDef() {
  StarSchemaDef def;
  def.fact_name = "Facts";
  def.degenerate_key = "RecordId";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef person;
  person.name = "Person";
  person.attributes = {"Gender", "AgeBand10", "AgeBand5"};
  person.hierarchies = {Hierarchy{"AgeBands", {"AgeBand10", "AgeBand5"}}};
  DimensionDef condition;
  condition.name = "Condition";
  condition.attributes = {"Diabetes"};
  def.dimensions = {person, condition};
  return def;
}

TEST(SchemaDefTest, ValidateCatchesStructuralErrors) {
  StarSchemaDef def = MakeDef();
  EXPECT_TRUE(def.Validate().ok());

  StarSchemaDef unnamed = MakeDef();
  unnamed.fact_name = "";
  EXPECT_TRUE(unnamed.Validate().IsInvalidArgument());

  StarSchemaDef dup = MakeDef();
  dup.dimensions.push_back(dup.dimensions[0]);
  EXPECT_TRUE(dup.Validate().IsAlreadyExists());

  StarSchemaDef no_attrs = MakeDef();
  no_attrs.dimensions[1].attributes.clear();
  EXPECT_TRUE(no_attrs.Validate().IsInvalidArgument());

  StarSchemaDef bad_hier = MakeDef();
  bad_hier.dimensions[0].hierarchies[0].levels = {"AgeBand10", "Nope"};
  EXPECT_TRUE(bad_hier.Validate().IsNotFound());

  StarSchemaDef dup_measure = MakeDef();
  dup_measure.measures.push_back(MeasureDef{"FBG", "FBG"});
  EXPECT_TRUE(dup_measure.Validate().IsAlreadyExists());
}

TEST(SchemaDefTest, DimensionIndex) {
  StarSchemaDef def = MakeDef();
  EXPECT_EQ(*def.DimensionIndex("Condition"), 1u);
  EXPECT_TRUE(def.DimensionIndex("Nope").status().IsNotFound());
}

TEST(BuilderTest, BuildsFactAndDimensionTables) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  EXPECT_EQ(wh->num_fact_rows(), 8u);
  // Distinct (Gender, AgeBand10, AgeBand5) tuples.
  const Dimension* person = *wh->dimension("Person");
  EXPECT_EQ(person->num_members(), 6u);
  const Dimension* condition = *wh->dimension("Condition");
  EXPECT_EQ(condition->num_members(), 2u);
  // Fact carries key columns, degenerate key and measure.
  EXPECT_TRUE(wh->fact().schema().HasField("Person_key"));
  EXPECT_TRUE(wh->fact().schema().HasField("Condition_key"));
  EXPECT_TRUE(wh->fact().schema().HasField("RecordId"));
  EXPECT_TRUE(wh->fact().schema().HasField("FBG"));
}

TEST(BuilderTest, SurrogateKeysRoundTrip) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  const Dimension* person = *wh->dimension("Person");
  for (size_t i = 0; i < wh->num_fact_rows(); ++i) {
    int64_t key = *wh->FactKey(i, "Person");
    Value gender = *person->AttributeValue(key, "Gender");
    EXPECT_EQ(gender, *extract.GetCell(i, "Gender"));
    Value b5 = *person->AttributeValue(key, "AgeBand5");
    EXPECT_EQ(b5, *extract.GetCell(i, "AgeBand5"));
  }
}

TEST(BuilderTest, MissingSourceColumnFails) {
  Table extract = MakeExtract();
  StarSchemaDef def = MakeDef();
  def.dimensions[1].attributes = {"Missing"};
  EXPECT_TRUE(
      StarSchemaBuilder(def).Build(extract).status().IsNotFound());
}

TEST(BuilderTest, NonNumericMeasureFails) {
  Table extract = MakeExtract();
  StarSchemaDef def = MakeDef();
  def.measures = {MeasureDef{"G", "Gender"}};
  EXPECT_TRUE(StarSchemaBuilder(def)
                  .Build(extract)
                  .status()
                  .IsInvalidArgument());
}

TEST(BuilderTest, NullAttributeValuesFormMembers) {
  Table extract = MakeExtract();
  ASSERT_TRUE(extract.SetCell(0, "Diabetes", Value::Null()).ok());
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  const Dimension* condition = *wh->dimension("Condition");
  EXPECT_EQ(condition->num_members(), 3u);  // Yes, No, null
}

TEST(DimensionTest, HierarchyNavigation) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  const Dimension* person = *wh->dimension("Person");
  EXPECT_EQ(*person->FinerLevel("AgeBand10"), "AgeBand5");
  EXPECT_EQ(*person->CoarserLevel("AgeBand5"), "AgeBand10");
  EXPECT_TRUE(person->FinerLevel("AgeBand5").status().IsNotFound());
  EXPECT_TRUE(person->CoarserLevel("AgeBand10").status().IsNotFound());
  EXPECT_TRUE(person->FinerLevel("Gender").status().IsNotFound());
  EXPECT_NE(person->HierarchyOf("AgeBand5"), nullptr);
  EXPECT_EQ(person->HierarchyOf("Gender"), nullptr);
}

TEST(DimensionTest, AttributeValueRangeChecks) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  const Dimension* person = *wh->dimension("Person");
  EXPECT_TRUE(person->AttributeValue(-1, "Gender").status().IsOutOfRange());
  EXPECT_TRUE(
      person->AttributeValue(1000, "Gender").status().IsOutOfRange());
  EXPECT_TRUE(person->AttributeValue(0, "Nope").status().IsNotFound());
}

TEST(DimensionTest, AddDerivedAttribute) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  Dimension* person = *wh->mutable_dimension("Person");
  ASSERT_TRUE(
      person
          ->AddDerivedAttribute(
              "IsElderly", DataType::kString,
              [](const Dimension& d, int64_t key) {
                Value band = *d.AttributeValue(key, "AgeBand10");
                return Value::Str(band.string_value() == "70-80" ? "Yes"
                                                                 : "No");
              })
          .ok());
  EXPECT_TRUE(person->HasAttribute("IsElderly"));
  // Duplicate rejected.
  EXPECT_TRUE(person
                  ->AddDerivedAttribute(
                      "IsElderly", DataType::kString,
                      [](const Dimension&, int64_t) {
                        return Value::Str("x");
                      })
                  .IsAlreadyExists());
}

TEST(WarehouseTest, IntegrityOkOnBuild) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  IntegrityReport report = wh->CheckIntegrity();
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.fact_rows, 8u);
  EXPECT_TRUE(report.violations.empty());
}

TEST(WarehouseTest, IntegrityDetectsHierarchyViolation) {
  // Build an extract where AgeBand5 "70-75" maps to two different
  // AgeBand10 values -> non-functional hierarchy.
  Table extract = MakeExtract();
  ASSERT_TRUE(extract.SetCell(0, "AgeBand10", Value::Str("WRONG")).ok());
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  EXPECT_TRUE(wh.status().IsDataLoss());
}

TEST(WarehouseTest, DimensionOfAttribute) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  EXPECT_EQ((*wh->DimensionOfAttribute("Diabetes"))->name(), "Condition");
  EXPECT_TRUE(wh->DimensionOfAttribute("Nope").status().IsNotFound());
}

TEST(WarehouseTest, JoinedViewMatchesSource) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  auto view = wh->JoinedView({"Gender", "Diabetes"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_rows(), 8u);
  // Columns: requested attributes + all measures.
  EXPECT_TRUE(view->schema().HasField("Gender"));
  EXPECT_TRUE(view->schema().HasField("Diabetes"));
  EXPECT_TRUE(view->schema().HasField("FBG"));
  for (size_t i = 0; i < view->num_rows(); ++i) {
    EXPECT_EQ(*view->GetCell(i, "Gender"), *extract.GetCell(i, "Gender"));
    EXPECT_EQ(*view->GetCell(i, "FBG"), *extract.GetCell(i, "FBG"));
  }
}

TEST(WarehouseTest, FeedbackDimension) {
  Table extract = MakeExtract();
  auto wh = StarSchemaBuilder(MakeDef()).Build(extract);
  ASSERT_TRUE(wh.ok());
  ASSERT_TRUE(wh->AddFeedbackDimension(
                    "Risk", "RiskFlag",
                    [](const Warehouse& w, size_t row) {
                      auto fbg = w.fact().GetCell(row, "FBG");
                      double v = (*fbg).is_null()
                                     ? 0.0
                                     : (*fbg).AsDouble().value_or(0.0);
                      return Value::Str(v >= 7.0 ? "high" : "normal");
                    })
                  .ok());
  const Dimension* risk = *wh->dimension("Risk");
  EXPECT_EQ(risk->num_members(), 2u);
  EXPECT_TRUE(wh->fact().schema().HasField("Risk_key"));
  EXPECT_TRUE(wh->CheckIntegrity().ok);
  // Duplicate name rejected.
  EXPECT_TRUE(wh->AddFeedbackDimension("Risk", "X",
                                       [](const Warehouse&, size_t) {
                                         return Value::Str("y");
                                       })
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace ddgms::warehouse
