// Tests for the extension features: MDX .Children, the caching cube
// engine, warehouse persistence, and wrapper-filter feature selection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/csv.h"
#include "common/rng.h"
#include "core/dd_dgms.h"
#include "discri/cohort.h"
#include "discri/model.h"
#include "etl/pipeline.h"
#include "mdx/executor.h"
#include "table/sql.h"
#include "mining/feature_selection.h"
#include "mining/naive_bayes.h"
#include "olap/cache.h"
#include "report/render.h"
#include "warehouse/persist.h"

namespace ddgms {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    discri::CohortOptions opt;
    opt.num_patients = 250;
    opt.seed = 31;
    auto raw = discri::GenerateCohort(opt);
    ASSERT_TRUE(raw.ok());
    auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                    discri::MakeDiscriPipeline(),
                                    discri::MakeDiscriSchemaDef());
    ASSERT_TRUE(dgms.ok()) << dgms.status().ToString();
    dgms_ = new core::DdDgms(std::move(dgms).value());
  }
  static void TearDownTestSuite() {
    delete dgms_;
    dgms_ = nullptr;
  }
  static core::DdDgms* dgms_;
};

core::DdDgms* ExtensionsTest::dgms_ = nullptr;

// ------------------------------------------------------- MDX .Children

TEST_F(ExtensionsTest, MdxChildrenDrillsIntoHierarchy) {
  auto result = dgms_->QueryMdx(
      "SELECT { [PersonalInformation].[AgeBand10].[70-80].Children } "
      "ON ROWS FROM [MedicalMeasures]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->cube.num_axes(), 1u);
  EXPECT_EQ(result->cube.query().axes[0].attribute, "AgeBand5");
  // Children of 70-80 are exactly 70-75 and 75-80.
  const auto& members = result->cube.query().axes[0].members;
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], Value::Str("70-75"));
  EXPECT_EQ(members[1], Value::Str("75-80"));

  // Children counts sum to the parent's count.
  auto parent = dgms_->QueryMdx(
      "SELECT { [PersonalInformation].[AgeBand10].[70-80] } ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(parent.ok());
  int64_t parent_count =
      parent->cube.CellValue({Value::Str("70-80")}).int_value();
  int64_t child_sum = 0;
  for (const Value& m : result->cube.AxisMembers(0)) {
    child_sum += result->cube.CellValue({m}).int_value();
  }
  EXPECT_EQ(child_sum, parent_count);
}

TEST_F(ExtensionsTest, MdxChildrenErrors) {
  // Attribute without a finer level.
  EXPECT_FALSE(dgms_
                   ->QueryMdx("SELECT { [PersonalInformation].[AgeBand5]."
                              "[70-75].Children } ON ROWS "
                              "FROM [MedicalMeasures]")
                   .ok());
  // Unknown parent member.
  EXPECT_TRUE(dgms_
                  ->QueryMdx("SELECT { [PersonalInformation].[AgeBand10]."
                             "[999-1000].Children } ON ROWS "
                             "FROM [MedicalMeasures]")
                  .status()
                  .IsNotFound());
  // Level .Children behaves like .Members.
  auto level = dgms_->QueryMdx(
      "SELECT { [PersonalInformation].[Gender].Children } ON ROWS "
      "FROM [MedicalMeasures]");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level->cube.AxisMembers(0).size(), 2u);
}

// --------------------------------------------------- CachingCubeEngine

olap::CubeQuery CountByGenderQuery() {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "Gender", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  return q;
}

TEST_F(ExtensionsTest, CacheHitsOnRepeatedQuery) {
  olap::CachingCubeEngine engine(&dgms_->warehouse());
  auto first = engine.Execute(CountByGenderQuery());
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(CountByGenderQuery());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.misses(), 1u);
  EXPECT_EQ(engine.hits(), 1u);
  EXPECT_EQ(first->get(), second->get());  // same materialized cube
  EXPECT_EQ((*first)->CellValue({Value::Str("F")}),
            (*second)->CellValue({Value::Str("F")}));
}

TEST_F(ExtensionsTest, CacheDistinguishesQueries) {
  olap::CachingCubeEngine engine(&dgms_->warehouse());
  ASSERT_TRUE(engine.Execute(CountByGenderQuery()).ok());
  auto q2 = CountByGenderQuery();
  q2.slicers = {{"MedicalCondition", "DiabetesStatus",
                 {Value::Str("Type2")}}};
  ASSERT_TRUE(engine.Execute(q2).ok());
  EXPECT_EQ(engine.misses(), 2u);
  EXPECT_EQ(engine.size(), 2u);
  // non_empty is part of the key.
  auto q3 = CountByGenderQuery();
  q3.non_empty = false;
  ASSERT_TRUE(engine.Execute(q3).ok());
  EXPECT_EQ(engine.misses(), 3u);
}

TEST_F(ExtensionsTest, CacheEvictsAtCapacity) {
  olap::CachingCubeEngine engine(&dgms_->warehouse(), /*capacity=*/2);
  for (const char* attr : {"Gender", "AgeBand", "Education"}) {
    olap::CubeQuery q;
    q.axes = {{"PersonalInformation", attr, {}}};
    q.measures = {{AggFn::kCount, "", "n"}};
    ASSERT_TRUE(engine.Execute(q).ok());
  }
  EXPECT_EQ(engine.size(), 2u);
  // Oldest (Gender) was evicted: querying it again misses.
  size_t misses_before = engine.misses();
  ASSERT_TRUE(engine.Execute(CountByGenderQuery()).ok());
  EXPECT_EQ(engine.misses(), misses_before + 1);
}

TEST(CacheLifecycleTest, InvalidatesOnFactCountChange) {
  discri::CohortOptions opt;
  opt.num_patients = 60;
  opt.seed = 32;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto dgms = core::DdDgms::Build(std::move(raw).value(),
                                  discri::MakeDiscriPipeline(),
                                  discri::MakeDiscriSchemaDef());
  ASSERT_TRUE(dgms.ok());
  olap::CachingCubeEngine engine(&dgms->warehouse());
  ASSERT_TRUE(engine.Execute(CountByGenderQuery()).ok());
  EXPECT_EQ(engine.size(), 1u);

  discri::CohortOptions more;
  more.num_patients = 20;
  more.seed = 33;
  auto extra = discri::GenerateCohort(more);
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(dgms->AcquireData(*extra).ok());
  // Next execute detects the fact-count change and recomputes.
  auto after = engine.Execute(CountByGenderQuery());
  ASSERT_TRUE(after.ok());
  int64_t total = (*after)->CellValue({Value::Str("F")}).int_value() +
                  (*after)->CellValue({Value::Str("M")}).int_value();
  EXPECT_EQ(total,
            static_cast<int64_t>(dgms->warehouse().num_fact_rows()));
}

// ------------------------------------------------- warehouse persistence

TEST_F(ExtensionsTest, SaveLoadRoundTrip) {
  std::string dir = testing::TempDir() + "/ddgms_wh";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(
      warehouse::SaveWarehouse(dgms_->warehouse(), dir).ok());
  auto loaded = warehouse::LoadWarehouse(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto& original = dgms_->warehouse();
  EXPECT_EQ(loaded->def().fact_name, original.def().fact_name);
  EXPECT_EQ(loaded->num_fact_rows(), original.num_fact_rows());
  ASSERT_EQ(loaded->dimensions().size(), original.dimensions().size());
  for (size_t d = 0; d < original.dimensions().size(); ++d) {
    EXPECT_EQ(loaded->dimensions()[d].name(),
              original.dimensions()[d].name());
    EXPECT_EQ(loaded->dimensions()[d].num_members(),
              original.dimensions()[d].num_members());
  }
  // Same OLAP answers.
  olap::CubeEngine orig_engine(&original);
  olap::CubeEngine loaded_engine(&*loaded);
  auto q = CountByGenderQuery();
  auto a = orig_engine.Execute(q);
  auto b = loaded_engine.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const Value& m : a->AxisMembers(0)) {
    EXPECT_EQ(a->CellValue({m}), b->CellValue({m}));
  }
  // Hierarchies survive (drill-down works on the loaded warehouse).
  olap::CubeQuery hq;
  hq.axes = {{"PersonalInformation", "AgeBand10", {}}};
  hq.measures = {{AggFn::kCount, "", "n"}};
  auto cube = loaded_engine.Execute(hq);
  ASSERT_TRUE(cube.ok());
  EXPECT_TRUE(cube->DrillDown(0).ok());
}

TEST(PersistTest, LoadMissingDirectoryFails) {
  EXPECT_TRUE(warehouse::LoadWarehouse("/nonexistent/zzz")
                  .status()
                  .IsNotFound());
}

TEST(PersistTest, CorruptSchemaRejected) {
  std::string dir = testing::TempDir() + "/ddgms_bad_wh";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteFile(dir + "/schema.txt", "nonsense line here\n").ok());
  EXPECT_TRUE(
      warehouse::LoadWarehouse(dir).status().IsParseError());
}

// -------------------------------------------------------- PivotShare

TEST_F(ExtensionsTest, PivotShareColumnBasis) {
  // Share of female diabetics per age band within the F column — the
  // paper's "proportion of females with diabetes" reading of Fig 5.
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand", {}},
            {"PersonalInformation", "Gender", {}}};
  q.slicers = {{"MedicalCondition", "DiabetesStatus",
                {Value::Str("Type2")}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());
  auto shares =
      cube->PivotShare(0, 1, olap::Cube::ShareBasis::kColumn);
  ASSERT_TRUE(shares.ok()) << shares.status().ToString();
  // Each gender column sums to ~1.
  for (size_t c = 1; c < shares->num_columns(); ++c) {
    double total = 0.0;
    for (size_t r = 0; r < shares->num_rows(); ++r) {
      Value v = shares->column(c).GetValue(r);
      if (!v.is_null()) total += v.double_value();
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(ExtensionsTest, PivotShareRowAndGrandBases) {
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "AgeBand", {}},
            {"PersonalInformation", "Gender", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok());

  auto row_share = cube->PivotShare(0, 1, olap::Cube::ShareBasis::kRow);
  ASSERT_TRUE(row_share.ok());
  for (size_t r = 0; r < row_share->num_rows(); ++r) {
    double total = 0.0;
    for (size_t c = 1; c < row_share->num_columns(); ++c) {
      Value v = row_share->column(c).GetValue(r);
      if (!v.is_null()) total += v.double_value();
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }

  auto grand = cube->PivotShare(0, 1, olap::Cube::ShareBasis::kGrand);
  ASSERT_TRUE(grand.ok());
  double total = 0.0;
  for (size_t r = 0; r < grand->num_rows(); ++r) {
    for (size_t c = 1; c < grand->num_columns(); ++c) {
      Value v = grand->column(c).GetValue(r);
      if (!v.is_null()) total += v.double_value();
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ------------------------------------------------ derived year column

TEST_F(ExtensionsTest, VisitYearDimensionQueryable) {
  // The DeriveYearStep added VisitYear to the Cardinality dimension:
  // attendances per calendar year.
  olap::CubeQuery q;
  q.axes = {{"Cardinality", "VisitYear", {}}};
  q.measures = {{AggFn::kCount, "", "n"}};
  auto cube = dgms_->Query(q);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  int64_t total = 0;
  for (const Value& year : cube->AxisMembers(0)) {
    ASSERT_EQ(year.type(), DataType::kInt64);
    EXPECT_GE(year.int_value(), 2002);
    EXPECT_LE(year.int_value(), 2016);
    total += cube->CellValue({year}).int_value();
  }
  EXPECT_EQ(total,
            static_cast<int64_t>(dgms_->warehouse().num_fact_rows()));
}

TEST(DeriveYearStepTest, Validation) {
  Table t(Schema::Make({{"D", DataType::kString}}).value());
  ASSERT_TRUE(t.AppendRow({Value::Str("x")}).ok());
  auto step = etl::DeriveYearStep("D", "Y");
  EXPECT_TRUE(step(&t).IsInvalidArgument());
  auto missing = etl::DeriveYearStep("Nope", "Y");
  EXPECT_TRUE(missing(&t).IsNotFound());
}

// ----------------------------------------------------- MDX robustness

TEST_F(ExtensionsTest, MdxFuzzNeverCrashes) {
  // Random token soup must produce Status errors, never crashes.
  Rng rng(2024);
  const char* fragments[] = {
      "SELECT", "FROM", "WHERE", "ON", "COLUMNS", "ROWS", "NON",
      "EMPTY", "CROSSJOIN", "(", ")", "{", "}", ",", ".",
      "[PersonalInformation]", "[Gender]", "[MedicalMeasures]",
      "[Measures]", "[Count]", "Members", "Children", "[70-80]", "42"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string query;
    size_t len = static_cast<size_t>(rng.UniformInt(1, 14));
    for (size_t i = 0; i < len; ++i) {
      query += fragments[rng.UniformInt(
          0, static_cast<int64_t>(std::size(fragments)) - 1)];
      query += " ";
    }
    auto result = dgms_->QueryMdx(query);
    // ok or a clean error; either way nothing blows up.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_F(ExtensionsTest, SqlFuzzNeverCrashes) {
  Rng rng(2025);
  SqlEngine engine;
  engine.RegisterTable("t", &dgms_->transformed());
  const char* fragments[] = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "*",
      "(", ")", ",", "t", "Age", "Gender", "count", "avg", "'F'", "42",
      "=", ">=", "AND", "OR", "NOT", "BETWEEN", "IN", "IS", "NULL"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string query;
    size_t len = static_cast<size_t>(rng.UniformInt(1, 12));
    for (size_t i = 0; i < len; ++i) {
      query += fragments[rng.UniformInt(
          0, static_cast<int64_t>(std::size(fragments)) - 1)];
      query += " ";
    }
    auto result = engine.Execute(query);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// ------------------------------------------------ incremental append

TEST(AppendRowsTest, MatchesFullRebuild) {
  discri::CohortOptions opt;
  opt.num_patients = 80;
  opt.seed = 61;
  auto batch1 = discri::GenerateCohort(opt);
  ASSERT_TRUE(batch1.ok());
  opt.num_patients = 40;
  opt.seed = 62;
  auto batch2 = discri::GenerateCohort(opt);
  ASSERT_TRUE(batch2.ok());

  auto pipeline = discri::MakeDiscriPipeline();
  Table t1 = *batch1;
  Table t2 = *batch2;
  ASSERT_TRUE(pipeline.Run(&t1).ok());
  ASSERT_TRUE(pipeline.Run(&t2).ok());

  // Path A: build on batch1, append batch2 incrementally.
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  auto incremental = builder.Build(t1);
  ASSERT_TRUE(incremental.ok());
  size_t members_before =
      (*incremental->dimension("PersonalInformation"))->num_members();
  ASSERT_TRUE(incremental->AppendRows(t2).ok());
  EXPECT_TRUE(incremental->CheckIntegrity().ok);
  EXPECT_EQ(incremental->num_fact_rows(),
            t1.num_rows() + t2.num_rows());
  EXPECT_GE(
      (*incremental->dimension("PersonalInformation"))->num_members(),
      members_before);

  // Path B: full rebuild over the concatenation.
  Table combined = t1;
  ASSERT_TRUE(combined.Concat(t2).ok());
  auto rebuilt = builder.Build(combined);
  ASSERT_TRUE(rebuilt.ok());

  // Identical OLAP answers on a multi-dimension query.
  olap::CubeQuery q;
  q.axes = {{"PersonalInformation", "Gender", {}},
            {"MedicalCondition", "DiabetesStatus", {}},
            {"FastingBloods", "FBGBand", {}}};
  q.measures = {{AggFn::kCount, "", "n"}, {AggFn::kAvg, "FBG", "avg"}};
  auto a = olap::CubeEngine(&*incremental).Execute(q);
  auto b = olap::CubeEngine(&*rebuilt).Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_cells(), b->num_cells());
  auto table_a = a->ToTable();
  auto table_b = b->ToTable();
  ASSERT_TRUE(table_a.ok());
  ASSERT_TRUE(table_b.ok());
  EXPECT_EQ(table_a->ToCsv(), table_b->ToCsv());
}

TEST(AppendRowsTest, MissingColumnFails) {
  discri::CohortOptions opt;
  opt.num_patients = 20;
  opt.seed = 63;
  auto raw = discri::GenerateCohort(opt);
  ASSERT_TRUE(raw.ok());
  auto pipeline = discri::MakeDiscriPipeline();
  ASSERT_TRUE(pipeline.Run(&*raw).ok());
  warehouse::StarSchemaBuilder builder(discri::MakeDiscriSchemaDef());
  auto wh = builder.Build(*raw);
  ASSERT_TRUE(wh.ok());
  Table bad(Schema::Make({{"X", DataType::kInt64}}).value());
  EXPECT_TRUE(wh->AppendRows(bad).IsNotFound());
}

// ------------------------------------------------------------ heatmap

TEST(HeatmapTest, ShadesByMagnitude) {
  Table grid(Schema::Make({{"Band", DataType::kString},
                           {"F", DataType::kInt64},
                           {"M", DataType::kInt64}})
                 .value());
  ASSERT_TRUE(
      grid.AppendRow({Value::Str("60-70"), Value::Int(100), Value::Int(0)})
          .ok());
  ASSERT_TRUE(
      grid.AppendRow({Value::Str("70-80"), Value::Int(50), Value::Null()})
          .ok());
  report::HeatmapOptions opt;
  opt.cell_width = 1;
  auto out = report::RenderHeatmap(grid, opt);
  ASSERT_TRUE(out.ok());
  // Max cell uses the hottest ramp char; zero/null the coldest.
  EXPECT_NE(out->find('@'), std::string::npos);
  // Row for 70-80: mid shade then cold (null).
  EXPECT_NE(out->find("60-70"), std::string::npos);
  auto empty = report::RenderHeatmap(
      Table(Schema::Make({{"L", DataType::kString}}).value()), opt);
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

// ----------------------------------------------- feature selection

mining::CategoricalDataset MakeSelectionData(size_t n) {
  // y determined by f_good; f_weak correlates weakly; f_noise_i are
  // pure noise.
  mining::CategoricalDataset ds;
  ds.feature_names = {"f_noise1", "f_good", "f_noise2", "f_weak",
                      "f_noise3"};
  Rng rng(55);
  for (size_t i = 0; i < n; ++i) {
    bool y = rng.Bernoulli(0.5);
    std::string good = y ? "a" : "b";
    if (rng.Bernoulli(0.05)) good = y ? "b" : "a";  // slight noise
    std::string weak = (y == rng.Bernoulli(0.7)) ? "x" : "y";
    auto noise = [&] { return rng.Bernoulli(0.5) ? "p" : "q"; };
    ds.rows.push_back({noise(), good, noise(), weak, noise()});
    ds.labels.push_back(y ? "pos" : "neg");
  }
  return ds;
}

TEST(FeatureSelectionTest, FilterRanksInformativeFirst) {
  auto data = MakeSelectionData(600);
  auto ranking = mining::RankByInformationGain(data);
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking->size(), 5u);
  EXPECT_EQ((*ranking)[0].feature, "f_good");
  EXPECT_GT((*ranking)[0].info_gain, 0.5);
  // Noise features at the bottom with ~zero gain.
  EXPECT_LT(ranking->back().info_gain, 0.02);
}

TEST(FeatureSelectionTest, WrapperPicksGoodDropsNoise) {
  auto data = MakeSelectionData(600);
  mining::FeatureSelectionOptions opt;
  opt.max_features = 3;
  opt.min_improvement = 0.005;
  auto result = mining::WrapperFilterSelect(
      data,
      [] { return std::make_unique<mining::NaiveBayesClassifier>(); },
      opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->selected.empty());
  EXPECT_EQ(result->selected[0], "f_good");
  EXPECT_GT(result->cv_accuracy, 0.9);
  // No noise feature should make the cut.
  for (const std::string& f : result->selected) {
    EXPECT_TRUE(f == "f_good" || f == "f_weak") << f;
  }
}

TEST(FeatureSelectionTest, ProjectFeaturesValidation) {
  auto data = MakeSelectionData(50);
  auto projected = mining::ProjectFeatures(data, {"f_weak", "f_good"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->feature_names,
            (std::vector<std::string>{"f_weak", "f_good"}));
  EXPECT_EQ(projected->rows[0].size(), 2u);
  EXPECT_TRUE(
      mining::ProjectFeatures(data, {"nope"}).status().IsNotFound());
}

TEST(FeatureSelectionTest, OptionsValidation) {
  auto data = MakeSelectionData(50);
  mining::FeatureSelectionOptions opt;
  opt.folds = 1;
  EXPECT_TRUE(mining::WrapperFilterSelect(
                  data,
                  [] {
                    return std::make_unique<
                        mining::NaiveBayesClassifier>();
                  },
                  opt)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ddgms
