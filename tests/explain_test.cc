// EXPLAIN ANALYZE plan-tree tests: golden operator shape and
// cardinalities over a fixed warehouse, byte reconciliation against the
// ResourceMeter pools, cube-cache hit/miss interposition and the
// slow-query flight-recorder event carrying the plan as JSON.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.h"
#include "common/resource.h"
#include "mdx/executor.h"
#include "olap/cache.h"
#include "olap/plan.h"
#include "warehouse/warehouse.h"

namespace ddgms::mdx {
namespace {

using warehouse::DimensionDef;
using warehouse::MeasureDef;
using warehouse::StarSchemaBuilder;
using warehouse::StarSchemaDef;
using warehouse::Warehouse;

// Six fixed fact rows -> deterministic cardinalities in every plan.
Warehouse MakeWarehouse() {
  auto schema = Schema::Make({{"Gender", DataType::kString},
                              {"AgeBand", DataType::kString},
                              {"Diabetes", DataType::kString},
                              {"FBG", DataType::kDouble}});
  Table t(std::move(schema).value());
  struct R {
    const char* g;
    const char* a;
    const char* d;
    double fbg;
  };
  const R rows[] = {
      {"F", "40-60", "No", 5.1},  {"M", "40-60", "No", 5.3},
      {"F", "60-80", "Yes", 8.2}, {"M", "60-80", "Yes", 7.6},
      {"F", "60-80", "No", 5.6},  {"F", ">80", "Yes", 9.1},
  };
  for (const R& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::Str(r.g), Value::Str(r.a),
                             Value::Str(r.d), Value::Real(r.fbg)})
                    .ok());
  }
  StarSchemaDef def;
  def.fact_name = "MedicalMeasures";
  def.measures = {MeasureDef{"FBG", "FBG"}};
  DimensionDef person;
  person.name = "Person";
  person.attributes = {"Gender", "AgeBand"};
  DimensionDef condition;
  condition.name = "Condition";
  condition.attributes = {"Diabetes"};
  def.dimensions = {person, condition};
  auto wh = StarSchemaBuilder(def).Build(t);
  EXPECT_TRUE(wh.ok());
  return std::move(wh).value();
}

const olap::PlanNode* FindChild(const olap::PlanNode& node,
                                const std::string& op) {
  for (const olap::PlanNode& child : node.children) {
    if (child.op == op) return &child;
  }
  return nullptr;
}

const std::string* FindProp(const olap::PlanNode& node,
                            const std::string& key) {
  for (const auto& [k, v] : node.props) {
    if (k == key) return &v;
  }
  return nullptr;
}

constexpr char kGenderQuery[] =
    "SELECT { [Person].[Gender].Members } ON COLUMNS "
    "FROM [MedicalMeasures]";

TEST(ExplainTest, PlanTreeGoldenShapeAndCardinalities) {
  Warehouse wh = MakeWarehouse();
  MdxExecutor executor(&wh);
  auto result = executor.Execute(kGenderQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const olap::PlanNode& plan = result->profile.plan;
  EXPECT_EQ(plan.op, "mdx.execute");
  EXPECT_EQ(plan.rows_in, 6u);   // fact rows
  EXPECT_EQ(plan.rows_out, 2u);  // one cell per gender
  EXPECT_EQ(plan.rows_out, result->profile.cells);

  // Text execution prepends the measured parse operator.
  ASSERT_GE(plan.children.size(), 3u);
  EXPECT_EQ(plan.children[0].op, "mdx.parse");
  EXPECT_EQ(plan.children[1].op, "mdx.compile");
  const olap::PlanNode* exec = FindChild(plan, "olap.cube.execute");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->rows_in, 6u);
  EXPECT_EQ(exec->rows_out, 2u);

  // The cube engine's four stages, in execution order, with golden
  // cardinalities for this fixture.
  ASSERT_EQ(exec->children.size(), 4u);
  EXPECT_EQ(exec->children[0].op, "olap.cube.resolve_axes");
  EXPECT_EQ(exec->children[0].rows_in, 1u);   // one axis
  EXPECT_EQ(exec->children[0].rows_out, 2u);  // F, M
  EXPECT_EQ(exec->children[1].op, "olap.cube.resolve_slicers");
  EXPECT_EQ(exec->children[1].rows_in, 0u);
  EXPECT_EQ(exec->children[2].op, "olap.cube.scan");
  EXPECT_EQ(exec->children[2].rows_in, 6u);
  EXPECT_EQ(exec->children[2].rows_out, 6u);  // every fact aggregated
  EXPECT_NE(FindProp(exec->children[2], "threads"), nullptr);
  EXPECT_EQ(exec->children[3].op, "olap.cube.materialize");
  EXPECT_EQ(exec->children[3].rows_out, 2u);

  // A well-formed plan's children never sum past the parent.
  uint64_t stage_micros = 0;
  for (const olap::PlanNode& child : exec->children) {
    stage_micros += child.micros;
  }
  EXPECT_LE(stage_micros, exec->micros);
  for (const olap::PlanNode& child : plan.children) {
    EXPECT_LE(child.micros, plan.micros) << child.op;
  }

  // Rendering sanity: every operator appears in both exports.
  const std::string text = plan.ToString();
  const std::string json = plan.ToJson();
  for (const char* op : {"mdx.execute", "mdx.parse", "mdx.compile",
                         "olap.cube.scan", "olap.cube.materialize"}) {
    EXPECT_NE(text.find(op), std::string::npos) << op;
    EXPECT_NE(json.find(op), std::string::npos) << op;
  }
}

TEST(ExplainTest, PlanBytesReconcileWithResourcePools) {
  Warehouse wh = MakeWarehouse();
  ResourceMeter::Enable();
  ResourceMeter::Global().ResetValues();

  MdxExecutor executor(&wh);
  auto result = executor.Execute(kGenderQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const olap::PlanNode& plan = result->profile.plan;

  ResourceSnapshot snap = ResourceMeter::Global().Snapshot();
  ResourceMeter::Global().ResetValues();
  ResourceMeter::Disable();

  // The cube subtree's bytes are ScopedAccounting deltas over the
  // "olap.cube" pool, so they reconcile exactly with what the pool
  // accumulated during the query.
  const olap::PlanNode* exec = FindChild(plan, "olap.cube.execute");
  ASSERT_NE(exec, nullptr);
  const ResourcePoolStats* cube_pool = snap.pool("olap.cube");
  ASSERT_NE(cube_pool, nullptr);
  EXPECT_GT(exec->TotalBytes(), 0u);
  EXPECT_EQ(exec->TotalBytes(), cube_pool->allocated);

  // The root's own bytes are the executor's "mdx" pool delta.
  const ResourcePoolStats* mdx_pool = snap.pool("mdx");
  ASSERT_NE(mdx_pool, nullptr);
  EXPECT_EQ(plan.bytes, mdx_pool->allocated);
}

TEST(ExplainTest, CacheInterposesHitMissNode) {
  Warehouse wh = MakeWarehouse();
  olap::CachingCubeEngine cache(&wh);
  MdxExecutor executor(&wh);
  executor.set_cube_cache(&cache);

  auto first = executor.Execute(kGenderQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const olap::PlanNode* cache_node =
      FindChild(first->profile.plan, "olap.cube.cache");
  ASSERT_NE(cache_node, nullptr);
  const std::string* verdict = FindProp(*cache_node, "cache");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(*verdict, "miss");
  // A miss executes the engine beneath the cache node.
  EXPECT_NE(FindChild(*cache_node, "olap.cube.execute"), nullptr);
  EXPECT_EQ(cache_node->rows_out, 2u);

  auto second = executor.Execute(kGenderQuery);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  cache_node = FindChild(second->profile.plan, "olap.cube.cache");
  ASSERT_NE(cache_node, nullptr);
  verdict = FindProp(*cache_node, "cache");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(*verdict, "hit");
  // A hit serves the materialized cube: no engine stages beneath.
  EXPECT_TRUE(cache_node->children.empty());
  EXPECT_EQ(cache_node->rows_out, 2u);
  EXPECT_EQ(second->profile.plan.rows_out, 2u);
}

TEST(ExplainTest, SlowQueryEventEmbedsPlanJson) {
  Warehouse wh = MakeWarehouse();
  const double saved = MdxExecutor::SlowQueryThresholdMicros();
  MdxExecutor::SetSlowQueryThresholdMicros(0.0);  // everything is slow
  EventLog::Enable();
  EventLog::Global().Clear();

  MdxExecutor executor(&wh);
  auto result = executor.Execute(kGenderQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  EventLog::Global().Clear();
  EventLog::Disable();
  MdxExecutor::SetSlowQueryThresholdMicros(saved);

  const LogRecord* slow = nullptr;
  for (const LogRecord& r : records) {
    if (r.event == "mdx.slow_query") slow = &r;
  }
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->level, LogLevel::kWarn);
  bool found_plan = false;
  for (const auto& [key, value] : slow->fields) {
    if (key != "plan") continue;
    found_plan = true;
    const std::string json = value.ToJson();
    EXPECT_NE(json.find("mdx.execute"), std::string::npos);
    EXPECT_NE(json.find("olap.cube.scan"), std::string::npos);
  }
  EXPECT_TRUE(found_plan);
}

}  // namespace
}  // namespace ddgms::mdx
