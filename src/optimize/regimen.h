#ifndef DDGMS_OPTIMIZE_REGIMEN_H_
#define DDGMS_OPTIMIZE_REGIMEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::optimize {

/// Strategic-level decision optimisation (paper §IV: users "seek
/// information relevant for optimising treatment regimen that have the
/// best individual outcomes ... within the economic constraints of the
/// current health care system").
///
/// A regimen is a subset of interventions, each with a cost and a
/// cohort-estimated benefit; the optimizer maximises total benefit under
/// a budget (0/1 knapsack, exact DP) with a greedy benefit/cost baseline
/// for comparison.
struct TreatmentOption {
  std::string name;
  double cost = 0.0;     // per-patient program cost (arbitrary units)
  double benefit = 0.0;  // expected outcome improvement
};

struct RegimenPlan {
  std::vector<std::string> selected;
  double total_cost = 0.0;
  double total_benefit = 0.0;

  std::string ToString() const;
};

/// Exact 0/1 knapsack over integer-scaled costs. `cost_scale` controls
/// rounding granularity (costs are multiplied and rounded; finer scale =
/// slower, more precise).
Result<RegimenPlan> OptimizeRegimen(
    const std::vector<TreatmentOption>& options, double budget,
    double cost_scale = 100.0);

/// Greedy benefit/cost-ratio heuristic (baseline for bench A5).
Result<RegimenPlan> GreedyRegimen(
    const std::vector<TreatmentOption>& options, double budget);

/// Estimates a treatment's benefit from cohort data as the difference in
/// the mean of `outcome_column` (lower = better when `lower_is_better`)
/// between rows with flag true and flag false. The flag column may be
/// bool or 0/1 numeric.
Result<double> EstimateBenefitFromCohort(const Table& cohort,
                                         const std::string& flag_column,
                                         const std::string& outcome_column,
                                         bool lower_is_better = true);

}  // namespace ddgms::optimize

#endif  // DDGMS_OPTIMIZE_REGIMEN_H_
