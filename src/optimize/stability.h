#ifndef DDGMS_OPTIMIZE_STABILITY_H_
#define DDGMS_OPTIMIZE_STABILITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "olap/cube.h"
#include "warehouse/warehouse.h"

namespace ddgms::optimize {

/// Decision-optimisation support (paper §IV): "outcomes can be reviewed
/// by removing existing or adding further dimensions. Optimal aggregates
/// would be consistent regardless of the changes to dimensions."
///
/// Given a base aggregate (measures + slicers), StabilityAnalyzer
/// re-evaluates it conditioned on each candidate context dimension
/// attribute: if the aggregate barely moves across the members of a
/// candidate attribute, the outcome is robust to that dimension; a large
/// spread flags a confounder that should become part of the decision.
struct StabilityOptions {
  /// Relative spread above which a candidate is flagged unstable.
  double instability_threshold = 0.25;
  /// Subgroups smaller than this fraction of facts are ignored when
  /// computing spread (tiny strata are noise).
  double min_subgroup_fraction = 0.02;
};

/// Per-candidate-dimension outcome.
struct DimensionStability {
  std::string dimension;
  std::string attribute;
  double overall_value = 0.0;   // base aggregate
  double min_value = 0.0;       // across admissible subgroups
  double max_value = 0.0;
  double weighted_cv = 0.0;     // fact-weighted coefficient of variation
  double relative_spread = 0.0; // (max-min)/|overall|
  size_t subgroups = 0;
  bool stable = true;

  std::string ToString() const;
};

struct StabilityReport {
  double base_value = 0.0;
  std::vector<DimensionStability> candidates;
  bool all_stable = true;

  std::string ToString() const;
};

class StabilityAnalyzer {
 public:
  explicit StabilityAnalyzer(const warehouse::Warehouse* wh,
                             StabilityOptions options = {})
      : warehouse_(wh), options_(options) {}

  /// `measure` is evaluated under `slicers`; each (dimension, attribute)
  /// candidate is tested in turn.
  Result<StabilityReport> Analyze(
      const AggSpec& measure,
      const std::vector<olap::SlicerSpec>& slicers,
      const std::vector<std::pair<std::string, std::string>>& candidates)
      const;

 private:
  const warehouse::Warehouse* warehouse_;
  StabilityOptions options_;
};

}  // namespace ddgms::optimize

#endif  // DDGMS_OPTIMIZE_STABILITY_H_
