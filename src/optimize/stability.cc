#include "optimize/stability.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ddgms::optimize {

std::string DimensionStability::ToString() const {
  return StrFormat(
      "%s.%s: overall %.4f range [%.4f, %.4f] spread %.3f cv %.3f "
      "(%zu subgroups) -> %s",
      dimension.c_str(), attribute.c_str(), overall_value, min_value,
      max_value, relative_spread, weighted_cv,
      subgroups, stable ? "stable" : "UNSTABLE");
}

std::string StabilityReport::ToString() const {
  std::string out =
      StrFormat("base aggregate %.4f; %s", base_value,
                all_stable ? "all candidates stable"
                           : "instability detected");
  for (const DimensionStability& c : candidates) {
    out += "\n  " + c.ToString();
  }
  return out;
}

Result<StabilityReport> StabilityAnalyzer::Analyze(
    const AggSpec& measure,
    const std::vector<olap::SlicerSpec>& slicers,
    const std::vector<std::pair<std::string, std::string>>& candidates)
    const {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("analyzer has no warehouse");
  }
  olap::CubeEngine engine(warehouse_);

  // Base value: no axes, just slicers + measure.
  olap::CubeQuery base;
  base.slicers = slicers;
  base.measures = {measure};
  DDGMS_ASSIGN_OR_RETURN(olap::Cube base_cube, engine.Execute(base));
  StabilityReport report;
  {
    Value v = base_cube.CellValue({}, 0);
    if (v.is_null()) {
      return Status::FailedPrecondition(
          "base aggregate is empty under the given slicers");
    }
    DDGMS_ASSIGN_OR_RETURN(report.base_value, v.AsDouble());
  }
  const double total_facts =
      static_cast<double>(base_cube.facts_aggregated());

  for (const auto& [dim, attr] : candidates) {
    olap::CubeQuery q;
    q.slicers = slicers;
    q.measures = {measure, AggSpec{AggFn::kCount, "", "n"}};
    q.axes = {olap::AxisSpec{dim, attr, {}}};
    DDGMS_ASSIGN_OR_RETURN(olap::Cube cube, engine.Execute(q));

    DimensionStability ds;
    ds.dimension = dim;
    ds.attribute = attr;
    ds.overall_value = report.base_value;

    double sum_w = 0.0;
    double sum_wx = 0.0;
    double sum_wx2 = 0.0;
    bool first = true;
    for (const Value& member : cube.AxisMembers(0)) {
      std::vector<Value> coord = {member};
      size_t count = cube.CellCount(coord);
      double frac = total_facts > 0.0
                        ? static_cast<double>(count) / total_facts
                        : 0.0;
      if (frac < options_.min_subgroup_fraction) continue;
      Value v = cube.CellValue(coord, 0);
      if (v.is_null()) continue;
      DDGMS_ASSIGN_OR_RETURN(double x, v.AsDouble());
      if (first) {
        ds.min_value = ds.max_value = x;
        first = false;
      } else {
        ds.min_value = std::min(ds.min_value, x);
        ds.max_value = std::max(ds.max_value, x);
      }
      double w = static_cast<double>(count);
      sum_w += w;
      sum_wx += w * x;
      sum_wx2 += w * x * x;
      ++ds.subgroups;
    }
    if (ds.subgroups >= 2 && sum_w > 0.0) {
      double mean = sum_wx / sum_w;
      double var = sum_wx2 / sum_w - mean * mean;
      if (var < 0.0) var = 0.0;
      ds.weighted_cv =
          std::fabs(mean) > 1e-12 ? std::sqrt(var) / std::fabs(mean) : 0.0;
      ds.relative_spread =
          std::fabs(report.base_value) > 1e-12
              ? (ds.max_value - ds.min_value) /
                    std::fabs(report.base_value)
              : 0.0;
      ds.stable = ds.relative_spread <= options_.instability_threshold;
    }
    report.all_stable = report.all_stable && ds.stable;
    report.candidates.push_back(std::move(ds));
  }
  return report;
}

}  // namespace ddgms::optimize
