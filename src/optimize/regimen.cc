#include "optimize/regimen.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ddgms::optimize {

std::string RegimenPlan::ToString() const {
  std::string out = StrFormat("regimen (cost %.2f, benefit %.4f):",
                              total_cost, total_benefit);
  for (const std::string& s : selected) {
    out += " " + s;
  }
  return out;
}

Result<RegimenPlan> OptimizeRegimen(
    const std::vector<TreatmentOption>& options, double budget,
    double cost_scale) {
  if (budget < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  if (cost_scale <= 0.0) {
    return Status::InvalidArgument("cost_scale must be positive");
  }
  for (const TreatmentOption& opt : options) {
    if (opt.cost < 0.0) {
      return Status::InvalidArgument("treatment '" + opt.name +
                                     "' has negative cost");
    }
  }
  const size_t n = options.size();
  const size_t cap =
      static_cast<size_t>(std::floor(budget * cost_scale)) + 1;
  if (n == 0 || cap == 0) {
    return RegimenPlan{};
  }
  // Guard against degenerate DP sizes.
  if (cap > 50'000'000 / std::max<size_t>(n, 1)) {
    return Status::InvalidArgument(
        "budget x cost_scale too large for exact DP; lower cost_scale");
  }

  std::vector<size_t> costs(n);
  for (size_t i = 0; i < n; ++i) {
    costs[i] = static_cast<size_t>(std::llround(options[i].cost *
                                                cost_scale));
  }
  // dp[w] = best benefit at capacity w; choice bitset for reconstruction.
  std::vector<double> dp(cap, 0.0);
  std::vector<std::vector<uint8_t>> taken(
      n, std::vector<uint8_t>(cap, 0));
  for (size_t i = 0; i < n; ++i) {
    if (options[i].benefit <= 0.0) continue;  // never worth selecting
    for (size_t w = cap; w-- > 0;) {
      if (costs[i] > w) break;
      double candidate = dp[w - costs[i]] + options[i].benefit;
      if (candidate > dp[w]) {
        dp[w] = candidate;
        taken[i][w] = 1;
      }
    }
  }
  RegimenPlan plan;
  size_t w = cap - 1;
  for (size_t i = n; i-- > 0;) {
    if (taken[i][w] != 0) {
      plan.selected.push_back(options[i].name);
      plan.total_cost += options[i].cost;
      plan.total_benefit += options[i].benefit;
      w -= costs[i];
    }
  }
  std::reverse(plan.selected.begin(), plan.selected.end());
  return plan;
}

Result<RegimenPlan> GreedyRegimen(
    const std::vector<TreatmentOption>& options, double budget) {
  if (budget < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  std::vector<size_t> order(options.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = options[a].cost > 0.0
                    ? options[a].benefit / options[a].cost
                    : options[a].benefit * 1e9;
    double rb = options[b].cost > 0.0
                    ? options[b].benefit / options[b].cost
                    : options[b].benefit * 1e9;
    if (ra != rb) return ra > rb;
    return options[a].name < options[b].name;
  });
  RegimenPlan plan;
  double remaining = budget;
  for (size_t i : order) {
    if (options[i].benefit <= 0.0) continue;
    if (options[i].cost > remaining) continue;
    plan.selected.push_back(options[i].name);
    plan.total_cost += options[i].cost;
    plan.total_benefit += options[i].benefit;
    remaining -= options[i].cost;
  }
  return plan;
}

Result<double> EstimateBenefitFromCohort(const Table& cohort,
                                         const std::string& flag_column,
                                         const std::string& outcome_column,
                                         bool lower_is_better) {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* flag,
                         cohort.ColumnByName(flag_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* outcome,
                         cohort.ColumnByName(outcome_column));
  double sum_on = 0.0, sum_off = 0.0;
  size_t n_on = 0, n_off = 0;
  for (size_t i = 0; i < cohort.num_rows(); ++i) {
    if (flag->IsNull(i) || outcome->IsNull(i)) continue;
    DDGMS_ASSIGN_OR_RETURN(double f, flag->NumericAt(i));
    DDGMS_ASSIGN_OR_RETURN(double y, outcome->NumericAt(i));
    if (f != 0.0) {
      sum_on += y;
      ++n_on;
    } else {
      sum_off += y;
      ++n_off;
    }
  }
  if (n_on == 0 || n_off == 0) {
    return Status::FailedPrecondition(
        "need exposed and unexposed rows to estimate a benefit");
  }
  double mean_on = sum_on / static_cast<double>(n_on);
  double mean_off = sum_off / static_cast<double>(n_off);
  double effect = mean_on - mean_off;
  return lower_is_better ? -effect : effect;
}

}  // namespace ddgms::optimize
