#include "olap/plan.h"

#include <algorithm>

#include "common/strings.h"

namespace ddgms::olap {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatBytesShort(uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b < 1024.0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  if (b < 1024.0 * 1024.0) return StrFormat("%.1f KiB", b / 1024.0);
  if (b < 1024.0 * 1024.0 * 1024.0) {
    return StrFormat("%.1f MiB", b / (1024.0 * 1024.0));
  }
  return StrFormat("%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
}

struct RenderRow {
  std::string tree;   // prefix + operator + props
  std::string time;
  std::string rows;
  std::string bytes;
};

void CollectRows(const PlanNode& node, const std::string& prefix,
                 bool last, bool root, std::vector<RenderRow>* rows) {
  RenderRow row;
  row.tree = root ? "" : prefix + (last ? "`- " : "|- ");
  row.tree += node.op;
  for (const auto& [key, value] : node.props) {
    row.tree += " " + key + "=" + value;
  }
  row.time = StrFormat("%llu us",
                       static_cast<unsigned long long>(node.micros));
  if (node.rows_in != 0 || node.rows_out != 0) {
    row.rows = StrFormat("%llu -> %llu",
                         static_cast<unsigned long long>(node.rows_in),
                         static_cast<unsigned long long>(node.rows_out));
  }
  if (node.bytes != 0) row.bytes = FormatBytesShort(node.bytes);
  rows->push_back(std::move(row));
  const std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    CollectRows(node.children[i], child_prefix,
                i + 1 == node.children.size(), false, rows);
  }
}

}  // namespace

void PlanNode::AddProp(const std::string& key, uint64_t value) {
  props.emplace_back(
      key, StrFormat("%llu", static_cast<unsigned long long>(value)));
}

PlanNode& PlanNode::AddChild(std::string op_name) {
  children.emplace_back(std::move(op_name));
  return children.back();
}

uint64_t PlanNode::TotalBytes() const {
  uint64_t total = bytes;
  for (const PlanNode& child : children) total += child.TotalBytes();
  return total;
}

std::string PlanNode::ToString() const {
  std::vector<RenderRow> rows;
  CollectRows(*this, "", true, true, &rows);
  size_t tree_w = 0, time_w = 0, rows_w = 0;
  for (const RenderRow& r : rows) {
    tree_w = std::max(tree_w, r.tree.size());
    time_w = std::max(time_w, r.time.size());
    rows_w = std::max(rows_w, r.rows.size());
  }
  std::string out;
  for (const RenderRow& r : rows) {
    out += r.tree + std::string(tree_w - r.tree.size() + 2, ' ');
    out += std::string(time_w - r.time.size(), ' ') + r.time;
    out += "  " + std::string(rows_w - r.rows.size(), ' ') + r.rows;
    if (!r.bytes.empty()) out += "  " + r.bytes;
    // Trim trailing alignment spaces on prop-less rows.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += "\n";
  }
  return out;
}

std::string PlanNode::ToJson() const {
  std::string out = StrFormat(
      "{\"op\":\"%s\",\"micros\":%llu,\"rows_in\":%llu,"
      "\"rows_out\":%llu,\"bytes\":%llu",
      JsonEscape(op).c_str(), static_cast<unsigned long long>(micros),
      static_cast<unsigned long long>(rows_in),
      static_cast<unsigned long long>(rows_out),
      static_cast<unsigned long long>(bytes));
  if (!props.empty()) {
    out += ",\"props\":{";
    for (size_t i = 0; i < props.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(props[i].first) + "\":\"" +
             JsonEscape(props[i].second) + "\"";
    }
    out += "}";
  }
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ",";
      out += children[i].ToJson();
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace ddgms::olap
