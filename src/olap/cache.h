#ifndef DDGMS_OLAP_CACHE_H_
#define DDGMS_OLAP_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "olap/cube.h"

namespace ddgms::olap {

/// CubeEngine with an LRU cache of materialized cubes, keyed by the
/// canonical query string. Clinical analysis sessions re-issue the same
/// multivariate queries (drill-down and back, re-rendering); caching
/// turns those into dictionary hits.
///
/// Every Execute first compares the warehouse's generation stamp with
/// the one the cache was filled under and drops all entries on a
/// mismatch, so rebuilds, incremental appends, feedback dimensions and
/// durable-store reloads/recoveries (which all bump the stamp, even
/// when the fact-row count comes back identical) can never serve stale
/// cubes. Invalidate() remains for callers that mutate the warehouse
/// through a side channel the stamp cannot see.
///
/// Observability: hits, misses, evictions and invalidations are
/// exported as "ddgms.olap.cache.*" counters, and retained cube bytes
/// are charged to (and released from) the "olap.cube.cache" resource
/// pool, so the cache's live footprint is always attributable.
class CachingCubeEngine {
 public:
  explicit CachingCubeEngine(const warehouse::Warehouse* wh,
                             size_t capacity = 64)
      : warehouse_(wh), capacity_(capacity) {}
  ~CachingCubeEngine();

  /// Executes (or returns a cached) cube. The returned pointer stays
  /// valid as long as the caller holds it (shared ownership), even if
  /// the entry is evicted.
  Result<std::shared_ptr<const Cube>> Execute(const CubeQuery& query) {
    return Execute(query, nullptr);
  }

  /// Like Execute(query); when `plan` is non-null it is filled with
  /// the EXPLAIN ANALYZE tree: a "olap.cube.cache" node with a
  /// hit/miss prop, whose child on a miss is the engine's stage plan.
  Result<std::shared_ptr<const Cube>> Execute(const CubeQuery& query,
                                              PlanNode* plan);

  /// Drops all cached cubes.
  void Invalidate();

  const warehouse::Warehouse* warehouse() const { return warehouse_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Cube> cube;
    /// ApproxBytes at insert, remembered so the eventual release
    /// matches the charge exactly.
    uint64_t charged_bytes = 0;
  };

  /// Removes the LRU tail entry, releasing its charge.
  void EvictOne();

  const warehouse::Warehouse* warehouse_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  /// Warehouse::generation() the cached cubes were computed from; 0 =
  /// nothing cached yet (generations start at 1).
  uint64_t cached_generation_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace ddgms::olap

#endif  // DDGMS_OLAP_CACHE_H_
