#include "olap/cube.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/annotations.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms::olap {

using warehouse::Dimension;
using warehouse::Warehouse;

namespace {

uint64_t ValueApproxBytes(const Value& v) {
  uint64_t bytes = sizeof(Value);
  if (v.type() == DataType::kString) bytes += v.string_value().size();
  return bytes;
}

/// Per-stage stopwatch for EXPLAIN ANALYZE: measures wall time and the
/// resource-pool byte delta across one engine stage and writes them
/// into a fresh child of `plan`. Fully inert when `plan` is null, so
/// the plain Execute(query) path pays nothing.
class StageTimer {
 public:
  StageTimer(PlanNode* plan, const char* op,
             const ScopedAccounting& accounting)
      : accounting_(accounting), plan_(plan) {
    if (plan_ == nullptr) return;
    // Track the child by index: later stages may reallocate the
    // children vector, so a reference would dangle.
    index_ = plan_->children.size();
    plan_->AddChild(op);
    start_ = std::chrono::steady_clock::now();
    bytes_at_entry_ = accounting_.BytesCharged();
  }

  /// Finishes the stage (idempotent); returns the node for cardinality
  /// annotations, or nullptr when inert.
  PlanNode* Finish() {
    if (plan_ == nullptr) return nullptr;
    PlanNode* node = &plan_->children[index_];
    if (!finished_) {
      finished_ = true;
      node->micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
      node->bytes = accounting_.BytesCharged() - bytes_at_entry_;
    }
    return node;
  }

 private:
  const ScopedAccounting& accounting_;
  PlanNode* plan_ = nullptr;
  size_t index_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  uint64_t bytes_at_entry_ = 0;
};

}  // namespace

std::string AxisSpec::ToString() const {
  std::string out = "[" + dimension + "].[" + attribute + "]";
  if (!members.empty()) {
    out += "{";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ",";
      out += members[i].ToString();
    }
    out += "}";
  }
  return out;
}

std::string SlicerSpec::ToString() const {
  std::string out = "[" + dimension + "].[" + attribute + "] IN (";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += values[i].ToString();
  }
  return out + ")";
}

std::string CubeQuery::ToString() const {
  std::string out = "axes:";
  for (const AxisSpec& a : axes) {
    out += " ";
    out += a.ToString();
  }
  if (!slicers.empty()) {
    out += " where:";
    for (const SlicerSpec& s : slicers) {
      out += " ";
      out += s.ToString();
    }
  }
  out += " measures:";
  for (const AggSpec& m : measures) {
    out += " ";
    out += AggFnName(m.fn);
    out += "(";
    out += m.column.empty() ? "*" : m.column;
    out += ")";
  }
  if (!non_empty) out += " include-empty";
  return out;
}

// Pivot and share tables call this once per output cell.
DDGMS_HOT Value Cube::CellValue(const std::vector<Value>& coords,
                                size_t measure_index) const {
  auto it = cells_.find(coords);
  if (it == cells_.end() || measure_index >= it->second.measure_values.size()) {
    return Value::Null();
  }
  return it->second.measure_values[measure_index];
}

size_t Cube::CellCount(const std::vector<Value>& coords) const {
  auto it = cells_.find(coords);
  return it == cells_.end() ? 0 : it->second.fact_count;
}

Result<Cube> Cube::RollUp(size_t axis) const {
  if (axis >= query_.axes.size()) {
    return Status::OutOfRange(StrFormat("axis %zu out of range", axis));
  }
  TraceSpan span("olap.rollup");
  ScopedLatencyTimer timer("ddgms.olap.op_latency_us:rollup");
  DDGMS_METRIC_INC("ddgms.olap.ops:rollup");
  DDGMS_LOG_DEBUG("olap.rollup").With("axis", axis);
  CubeQuery q = query_;
  q.axes.erase(q.axes.begin() + static_cast<ptrdiff_t>(axis));
  return CubeEngine(warehouse_).Execute(q);
}

Result<Cube> Cube::RollUpToCoarser(size_t axis) const {
  if (axis >= query_.axes.size()) {
    return Status::OutOfRange(StrFormat("axis %zu out of range", axis));
  }
  const AxisSpec& spec = query_.axes[axis];
  DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                         warehouse_->dimension(spec.dimension));
  DDGMS_ASSIGN_OR_RETURN(std::string coarser,
                         dim->CoarserLevel(spec.attribute));
  TraceSpan span("olap.rollup_to_coarser");
  span.SetAttribute("to", coarser);
  ScopedLatencyTimer timer("ddgms.olap.op_latency_us:rollup");
  DDGMS_METRIC_INC("ddgms.olap.ops:rollup");
  DDGMS_LOG_DEBUG("olap.rollup_to_coarser").With("to", coarser);
  CubeQuery q = query_;
  q.axes[axis].attribute = coarser;
  q.axes[axis].members.clear();  // member names change across levels
  return CubeEngine(warehouse_).Execute(q);
}

Result<Cube> Cube::DrillDown(size_t axis) const {
  if (axis >= query_.axes.size()) {
    return Status::OutOfRange(StrFormat("axis %zu out of range", axis));
  }
  const AxisSpec& spec = query_.axes[axis];
  DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                         warehouse_->dimension(spec.dimension));
  DDGMS_ASSIGN_OR_RETURN(std::string finer,
                         dim->FinerLevel(spec.attribute));
  TraceSpan span("olap.drilldown");
  span.SetAttribute("to", finer);
  ScopedLatencyTimer timer("ddgms.olap.op_latency_us:drilldown");
  DDGMS_METRIC_INC("ddgms.olap.ops:drilldown");
  DDGMS_LOG_DEBUG("olap.drilldown").With("to", finer);
  CubeQuery q = query_;
  // Keep the coarse level as a slicer-free outer axis? The paper's
  // drill-down replaces the level while retaining any member
  // restriction semantics at the coarse level, which we express by
  // keeping the old axis restriction as a slicer.
  if (!spec.members.empty()) {
    q.slicers.push_back(
        SlicerSpec{spec.dimension, spec.attribute, spec.members});
  }
  q.axes[axis].attribute = finer;
  q.axes[axis].members.clear();
  return CubeEngine(warehouse_).Execute(q);
}

Result<Cube> Cube::Slice(const std::string& dimension,
                         const std::string& attribute, Value value) const {
  TraceSpan span("olap.slice");
  span.SetAttribute("attribute", attribute);
  ScopedLatencyTimer timer("ddgms.olap.op_latency_us:slice");
  DDGMS_METRIC_INC("ddgms.olap.ops:slice");
  DDGMS_LOG_DEBUG("olap.slice")
      .With("dimension", dimension)
      .With("attribute", attribute);
  CubeQuery q = query_;
  // If the sliced attribute is an axis, remove the axis.
  for (size_t i = 0; i < q.axes.size(); ++i) {
    if (q.axes[i].dimension == dimension &&
        q.axes[i].attribute == attribute) {
      q.axes.erase(q.axes.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  q.slicers.push_back(SlicerSpec{dimension, attribute, {std::move(value)}});
  return CubeEngine(warehouse_).Execute(q);
}

Result<Cube> Cube::Dice(const std::string& dimension,
                        const std::string& attribute,
                        std::vector<Value> values) const {
  TraceSpan span("olap.dice");
  span.SetAttribute("attribute", attribute);
  ScopedLatencyTimer timer("ddgms.olap.op_latency_us:dice");
  DDGMS_METRIC_INC("ddgms.olap.ops:dice");
  DDGMS_LOG_DEBUG("olap.dice")
      .With("dimension", dimension)
      .With("attribute", attribute)
      .With("values", values.size());
  CubeQuery q = query_;
  bool applied = false;
  for (AxisSpec& a : q.axes) {
    if (a.dimension == dimension && a.attribute == attribute) {
      a.members = values;
      applied = true;
      break;
    }
  }
  if (!applied) {
    q.slicers.push_back(
        SlicerSpec{dimension, attribute, std::move(values)});
  }
  return CubeEngine(warehouse_).Execute(q);
}

Result<Table> Cube::ToTable() const {
  std::vector<Field> fields;
  for (const AxisSpec& a : query_.axes) {
    // Axis output column named after the attribute; type from members.
    DataType t = DataType::kString;
    for (size_t ax = 0; ax < axis_members_.size(); ++ax) {
      if (&query_.axes[ax] == &a && !axis_members_[ax].empty()) {
        t = axis_members_[ax].front().type();
      }
    }
    if (t == DataType::kNull) t = DataType::kString;
    fields.push_back(Field{a.attribute, t});
  }
  for (const AggSpec& m : query_.measures) {
    DataType t;
    switch (m.fn) {
      case AggFn::kCount:
      case AggFn::kCountValid:
      case AggFn::kCountDistinct:
        t = DataType::kInt64;
        break;
      default:
        t = DataType::kDouble;
        break;
    }
    fields.push_back(Field{m.OutputName(), t});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));

  // Enumerate cells in sorted coordinate order for deterministic output.
  std::vector<const std::vector<Value>*> coords;
  coords.reserve(cells_.size());
  for (const auto& [c, cell] : cells_) coords.push_back(&c);
  std::sort(coords.begin(), coords.end(),
            [](const std::vector<Value>* a, const std::vector<Value>* b) {
              for (size_t i = 0; i < a->size() && i < b->size(); ++i) {
                int c = (*a)[i].Compare((*b)[i]);
                if (c != 0) return c < 0;
              }
              return a->size() < b->size();
            });
  for (const std::vector<Value>* c : coords) {
    const Cell& cell = cells_.at(*c);
    if (query_.non_empty && cell.fact_count == 0) continue;
    Row row = *c;
    for (const Value& mv : cell.measure_values) row.push_back(mv);
    DDGMS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> Cube::Pivot(size_t row_axis, size_t col_axis,
                          size_t measure_index) const {
  if (query_.axes.size() != 2) {
    return Status::FailedPrecondition(
        StrFormat("Pivot needs exactly 2 axes; cube has %zu",
                  query_.axes.size()));
  }
  if (row_axis >= 2 || col_axis >= 2 || row_axis == col_axis) {
    return Status::InvalidArgument("bad pivot axis indices");
  }
  if (measure_index >= query_.measures.size()) {
    return Status::OutOfRange("measure index out of range");
  }
  const std::vector<Value>& rows = axis_members_[row_axis];
  const std::vector<Value>& cols = axis_members_[col_axis];

  DataType measure_type;
  switch (query_.measures[measure_index].fn) {
    case AggFn::kCount:
    case AggFn::kCountValid:
    case AggFn::kCountDistinct:
      measure_type = DataType::kInt64;
      break;
    default:
      measure_type = DataType::kDouble;
      break;
  }
  std::vector<Field> fields;
  fields.push_back(Field{query_.axes[row_axis].attribute,
                         rows.empty() ? DataType::kString
                                      : rows.front().type()});
  for (const Value& c : cols) {
    fields.push_back(Field{c.ToString(), measure_type});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  for (const Value& r : rows) {
    Row row;
    row.push_back(r);
    for (const Value& c : cols) {
      std::vector<Value> coord(2);
      coord[row_axis] = r;
      coord[col_axis] = c;
      row.push_back(CellValue(coord, measure_index));
    }
    DDGMS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> Cube::PivotShare(size_t row_axis, size_t col_axis,
                               ShareBasis basis,
                               size_t measure_index) const {
  DDGMS_ASSIGN_OR_RETURN(Table counts,
                         Pivot(row_axis, col_axis, measure_index));
  const size_t rows = counts.num_rows();
  const size_t cols = counts.num_columns();  // label + data columns
  // Collect numeric cells.
  std::vector<std::vector<double>> cell(rows,
                                        std::vector<double>(cols - 1, 0.0));
  std::vector<std::vector<bool>> valid(rows,
                                       std::vector<bool>(cols - 1, false));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 1; c < cols; ++c) {
      Value v = counts.column(c).GetValue(r);
      Result<double> d = v.AsDouble();
      if (d.ok()) {
        cell[r][c - 1] = *d;
        valid[r][c - 1] = true;
      }
    }
  }
  auto denominator = [&](size_t r, size_t c) {
    double total = 0.0;
    switch (basis) {
      case ShareBasis::kRow:
        for (size_t j = 0; j + 1 < cols; ++j) {
          if (valid[r][j]) total += cell[r][j];
        }
        break;
      case ShareBasis::kColumn:
        for (size_t i = 0; i < rows; ++i) {
          if (valid[i][c]) total += cell[i][c];
        }
        break;
      case ShareBasis::kGrand:
        for (size_t i = 0; i < rows; ++i) {
          for (size_t j = 0; j + 1 < cols; ++j) {
            if (valid[i][j]) total += cell[i][j];
          }
        }
        break;
    }
    return total;
  };
  std::vector<Field> fields;
  fields.push_back(counts.schema().field(0));
  for (size_t c = 1; c < cols; ++c) {
    fields.push_back(
        Field{counts.schema().field(c).name, DataType::kDouble});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(counts.column(0).GetValue(r));
    for (size_t c = 0; c + 1 < cols; ++c) {
      double denom = denominator(r, c);
      if (!valid[r][c] || denom <= 0.0) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::Real(cell[r][c] / denom));
      }
    }
    DDGMS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<std::vector<Cube::RankedCell>> Cube::TopCells(
    size_t k, size_t measure_index, bool largest) const {
  if (measure_index >= query_.measures.size()) {
    return Status::OutOfRange("measure index out of range");
  }
  std::vector<RankedCell> ranked;
  ranked.reserve(cells_.size());
  for (const auto& [coord, cell] : cells_) {
    if (measure_index >= cell.measure_values.size()) continue;
    Result<double> v = cell.measure_values[measure_index].AsDouble();
    if (!v.ok()) continue;
    ranked.push_back(RankedCell{coord, *v, cell.fact_count});
  }
  auto better = [largest](const RankedCell& a, const RankedCell& b) {
    if (a.value != b.value) {
      return largest ? a.value > b.value : a.value < b.value;
    }
    // Deterministic tie-break on coordinates.
    for (size_t i = 0; i < a.coordinates.size(); ++i) {
      int c = a.coordinates[i].Compare(b.coordinates[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::sort(ranked.begin(), ranked.end(), better);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

uint64_t Cube::ApproxBytes() const {
  uint64_t bytes = 0;
  // Hash-map node overhead per cell: bucket pointer + hash + vectors.
  constexpr uint64_t kCellOverhead = sizeof(Cell) + 4 * sizeof(void*);
  for (const auto& [coord, cell] : cells_) {
    bytes += kCellOverhead;
    for (const Value& v : coord) bytes += ValueApproxBytes(v);
    for (const Value& v : cell.measure_values) {
      bytes += ValueApproxBytes(v);
    }
  }
  for (const std::vector<Value>& members : axis_members_) {
    for (const Value& v : members) bytes += ValueApproxBytes(v);
  }
  return bytes;
}

Result<Cube> CubeEngine::Execute(const CubeQuery& query,
                                 PlanNode* plan) const {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("CubeEngine has no warehouse");
  }
  if (query.measures.empty()) {
    return Status::InvalidArgument("cube query needs >= 1 measure");
  }

  const Table& fact = warehouse_->fact();

  TraceSpan exec_span("olap.cube.execute");
  exec_span.SetAttribute("axes", query.axes.size());
  exec_span.SetAttribute("slicers", query.slicers.size());
  exec_span.SetAttribute("measures", query.measures.size());
  exec_span.SetAttribute("fact_rows", fact.num_rows());
  ScopedLatencyTimer exec_timer("ddgms.olap.execute_latency_us");
  ScopedAccounting accounting("olap.cube");
  if (plan != nullptr) {
    if (plan->op.empty()) plan->op = "olap.cube.execute";
    plan->rows_in = fact.num_rows();
  }

  StageTimer axes_timer(plan, "olap.cube.resolve_axes", accounting);
  // Resolve axes. For speed, the scan works on small integer member
  // indices: each dimension surrogate key is pre-mapped to the index of
  // its attribute value among the axis's distinct members (-1 =
  // excluded by a member restriction), so the per-fact-row work is an
  // array lookup and an integer-tuple hash instead of Value hashing.
  struct ResolvedAxis {
    const ColumnVector* key_col;
    std::vector<int32_t> key_to_member;  // by surrogate key
    std::vector<Value> members;          // by member index
  };
  std::vector<ResolvedAxis> axes;
  axes.reserve(query.axes.size());
  for (const AxisSpec& spec : query.axes) {
    DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                           warehouse_->dimension(spec.dimension));
    if (!dim->HasAttribute(spec.attribute)) {
      return Status::NotFound("dimension '" + spec.dimension +
                              "' has no attribute '" + spec.attribute +
                              "'");
    }
    DDGMS_ASSIGN_OR_RETURN(
        const ColumnVector* key_col,
        fact.ColumnByName(Warehouse::KeyColumnName(spec.dimension)));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* attr_col,
                           dim->table().ColumnByName(spec.attribute));
    ResolvedAxis axis;
    axis.key_col = key_col;
    axis.key_to_member.assign(dim->num_members(), -1);
    std::unordered_map<Value, int32_t, ValueHash, ValueEq> member_index;
    if (!spec.members.empty()) {
      for (const Value& m : spec.members) {
        if (member_index.emplace(m, static_cast<int32_t>(
                                        axis.members.size()))
                .second) {
          axis.members.push_back(m);
        }
      }
    }
    for (size_t key = 0; key < dim->num_members(); ++key) {
      Value v = attr_col->GetValue(key);
      auto it = member_index.find(v);
      if (it != member_index.end()) {
        axis.key_to_member[key] = it->second;
      } else if (spec.members.empty()) {
        int32_t idx = static_cast<int32_t>(axis.members.size());
        member_index.emplace(v, idx);
        axis.members.push_back(std::move(v));
        axis.key_to_member[key] = idx;
      }
    }
    axes.push_back(std::move(axis));
  }
  if (PlanNode* node = axes_timer.Finish()) {
    node->rows_in = query.axes.size();
    uint64_t members = 0;
    for (const ResolvedAxis& a : axes) members += a.members.size();
    node->rows_out = members;
  }

  StageTimer slicers_timer(plan, "olap.cube.resolve_slicers", accounting);
  // Resolve slicers into per-dimension-member admission bitsets.
  struct ResolvedSlicer {
    const ColumnVector* key_col;
    std::vector<uint8_t> admit;  // by surrogate key
  };
  std::vector<ResolvedSlicer> slicers;
  slicers.reserve(query.slicers.size());
  for (const SlicerSpec& spec : query.slicers) {
    DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                           warehouse_->dimension(spec.dimension));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* attr_col,
                           dim->table().ColumnByName(spec.attribute));
    DDGMS_ASSIGN_OR_RETURN(
        const ColumnVector* key_col,
        fact.ColumnByName(Warehouse::KeyColumnName(spec.dimension)));
    ResolvedSlicer rs;
    rs.key_col = key_col;
    rs.admit.assign(dim->num_members(), 0);
    for (size_t k = 0; k < dim->num_members(); ++k) {
      Value v = attr_col->GetValue(k);
      for (const Value& want : spec.values) {
        if (v.Equals(want)) {
          rs.admit[k] = 1;
          break;
        }
      }
    }
    slicers.push_back(std::move(rs));
  }
  if (PlanNode* node = slicers_timer.Finish()) {
    node->rows_in = query.slicers.size();
    uint64_t admitted = 0;
    for (const ResolvedSlicer& s : slicers) {
      for (uint8_t a : s.admit) admitted += a;
    }
    node->rows_out = admitted;
  }

  // Resolve measures.
  std::vector<const ColumnVector*> measure_cols(query.measures.size(),
                                                nullptr);
  for (size_t m = 0; m < query.measures.size(); ++m) {
    const AggSpec& spec = query.measures[m];
    if (spec.column.empty()) {
      if (spec.fn != AggFn::kCount) {
        return Status::InvalidArgument(
            StrFormat("measure %s needs a column", AggFnName(spec.fn)));
      }
      continue;
    }
    DDGMS_ASSIGN_OR_RETURN(measure_cols[m],
                           fact.ColumnByName(spec.column));
  }

  // Single scan of the fact table, grouping on integer member tuples.
  Cube cube;
  cube.warehouse_ = warehouse_;
  cube.query_ = query;

  struct IdVectorHash {
    size_t operator()(const std::vector<int32_t>& ids) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (int32_t id : ids) {
        h ^= static_cast<size_t>(id) + 0x9e3779b9;
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  using AccMap = std::unordered_map<std::vector<int32_t>,
                                    std::vector<Accumulator>,
                                    IdVectorHash>;
  const size_t n = fact.num_rows();

  // Scans rows [begin, end) into a local map; returns admitted count.
  auto scan_range = [&](size_t begin, size_t end, AccMap* local) {
    size_t admitted_count = 0;
    std::vector<int32_t> coord_ids(query.axes.size());
    for (size_t i = begin; i < end; ++i) {
      bool admitted = true;
      for (const ResolvedSlicer& s : slicers) {
        int64_t key = s.key_col->IntAt(i);
        if (s.admit[static_cast<size_t>(key)] == 0) {
          admitted = false;
          break;
        }
      }
      if (!admitted) continue;

      bool on_axes = true;
      for (size_t a = 0; a < axes.size(); ++a) {
        int64_t key = axes[a].key_col->IntAt(i);
        int32_t member =
            axes[a].key_to_member[static_cast<size_t>(key)];
        if (member < 0) {
          on_axes = false;
          break;
        }
        coord_ids[a] = member;
      }
      if (!on_axes) continue;

      auto it = local->find(coord_ids);
      if (it == local->end()) {
        std::vector<Accumulator> cell_accs;
        cell_accs.reserve(query.measures.size());
        for (const AggSpec& spec : query.measures) {
          cell_accs.emplace_back(spec.fn);
        }
        it = local->emplace(coord_ids, std::move(cell_accs)).first;
      }
      for (size_t m = 0; m < query.measures.size(); ++m) {
        it->second[m].Add(measure_cols[m] == nullptr
                              ? Value::Int(1)
                              : measure_cols[m]->GetValue(i));
      }
      ++admitted_count;
    }
    return admitted_count;
  };

  AccMap accs;
  StageTimer scan_timer(plan, "olap.cube.scan", accounting);
  size_t threads = options_.num_threads;
  if (threads <= 1 || n < options_.parallel_threshold) {
    threads = 1;
    cube.facts_aggregated_ = scan_range(0, n, &accs);
  } else {
    threads = std::min(threads, n);
    std::vector<AccMap> partials(threads);
    std::vector<size_t> counts(threads, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    size_t chunk = (n + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(n, begin + chunk);
      workers.emplace_back([&, t, begin, end] {
        counts[t] = scan_range(begin, end, &partials[t]);
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t t = 0; t < threads; ++t) {
      cube.facts_aggregated_ += counts[t];
      for (auto& [ids, cell_accs] : partials[t]) {
        auto it = accs.find(ids);
        if (it == accs.end()) {
          accs.emplace(ids, std::move(cell_accs));
          continue;
        }
        for (size_t m = 0; m < cell_accs.size(); ++m) {
          it->second[m].Merge(cell_accs[m]);
        }
      }
    }
  }
  if (PlanNode* node = scan_timer.Finish()) {
    node->rows_in = n;
    node->rows_out = cube.facts_aggregated_;
    node->AddProp("threads", static_cast<uint64_t>(threads));
    node->AddProp("groups", static_cast<uint64_t>(accs.size()));
  }

  StageTimer materialize_timer(plan, "olap.cube.materialize", accounting);
  // Materialize cells (converting id tuples to value coordinates) and
  // axis member lists.
  std::vector<std::vector<bool>> seen(query.axes.size());
  for (size_t a = 0; a < axes.size(); ++a) {
    seen[a].assign(axes[a].members.size(), false);
  }
  for (auto& [ids, cell_accs] : accs) {
    Cube::Cell cell;
    cell.fact_count = cell_accs.empty() ? 0 : cell_accs[0].rows();
    cell.measure_values.reserve(cell_accs.size());
    for (const Accumulator& acc : cell_accs) {
      cell.measure_values.push_back(acc.Finish());
    }
    std::vector<Value> coord;
    coord.reserve(ids.size());
    for (size_t a = 0; a < ids.size(); ++a) {
      coord.push_back(axes[a].members[static_cast<size_t>(ids[a])]);
      seen[a][static_cast<size_t>(ids[a])] = true;
    }
    cube.cells_.emplace(std::move(coord), std::move(cell));
  }
  cube.axis_members_.resize(query.axes.size());
  for (size_t a = 0; a < query.axes.size(); ++a) {
    if (!query.axes[a].members.empty()) {
      // An explicit member list fixes the axis order (clinical band
      // labels such as "<40" do not sort lexicographically).
      for (size_t m = 0; m < axes[a].members.size(); ++m) {
        if (seen[a][m] || !query.non_empty) {
          cube.axis_members_[a].push_back(axes[a].members[m]);
        }
      }
      continue;
    }
    for (size_t m = 0; m < axes[a].members.size(); ++m) {
      if (seen[a][m]) {
        cube.axis_members_[a].push_back(axes[a].members[m]);
      }
    }
    std::sort(cube.axis_members_[a].begin(), cube.axis_members_[a].end(),
              [](const Value& x, const Value& y) {
                return x.Compare(y) < 0;
              });
  }

  // The cube's retained footprint is the engine's materialized output;
  // charge it to the active pool ("olap.cube" here, so the materialize
  // stage's byte delta below covers it by construction).
  DDGMS_RESOURCE_CHARGE(cube.ApproxBytes());
  if (PlanNode* node = materialize_timer.Finish()) {
    node->rows_in = accs.size();
    node->rows_out = cube.cells_.size();
  }
  if (plan != nullptr) {
    plan->rows_out = cube.cells_.size();
    uint64_t total_micros = 0;
    for (const PlanNode& child : plan->children) {
      total_micros += child.micros;
    }
    plan->micros = std::max(plan->micros, total_micros);
    plan->AddProp("cells", static_cast<uint64_t>(cube.cells_.size()));
    plan->AddProp("facts_aggregated",
                  static_cast<uint64_t>(cube.facts_aggregated_));
  }

  exec_span.SetAttribute("threads", threads);
  exec_span.SetAttribute("cells", cube.cells_.size());
  exec_span.SetAttribute("facts_aggregated", cube.facts_aggregated_);
  DDGMS_LOG_DEBUG("olap.cube.execute")
      .With("axes", query.axes.size())
      .With("cells", cube.cells_.size())
      .With("facts_scanned", n)
      .With("facts_aggregated", cube.facts_aggregated_);
  DDGMS_METRIC_INC("ddgms.olap.queries");
  DDGMS_METRIC_ADD("ddgms.olap.cells_materialized", cube.cells_.size());
  DDGMS_METRIC_ADD("ddgms.olap.facts_scanned", n);
  DDGMS_METRIC_ADD("ddgms.olap.facts_aggregated", cube.facts_aggregated_);
  return cube;
}

}  // namespace ddgms::olap
