#include "olap/cache.h"

namespace ddgms::olap {

Result<std::shared_ptr<const Cube>> CachingCubeEngine::Execute(
    const CubeQuery& query) {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("engine has no warehouse");
  }
  // Drift guard: a changed generation stamp means the warehouse was
  // rebuilt, extended, reloaded or recovered under us — including
  // reloads that restore the same fact-row count with different data.
  if (warehouse_->generation() != cached_generation_) {
    Invalidate();
    cached_generation_ = warehouse_->generation();
  }
  std::string key = query.ToString();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->cube;
  }
  ++misses_;
  CubeEngine engine(warehouse_);
  DDGMS_ASSIGN_OR_RETURN(Cube cube, engine.Execute(query));
  auto shared = std::make_shared<const Cube>(std::move(cube));
  lru_.push_front(Entry{key, shared});
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return shared;
}

void CachingCubeEngine::Invalidate() {
  lru_.clear();
  entries_.clear();
}

}  // namespace ddgms::olap
