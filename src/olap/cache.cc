#include "olap/cache.h"

#include "common/metrics.h"
#include "common/resource.h"

namespace ddgms::olap {

namespace {

/// Cached cubes live in the cache's pool regardless of which thread's
/// query inserted or evicted them.
void ChargeCache(uint64_t bytes) {
  if (!ResourceMeter::Enabled() || bytes == 0) return;
  ResourceMeter::Global().GetPool("olap.cube.cache").Charge(bytes);
}

void ReleaseCache(uint64_t bytes) {
  if (!ResourceMeter::Enabled() || bytes == 0) return;
  ResourceMeter::Global().GetPool("olap.cube.cache").Release(bytes);
}

}  // namespace

CachingCubeEngine::~CachingCubeEngine() {
  for (const Entry& e : lru_) ReleaseCache(e.charged_bytes);
}

Result<std::shared_ptr<const Cube>> CachingCubeEngine::Execute(
    const CubeQuery& query, PlanNode* plan) {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("engine has no warehouse");
  }
  // Drift guard: a changed generation stamp means the warehouse was
  // rebuilt, extended, reloaded or recovered under us — including
  // reloads that restore the same fact-row count with different data.
  if (warehouse_->generation() != cached_generation_) {
    if (cached_generation_ != 0) {
      DDGMS_METRIC_INC("ddgms.olap.cache.invalidations");
    }
    Invalidate();
    cached_generation_ = warehouse_->generation();
  }
  if (plan != nullptr && plan->op.empty()) plan->op = "olap.cube.cache";
  std::string key = query.ToString();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    DDGMS_METRIC_INC("ddgms.olap.cache.hits");
    lru_.splice(lru_.begin(), lru_, it->second);
    if (plan != nullptr) {
      plan->AddProp("cache", "hit");
      plan->rows_out = it->second->cube->num_cells();
    }
    return it->second->cube;
  }
  ++misses_;
  DDGMS_METRIC_INC("ddgms.olap.cache.misses");
  CubeEngine engine(warehouse_);
  PlanNode* engine_plan = nullptr;
  if (plan != nullptr) {
    plan->AddProp("cache", "miss");
    engine_plan = &plan->AddChild("olap.cube.execute");
  }
  DDGMS_ASSIGN_OR_RETURN(Cube cube, engine.Execute(query, engine_plan));
  const uint64_t bytes = ResourceMeter::Enabled() ? cube.ApproxBytes() : 0;
  auto shared = std::make_shared<const Cube>(std::move(cube));
  lru_.push_front(Entry{key, shared, bytes});
  entries_[key] = lru_.begin();
  ChargeCache(bytes);
  while (entries_.size() > capacity_) {
    DDGMS_METRIC_INC("ddgms.olap.cache.evictions");
    EvictOne();
  }
  if (plan != nullptr) plan->rows_out = shared->num_cells();
  return shared;
}

void CachingCubeEngine::EvictOne() {
  ReleaseCache(lru_.back().charged_bytes);
  entries_.erase(lru_.back().key);
  lru_.pop_back();
}

void CachingCubeEngine::Invalidate() {
  for (const Entry& e : lru_) ReleaseCache(e.charged_bytes);
  lru_.clear();
  entries_.clear();
}

}  // namespace ddgms::olap
