#include "olap/cache.h"

namespace ddgms::olap {

Result<std::shared_ptr<const Cube>> CachingCubeEngine::Execute(
    const CubeQuery& query) {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("engine has no warehouse");
  }
  // Gross-drift guard: a changed fact count means the warehouse was
  // rebuilt or extended under us.
  if (warehouse_->num_fact_rows() != cached_fact_rows_) {
    Invalidate();
    cached_fact_rows_ = warehouse_->num_fact_rows();
  }
  std::string key = query.ToString();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->cube;
  }
  ++misses_;
  CubeEngine engine(warehouse_);
  DDGMS_ASSIGN_OR_RETURN(Cube cube, engine.Execute(query));
  auto shared = std::make_shared<const Cube>(std::move(cube));
  lru_.push_front(Entry{key, shared});
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return shared;
}

void CachingCubeEngine::Invalidate() {
  lru_.clear();
  entries_.clear();
}

}  // namespace ddgms::olap
