#ifndef DDGMS_OLAP_CUBE_H_
#define DDGMS_OLAP_CUBE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "olap/plan.h"
#include "table/aggregate.h"
#include "table/table.h"
#include "warehouse/warehouse.h"

namespace ddgms::olap {

/// One cube axis: group facts by this dimension attribute. An optional
/// member restriction limits the axis to the listed values (the "dice"
/// of the drag-and-drop interface in paper Fig 4).
struct AxisSpec {
  std::string dimension;
  std::string attribute;
  std::vector<Value> members;  // empty = all members

  std::string ToString() const;
};

/// One slicer: keep only facts whose dimension attribute is in `values`
/// (the WHERE clause of an MDX query; e.g. MedicalCondition.Diabetes =
/// "Yes" in paper Fig 5).
struct SlicerSpec {
  std::string dimension;
  std::string attribute;
  std::vector<Value> values;

  std::string ToString() const;
};

/// A multidimensional query: axes x slicers x measures. Measures use
/// AggSpec with `column` naming a warehouse measure ("" for count).
struct CubeQuery {
  std::vector<AxisSpec> axes;
  std::vector<SlicerSpec> slicers;
  std::vector<AggSpec> measures;
  /// Drop cells with zero contributing facts from ToTable()/Pivot().
  bool non_empty = true;

  std::string ToString() const;
};

/// Materialized result of a CubeQuery: a sparse map from axis coordinates
/// to aggregated measure values, retaining enough context (warehouse +
/// query) to support OLAP navigation:
///
///  * RollUp(axis)            — drop an axis, re-aggregating.
///  * RollUpToCoarser(axis)   — move the axis up its hierarchy.
///  * DrillDown(axis)         — move the axis down its hierarchy
///                              (paper Fig 5: AgeBand10 -> AgeBand5).
///  * Slice(dim, attr, v)     — fix one member and remove that axis.
///  * Dice(dim, attr, values) — restrict to a member subset.
///
/// Navigation re-executes against the warehouse (ROLAP style), so a Cube
/// must not outlive its Warehouse.
class Cube {
 public:
  const CubeQuery& query() const { return query_; }
  size_t num_axes() const { return query_.axes.size(); }
  size_t num_measures() const { return query_.measures.size(); }
  size_t num_cells() const { return cells_.size(); }
  /// Total facts that passed the slicers.
  size_t facts_aggregated() const { return facts_aggregated_; }

  /// Distinct coordinate values seen on axis `axis`, sorted.
  const std::vector<Value>& AxisMembers(size_t axis) const {
    return axis_members_[axis];
  }

  /// Aggregated value for a full coordinate tuple; Null for empty cells.
  Value CellValue(const std::vector<Value>& coords,
                  size_t measure_index = 0) const;

  /// Number of facts aggregated into a cell.
  size_t CellCount(const std::vector<Value>& coords) const;

  /// OLAP operations (see class comment).
  Result<Cube> RollUp(size_t axis) const;
  Result<Cube> RollUpToCoarser(size_t axis) const;
  Result<Cube> DrillDown(size_t axis) const;
  Result<Cube> Slice(const std::string& dimension,
                     const std::string& attribute, Value value) const;
  Result<Cube> Dice(const std::string& dimension,
                    const std::string& attribute,
                    std::vector<Value> values) const;

  /// Flattens to a table: one row per (non-empty) cell; axis columns
  /// then measure columns.
  Result<Table> ToTable() const;

  /// 2D cross-tab of one measure: rows = members of `row_axis`, columns
  /// = members of `col_axis` (requires exactly those two axes).
  Result<Table> Pivot(size_t row_axis, size_t col_axis,
                      size_t measure_index = 0) const;

  /// How PivotShare normalizes cells.
  enum class ShareBasis {
    kRow,    // cell / row total
    kColumn, // cell / column total
    kGrand,  // cell / grand total
  };

  /// Like Pivot but each cell is the measure's share of its row /
  /// column / grand total (the "proportion of females with diabetes"
  /// reading of paper Fig 5). Requires a numeric measure; empty
  /// denominators yield null cells.
  Result<Table> PivotShare(size_t row_axis, size_t col_axis,
                           ShareBasis basis,
                           size_t measure_index = 0) const;

  /// The k cells with the largest (or smallest) value of a numeric
  /// measure — "groups of patients at the edges of overlapping
  /// dimensions". Null-valued cells are skipped.
  struct RankedCell {
    std::vector<Value> coordinates;
    double value = 0.0;
    size_t fact_count = 0;
  };
  Result<std::vector<RankedCell>> TopCells(size_t k,
                                           size_t measure_index = 0,
                                           bool largest = true) const;

  /// Estimated heap footprint of the materialized cube (cells, their
  /// coordinate and measure Values, axis member lists). This is the
  /// amount Execute charges to the "olap.cube" resource pool.
  uint64_t ApproxBytes() const;

 private:
  friend class CubeEngine;

  struct Cell {
    std::vector<Value> measure_values;
    size_t fact_count = 0;
  };

  const warehouse::Warehouse* warehouse_ = nullptr;
  CubeQuery query_;
  std::unordered_map<std::vector<Value>, Cell, ValueVectorHash,
                     ValueVectorEq>
      cells_;
  std::vector<std::vector<Value>> axis_members_;
  size_t facts_aggregated_ = 0;
};

/// Engine tuning knobs.
struct CubeEngineOptions {
  /// Worker threads for the fact scan. 1 = serial. Parallel scans
  /// partition the fact table and merge per-thread accumulators;
  /// results are identical up to floating-point addition order.
  size_t num_threads = 1;
  /// Below this many fact rows the scan stays serial regardless.
  size_t parallel_threshold = 16384;
};

/// Executes CubeQueries against a Warehouse. Stateless aside from the
/// warehouse pointer; the warehouse must outlive the engine and all
/// cubes it produces.
class CubeEngine {
 public:
  explicit CubeEngine(const warehouse::Warehouse* wh) : warehouse_(wh) {}
  CubeEngine(const warehouse::Warehouse* wh, CubeEngineOptions options)
      : warehouse_(wh), options_(options) {}

  /// Validates the query, scans the fact table once and aggregates.
  Result<Cube> Execute(const CubeQuery& query) const {
    return Execute(query, nullptr);
  }

  /// Like Execute(query) but additionally fills `plan` (when non-null)
  /// with one child operator per engine stage — resolve axes, resolve
  /// slicers, scan, materialize — carrying measured times,
  /// cardinalities and resource-pool byte deltas (EXPLAIN ANALYZE).
  Result<Cube> Execute(const CubeQuery& query, PlanNode* plan) const;

 private:
  const warehouse::Warehouse* warehouse_;
  CubeEngineOptions options_;
};

}  // namespace ddgms::olap

#endif  // DDGMS_OLAP_CUBE_H_
