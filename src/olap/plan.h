#ifndef DDGMS_OLAP_PLAN_H_
#define DDGMS_OLAP_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ddgms::olap {

/// -------------------------------------------------------------------
/// EXPLAIN ANALYZE plan tree
///
/// One node per executed operator, built while the query runs (this is
/// always an *analyze* plan — the numbers are measured, not
/// estimated). The MDX executor roots the tree at "mdx.execute"; the
/// cube engine hangs its stages (resolve axes/slicers, scan,
/// materialize) beneath it; the cube cache interposes a hit/miss node.
///
/// Per-operator bytes are ResourceMeter pool deltas observed across
/// the operator (see ScopedAccounting), so summing a plan's operator
/// bytes reconciles with the pool totals by construction — the
/// explain_test asserts this.
/// -------------------------------------------------------------------
struct PlanNode {
  /// Operator name, dotted "<layer>.<noun>[.<verb>]" like every other
  /// instrument ("mdx.execute", "olap.cube.scan").
  std::string op;
  /// Measured wall-clock time spent in this operator, including
  /// children (children of a well-formed plan never sum to more).
  uint64_t micros = 0;
  /// Input / output cardinality in the operator's natural unit (fact
  /// rows for scans, cells for materialization, result rows for
  /// grids). Zero when not meaningful.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Bytes charged to the active resource pool while this operator
  /// ran (exclusive of children for interior nodes that wrap stages).
  uint64_t bytes = 0;
  /// Free-form operator detail ("threads"="4", "cache"="hit").
  std::vector<std::pair<std::string, std::string>> props;
  std::vector<PlanNode> children;

  PlanNode() = default;
  explicit PlanNode(std::string op_name) : op(std::move(op_name)) {}

  void AddProp(const std::string& key, std::string value) {
    props.emplace_back(key, std::move(value));
  }
  void AddProp(const std::string& key, uint64_t value);

  /// Adds a child and returns a reference to it (stable only until the
  /// next AddChild on the same parent).
  PlanNode& AddChild(std::string op_name);

  /// This node's bytes plus all descendants'.
  uint64_t TotalBytes() const;

  /// Aligned tree rendering (the shell's `explain analyze` output):
  /// tree-drawn operator column, then time / rows / bytes columns.
  std::string ToString() const;
  /// {"op":...,"micros":...,...,"children":[...]}.
  std::string ToJson() const;
};

}  // namespace ddgms::olap

#endif  // DDGMS_OLAP_PLAN_H_
