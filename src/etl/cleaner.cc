#include "etl/cleaner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace ddgms::etl {

std::string CleaningReport::ToString() const {
  std::string out = StrFormat(
      "cleaning: %zu nulled, %zu clamped, %zu rows dropped, %zu "
      "duplicates, %zu imputed",
      cells_nulled, cells_clamped, rows_dropped, duplicates_dropped,
      cells_imputed);
  for (const auto& [col, n] : errors_by_column) {
    out += StrFormat("\n  errors[%s] = %zu", col.c_str(), n);
  }
  for (const auto& [col, n] : imputed_by_column) {
    out += StrFormat("\n  imputed[%s] = %zu", col.c_str(), n);
  }
  return out;
}

namespace {

Result<Value> ComputeImputeValue(const ColumnVector& col,
                                 const ImputeRule& rule) {
  switch (rule.method) {
    case ImputeMethod::kNone:
      return Value::Null();
    case ImputeMethod::kConstant:
      return rule.constant;
    case ImputeMethod::kMean: {
      double sum = 0.0;
      size_t n = 0;
      for (size_t i = 0; i < col.size(); ++i) {
        if (col.IsNull(i)) continue;
        DDGMS_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
        sum += v;
        ++n;
      }
      if (n == 0) return Value::Null();
      double mean = sum / static_cast<double>(n);
      if (col.type() == DataType::kInt64) {
        return Value::Int(static_cast<int64_t>(std::llround(mean)));
      }
      return Value::Real(mean);
    }
    case ImputeMethod::kMedian: {
      std::vector<double> vals;
      for (size_t i = 0; i < col.size(); ++i) {
        if (col.IsNull(i)) continue;
        DDGMS_ASSIGN_OR_RETURN(double v, col.NumericAt(i));
        vals.push_back(v);
      }
      if (vals.empty()) return Value::Null();
      size_t mid = vals.size() / 2;
      std::nth_element(vals.begin(), vals.begin() + mid, vals.end());
      double median = vals[mid];
      if (vals.size() % 2 == 0) {
        double lower = *std::max_element(vals.begin(), vals.begin() + mid);
        median = (median + lower) / 2.0;
      }
      if (col.type() == DataType::kInt64) {
        return Value::Int(static_cast<int64_t>(std::llround(median)));
      }
      return Value::Real(median);
    }
    case ImputeMethod::kMode: {
      std::unordered_map<Value, size_t, ValueHash, ValueEq> counts;
      for (size_t i = 0; i < col.size(); ++i) {
        if (col.IsNull(i)) continue;
        counts[col.GetValue(i)]++;
      }
      Value best = Value::Null();
      size_t best_n = 0;
      for (const auto& [v, n] : counts) {
        if (n > best_n) {
          best_n = n;
          best = v;
        }
      }
      return best;
    }
  }
  return Status::Internal("bad impute method");
}

}  // namespace

Result<CleaningReport> Cleaner::Run(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  CleaningReport report;

  // Phase 0: duplicate-record removal by key columns (first wins).
  if (!dedupe_keys_.empty()) {
    std::vector<const ColumnVector*> key_cols;
    key_cols.reserve(dedupe_keys_.size());
    for (const std::string& k : dedupe_keys_) {
      DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                             table->ColumnByName(k));
      key_cols.push_back(col);
    }
    std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
        seen;
    std::vector<size_t> keep;
    keep.reserve(table->num_rows());
    for (size_t i = 0; i < table->num_rows(); ++i) {
      std::vector<Value> key;
      key.reserve(key_cols.size());
      bool has_null = false;
      for (const ColumnVector* col : key_cols) {
        if (col->IsNull(i)) {
          has_null = true;
          break;
        }
        key.push_back(col->GetValue(i));
      }
      if (has_null || seen.insert(std::move(key)).second) {
        keep.push_back(i);
      } else {
        ++report.duplicates_dropped;
      }
    }
    if (report.duplicates_dropped > 0) {
      *table = table->Take(keep);
    }
  }

  // Phase 1: plausibility rules. Collect rows to drop, then drop once.
  std::vector<bool> drop(table->num_rows(), false);
  for (const RangeRule& rule : range_rules_) {
    if (rule.min_value > rule.max_value) {
      return Status::InvalidArgument(
          StrFormat("range rule for '%s' has min > max",
                    rule.column.c_str()));
    }
    DDGMS_ASSIGN_OR_RETURN(ColumnVector * col,
                           table->MutableColumnByName(rule.column));
    if (!IsNumeric(col->type())) {
      return Status::InvalidArgument(
          StrFormat("range rule column '%s' is not numeric",
                    rule.column.c_str()));
    }
    for (size_t i = 0; i < col->size(); ++i) {
      if (col->IsNull(i)) continue;
      DDGMS_ASSIGN_OR_RETURN(double v, col->NumericAt(i));
      if (v >= rule.min_value && v <= rule.max_value) continue;
      report.errors_by_column[rule.column]++;
      switch (rule.action) {
        case ErrorAction::kSetNull:
          DDGMS_RETURN_IF_ERROR(col->SetValue(i, Value::Null()));
          ++report.cells_nulled;
          break;
        case ErrorAction::kClamp: {
          double clamped = std::clamp(v, rule.min_value, rule.max_value);
          Value nv = col->type() == DataType::kInt64
                         ? Value::Int(static_cast<int64_t>(
                               std::llround(clamped)))
                         : Value::Real(clamped);
          DDGMS_RETURN_IF_ERROR(col->SetValue(i, nv));
          ++report.cells_clamped;
          break;
        }
        case ErrorAction::kDropRow:
          if (!drop[i]) {
            drop[i] = true;
            ++report.rows_dropped;
          }
          break;
      }
    }
  }
  if (report.rows_dropped > 0) {
    std::vector<size_t> keep;
    keep.reserve(table->num_rows() - report.rows_dropped);
    for (size_t i = 0; i < drop.size(); ++i) {
      if (!drop[i]) keep.push_back(i);
    }
    *table = table->Take(keep);
  }

  // Phase 2: imputation (computed on post-drop data).
  for (const ImputeRule& rule : impute_rules_) {
    if (rule.method == ImputeMethod::kNone) continue;
    DDGMS_ASSIGN_OR_RETURN(ColumnVector * col,
                           table->MutableColumnByName(rule.column));
    DDGMS_ASSIGN_OR_RETURN(Value fill, ComputeImputeValue(*col, rule));
    if (fill.is_null()) continue;  // nothing to impute from
    for (size_t i = 0; i < col->size(); ++i) {
      if (!col->IsNull(i)) continue;
      DDGMS_RETURN_IF_ERROR(col->SetValue(i, fill));
      ++report.cells_imputed;
      report.imputed_by_column[rule.column]++;
    }
  }
  return report;
}

}  // namespace ddgms::etl
