#include "etl/temporal.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace ddgms::etl {

namespace {

struct Reading {
  Date date;
  double value;
};

// Groups (entity -> date-ordered readings). Value keys order by
// Value::Compare via std::map.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

Result<std::map<Value, std::vector<Reading>, ValueLess>> CollectSeries(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column) {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* entity,
                         table.ColumnByName(entity_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                         table.ColumnByName(date_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* value,
                         table.ColumnByName(value_column));
  if (date->type() != DataType::kDate) {
    return Status::InvalidArgument("column '" + date_column +
                                   "' is not a date column");
  }
  if (!IsNumeric(value->type())) {
    return Status::InvalidArgument("column '" + value_column +
                                   "' is not numeric");
  }
  std::map<Value, std::vector<Reading>, ValueLess> series;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (entity->IsNull(i) || date->IsNull(i) || value->IsNull(i)) continue;
    DDGMS_ASSIGN_OR_RETURN(double v, value->NumericAt(i));
    series[entity->GetValue(i)].push_back(Reading{date->DateAt(i), v});
  }
  for (auto& [ent, readings] : series) {
    std::stable_sort(readings.begin(), readings.end(),
                     [](const Reading& a, const Reading& b) {
                       return a.date < b.date;
                     });
  }
  return series;
}

}  // namespace

Result<std::vector<Episode>> StateAbstraction(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column,
    const DiscretisationScheme& scheme) {
  DDGMS_ASSIGN_OR_RETURN(
      auto series,
      CollectSeries(table, entity_column, date_column, value_column));
  std::vector<Episode> episodes;
  for (const auto& [entity, readings] : series) {
    size_t i = 0;
    while (i < readings.size()) {
      const std::string& band = scheme.LabelFor(readings[i].value);
      Episode ep;
      ep.entity = entity;
      ep.variable = value_column;
      ep.abstraction = band;
      ep.start = readings[i].date;
      ep.end = readings[i].date;
      ep.num_readings = 0;
      double sum = 0.0;
      while (i < readings.size() &&
             scheme.LabelFor(readings[i].value) == band) {
        ep.end = readings[i].date;
        sum += readings[i].value;
        ++ep.num_readings;
        ++i;
      }
      ep.mean_value = sum / static_cast<double>(ep.num_readings);
      episodes.push_back(std::move(ep));
    }
  }
  return episodes;
}

Result<std::vector<Episode>> TrendAbstraction(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column,
    const TemporalOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(
      auto series,
      CollectSeries(table, entity_column, date_column, value_column));
  std::vector<Episode> episodes;
  for (const auto& [entity, readings] : series) {
    if (readings.size() < 2) continue;
    // Classify each consecutive pair, then merge runs of equal labels.
    auto classify = [&](const Reading& a, const Reading& b) {
      double years = b.date.YearsSince(a.date);
      if (years <= 0.0) years = 1.0 / 365.25;  // same-day readings
      double base = std::fabs(a.value) > 1e-9 ? std::fabs(a.value) : 1.0;
      double slope = (b.value - a.value) / base / years;
      if (slope > options.steady_slope_per_year) {
        return options.increasing_label;
      }
      if (slope < -options.steady_slope_per_year) {
        return options.decreasing_label;
      }
      return options.steady_label;
    };
    size_t i = 0;
    while (i + 1 < readings.size()) {
      std::string label = classify(readings[i], readings[i + 1]);
      Episode ep;
      ep.entity = entity;
      ep.variable = value_column;
      ep.abstraction = label;
      ep.start = readings[i].date;
      ep.end = readings[i + 1].date;
      double sum = readings[i].value;
      ep.num_readings = 1;
      while (i + 1 < readings.size() &&
             classify(readings[i], readings[i + 1]) == label) {
        ep.end = readings[i + 1].date;
        sum += readings[i + 1].value;
        ++ep.num_readings;
        ++i;
      }
      ep.mean_value = sum / static_cast<double>(ep.num_readings);
      episodes.push_back(std::move(ep));
    }
  }
  return episodes;
}

Result<Table> EpisodesToTable(const std::vector<Episode>& episodes) {
  DDGMS_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field{"Entity", DataType::kString},
                    Field{"Variable", DataType::kString},
                    Field{"Abstraction", DataType::kString},
                    Field{"Start", DataType::kDate},
                    Field{"End", DataType::kDate},
                    Field{"Readings", DataType::kInt64},
                    Field{"MeanValue", DataType::kDouble}}));
  Table out(std::move(schema));
  for (const Episode& ep : episodes) {
    DDGMS_RETURN_IF_ERROR(out.AppendRow(
        {Value::Str(ep.entity.ToString()), Value::Str(ep.variable),
         Value::Str(ep.abstraction), Value::FromDate(ep.start),
         Value::FromDate(ep.end),
         Value::Int(static_cast<int64_t>(ep.num_readings)),
         Value::Real(ep.mean_value)}));
  }
  return out;
}

std::vector<std::string> FindConflicts(
    const std::vector<Episode>& episodes) {
  std::vector<std::string> conflicts;
  for (size_t i = 0; i < episodes.size(); ++i) {
    for (size_t j = i + 1; j < episodes.size(); ++j) {
      const Episode& a = episodes[i];
      const Episode& b = episodes[j];
      if (!a.entity.Equals(b.entity) || a.variable != b.variable) continue;
      if (a.abstraction == b.abstraction) continue;
      // Strict interior overlap; shared endpoints are legitimate
      // transitions between consecutive episodes.
      bool overlap = a.start < b.end && b.start < a.end;
      if (overlap) {
        conflicts.push_back(StrFormat(
            "entity %s variable %s: '%s' [%s..%s] overlaps '%s' [%s..%s]",
            a.entity.ToString().c_str(), a.variable.c_str(),
            a.abstraction.c_str(), a.start.ToString().c_str(),
            a.end.ToString().c_str(), b.abstraction.c_str(),
            b.start.ToString().c_str(), b.end.ToString().c_str()));
      }
    }
  }
  return conflicts;
}

}  // namespace ddgms::etl
