#include "etl/cardinality.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace ddgms::etl {

Result<CardinalityReport> AssignCardinality(
    Table* table, const std::string& entity_column,
    const std::string& date_column, const CardinalityOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* entity,
                         table->ColumnByName(entity_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                         table->ColumnByName(date_column));
  if (date->type() != DataType::kDate) {
    return Status::InvalidArgument("column '" + date_column +
                                   "' is not a date column");
  }

  CardinalityReport report;

  // entity -> list of (date days or sentinel, original row).
  struct VisitRef {
    int64_t date_key;  // days since epoch, or INT64_MAX when date null
    size_t row;
  };
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  std::map<Value, std::vector<VisitRef>, ValueLess> by_entity;
  const size_t n = table->num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (entity->IsNull(i)) continue;
    int64_t key;
    if (date->IsNull(i)) {
      key = INT64_MAX;
      ++report.rows_missing_date;
    } else {
      key = date->DateAt(i).days_since_epoch();
    }
    by_entity[entity->GetValue(i)].push_back(VisitRef{key, i});
  }
  report.num_entities = by_entity.size();

  std::vector<int64_t> visit_number(n, -1);
  std::vector<int64_t> visit_count(n, -1);
  for (auto& [ent, visits] : by_entity) {
    std::stable_sort(visits.begin(), visits.end(),
                     [](const VisitRef& a, const VisitRef& b) {
                       return a.date_key < b.date_key;
                     });
    std::set<int64_t> seen_dates;
    for (size_t k = 0; k < visits.size(); ++k) {
      visit_number[visits[k].row] = static_cast<int64_t>(k + 1);
      visit_count[visits[k].row] = static_cast<int64_t>(visits.size());
      if (visits[k].date_key != INT64_MAX &&
          !seen_dates.insert(visits[k].date_key).second) {
        ++report.duplicate_visits;
      }
    }
    report.max_visits = std::max(report.max_visits, visits.size());
  }

  ColumnVector number_col(options.visit_number_column, DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    if (visit_number[i] < 0) {
      number_col.AppendNull();
    } else {
      number_col.AppendInt(visit_number[i]);
    }
  }
  DDGMS_RETURN_IF_ERROR(table->AddColumn(std::move(number_col)));

  if (!options.visit_count_column.empty()) {
    ColumnVector count_col(options.visit_count_column, DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      if (visit_count[i] < 0) {
        count_col.AppendNull();
      } else {
        count_col.AppendInt(visit_count[i]);
      }
    }
    DDGMS_RETURN_IF_ERROR(table->AddColumn(std::move(count_col)));
  }
  return report;
}

}  // namespace ddgms::etl
