#ifndef DDGMS_ETL_CARDINALITY_H_
#define DDGMS_ETL_CARDINALITY_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::etl {

/// Cardinality assignment (paper §IV.3): patients attend the screening
/// clinic repeatedly, so each attendance record needs a per-patient visit
/// ordinal. The warehouse later promotes this ordinal into a dedicated
/// Cardinality dimension — "while the fact table would distinguish
/// between records, the cardinality dimension was necessary to
/// distinguish between patients".
struct CardinalityOptions {
  /// Output column for the 1-based visit ordinal per entity.
  std::string visit_number_column = "VisitNumber";
  /// Output column for the entity's total visit count (same value on all
  /// of its rows). Empty string disables.
  std::string visit_count_column = "VisitCount";
};

struct CardinalityReport {
  size_t num_entities = 0;
  size_t max_visits = 0;
  /// Rows whose entity id or date was null (ordinal assigned by original
  /// row order at the end of the entity's sequence).
  size_t rows_missing_date = 0;
  /// Entity/date pairs occurring more than once (duplicate same-day
  /// attendances; kept, numbered in row order).
  size_t duplicate_visits = 0;
};

/// Adds visit-ordinal (and optionally visit-count) columns to `table`,
/// ordering each entity's rows by `date_column`. Rows with null entity
/// ids are left null.
Result<CardinalityReport> AssignCardinality(
    Table* table, const std::string& entity_column,
    const std::string& date_column, const CardinalityOptions& options = {});

}  // namespace ddgms::etl

#endif  // DDGMS_ETL_CARDINALITY_H_
