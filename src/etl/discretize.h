#ifndef DDGMS_ETL_DISCRETIZE_H_
#define DDGMS_ETL_DISCRETIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::etl {

/// A discretisation scheme maps a continuous clinical measure to ordered
/// named bands. Bin i covers [cut[i-1], cut[i]) — the first bin is
/// (-inf, cut[0]) and the last [cut[n-1], +inf) — matching the paper's
/// Table I conventions (e.g. FBG >= 7 is "Diabetic").
class DiscretisationScheme {
 public:
  DiscretisationScheme() = default;

  /// Builds a scheme from strictly increasing interior cut points and
  /// exactly cuts.size()+1 band labels.
  static Result<DiscretisationScheme> Make(std::string name,
                                           std::vector<double> cuts,
                                           std::vector<std::string> labels);

  /// Builds a scheme with generated labels "<c0", "c0-c1", ..., ">=cN".
  static Result<DiscretisationScheme> MakeAutoLabeled(
      std::string name, std::vector<double> cuts);

  const std::string& name() const { return name_; }
  const std::vector<double>& cuts() const { return cuts_; }
  const std::vector<std::string>& labels() const { return labels_; }
  size_t num_bins() const { return labels_.size(); }

  /// Band index for a value (0-based, always valid).
  size_t BinIndex(double value) const;

  /// Band label for a value.
  const std::string& LabelFor(double value) const {
    return labels_[BinIndex(value)];
  }

  /// "name: <c0 'l0' | [c0,c1) 'l1' | ... | >=cN 'lN'".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<double> cuts_;
  std::vector<std::string> labels_;
};

/// Supervised/unsupervised algorithms for deriving cut points when no
/// clinical scheme is available (paper §IV.1 and ref [17]).
struct DiscretizeOptions {
  /// Number of bins for equal-width / equal-frequency.
  size_t num_bins = 4;
  /// Maximum bins for ChiMerge.
  size_t max_bins = 6;
  /// Chi-square merge threshold (95th percentile, 1 dof, for 2 classes).
  double chi_threshold = 3.841;
  /// Recursion depth cap for entropy-MDL.
  size_t max_depth = 16;
};

/// Unsupervised: k equal-width intervals over [min, max].
Result<DiscretisationScheme> EqualWidthScheme(const std::string& name,
                                              const std::vector<double>& data,
                                              size_t num_bins);

/// Unsupervised: k intervals with (approximately) equal populations.
Result<DiscretisationScheme> EqualFrequencyScheme(
    const std::string& name, const std::vector<double>& data,
    size_t num_bins);

/// Supervised top-down: Fayyad-Irani entropy minimisation with the MDL
/// stopping criterion. `labels[i]` is the class of `data[i]`.
Result<DiscretisationScheme> EntropyMdlScheme(
    const std::string& name, const std::vector<double>& data,
    const std::vector<std::string>& labels,
    const DiscretizeOptions& options = {});

/// Supervised bottom-up: ChiMerge (Kerber 1992). Merges adjacent intervals
/// whose class distributions are indistinguishable by chi-square until the
/// threshold or max_bins is reached.
Result<DiscretisationScheme> ChiMergeScheme(
    const std::string& name, const std::vector<double>& data,
    const std::vector<std::string>& labels,
    const DiscretizeOptions& options = {});

/// Applies a scheme to a numeric column, appending a string band column
/// named `output_column` (nulls propagate). The source column is kept —
/// the paper duplicates attributes, retaining the continuous original.
Status ApplyScheme(Table* table, const std::string& source_column,
                   const DiscretisationScheme& scheme,
                   const std::string& output_column);

/// Quality metrics used by the discretisation ablation (bench A2).
///
/// Information quality: entropy of the class label conditioned on the
/// band (lower = bands more predictive). Statistical quality: number of
/// bins and minimum band population share (higher = more robust).
struct DiscretisationQuality {
  double conditional_entropy = 0.0;  // H(class | band), bits
  double class_entropy = 0.0;        // H(class), bits
  double information_gain = 0.0;     // H(class) - H(class | band)
  size_t num_bins = 0;
  double min_bin_fraction = 0.0;     // population share of smallest band
};

/// Evaluates a scheme against labeled data.
Result<DiscretisationQuality> EvaluateScheme(
    const DiscretisationScheme& scheme, const std::vector<double>& data,
    const std::vector<std::string>& labels);

}  // namespace ddgms::etl

#endif  // DDGMS_ETL_DISCRETIZE_H_
