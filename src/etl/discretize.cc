#include "etl/discretize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "common/strings.h"

namespace ddgms::etl {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

// Entropy (bits) of a class-count histogram.
double Entropy(const std::unordered_map<std::string, size_t>& counts,
               size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [cls, n] : counts) {
    if (n == 0) continue;
    double p = static_cast<double>(n) / static_cast<double>(total);
    h -= p * Log2(p);
  }
  return h;
}

struct LabeledPoint {
  double value;
  size_t cls;
};

// Sorted points + class id mapping shared by the supervised algorithms.
struct SupervisedInput {
  std::vector<LabeledPoint> points;  // sorted by value
  std::vector<std::string> class_names;
};

Result<SupervisedInput> PrepareSupervised(
    const std::vector<double>& data,
    const std::vector<std::string>& labels) {
  if (data.size() != labels.size()) {
    return Status::InvalidArgument(
        StrFormat("data size %zu != labels size %zu", data.size(),
                  labels.size()));
  }
  if (data.empty()) {
    return Status::InvalidArgument("no data to discretise");
  }
  SupervisedInput input;
  std::unordered_map<std::string, size_t> class_ids;
  input.points.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    auto [it, inserted] =
        class_ids.emplace(labels[i], input.class_names.size());
    if (inserted) input.class_names.push_back(labels[i]);
    input.points.push_back(LabeledPoint{data[i], it->second});
  }
  std::sort(input.points.begin(), input.points.end(),
            [](const LabeledPoint& a, const LabeledPoint& b) {
              return a.value < b.value;
            });
  return input;
}

// Entropy of points[lo, hi) over num_classes classes.
double RangeEntropy(const std::vector<LabeledPoint>& pts, size_t lo,
                    size_t hi, size_t num_classes,
                    std::vector<size_t>* counts_out = nullptr) {
  std::vector<size_t> counts(num_classes, 0);
  for (size_t i = lo; i < hi; ++i) counts[pts[i].cls]++;
  double h = 0.0;
  size_t total = hi - lo;
  size_t nonzero = 0;
  for (size_t n : counts) {
    if (n == 0) continue;
    ++nonzero;
    double p = static_cast<double>(n) / static_cast<double>(total);
    h -= p * Log2(p);
  }
  (void)nonzero;
  if (counts_out != nullptr) *counts_out = std::move(counts);
  return h;
}

size_t DistinctClasses(const std::vector<LabeledPoint>& pts, size_t lo,
                       size_t hi) {
  std::set<size_t> seen;
  for (size_t i = lo; i < hi; ++i) seen.insert(pts[i].cls);
  return seen.size();
}

// Fayyad-Irani recursive partitioning with MDL acceptance.
void FayyadIrani(const std::vector<LabeledPoint>& pts, size_t lo, size_t hi,
                 size_t num_classes, size_t depth, size_t max_depth,
                 std::set<double>* cuts) {
  const size_t n = hi - lo;
  if (n < 4 || depth >= max_depth) return;

  double parent_entropy = RangeEntropy(pts, lo, hi, num_classes);
  if (parent_entropy == 0.0) return;

  // Candidate boundaries: midpoints between adjacent distinct values.
  double best_gain = -1.0;
  size_t best_split = 0;   // index of the first point of the right part
  double best_cut = 0.0;
  double best_left_h = 0.0;
  double best_right_h = 0.0;

  // Incremental class counts for the left side.
  std::vector<size_t> left_counts(num_classes, 0);
  std::vector<size_t> total_counts(num_classes, 0);
  for (size_t i = lo; i < hi; ++i) total_counts[pts[i].cls]++;

  for (size_t i = lo; i + 1 < hi; ++i) {
    left_counts[pts[i].cls]++;
    if (pts[i + 1].value == pts[i].value) continue;  // not a boundary
    size_t left_n = i - lo + 1;
    size_t right_n = n - left_n;
    double left_h = 0.0;
    double right_h = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      size_t ln = left_counts[c];
      size_t rn = total_counts[c] - ln;
      if (ln > 0) {
        double p = static_cast<double>(ln) / static_cast<double>(left_n);
        left_h -= p * Log2(p);
      }
      if (rn > 0) {
        double p = static_cast<double>(rn) / static_cast<double>(right_n);
        right_h -= p * Log2(p);
      }
    }
    double weighted =
        (static_cast<double>(left_n) * left_h +
         static_cast<double>(right_n) * right_h) /
        static_cast<double>(n);
    double gain = parent_entropy - weighted;
    if (gain > best_gain) {
      best_gain = gain;
      best_split = i + 1;
      best_cut = (pts[i].value + pts[i + 1].value) / 2.0;
      best_left_h = left_h;
      best_right_h = right_h;
    }
  }
  if (best_gain <= 0.0) return;

  // MDL stopping criterion (Fayyad & Irani 1993).
  double k = static_cast<double>(DistinctClasses(pts, lo, hi));
  double k1 = static_cast<double>(DistinctClasses(pts, lo, best_split));
  double k2 = static_cast<double>(DistinctClasses(pts, best_split, hi));
  double delta = Log2(std::pow(3.0, k) - 2.0) -
                 (k * parent_entropy - k1 * best_left_h - k2 * best_right_h);
  double threshold =
      (Log2(static_cast<double>(n) - 1.0) + delta) / static_cast<double>(n);
  if (best_gain <= threshold) return;

  cuts->insert(best_cut);
  FayyadIrani(pts, lo, best_split, num_classes, depth + 1, max_depth, cuts);
  FayyadIrani(pts, best_split, hi, num_classes, depth + 1, max_depth, cuts);
}

}  // namespace

Result<DiscretisationScheme> DiscretisationScheme::Make(
    std::string name, std::vector<double> cuts,
    std::vector<std::string> labels) {
  for (size_t i = 1; i < cuts.size(); ++i) {
    if (!(cuts[i - 1] < cuts[i])) {
      return Status::InvalidArgument(
          "cut points must be strictly increasing in scheme '" + name +
          "'");
    }
  }
  if (labels.size() != cuts.size() + 1) {
    return Status::InvalidArgument(
        StrFormat("scheme '%s' needs %zu labels for %zu cuts; got %zu",
                  name.c_str(), cuts.size() + 1, cuts.size(),
                  labels.size()));
  }
  DiscretisationScheme scheme;
  scheme.name_ = std::move(name);
  scheme.cuts_ = std::move(cuts);
  scheme.labels_ = std::move(labels);
  return scheme;
}

Result<DiscretisationScheme> DiscretisationScheme::MakeAutoLabeled(
    std::string name, std::vector<double> cuts) {
  std::vector<std::string> labels;
  if (cuts.empty()) {
    labels.push_back("all");
  } else {
    labels.push_back("<" + FormatDouble(cuts.front(), 4));
    for (size_t i = 1; i < cuts.size(); ++i) {
      labels.push_back(FormatDouble(cuts[i - 1], 4) + "-" +
                       FormatDouble(cuts[i], 4));
    }
    labels.push_back(">=" + FormatDouble(cuts.back(), 4));
  }
  return Make(std::move(name), std::move(cuts), std::move(labels));
}

size_t DiscretisationScheme::BinIndex(double value) const {
  // First cut point strictly greater than value gives the band.
  size_t lo = 0;
  size_t hi = cuts_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (value < cuts_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::string DiscretisationScheme::ToString() const {
  std::string out = name_ + ": ";
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += " | ";
    if (cuts_.empty()) {
      out += "(-inf,+inf)";
    } else if (i == 0) {
      out += "<" + FormatDouble(cuts_[0], 4);
    } else if (i == labels_.size() - 1) {
      out += ">=" + FormatDouble(cuts_[i - 1], 4);
    } else {
      out += "[" + FormatDouble(cuts_[i - 1], 4) + "," +
             FormatDouble(cuts_[i], 4) + ")";
    }
    out += " '" + labels_[i] + "'";
  }
  return out;
}

Result<DiscretisationScheme> EqualWidthScheme(
    const std::string& name, const std::vector<double>& data,
    size_t num_bins) {
  if (data.empty()) {
    return Status::InvalidArgument("no data to discretise");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("need at least 2 bins");
  }
  auto [min_it, max_it] = std::minmax_element(data.begin(), data.end());
  double lo = *min_it;
  double hi = *max_it;
  if (lo == hi) {
    return Status::InvalidArgument("constant column cannot be binned");
  }
  std::vector<double> cuts;
  cuts.reserve(num_bins - 1);
  double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t i = 1; i < num_bins; ++i) {
    cuts.push_back(lo + width * static_cast<double>(i));
  }
  return DiscretisationScheme::MakeAutoLabeled(name, std::move(cuts));
}

Result<DiscretisationScheme> EqualFrequencyScheme(
    const std::string& name, const std::vector<double>& data,
    size_t num_bins) {
  if (data.empty()) {
    return Status::InvalidArgument("no data to discretise");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("need at least 2 bins");
  }
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  for (size_t i = 1; i < num_bins; ++i) {
    size_t idx = i * sorted.size() / num_bins;
    double cut = sorted[idx];
    // A cut at (or below) the minimum would leave an empty first bin.
    if (cut <= sorted.front()) continue;
    if (cuts.empty() || cut > cuts.back()) {
      cuts.push_back(cut);
    }
  }
  if (cuts.empty()) {
    return Status::InvalidArgument(
        "data too concentrated for equal-frequency binning");
  }
  return DiscretisationScheme::MakeAutoLabeled(name, std::move(cuts));
}

Result<DiscretisationScheme> EntropyMdlScheme(
    const std::string& name, const std::vector<double>& data,
    const std::vector<std::string>& labels,
    const DiscretizeOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(SupervisedInput input,
                         PrepareSupervised(data, labels));
  std::set<double> cuts;
  FayyadIrani(input.points, 0, input.points.size(),
              input.class_names.size(), 0, options.max_depth, &cuts);
  return DiscretisationScheme::MakeAutoLabeled(
      name, std::vector<double>(cuts.begin(), cuts.end()));
}

Result<DiscretisationScheme> ChiMergeScheme(
    const std::string& name, const std::vector<double>& data,
    const std::vector<std::string>& labels,
    const DiscretizeOptions& options) {
  DDGMS_ASSIGN_OR_RETURN(SupervisedInput input,
                         PrepareSupervised(data, labels));
  const size_t num_classes = input.class_names.size();

  // Initial intervals: one per distinct value, with class histograms.
  struct Interval {
    double lo;  // lowest value in the interval
    std::vector<size_t> counts;
  };
  std::vector<Interval> intervals;
  for (const LabeledPoint& p : input.points) {
    if (intervals.empty() || p.value != intervals.back().lo) {
      // New distinct value: check it differs from last interval's lo.
      if (intervals.empty() || p.value > intervals.back().lo) {
        intervals.push_back(
            Interval{p.value, std::vector<size_t>(num_classes, 0)});
      }
    }
    intervals.back().counts[p.cls]++;
  }
  if (intervals.size() < 2) {
    return Status::InvalidArgument("constant column cannot be binned");
  }

  auto chi_square = [&](const Interval& a, const Interval& b) {
    double total_a = 0.0, total_b = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      total_a += static_cast<double>(a.counts[c]);
      total_b += static_cast<double>(b.counts[c]);
    }
    double total = total_a + total_b;
    double chi = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      double col = static_cast<double>(a.counts[c] + b.counts[c]);
      if (col == 0.0) continue;
      double ea = total_a * col / total;
      double eb = total_b * col / total;
      double da = static_cast<double>(a.counts[c]) - ea;
      double db = static_cast<double>(b.counts[c]) - eb;
      if (ea > 0.0) chi += da * da / ea;
      if (eb > 0.0) chi += db * db / eb;
    }
    return chi;
  };

  // Iteratively merge the adjacent pair with the lowest chi-square while
  // below threshold, or while over the bin budget.
  while (intervals.size() > 1) {
    double best_chi = 1e300;
    size_t best_i = 0;
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
      double chi = chi_square(intervals[i], intervals[i + 1]);
      if (chi < best_chi) {
        best_chi = chi;
        best_i = i;
      }
    }
    bool over_budget = intervals.size() > options.max_bins;
    if (best_chi >= options.chi_threshold && !over_budget) break;
    for (size_t c = 0; c < num_classes; ++c) {
      intervals[best_i].counts[c] += intervals[best_i + 1].counts[c];
    }
    intervals.erase(intervals.begin() + static_cast<ptrdiff_t>(best_i) + 1);
  }

  std::vector<double> cuts;
  cuts.reserve(intervals.size() - 1);
  for (size_t i = 1; i < intervals.size(); ++i) {
    cuts.push_back(intervals[i].lo);
  }
  return DiscretisationScheme::MakeAutoLabeled(name, std::move(cuts));
}

Status ApplyScheme(Table* table, const std::string& source_column,
                   const DiscretisationScheme& scheme,
                   const std::string& output_column) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* src,
                         table->ColumnByName(source_column));
  if (!IsNumeric(src->type()) && src->type() != DataType::kBool) {
    return Status::InvalidArgument(
        StrFormat("column '%s' of type %s cannot be discretised",
                  source_column.c_str(), DataTypeName(src->type())));
  }
  ColumnVector out(output_column, DataType::kString);
  const size_t n = src->size();
  for (size_t i = 0; i < n; ++i) {
    if (src->IsNull(i)) {
      out.AppendNull();
      continue;
    }
    DDGMS_ASSIGN_OR_RETURN(double v, src->NumericAt(i));
    out.AppendString(scheme.LabelFor(v));
  }
  return table->AddColumn(std::move(out));
}

Result<DiscretisationQuality> EvaluateScheme(
    const DiscretisationScheme& scheme, const std::vector<double>& data,
    const std::vector<std::string>& labels) {
  if (data.size() != labels.size() || data.empty()) {
    return Status::InvalidArgument("data/labels size mismatch or empty");
  }
  // Per-band class histograms.
  std::vector<std::unordered_map<std::string, size_t>> band_counts(
      scheme.num_bins());
  std::vector<size_t> band_totals(scheme.num_bins(), 0);
  std::unordered_map<std::string, size_t> class_counts;
  for (size_t i = 0; i < data.size(); ++i) {
    size_t b = scheme.BinIndex(data[i]);
    band_counts[b][labels[i]]++;
    band_totals[b]++;
    class_counts[labels[i]]++;
  }
  DiscretisationQuality q;
  q.num_bins = scheme.num_bins();
  q.class_entropy = Entropy(class_counts, data.size());
  double cond = 0.0;
  size_t min_pop = data.size();
  for (size_t b = 0; b < scheme.num_bins(); ++b) {
    if (band_totals[b] == 0) {
      min_pop = 0;
      continue;
    }
    double w = static_cast<double>(band_totals[b]) /
               static_cast<double>(data.size());
    cond += w * Entropy(band_counts[b], band_totals[b]);
    min_pop = std::min(min_pop, band_totals[b]);
  }
  q.conditional_entropy = cond;
  q.information_gain = q.class_entropy - cond;
  q.min_bin_fraction = static_cast<double>(min_pop) /
                       static_cast<double>(data.size());
  return q;
}

}  // namespace ddgms::etl
