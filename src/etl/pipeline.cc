#include "etl/pipeline.h"

#include "common/strings.h"

namespace ddgms::etl {

std::string TransformReport::ToString() const {
  std::string out =
      StrFormat("transform: %zu -> %zu rows\n", input_rows, output_rows);
  out += cleaning.ToString();
  out += StrFormat("\ncardinality: %zu entities, max %zu visits",
                   cardinality.num_entities, cardinality.max_visits);
  if (!discretised_columns.empty()) {
    out += "\ndiscretised:";
    for (const std::string& c : discretised_columns) {
      out += " " + c;
    }
  }
  return out;
}

Result<TransformReport> TransformPipeline::Run(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  TransformReport report;
  report.input_rows = table->num_rows();

  if (has_cleaner_) {
    DDGMS_ASSIGN_OR_RETURN(report.cleaning, cleaner_.Run(table));
  }
  for (const DiscretisationStep& step : discretisations_) {
    DDGMS_RETURN_IF_ERROR(ApplyScheme(table, step.source_column,
                                      step.scheme,
                                      step.EffectiveOutput()));
    report.discretised_columns.push_back(step.EffectiveOutput());
  }
  if (has_cardinality_) {
    DDGMS_ASSIGN_OR_RETURN(
        report.cardinality,
        AssignCardinality(table, entity_column_, date_column_,
                          cardinality_options_));
  }
  for (const auto& step : custom_steps_) {
    DDGMS_RETURN_IF_ERROR(step(table));
  }
  report.output_rows = table->num_rows();
  return report;
}

std::function<Status(Table*)> DeriveYearStep(std::string date_column,
                                             std::string output_column) {
  return [date_column = std::move(date_column),
          output_column = std::move(output_column)](Table* table) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                           table->ColumnByName(date_column));
    if (date->type() != DataType::kDate) {
      return Status::InvalidArgument("column '" + date_column +
                                     "' is not a date column");
    }
    ColumnVector year(output_column, DataType::kInt64);
    for (size_t i = 0; i < date->size(); ++i) {
      if (date->IsNull(i)) {
        year.AppendNull();
      } else {
        year.AppendInt(date->DateAt(i).year());
      }
    }
    return table->AddColumn(std::move(year));
  };
}

}  // namespace ddgms::etl
