#include "etl/pipeline.h"

#include "common/csv.h"
#include "common/faults.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ddgms::etl {

std::string TransformReport::ToString() const {
  std::string out =
      StrFormat("transform: %zu -> %zu rows\n", input_rows, output_rows);
  out += cleaning.ToString();
  out += StrFormat("\ncardinality: %zu entities, max %zu visits",
                   cardinality.num_entities, cardinality.max_visits);
  if (!discretised_columns.empty()) {
    out += "\ndiscretised:";
    for (const std::string& c : discretised_columns) {
      out += " " + c;
    }
  }
  if (!quarantine.empty()) {
    out += "\n";
    out += quarantine.ToString();
  }
  return out;
}

namespace {

// Runs one named step with lenient row-level recovery: try the whole
// table; on failure probe each row in isolation, quarantine the rows
// that fail on their own, and re-run the step over the survivors. A
// failure no single row explains (missing column, bad configuration)
// is returned as a step-level error.
Status RunStepLenient(const std::string& step_name,
                      const std::function<Status(Table*)>& step,
                      Table* table, QuarantineReport* quarantine) {
  Table attempt = *table;
  Status st = step(&attempt);
  if (st.ok()) {
    *table = std::move(attempt);
    return Status::OK();
  }

  const size_t n = table->num_rows();
  std::vector<size_t> good;
  good.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Table probe = table->Take({i});
    Status row_status = step(&probe);
    if (row_status.ok()) {
      good.push_back(i);
      continue;
    }
    std::vector<std::string> cells;
    for (const Value& v : table->GetRow(i)) {
      cells.push_back(v.ToString());
    }
    quarantine->Add("etl:" + step_name, i + 1, /*field=*/"",
                    std::move(row_status),
                    TruncateForQuarantine(FormatCsvLine(cells)));
  }
  if (good.size() == n) {
    // No individual row reproduces the failure: step-level error.
    return st;
  }
  Table pruned = table->Take(good);
  Status retry_status = step(&pruned);
  if (!retry_status.ok()) {
    // Quarantining did not clear the failure; surface the original.
    return st;
  }
  *table = std::move(pruned);
  return Status::OK();
}

}  // namespace

Result<TransformReport> TransformPipeline::Run(
    Table* table, const PipelineRunOptions& options) const {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  TransformReport report;
  report.input_rows = table->num_rows();

  // The stages, in order, as uniformly typed named steps so strict and
  // lenient execution share one driver. Report-producing stages write
  // into `report` on every invocation; the last invocation of a step
  // (the one whose table mutation is committed) wins.
  struct NamedStep {
    std::string name;
    std::function<Status(Table*)> fn;
  };
  std::vector<NamedStep> steps;
  if (has_cleaner_) {
    steps.push_back(NamedStep{"clean", [this, &report](Table* t) {
                                DDGMS_ASSIGN_OR_RETURN(report.cleaning,
                                                       cleaner_.Run(t));
                                return Status::OK();
                              }});
  }
  for (const DiscretisationStep& step : discretisations_) {
    steps.push_back(
        NamedStep{"discretise " + step.source_column, [&step](Table* t) {
                    return ApplyScheme(t, step.source_column, step.scheme,
                                      step.EffectiveOutput());
                  }});
  }
  if (has_cardinality_) {
    steps.push_back(
        NamedStep{"cardinality", [this, &report](Table* t) {
                    DDGMS_ASSIGN_OR_RETURN(
                        report.cardinality,
                        AssignCardinality(t, entity_column_, date_column_,
                                          cardinality_options_));
                    return Status::OK();
                  }});
  }
  for (size_t i = 0; i < custom_steps_.size(); ++i) {
    steps.push_back(NamedStep{StrFormat("custom %zu", i + 1),
                              [this, i](Table* t) {
                                return custom_steps_[i](t);
                              }});
  }

  TraceSpan run_span("etl.pipeline.run");
  run_span.SetAttribute("steps", steps.size());
  run_span.SetAttribute("rows_in", report.input_rows);
  ScopedLatencyTimer run_timer("ddgms.etl.run_latency_us");
  ScopedAccounting accounting("etl");

  const bool lenient = options.error_mode == ErrorMode::kLenient;
  for (const NamedStep& step : steps) {
    DDGMS_FAULT_POINT("etl.pipeline.step");
    TraceSpan step_span("etl.step");
    step_span.SetAttribute("step", step.name);
    step_span.SetAttribute("rows_in", table->num_rows());
    ScopedLatencyTimer step_timer("ddgms.etl.step_latency_us");
    const size_t quarantined_before = report.quarantine.size();
    if (lenient) {
      DDGMS_RETURN_IF_ERROR(RunStepLenient(step.name, step.fn, table,
                                           &report.quarantine));
    } else {
      DDGMS_RETURN_IF_ERROR(step.fn(table));
    }
    step_span.SetAttribute("rows_out", table->num_rows());
    const size_t quarantined =
        report.quarantine.size() - quarantined_before;
    if (quarantined > 0) {
      step_span.SetAttribute("quarantined", quarantined);
      DDGMS_LOG_WARN("etl.step.quarantine")
          .With("step", step.name)
          .With("quarantined", quarantined)
          .With("rows_out", table->num_rows());
    }
    DDGMS_METRIC_INC("ddgms.etl.steps_run");
  }
  for (const DiscretisationStep& step : discretisations_) {
    report.discretised_columns.push_back(step.EffectiveOutput());
  }
  report.output_rows = table->num_rows();

  run_span.SetAttribute("rows_out", report.output_rows);
  DDGMS_LOG_INFO("etl.run")
      .With("steps", steps.size())
      .With("rows_in", report.input_rows)
      .With("rows_out", report.output_rows)
      .With("quarantined", report.quarantine.size());
  DDGMS_METRIC_INC("ddgms.etl.runs");
  DDGMS_METRIC_ADD("ddgms.etl.rows_in", report.input_rows);
  DDGMS_METRIC_ADD("ddgms.etl.rows_out", report.output_rows);
  return report;
}

std::function<Status(Table*)> DeriveYearStep(std::string date_column,
                                             std::string output_column) {
  return [date_column = std::move(date_column),
          output_column = std::move(output_column)](Table* table) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                           table->ColumnByName(date_column));
    if (date->type() != DataType::kDate) {
      return Status::InvalidArgument("column '" + date_column +
                                     "' is not a date column");
    }
    ColumnVector year(output_column, DataType::kInt64);
    for (size_t i = 0; i < date->size(); ++i) {
      if (date->IsNull(i)) {
        year.AppendNull();
      } else {
        year.AppendInt(date->DateAt(i).year());
      }
    }
    return table->AddColumn(std::move(year));
  };
}

}  // namespace ddgms::etl
