#ifndef DDGMS_ETL_CLEANER_H_
#define DDGMS_ETL_CLEANER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::etl {

/// What to do with a cell that violates a plausibility rule.
enum class ErrorAction {
  kSetNull,   // blank the cell (default: treat as missing)
  kClamp,     // clamp into [min, max]
  kDropRow,   // remove the whole record
};

/// Plausible-range rule for one numeric column (e.g. systolic BP must lie
/// in [50, 300]); values outside are erroneous, per the paper's
/// "replacement of missing values, erroneous values and records".
struct RangeRule {
  std::string column;
  double min_value = 0.0;
  double max_value = 0.0;
  ErrorAction action = ErrorAction::kSetNull;
};

/// How to fill remaining nulls in a column.
enum class ImputeMethod {
  kNone,      // leave nulls in place
  kMean,      // numeric columns
  kMedian,    // numeric columns
  kMode,      // any type (most frequent non-null value)
  kConstant,  // a caller-provided value
};

struct ImputeRule {
  std::string column;
  ImputeMethod method = ImputeMethod::kNone;
  Value constant;  // used by kConstant
};

/// Per-run accounting of what the cleaner changed.
struct CleaningReport {
  size_t cells_nulled = 0;
  size_t cells_clamped = 0;
  size_t rows_dropped = 0;
  size_t duplicates_dropped = 0;
  size_t cells_imputed = 0;
  /// Per-column breakdown of erroneous cells found.
  std::map<std::string, size_t> errors_by_column;
  /// Per-column breakdown of imputed cells.
  std::map<std::string, size_t> imputed_by_column;

  std::string ToString() const;
};

/// Applies plausibility rules then imputation to a table, in place.
/// Rules referencing unknown or non-numeric columns fail fast.
class Cleaner {
 public:
  Cleaner() = default;

  Cleaner& AddRangeRule(RangeRule rule) {
    range_rules_.push_back(std::move(rule));
    return *this;
  }

  Cleaner& AddImputeRule(ImputeRule rule) {
    impute_rules_.push_back(std::move(rule));
    return *this;
  }

  /// Enables duplicate-record removal: rows whose values in
  /// `key_columns` repeat an earlier row are dropped (first wins).
  /// Runs before range rules. Rows with a null in any key column are
  /// never treated as duplicates.
  Cleaner& set_dedupe_keys(std::vector<std::string> key_columns) {
    dedupe_keys_ = std::move(key_columns);
    return *this;
  }

  /// Runs all rules. On success returns the report; the table has been
  /// modified. On failure the table may be partially cleaned.
  Result<CleaningReport> Run(Table* table) const;

 private:
  std::vector<RangeRule> range_rules_;
  std::vector<ImputeRule> impute_rules_;
  std::vector<std::string> dedupe_keys_;
};

}  // namespace ddgms::etl

#endif  // DDGMS_ETL_CLEANER_H_
