#ifndef DDGMS_ETL_PIPELINE_H_
#define DDGMS_ETL_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/result.h"
#include "etl/cardinality.h"
#include "etl/cleaner.h"
#include "etl/discretize.h"
#include "table/table.h"

namespace ddgms::etl {

/// One discretisation to perform during transformation: source column,
/// scheme, and output band column name (defaults to "<source>Band").
struct DiscretisationStep {
  std::string source_column;
  DiscretisationScheme scheme;
  std::string output_column;

  std::string EffectiveOutput() const {
    return output_column.empty() ? source_column + "Band" : output_column;
  }
};

/// Aggregated accounting for a pipeline run.
struct TransformReport {
  CleaningReport cleaning;
  CardinalityReport cardinality;
  std::vector<std::string> discretised_columns;
  size_t input_rows = 0;
  size_t output_rows = 0;
  /// Rows set aside by lenient runs — merged across ingestion
  /// ("csv-parse"/"csv-ingest"), pipeline steps ("etl:<step>") and the
  /// warehouse build ("star-schema"). Empty after strict runs.
  QuarantineReport quarantine;

  std::string ToString() const;
};

/// How a pipeline run reacts to failing rows (see ErrorMode).
struct PipelineRunOptions {
  ErrorMode error_mode = ErrorMode::kStrict;
};

/// The paper's Data Transformation stage as a declarative pipeline:
/// cleaning rules, clinical/algorithmic discretisation steps, and
/// cardinality assignment, run in that order against a raw extract.
/// The transformed table feeds warehouse::StarSchemaBuilder.
class TransformPipeline {
 public:
  TransformPipeline() = default;

  TransformPipeline& set_cleaner(Cleaner cleaner) {
    cleaner_ = std::move(cleaner);
    has_cleaner_ = true;
    return *this;
  }

  TransformPipeline& AddDiscretisation(DiscretisationStep step) {
    discretisations_.push_back(std::move(step));
    return *this;
  }

  /// Enables cardinality assignment keyed on entity/date columns.
  TransformPipeline& set_cardinality(std::string entity_column,
                                     std::string date_column,
                                     CardinalityOptions options = {}) {
    entity_column_ = std::move(entity_column);
    date_column_ = std::move(date_column);
    cardinality_options_ = std::move(options);
    has_cardinality_ = true;
    return *this;
  }

  /// Appends an arbitrary transformation step (derived columns, ad-hoc
  /// fixes). Custom steps run after cleaning/discretisation/cardinality.
  TransformPipeline& AddCustomStep(
      std::function<Status(Table*)> step) {
    custom_steps_.push_back(std::move(step));
    return *this;
  }

  /// Runs the pipeline in place, returning the report. Strict: the
  /// first failing step aborts the run (historical behaviour).
  Result<TransformReport> Run(Table* table) const { return Run(table, {}); }

  /// Runs the pipeline with explicit robustness semantics. In lenient
  /// mode a failing step triggers row-level recovery: each row is
  /// probed against the step in isolation, rows that fail on their own
  /// are quarantined (stage "etl:<step>", 1-based row number within
  /// that step's input), and the step is re-run over the survivors.
  /// Failures not attributable to individual rows (e.g. a missing
  /// column) still fail the run in either mode.
  Result<TransformReport> Run(Table* table,
                              const PipelineRunOptions& options) const;

 private:
  Cleaner cleaner_;
  bool has_cleaner_ = false;
  std::vector<DiscretisationStep> discretisations_;
  std::string entity_column_;
  std::string date_column_;
  CardinalityOptions cardinality_options_;
  bool has_cardinality_ = false;
  std::vector<std::function<Status(Table*)>> custom_steps_;
};

/// Ready-made custom step: derives an int64 calendar-year column from a
/// date column (supports time-axis OLAP, e.g. attendances per year).
std::function<Status(Table*)> DeriveYearStep(std::string date_column,
                                             std::string output_column);

}  // namespace ddgms::etl

#endif  // DDGMS_ETL_PIPELINE_H_
