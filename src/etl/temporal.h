#ifndef DDGMS_ETL_TEMPORAL_H_
#define DDGMS_ETL_TEMPORAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "etl/discretize.h"
#include "table/table.h"

namespace ddgms::etl {

/// Temporal abstraction (paper §IV.2): derives high-level qualitative
/// descriptions from low-level time-stamped measures — per patient,
/// ordered by visit date.
///
/// Two abstraction families are provided:
///  * state abstraction — map each reading into a named band via a
///    DiscretisationScheme, then merge consecutive same-band readings
///    into episodes ("FBG Diabetic from 2009-03-02 to 2011-08-14");
///  * trend abstraction — classify the change between consecutive
///    readings as increasing / steady / decreasing using a relative
///    slope threshold per year.

/// One qualitative episode of a variable for one entity.
struct Episode {
  Value entity;           // patient id
  std::string variable;   // source column name
  std::string abstraction;  // band or trend label
  Date start;
  Date end;
  size_t num_readings = 0;
  double mean_value = 0.0;
};

struct TemporalOptions {
  /// Relative change per year below which a trend is "steady".
  double steady_slope_per_year = 0.03;
  /// Labels for the three trend classes.
  std::string increasing_label = "increasing";
  std::string steady_label = "steady";
  std::string decreasing_label = "decreasing";
};

/// Extracts state episodes for `value_column`, using `scheme` to band
/// readings. Input table must have entity, date and numeric value
/// columns; readings with null date/value are skipped.
Result<std::vector<Episode>> StateAbstraction(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column,
    const DiscretisationScheme& scheme);

/// Extracts trend episodes (increasing/steady/decreasing runs) for
/// `value_column`.
Result<std::vector<Episode>> TrendAbstraction(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column,
    const TemporalOptions& options = {});

/// Materializes episodes as a table with columns:
///   Entity, Variable, Abstraction, Start, End, Readings, MeanValue.
Result<Table> EpisodesToTable(const std::vector<Episode>& episodes);

/// Checks a set of abstractions for conflicts: two episodes of the same
/// entity+variable that overlap in time but carry different labels (the
/// paper: "it is important to ensure temporal abstractions do not
/// conflict with each other"). Returns descriptions of conflicts found.
std::vector<std::string> FindConflicts(const std::vector<Episode>& episodes);

}  // namespace ddgms::etl

#endif  // DDGMS_ETL_TEMPORAL_H_
