#include "server/observability.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"
#include "common/window.h"

namespace ddgms::server {

namespace {

constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Parses a non-negative integer query parameter, clamped to
/// [0, max]; `fallback` on absence or garbage.
int64_t IntParam(const HttpRequest& request, const std::string& name,
                 int64_t fallback, int64_t max) {
  const std::string raw = request.QueryParam(name);
  if (raw.empty()) return fallback;
  Result<int64_t> parsed = ParseInt64(raw);
  if (!parsed.ok() || *parsed < 0) return fallback;
  return std::min(*parsed, max);
}

}  // namespace

ObservabilityServer::ObservabilityServer(ObservabilityOptions options,
                                         const core::DdDgms* dgms)
    : options_(std::move(options)),
      dgms_(dgms),
      server_(options_.http),
      started_at_(std::chrono::steady_clock::now()) {
  scanner_ = options_.anomaly_scanner;
  if (scanner_ == nullptr && dgms_ != nullptr) {
    owned_scanner_ = std::make_unique<AnomalyScanner>(&dgms_->telemetry(),
                                                      options_.anomaly);
    scanner_ = owned_scanner_.get();
  }
  RegisterRoutes();
}

ObservabilityServer::~ObservabilityServer() {
  if (server_.running()) Stop().IgnoreError();
}

Status ObservabilityServer::Start() {
  started_at_ = std::chrono::steady_clock::now();
  DDGMS_RETURN_IF_ERROR(server_.Start());
  if (options_.start_watchdog &&
      !QueryRegistry::Global().watchdog_running()) {
    const Status watchdog =
        QueryRegistry::Global().StartWatchdog(options_.watchdog);
    if (!watchdog.ok()) {
      server_.Stop().IgnoreError();
      return watchdog;
    }
    owns_watchdog_ = true;
  }
  if (options_.start_slo_evaluator &&
      !SloEngine::Global().evaluator_running()) {
    const Status evaluator =
        SloEngine::Global().StartEvaluator(options_.slo_evaluator);
    if (!evaluator.ok()) {
      Stop().IgnoreError();
      return evaluator;
    }
    owns_evaluator_ = true;
  }
  if (options_.start_anomaly_scanner && scanner_ != nullptr &&
      !scanner_->running()) {
    const Status scan = scanner_->Start();
    if (!scan.ok()) {
      Stop().IgnoreError();
      return scan;
    }
    owns_scanner_run_ = true;
  }
  return Status::OK();
}

Status ObservabilityServer::Stop() {
  Status status = server_.Stop();
  if (owns_watchdog_) {
    QueryRegistry::Global().StopWatchdog().IgnoreError();
    owns_watchdog_ = false;
  }
  if (owns_evaluator_) {
    SloEngine::Global().StopEvaluator().IgnoreError();
    owns_evaluator_ = false;
  }
  if (owns_scanner_run_) {
    scanner_->Stop().IgnoreError();
    owns_scanner_run_ = false;
  }
  return status;
}

double ObservabilityServer::UptimeSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - started_at_)
      .count();
}

void ObservabilityServer::RegisterRoutes() {
  // One literal Handle() call per route so ddgms_lint's endpoint-path
  // rule sees (and vets) every registered path.
  const auto bind = [this](HttpResponse (ObservabilityServer::*fn)(
                        const HttpRequest&) const) {
    return [this, fn](const HttpRequest& request) {
      return (this->*fn)(request);
    };
  };
  server_.Handle("GET", "/", bind(&ObservabilityServer::HandleStatusz));
  server_.Handle("GET", "/statusz",
                 bind(&ObservabilityServer::HandleStatusz));
  server_.Handle("GET", "/metrics",
                 bind(&ObservabilityServer::HandleMetrics));
  server_.Handle("GET", "/varz", bind(&ObservabilityServer::HandleVarz));
  server_.Handle("GET", "/healthz",
                 bind(&ObservabilityServer::HandleHealthz));
  server_.Handle("GET", "/readyz",
                 bind(&ObservabilityServer::HandleReadyz));
  server_.Handle("GET", "/queryz",
                 bind(&ObservabilityServer::HandleQueryz));
  server_.Handle("GET", "/tracez",
                 bind(&ObservabilityServer::HandleTracez));
  server_.Handle("GET", "/logz", bind(&ObservabilityServer::HandleLogz));
  server_.Handle("GET", "/resourcez",
                 bind(&ObservabilityServer::HandleResourcez));
  server_.Handle("GET", "/profilez",
                 bind(&ObservabilityServer::HandleProfilez));
  server_.Handle("GET", "/sloz", bind(&ObservabilityServer::HandleSloz));
  server_.Handle("GET", "/alertz",
                 bind(&ObservabilityServer::HandleAlertz));
}

HttpResponse ObservabilityServer::HandleMetrics(
    const HttpRequest&) const {
  HttpResponse response = HttpResponse::Text(
      MetricsRegistry::Global().Snapshot().ToPrometheusText());
  response.content_type = kPrometheusContentType;
  return response;
}

HttpResponse ObservabilityServer::HandleVarz(const HttpRequest&) const {
  return HttpResponse::Json(
      MetricsRegistry::Global().Snapshot().ToJson());
}

HttpResponse ObservabilityServer::HandleHealthz(
    const HttpRequest&) const {
  // Liveness only: if this handler runs, the process serves.
  return HttpResponse::Json(StrFormat(
      "{\"status\":\"ok\",\"uptime_seconds\":%s}",
      FormatDouble(UptimeSeconds(), 3).c_str()));
}

HttpResponse ObservabilityServer::HandleReadyz(
    const HttpRequest&) const {
  if (dgms_ == nullptr) {
    return HttpResponse::Json(
        "{\"status\":\"unavailable\",\"warehouse\":\"none\"}", 503);
  }
  std::string body = StrFormat(
      "{\"status\":\"ok\",\"warehouse_generation\":%llu,"
      "\"fact_rows\":%zu,\"durable\":%s",
      static_cast<unsigned long long>(dgms_->warehouse().generation()),
      dgms_->warehouse().fact().num_rows(),
      dgms_->durable() ? "true" : "false");
  if (dgms_->durable()) {
    body += StrFormat(
        ",\"durable_seq\":%llu",
        static_cast<unsigned long long>(dgms_->durable_store()->seq()));
  }
  body += "}";
  return HttpResponse::Json(std::move(body));
}

HttpResponse ObservabilityServer::HandleQueryz(
    const HttpRequest&) const {
  QueryRegistry& registry = QueryRegistry::Global();
  const std::string body = StrFormat(
      "{\"watchdog_running\":%s,\"deadline_ms\":%d,"
      "\"stalled_total\":%llu,\"queries\":%s,"
      "\"history_capacity\":%zu,\"recent_completed\":%s}",
      registry.watchdog_running() ? "true" : "false",
      options_.watchdog.deadline_ms,
      static_cast<unsigned long long>(registry.stalled_total()),
      registry.ToJson().c_str(), registry.history_capacity(),
      registry.HistoryToJson().c_str());
  return HttpResponse::Json(body);
}

HttpResponse ObservabilityServer::HandleTracez(
    const HttpRequest& request) const {
  if (request.QueryParam("format") == "json") {
    return HttpResponse::Json(TraceCollector::Global().ToJson());
  }
  return HttpResponse::Text(TraceCollector::Global().ToString());
}

HttpResponse ObservabilityServer::HandleLogz(
    const HttpRequest& request) const {
  LogLevel min_level = LogLevel::kDebug;
  const std::string level_name = request.QueryParam("level");
  if (!level_name.empty()) {
    Result<LogLevel> parsed = LogLevelFromName(level_name);
    if (!parsed.ok()) {
      return HttpResponse::BadRequest("unknown level '" + level_name +
                                      "'");
    }
    min_level = *parsed;
  }
  const size_t tail = static_cast<size_t>(
      IntParam(request, "tail", 100, 100000));

  std::vector<LogRecord> records = EventLog::Global().Snapshot();
  records.erase(std::remove_if(records.begin(), records.end(),
                               [min_level](const LogRecord& r) {
                                 return r.level < min_level;
                               }),
                records.end());
  if (records.size() > tail) {
    records.erase(records.begin(),
                  records.end() - static_cast<ptrdiff_t>(tail));
  }

  const bool json = request.QueryParam("format") == "json";
  std::string body;
  for (const LogRecord& record : records) {
    body += json ? record.ToJson() : record.ToString();
    body += "\n";
  }
  return json ? HttpResponse{200, "application/jsonl", std::move(body)}
              : HttpResponse::Text(std::move(body));
}

HttpResponse ObservabilityServer::HandleResourcez(
    const HttpRequest& request) const {
  const ResourceSnapshot snapshot = ResourceMeter::Global().Snapshot();
  if (request.QueryParam("format") == "json") {
    return HttpResponse::Json(snapshot.ToJson());
  }
  return HttpResponse::Text(snapshot.ToString());
}

HttpResponse ObservabilityServer::HandleProfilez(
    const HttpRequest& request) const {
  // Unlike the advisory ?tail= style parameters, a malformed duration
  // here would silently profile for the default — reject it instead.
  int64_t seconds = 2;
  const std::string raw = request.QueryParam("seconds");
  if (!raw.empty()) {
    Result<int64_t> parsed = ParseInt64(raw);
    if (!parsed.ok() || *parsed <= 0) {
      return HttpResponse::BadRequest(
          "seconds must be a positive integer, got '" + raw + "'");
    }
    seconds = std::min<int64_t>(
        *parsed, std::max(1, options_.max_profile_seconds));
  }
  Profiler& profiler = Profiler::Global();
  const Status started = profiler.Start(ProfilerOptions{});
  if (!started.ok()) {
    // Concurrent /profilez (or a shell-driven session): report the
    // conflict rather than queueing behind an unbounded wait.
    return HttpResponse::Text(
        "profiler busy: " + started.ToString() + "\n", 409);
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const Status stopped = profiler.Stop();
  if (!stopped.ok()) {
    return HttpResponse::InternalError(stopped.ToString());
  }
  Result<ProfileDump> dump = profiler.Dump();
  if (!dump.ok()) {
    return HttpResponse::InternalError(dump.status().ToString());
  }
  if (request.QueryParam("format") == "json") {
    return HttpResponse::Json(dump->ToJson());
  }
  // Collapsed stacks (flamegraph.pl input) with the summary as
  // comment lines, so the payload stays pipeable.
  std::string body;
  for (const std::string& line : Split(dump->Summary(), '\n')) {
    if (!line.empty()) body += "# " + line + "\n";
  }
  body += dump->ToCollapsed();
  return HttpResponse::Text(std::move(body));
}

HttpResponse ObservabilityServer::HandleSloz(const HttpRequest&) const {
  std::string body = "{\"slo\":";
  body += SloEngine::Global().ToJson();
  body += ",\"windows\":";
  body += WindowRegistry::Global().ToJson();
  body += "}";
  return HttpResponse::Json(std::move(body));
}

HttpResponse ObservabilityServer::HandleAlertz(const HttpRequest&) const {
  const std::vector<SloStatus> slos = SloEngine::Global().Snapshot();
  size_t firing = 0;
  size_t warning = 0;
  std::string alerts = "[";
  bool first = true;
  for (const SloStatus& slo : slos) {
    if (slo.state == SloState::kFiring) ++firing;
    if (slo.state == SloState::kWarning) ++warning;
    if (slo.state == SloState::kOk) continue;
    if (!first) alerts += ",";
    first = false;
    alerts += slo.ToJson();
  }
  alerts += "]";
  std::string body = StrFormat(
      "{\"firing\":%zu,\"warning\":%zu,\"evaluator_running\":%s,"
      "\"alerts\":%s,\"anomaly\":",
      firing, warning,
      SloEngine::Global().evaluator_running() ? "true" : "false",
      alerts.c_str());
  body += scanner_ != nullptr ? scanner_->ToJson()
                              : std::string("{\"running\":false,"
                                            "\"scans\":0,\"findings\":[]}");
  body += "}";
  return HttpResponse::Json(std::move(body));
}

HttpResponse ObservabilityServer::HandleStatusz(
    const HttpRequest&) const {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  QueryRegistry& queries = QueryRegistry::Global();

  std::string warehouse_line = "none";
  if (dgms_ != nullptr) {
    warehouse_line = StrFormat(
        "generation %llu, %zu fact rows, %s",
        static_cast<unsigned long long>(
            dgms_->warehouse().generation()),
        dgms_->warehouse().fact().num_rows(),
        dgms_->durable()
            ? StrFormat("durable (seq %llu)",
                        static_cast<unsigned long long>(
                            dgms_->durable_store()->seq()))
                  .c_str()
            : "in-memory");
  }

  std::string html =
      "<!doctype html><html><head><title>ddgms statusz</title>"
      "<style>body{font-family:monospace;margin:2em}"
      "table{border-collapse:collapse}"
      "td,th{border:1px solid #999;padding:4px 10px;text-align:left}"
      "</style></head><body><h1>ddgms observability</h1>";
  html += StrFormat(
      "<p>uptime %s s &middot; port %d &middot; warehouse: %s</p>",
      FormatDouble(UptimeSeconds(), 1).c_str(), server_.port(),
      HtmlEscape(warehouse_line).c_str());
  html += StrFormat(
      "<p>instruments: %zu counters, %zu gauges, %zu histograms "
      "&middot; in-flight queries: %zu &middot; stalled ever: %llu "
      "&middot; watchdog: %s</p>",
      metrics.counters.size(), metrics.gauges.size(),
      metrics.histograms.size(), queries.active(),
      static_cast<unsigned long long>(queries.stalled_total()),
      queries.watchdog_running() ? "running" : "off");
  html += "<table><tr><th>endpoint</th><th>what</th></tr>";
  struct Row {
    const char* path;
    const char* what;
  };
  static constexpr Row kRows[] = {
      {"/metrics", "Prometheus text exposition (scrape target)"},
      {"/varz", "metrics snapshot as JSON"},
      {"/healthz", "liveness probe"},
      {"/readyz", "readiness probe (warehouse state)"},
      {"/queryz", "live in-flight queries + stall watchdog"},
      {"/tracez", "recent trace spans (?format=json)"},
      {"/logz", "flight-recorder tail (?level=, ?tail=, ?format=json)"},
      {"/resourcez", "resource pool tree (?format=json)"},
      {"/profilez?seconds=2", "sampling profiler, collapsed stacks"},
      {"/sloz", "SLO engine state + sliding-window stats"},
      {"/alertz", "firing/warning SLOs + recent anomaly findings"},
  };
  for (const Row& row : kRows) {
    html += StrFormat(
        "<tr><td><a href=\"%s\">%s</a></td><td>%s</td></tr>", row.path,
        row.path, row.what);
  }
  html += "</table>";

  const std::vector<SloStatus> slos = SloEngine::Global().Snapshot();
  if (!slos.empty()) {
    html += "<h2>SLOs</h2><table><tr><th>slo</th><th>state</th>"
            "<th>burn (fast)</th><th>burn (slow)</th>"
            "<th>transitions</th></tr>";
    for (const SloStatus& slo : slos) {
      html += StrFormat(
          "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
          "<td>%llu</td></tr>",
          HtmlEscape(slo.name).c_str(), SloStateName(slo.state),
          FormatDouble(slo.fast_burn_rate, 3).c_str(),
          FormatDouble(slo.slow_burn_rate, 3).c_str(),
          static_cast<unsigned long long>(slo.transitions));
    }
    html += "</table>";
  }
  if (scanner_ != nullptr) {
    const std::vector<AnomalyFinding> findings = scanner_->findings();
    html += StrFormat(
        "<h2>anomaly scanner</h2><p>%s &middot; %llu scans &middot; "
        "%zu recent findings</p>",
        scanner_->running() ? "running" : "off",
        static_cast<unsigned long long>(scanner_->scans()),
        findings.size());
    if (!findings.empty()) {
      html += "<table><tr><th>target</th><th>snapshot</th>"
              "<th>value</th><th>median</th><th>robust z</th></tr>";
      const size_t shown = std::min<size_t>(findings.size(), 10);
      for (size_t i = findings.size() - shown; i < findings.size(); ++i) {
        const AnomalyFinding& f = findings[i];
        html += StrFormat(
            "<tr><td>%s</td><td>%lld</td><td>%s</td><td>%s</td>"
            "<td>%s</td></tr>",
            HtmlEscape(f.target).c_str(),
            static_cast<long long>(f.snapshot),
            FormatDouble(f.value, 4).c_str(),
            FormatDouble(f.median, 4).c_str(),
            FormatDouble(f.robust_z, 3).c_str());
      }
      html += "</table>";
    }
  }
  html += "</body></html>";
  return HttpResponse::Html(std::move(html));
}

}  // namespace ddgms::server
