#ifndef DDGMS_SERVER_ANOMALY_H_
#define DDGMS_SERVER_ANOMALY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "warehouse/telemetry.h"

namespace ddgms::server {

/// -------------------------------------------------------------------
/// AnomalyScanner: decision guidance applied to the system itself
///
/// A background thread that periodically (a) asks the TelemetrySampler
/// for a fresh snapshot of the process's own metrics / spans / events,
/// (b) rebuilds the `[Telemetry]` star schema, and (c) interrogates it
/// with ordinary MDX — the same multidimensional machinery the
/// platform offers the clinical scientist — to extract one time series
/// per watched signal (value per SampleTime snapshot). Each series is
/// scored with the robust z-score
///
///   z = 0.6745 * (x - median) / MAD
///
/// (MAD = median absolute deviation; 0.6745 rescales MAD to the
/// standard deviation of a normal distribution), which unlike a plain
/// z-score is not dragged around by the outliers it is trying to find.
/// The newest point of a series whose |z| exceeds the threshold
/// becomes an AnomalyFinding: an `anomaly.detected` flight-recorder
/// event, a ddgms.anomaly.detections counter bump, and an entry in the
/// bounded recent-findings list served on /alertz.
///
/// Default watched signals: MDX execution latency (avg `mdx.execute`
/// span duration per snapshot), quarantine growth (delta of
/// ddgms.quarantine.rows) and resource-pool growth (delta of
/// ddgms.resource.bytes_current:total).
///
/// The scanner runs its private MdxExecutor over a warehouse it builds
/// itself from the (thread-safe) sampler, so it never touches the
/// facade's unsynchronized query path.
/// -------------------------------------------------------------------

/// One watched signal: an MDX query over [Telemetry] that yields a
/// single value per [SampleTime].[Snapshot] member.
struct AnomalyTarget {
  /// Stable lower_snake_case identity ("mdx_latency_spike").
  std::string name;
  std::string description;
  /// SELECT { [Measures].[Value] } ON COLUMNS,
  ///        { [SampleTime].[Snapshot].Members } ON ROWS
  /// FROM [Telemetry] WHERE ( ... )
  std::string mdx;
  /// Score successive differences instead of levels (for cumulative
  /// counters and monotonic gauges, where growth is the signal).
  bool difference = false;
};

/// One flagged outlier.
struct AnomalyFinding {
  std::string target;      // AnomalyTarget::name
  int64_t snapshot = 0;    // SampleTime snapshot id of the outlier
  double value = 0.0;      // the outlying level / delta
  double median = 0.0;     // series median
  double mad = 0.0;        // median absolute deviation
  double robust_z = 0.0;   // 0.6745 * (value - median) / MAD

  std::string ToString() const;
  std::string ToJson() const;
};

struct AnomalyScannerOptions {
  /// Sample + scan cadence of the background thread.
  int period_ms = 5000;
  /// |robust z| at/above this flags the newest point.
  double z_threshold = 3.5;
  /// Series shorter than this are never scored (median/MAD need
  /// history before "outlier" means anything).
  size_t min_samples = 5;
  /// Recent findings kept for /alertz.
  size_t max_findings = 256;
  /// Watched signals; DefaultTargets() when empty.
  std::vector<AnomalyTarget> targets;
};

/// Periodically samples telemetry and flags robust-z outliers via MDX
/// over the [Telemetry] warehouse. All methods are thread-safe.
class AnomalyScanner {
 public:
  /// `sampler` must outlive the scanner (the shell recreates its
  /// scanner when the facade — and with it the sampler — is replaced
  /// by load/recover).
  explicit AnomalyScanner(warehouse::TelemetrySampler* sampler,
                          AnomalyScannerOptions options = {});
  ~AnomalyScanner();

  AnomalyScanner(const AnomalyScanner&) = delete;
  AnomalyScanner& operator=(const AnomalyScanner&) = delete;

  /// The stock watched signals (see class comment).
  static std::vector<AnomalyTarget> DefaultTargets();

  /// Spawns the scan thread. FailedPrecondition when already running.
  Status Start() EXCLUDES(mu_);
  /// Joins the scan thread. FailedPrecondition when not running.
  Status Stop() EXCLUDES(mu_);
  bool running() const EXCLUDES(mu_);

  /// One synchronous sample + warehouse build + scan; returns the
  /// findings newly flagged by this scan (already appended to the
  /// recent list). Deterministic tests drive this instead of racing
  /// the thread.
  Result<std::vector<AnomalyFinding>> ScanOnce() EXCLUDES(mu_);

  /// Newest-last recent findings (bounded by max_findings).
  std::vector<AnomalyFinding> findings() const EXCLUDES(mu_);
  /// Completed scans (monotonic).
  uint64_t scans() const { return scans_.load(std::memory_order_relaxed); }

  /// {"running":...,"scans":...,"findings":[...]}
  std::string ToJson() const EXCLUDES(mu_);

 private:
  void ScanLoop();
  /// Scores one extracted series; appends at most one finding.
  void ScoreSeries(const AnomalyTarget& target,
                   const std::vector<int64_t>& snapshots,
                   const std::vector<double>& values,
                   std::vector<AnomalyFinding>* found) EXCLUDES(mu_);

  warehouse::TelemetrySampler* sampler_;
  const AnomalyScannerOptions options_;

  mutable Mutex mu_;
  std::deque<AnomalyFinding> findings_ GUARDED_BY(mu_);
  /// Last snapshot already flagged per target, so a persisting outlier
  /// is reported once, not once per scan.
  std::map<std::string, int64_t> last_flagged_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_;
  CondVar cv_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scans_{0};
};

}  // namespace ddgms::server

#endif  // DDGMS_SERVER_ANOMALY_H_
