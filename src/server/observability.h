#ifndef DDGMS_SERVER_OBSERVABILITY_H_
#define DDGMS_SERVER_OBSERVABILITY_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/http.h"
#include "common/query_registry.h"
#include "common/slo.h"
#include "common/status.h"
#include "core/dd_dgms.h"
#include "server/anomaly.h"

namespace ddgms::server {

/// -------------------------------------------------------------------
/// Observability server
///
/// The external introspection surface: one embedded HttpServer
/// (loopback-bound by default — see common/http.h for the security
/// posture) whose routes expose every signal the platform already
/// collects internally:
///
///   /            HTML overview (same page as /statusz)
///   /statusz     HTML overview: uptime, warehouse state, endpoints
///   /metrics     Prometheus text exposition (scrape target)
///   /varz        metrics snapshot as JSON
///   /healthz     liveness: 200 as long as the process serves
///   /readyz      readiness: 200 once a warehouse is attached, else 503
///   /queryz      live in-flight query table + watchdog state (JSON)
///   /tracez      recent trace spans (text; ?format=json)
///   /logz        flight-recorder tail (?level=warn, ?tail=100,
///                ?format=json)
///   /resourcez   ResourceMeter pool tree (text; ?format=json)
///   /profilez    runs the sampling profiler for ?seconds=N (400 on
///                non-numeric or non-positive values, clamped to the
///                configurable cap) and returns collapsed stacks
///   /sloz        SLO engine state + sliding-window stats (JSON)
///   /alertz      firing/warning SLOs + recent anomaly findings (JSON)
///
/// Start() also starts the QueryRegistry stall watchdog, the SLO
/// evaluator thread and the anomaly scanner (each configurable off),
/// so `serve` in the shell is the single switch that turns the process
/// into an externally observable — and self-judging — service.
/// -------------------------------------------------------------------

struct ObservabilityOptions {
  HttpServerOptions http;
  /// Start (and on Stop(), stop) the query stall watchdog alongside
  /// the listener — unless one is already running.
  bool start_watchdog = true;
  QueryWatchdogOptions watchdog;
  /// Upper bound for /profilez?seconds=N; numeric requests beyond it
  /// are clamped (non-numeric or non-positive ones get a 400).
  int max_profile_seconds = 30;
  /// Start (and on Stop(), stop) the SLO evaluator thread alongside
  /// the listener — unless one is already running.
  bool start_slo_evaluator = true;
  SloEvaluatorOptions slo_evaluator;
  /// Start (and on Stop(), stop) the anomaly scanner alongside the
  /// listener — unless the provided scanner is already running.
  bool start_anomaly_scanner = true;
  AnomalyScannerOptions anomaly;
  /// Non-owning; the shell passes its scanner so /alertz and the
  /// `alerts` command agree. When null and a facade is attached, the
  /// server owns a scanner over the facade's telemetry sampler.
  AnomalyScanner* anomaly_scanner = nullptr;
};

class ObservabilityServer {
 public:
  /// `dgms` may be null: every endpoint still serves, /readyz reports
  /// 503 and warehouse fields read "none". The pointer is not owned
  /// and must stay valid while the server runs. Handlers only call
  /// const accessors, but DdDgms query paths are not internally
  /// synchronized — keep mutating commands on the thread that owns the
  /// facade (the shell does) and treat /readyz warehouse fields as
  /// advisory during a rebuild.
  explicit ObservabilityServer(ObservabilityOptions options = {},
                               const core::DdDgms* dgms = nullptr);
  ~ObservabilityServer();

  ObservabilityServer(const ObservabilityServer&) = delete;
  ObservabilityServer& operator=(const ObservabilityServer&) = delete;

  Status Start();
  Status Stop();

  bool running() const { return server_.running(); }
  /// Bound port (resolves port 0); 0 before Start().
  int port() const { return server_.port(); }

  /// The underlying listener (tests register extra routes before
  /// Start()).
  HttpServer& http() { return server_; }

 private:
  void RegisterRoutes();

  HttpResponse HandleStatusz(const HttpRequest& request) const;
  HttpResponse HandleMetrics(const HttpRequest& request) const;
  HttpResponse HandleVarz(const HttpRequest& request) const;
  HttpResponse HandleHealthz(const HttpRequest& request) const;
  HttpResponse HandleReadyz(const HttpRequest& request) const;
  HttpResponse HandleQueryz(const HttpRequest& request) const;
  HttpResponse HandleTracez(const HttpRequest& request) const;
  HttpResponse HandleLogz(const HttpRequest& request) const;
  HttpResponse HandleResourcez(const HttpRequest& request) const;
  HttpResponse HandleProfilez(const HttpRequest& request) const;
  HttpResponse HandleSloz(const HttpRequest& request) const;
  HttpResponse HandleAlertz(const HttpRequest& request) const;

  double UptimeSeconds() const;

  ObservabilityOptions options_;
  const core::DdDgms* dgms_;
  HttpServer server_;
  /// True when Start() started the watchdog (and Stop() should stop
  /// it); false when one was already running or start_watchdog is off.
  bool owns_watchdog_ = false;
  /// Same ownership discipline for the SLO evaluator thread.
  bool owns_evaluator_ = false;
  /// Server-owned scanner when none was provided via options.
  std::unique_ptr<AnomalyScanner> owned_scanner_;
  /// The scanner /alertz reads (provided or owned); may be null.
  AnomalyScanner* scanner_ = nullptr;
  /// True when Start() started the scanner thread.
  bool owns_scanner_run_ = false;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace ddgms::server

#endif  // DDGMS_SERVER_OBSERVABILITY_H_
