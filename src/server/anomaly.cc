#include "server/anomaly.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "mdx/executor.h"

namespace ddgms::server {

namespace {

/// Rescales MAD to the standard deviation of a normal distribution.
constexpr double kMadToSigma = 0.6745;

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return (values[mid - 1] + upper) / 2.0;
}

std::string SeriesMdx(const std::string& where_tuple) {
  return "SELECT { [Measures].[Value] } ON COLUMNS, "
         "{ [SampleTime].[Snapshot].Members } ON ROWS "
         "FROM [Telemetry] WHERE ( " +
         where_tuple + " )";
}

}  // namespace

std::string AnomalyFinding::ToString() const {
  return StrFormat(
      "%-24s snapshot=%lld value=%s median=%s mad=%s z=%s", target.c_str(),
      static_cast<long long>(snapshot), FormatDouble(value, 4).c_str(),
      FormatDouble(median, 4).c_str(), FormatDouble(mad, 4).c_str(),
      FormatDouble(robust_z, 3).c_str());
}

std::string AnomalyFinding::ToJson() const {
  return StrFormat(
      "{\"target\":\"%s\",\"snapshot\":%lld,\"value\":%s,"
      "\"median\":%s,\"mad\":%s,\"robust_z\":%s}",
      target.c_str(), static_cast<long long>(snapshot),
      FormatDouble(value, 6).c_str(), FormatDouble(median, 6).c_str(),
      FormatDouble(mad, 6).c_str(), FormatDouble(robust_z, 4).c_str());
}

AnomalyScanner::AnomalyScanner(warehouse::TelemetrySampler* sampler,
                               AnomalyScannerOptions options)
    : sampler_(sampler), options_([&options] {
        if (options.targets.empty()) options.targets = DefaultTargets();
        return std::move(options);
      }()) {}

AnomalyScanner::~AnomalyScanner() {
  if (running()) Stop().IgnoreError();
}

std::vector<AnomalyTarget> AnomalyScanner::DefaultTargets() {
  std::vector<AnomalyTarget> targets;
  targets.push_back(
      {"mdx_latency_spike",
       "avg mdx.execute span duration per snapshot jumped",
       SeriesMdx("[Instrument].[Name].[mdx.execute], [Kind].[Kind].[span]"),
       /*difference=*/false});
  targets.push_back(
      {"quarantine_rate",
       "rows quarantined between snapshots jumped",
       SeriesMdx("[Instrument].[Name].[ddgms.quarantine.rows], "
                 "[Kind].[Kind].[counter]"),
       /*difference=*/true});
  targets.push_back(
      {"resource_growth",
       "root resource-pool bytes grew abnormally between snapshots",
       SeriesMdx("[Instrument].[Name].[ddgms.resource.bytes_current:total], "
                 "[Kind].[Kind].[gauge]"),
       /*difference=*/true});
  return targets;
}

Status AnomalyScanner::Start() {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("anomaly: scanner already running");
  }
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&AnomalyScanner::ScanLoop, this);
  return Status::OK();
}

Status AnomalyScanner::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) {
      return Status::FailedPrecondition("anomaly: scanner not running");
    }
  }
  stop_.store(true, std::memory_order_relaxed);
  cv_.NotifyAll();
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
  return Status::OK();
}

bool AnomalyScanner::running() const {
  MutexLock lock(mu_);
  return running_;
}

void AnomalyScanner::ScanLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      cv_.WaitFor(mu_, std::chrono::milliseconds(options_.period_ms),
                  [this] { return stop_.load(std::memory_order_relaxed); });
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    ScanOnce().status().IgnoreError();
  }
}

void AnomalyScanner::ScoreSeries(const AnomalyTarget& target,
                                 const std::vector<int64_t>& snapshots,
                                 const std::vector<double>& raw,
                                 std::vector<AnomalyFinding>* found) {
  std::vector<int64_t> ids = snapshots;
  std::vector<double> values = raw;
  if (target.difference) {
    if (values.size() < 2) return;
    std::vector<double> deltas(values.size() - 1);
    for (size_t i = 1; i < values.size(); ++i) {
      deltas[i - 1] = values[i] - values[i - 1];
    }
    values = std::move(deltas);
    ids.erase(ids.begin());
  }
  if (values.size() < options_.min_samples) return;

  const double median = Median(values);
  std::vector<double> deviations(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    deviations[i] = std::fabs(values[i] - median);
  }
  const double mad = Median(deviations);
  if (mad <= 0.0) return;  // a flat series has no meaningful spread

  const double newest = values.back();
  const double z = kMadToSigma * (newest - median) / mad;
  if (std::fabs(z) < options_.z_threshold) return;

  AnomalyFinding finding;
  finding.target = target.name;
  finding.snapshot = ids.back();
  finding.value = newest;
  finding.median = median;
  finding.mad = mad;
  finding.robust_z = z;

  {
    MutexLock lock(mu_);
    auto it = last_flagged_.find(target.name);
    if (it != last_flagged_.end() && it->second >= finding.snapshot) {
      return;  // already reported this (or a newer) snapshot
    }
    last_flagged_[target.name] = finding.snapshot;
    findings_.push_back(finding);
    while (findings_.size() > options_.max_findings) findings_.pop_front();
  }

  DDGMS_METRIC_INC("ddgms.anomaly.detections");
  DDGMS_LOG_WARN("anomaly.detected")
      .With("target", finding.target)
      .With("snapshot", finding.snapshot)
      .With("value", finding.value)
      .With("median", finding.median)
      .With("mad", finding.mad)
      .With("robust_z", finding.robust_z);
  found->push_back(std::move(finding));
}

Result<std::vector<AnomalyFinding>> AnomalyScanner::ScanOnce() {
  DDGMS_RETURN_IF_ERROR(sampler_->Sample().status());
  DDGMS_ASSIGN_OR_RETURN(warehouse::Warehouse wh,
                         sampler_->BuildWarehouse());
  mdx::MdxExecutor executor(&wh);

  std::vector<AnomalyFinding> found;
  for (const AnomalyTarget& target : options_.targets) {
    DDGMS_ASSIGN_OR_RETURN(mdx::MdxResult result,
                           executor.Execute(target.mdx));
    // One ROWS axis of snapshot ids, one Value measure. AxisMembers is
    // sorted and snapshot ids are integers, so the series comes back
    // in chronological order.
    std::vector<int64_t> snapshots;
    std::vector<double> values;
    for (const Value& member : result.cube.AxisMembers(0)) {
      const Value cell = result.cube.CellValue({member});
      if (cell.is_null()) continue;
      Result<double> as_double = cell.AsDouble();
      if (!as_double.ok()) continue;
      Result<double> id = member.AsDouble();
      if (!id.ok()) continue;
      snapshots.push_back(static_cast<int64_t>(*id));
      values.push_back(*as_double);
    }
    ScoreSeries(target, snapshots, values, &found);
  }
  scans_.fetch_add(1, std::memory_order_relaxed);
  DDGMS_METRIC_INC("ddgms.anomaly.scans");
  return found;
}

std::vector<AnomalyFinding> AnomalyScanner::findings() const {
  MutexLock lock(mu_);
  return std::vector<AnomalyFinding>(findings_.begin(), findings_.end());
}

std::string AnomalyScanner::ToJson() const {
  std::string out = "{\"running\":";
  out += running() ? "true" : "false";
  out += StrFormat(",\"scans\":%llu,\"z_threshold\":%s,\"findings\":[",
                   static_cast<unsigned long long>(scans()),
                   FormatDouble(options_.z_threshold, 2).c_str());
  const std::vector<AnomalyFinding> all = findings();
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",";
    out += all[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace ddgms::server
