#include "predict/markov.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace ddgms::predict {

Result<std::vector<std::vector<std::string>>> ExtractSequences(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& state_column) {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* entity,
                         table.ColumnByName(entity_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                         table.ColumnByName(date_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* state,
                         table.ColumnByName(state_column));
  if (date->type() != DataType::kDate) {
    return Status::InvalidArgument("column '" + date_column +
                                   "' is not a date column");
  }
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  struct Visit {
    int32_t date_key;
    std::string state;
  };
  std::map<Value, std::vector<Visit>, ValueLess> by_entity;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (entity->IsNull(i) || date->IsNull(i) || state->IsNull(i)) continue;
    by_entity[entity->GetValue(i)].push_back(
        Visit{date->DateAt(i).days_since_epoch(),
              state->GetValue(i).ToString()});
  }
  std::vector<std::vector<std::string>> sequences;
  sequences.reserve(by_entity.size());
  for (auto& [ent, visits] : by_entity) {
    std::stable_sort(visits.begin(), visits.end(),
                     [](const Visit& a, const Visit& b) {
                       return a.date_key < b.date_key;
                     });
    std::vector<std::string> seq;
    seq.reserve(visits.size());
    for (Visit& v : visits) seq.push_back(std::move(v.state));
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

Status MarkovTrajectoryModel::Train(const Table& table,
                                    const std::string& entity_column,
                                    const std::string& date_column,
                                    const std::string& state_column) {
  DDGMS_ASSIGN_OR_RETURN(
      auto sequences,
      ExtractSequences(table, entity_column, date_column, state_column));
  return TrainFromSequences(sequences);
}

Status MarkovTrajectoryModel::TrainFromSequences(
    const std::vector<std::vector<std::string>>& sequences) {
  states_.clear();
  state_index_.clear();
  for (const auto& seq : sequences) {
    for (const std::string& s : seq) {
      if (state_index_.emplace(s, states_.size()).second) {
        states_.push_back(s);
      }
    }
  }
  if (states_.empty()) {
    return Status::InvalidArgument("no states in training sequences");
  }
  const size_t k = states_.size();
  transition_counts_.assign(k, std::vector<size_t>(k, 0));
  state_counts_.assign(k, 0);
  context_counts_.clear();
  for (const auto& seq : sequences) {
    for (size_t i = 0; i < seq.size(); ++i) {
      size_t cur = state_index_.at(seq[i]);
      ++state_counts_[cur];
      if (i + 1 < seq.size()) {
        size_t nxt = state_index_.at(seq[i + 1]);
        ++transition_counts_[cur][nxt];
        // Higher-order contexts ending at position i, lengths 2..order.
        for (size_t len = 2; len <= order_ && len <= i + 1; ++len) {
          std::string context;
          for (size_t j = i + 1 - len; j <= i; ++j) {
            context += seq[j];
            context += '\x1f';  // unit separator: unambiguous join
          }
          auto& counts = context_counts_[context];
          if (counts.empty()) counts.assign(k, 0);
          ++counts[nxt];
        }
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

Result<std::string> MarkovTrajectoryModel::PredictNextFromHistory(
    const std::vector<std::string>& history) const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  if (history.empty()) {
    return Status::InvalidArgument("empty history");
  }
  // Longest observed context wins; back off toward order 1.
  size_t max_len = std::min(order_, history.size());
  for (size_t len = max_len; len >= 2; --len) {
    std::string context;
    for (size_t j = history.size() - len; j < history.size(); ++j) {
      context += history[j];
      context += '\x1f';
    }
    auto it = context_counts_.find(context);
    if (it == context_counts_.end()) continue;
    size_t best = 0;
    for (size_t s = 1; s < it->second.size(); ++s) {
      if (it->second[s] > it->second[best]) best = s;
    }
    // Require at least one observation (all-zero cannot happen since
    // contexts are created on first observation).
    return states_[best];
  }
  return PredictNext(history.back());
}

Result<size_t> MarkovTrajectoryModel::StateIndex(
    const std::string& state) const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  auto it = state_index_.find(state);
  if (it == state_index_.end()) {
    return Status::NotFound("unknown state '" + state + "'");
  }
  return it->second;
}

Result<std::vector<std::pair<std::string, double>>>
MarkovTrajectoryModel::TransitionDistribution(
    const std::string& current) const {
  DDGMS_ASSIGN_OR_RETURN(size_t cur, StateIndex(current));
  const size_t k = states_.size();
  double total = 0.0;
  for (size_t n : transition_counts_[cur]) {
    total += static_cast<double>(n);
  }
  std::vector<std::pair<std::string, double>> dist;
  dist.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    double p =
        (static_cast<double>(transition_counts_[cur][j]) + alpha_) /
        (total + alpha_ * static_cast<double>(k));
    dist.emplace_back(states_[j], p);
  }
  return dist;
}

Result<std::string> MarkovTrajectoryModel::PredictNext(
    const std::string& current) const {
  DDGMS_ASSIGN_OR_RETURN(auto dist, TransitionDistribution(current));
  size_t best = 0;
  for (size_t j = 1; j < dist.size(); ++j) {
    if (dist[j].second > dist[best].second) best = j;
  }
  return dist[best].first;
}

Result<std::vector<std::pair<std::string, double>>>
MarkovTrajectoryModel::PredictAfter(const std::string& current,
                                    size_t steps) const {
  DDGMS_ASSIGN_OR_RETURN(size_t cur, StateIndex(current));
  const size_t k = states_.size();
  std::vector<double> probs(k, 0.0);
  probs[cur] = 1.0;
  for (size_t step = 0; step < steps; ++step) {
    std::vector<double> next(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      if (probs[i] == 0.0) continue;
      DDGMS_ASSIGN_OR_RETURN(auto dist,
                             TransitionDistribution(states_[i]));
      for (size_t j = 0; j < k; ++j) {
        next[j] += probs[i] * dist[j].second;
      }
    }
    probs = std::move(next);
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(k);
  for (size_t j = 0; j < k; ++j) out.emplace_back(states_[j], probs[j]);
  return out;
}

Result<double> MarkovTrajectoryModel::SequenceLogLikelihood(
    const std::vector<std::string>& sequence) const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  if (sequence.empty()) {
    return Status::InvalidArgument("empty sequence");
  }
  double total_states = 0.0;
  for (size_t n : state_counts_) total_states += static_cast<double>(n);
  double ll = 0.0;
  // Prior of the first state.
  DDGMS_ASSIGN_OR_RETURN(size_t first, StateIndex(sequence[0]));
  double k = static_cast<double>(states_.size());
  ll += std::log((static_cast<double>(state_counts_[first]) + alpha_) /
                 (total_states + alpha_ * k));
  for (size_t i = 0; i + 1 < sequence.size(); ++i) {
    DDGMS_ASSIGN_OR_RETURN(auto dist,
                           TransitionDistribution(sequence[i]));
    DDGMS_ASSIGN_OR_RETURN(size_t nxt, StateIndex(sequence[i + 1]));
    ll += std::log(dist[nxt].second);
  }
  return ll;
}

Result<std::string> MarkovTrajectoryModel::MajorityState() const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  size_t best = 0;
  for (size_t j = 1; j < states_.size(); ++j) {
    if (state_counts_[j] > state_counts_[best]) best = j;
  }
  return states_[best];
}

std::string MarkovTrajectoryModel::ToString() const {
  if (!trained_) return "(untrained)";
  std::string out = "transition matrix (rows=from):\n";
  for (size_t i = 0; i < states_.size(); ++i) {
    out += StrFormat("  %-14s", states_[i].c_str());
    auto dist = TransitionDistribution(states_[i]);
    for (const auto& [state, p] : *dist) {
      out += StrFormat(" %s:%.3f", state.c_str(), p);
    }
    out += "\n";
  }
  return out;
}

Result<TrajectoryEvalReport> EvaluateTrajectories(
    const MarkovTrajectoryModel& model,
    const std::vector<std::vector<std::string>>& test_sequences) {
  TrajectoryEvalReport report;
  DDGMS_ASSIGN_OR_RETURN(std::string majority, model.MajorityState());
  for (const auto& seq : test_sequences) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      Result<std::string> predicted = model.PredictNext(seq[i]);
      if (!predicted.ok()) continue;  // unseen state in test data
      ++report.transitions;
      if (*predicted == seq[i + 1]) ++report.model_correct;
      if (majority == seq[i + 1]) ++report.baseline_correct;
    }
  }
  if (report.transitions > 0) {
    report.model_accuracy = static_cast<double>(report.model_correct) /
                            static_cast<double>(report.transitions);
    report.baseline_accuracy =
        static_cast<double>(report.baseline_correct) /
        static_cast<double>(report.transitions);
  }
  return report;
}

}  // namespace ddgms::predict
