#ifndef DDGMS_PREDICT_MARKOV_H_
#define DDGMS_PREDICT_MARKOV_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::predict {

/// First-order Markov model over qualitative disease states — the
/// paper's Prediction feature: "use the warehouse to predict the
/// subsequent phase of a patient affected by a medical condition based
/// on past records of other patients in similar circumstances".
///
/// States are discretised bands (e.g. FBG "very good" / "high" /
/// "preDiabetic" / "Diabetic"); training extracts each patient's
/// date-ordered state sequence and counts transitions.
class MarkovTrajectoryModel {
 public:
  explicit MarkovTrajectoryModel(double laplace_alpha = 1.0)
      : alpha_(laplace_alpha) {}

  /// Higher-order variant: condition on the last `order` states
  /// (composite contexts), backing off to shorter contexts (ultimately
  /// order 1) when a context was never observed. order must be >= 1.
  MarkovTrajectoryModel(size_t order, double laplace_alpha)
      : alpha_(laplace_alpha), order_(order == 0 ? 1 : order) {}

  size_t order() const { return order_; }

  /// Most likely next state given the last up-to-`order` states of a
  /// patient's history (pass the most recent state last). Unseen
  /// contexts back off; an unseen final state is an error.
  Result<std::string> PredictNextFromHistory(
      const std::vector<std::string>& history) const;

  /// Trains from a table of visits: entity id, visit date and state
  /// columns. Rows with nulls in any of the three are skipped; entities
  /// with fewer than two visits contribute priors only.
  Status Train(const Table& table, const std::string& entity_column,
               const std::string& date_column,
               const std::string& state_column);

  /// Trains directly from per-entity ordered state sequences.
  Status TrainFromSequences(
      const std::vector<std::vector<std::string>>& sequences);

  /// All states seen at training time.
  const std::vector<std::string>& states() const { return states_; }

  /// P(next | current) over all states, Laplace-smoothed.
  Result<std::vector<std::pair<std::string, double>>>
  TransitionDistribution(const std::string& current) const;

  /// Most likely next state.
  Result<std::string> PredictNext(const std::string& current) const;

  /// Distribution after `steps` transitions from `current`.
  Result<std::vector<std::pair<std::string, double>>> PredictAfter(
      const std::string& current, size_t steps) const;

  /// Log-likelihood of a state sequence under the model (first state via
  /// the stationary/empirical prior).
  Result<double> SequenceLogLikelihood(
      const std::vector<std::string>& sequence) const;

  /// The overall most frequent next-state (majority baseline for
  /// evaluation).
  Result<std::string> MajorityState() const;

  /// Pretty transition matrix for reports.
  std::string ToString() const;

 private:
  Result<size_t> StateIndex(const std::string& state) const;

  double alpha_;
  size_t order_ = 1;
  std::vector<std::string> states_;
  std::unordered_map<std::string, size_t> state_index_;
  std::vector<std::vector<size_t>> transition_counts_;
  std::vector<size_t> state_counts_;  // occurrences (prior)
  /// Higher-order context counts: joined context -> next-state counts.
  std::unordered_map<std::string, std::vector<size_t>> context_counts_;
  bool trained_ = false;
};

/// Next-state prediction accuracy over held-out sequences, reported for
/// the model and the majority baseline (bench A3).
struct TrajectoryEvalReport {
  size_t transitions = 0;
  size_t model_correct = 0;
  size_t baseline_correct = 0;
  double model_accuracy = 0.0;
  double baseline_accuracy = 0.0;
};

Result<TrajectoryEvalReport> EvaluateTrajectories(
    const MarkovTrajectoryModel& model,
    const std::vector<std::vector<std::string>>& test_sequences);

/// Extracts per-entity date-ordered state sequences from a visits table
/// (shared by Train and evaluation splits).
Result<std::vector<std::vector<std::string>>> ExtractSequences(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& state_column);

}  // namespace ddgms::predict

#endif  // DDGMS_PREDICT_MARKOV_H_
