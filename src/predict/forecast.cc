#include "predict/forecast.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ddgms::predict {

namespace {

struct Reading {
  int32_t days;
  double value;
};

Result<std::map<std::string, std::vector<Reading>>> CollectSeries(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column) {
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* entity,
                         table.ColumnByName(entity_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* date,
                         table.ColumnByName(date_column));
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* value,
                         table.ColumnByName(value_column));
  if (date->type() != DataType::kDate) {
    return Status::InvalidArgument("column '" + date_column +
                                   "' is not a date column");
  }
  std::map<std::string, std::vector<Reading>> series;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (entity->IsNull(i) || date->IsNull(i) || value->IsNull(i)) continue;
    DDGMS_ASSIGN_OR_RETURN(double v, value->NumericAt(i));
    series[entity->GetValue(i).ToString()].push_back(
        Reading{date->DateAt(i).days_since_epoch(), v});
  }
  for (auto& [ent, readings] : series) {
    std::stable_sort(readings.begin(), readings.end(),
                     [](const Reading& a, const Reading& b) {
                       return a.days < b.days;
                     });
  }
  return series;
}

/// Least-squares line through the readings (flat for n == 1 or zero
/// date spread).
std::pair<double, double> FitLine(const std::vector<Reading>& readings) {
  const double n = static_cast<double>(readings.size());
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (const Reading& r : readings) {
    double x = static_cast<double>(r.days);
    sum_x += x;
    sum_y += r.value;
    sum_xx += x * x;
    sum_xy += x * r.value;
  }
  double denom = n * sum_xx - sum_x * sum_x;
  if (std::fabs(denom) < 1e-9) {
    return {sum_y / n, 0.0};  // flat line at the mean
  }
  double slope = (n * sum_xy - sum_x * sum_y) / denom;
  double intercept = (sum_y - slope * sum_x) / n;
  return {intercept, slope};
}

}  // namespace

Status TrendForecaster::Fit(const Table& table,
                            const std::string& entity_column,
                            const std::string& date_column,
                            const std::string& value_column) {
  DDGMS_ASSIGN_OR_RETURN(
      auto series,
      CollectSeries(table, entity_column, date_column, value_column));
  models_.clear();
  for (const auto& [ent, readings] : series) {
    auto [intercept, slope] = FitLine(readings);
    models_[ent] = Line{intercept, slope, readings.size()};
  }
  if (models_.empty()) {
    return Status::InvalidArgument("no usable readings to fit");
  }
  return Status::OK();
}

Result<double> TrendForecaster::Predict(const Value& entity,
                                        const Date& when) const {
  auto it = models_.find(entity.ToString());
  if (it == models_.end()) {
    return Status::NotFound("no model for entity '" + entity.ToString() +
                            "'");
  }
  return it->second.intercept +
         it->second.slope_per_day *
             static_cast<double>(when.days_since_epoch());
}

Result<double> TrendForecaster::SlopePerYear(const Value& entity) const {
  auto it = models_.find(entity.ToString());
  if (it == models_.end()) {
    return Status::NotFound("no model for entity '" + entity.ToString() +
                            "'");
  }
  return it->second.slope_per_day * 365.25;
}

Result<ForecastEvalReport> EvaluateForecaster(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column) {
  DDGMS_ASSIGN_OR_RETURN(
      auto series,
      CollectSeries(table, entity_column, date_column, value_column));
  ForecastEvalReport report;
  double model_err = 0.0;
  double baseline_err = 0.0;
  for (const auto& [ent, readings] : series) {
    if (readings.size() < 3) continue;
    std::vector<Reading> train(readings.begin(), readings.end() - 1);
    const Reading& target = readings.back();
    auto [intercept, slope] = FitLine(train);
    double predicted =
        intercept + slope * static_cast<double>(target.days);
    model_err += std::fabs(predicted - target.value);
    baseline_err += std::fabs(train.back().value - target.value);
    ++report.evaluated;
  }
  if (report.evaluated > 0) {
    report.model_mae = model_err / static_cast<double>(report.evaluated);
    report.baseline_mae =
        baseline_err / static_cast<double>(report.evaluated);
  }
  return report;
}

}  // namespace ddgms::predict
