#ifndef DDGMS_PREDICT_FORECAST_H_
#define DDGMS_PREDICT_FORECAST_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::predict {

/// Numeric trajectory forecasting: a per-patient least-squares line over
/// (visit date, measure) pairs, predicting the measure at a future date.
/// Complements the qualitative Markov model — "even well known disease
/// trajectories can be validated with the DD-DGMS approach".
class TrendForecaster {
 public:
  TrendForecaster() = default;

  /// Fits per-entity lines from a visits table. Entities with a single
  /// reading get a flat line at that value.
  Status Fit(const Table& table, const std::string& entity_column,
             const std::string& date_column,
             const std::string& value_column);

  /// Predicted value for an entity at `when`. NotFound for entities
  /// absent from training.
  Result<double> Predict(const Value& entity, const Date& when) const;

  /// Per-entity slope in units/year (NotFound if unseen).
  Result<double> SlopePerYear(const Value& entity) const;

  size_t num_entities() const { return models_.size(); }

 private:
  struct Line {
    double intercept = 0.0;  // value at epoch_days = 0
    double slope_per_day = 0.0;
    size_t readings = 0;
  };

  std::unordered_map<std::string, Line> models_;  // key: entity string
};

/// Forecast-quality report: mean absolute error of the forecaster vs a
/// carry-last-value-forward baseline, over held-out final visits.
struct ForecastEvalReport {
  size_t evaluated = 0;
  double model_mae = 0.0;
  double baseline_mae = 0.0;
};

/// For each entity with >= 3 readings: fit on all but the final reading
/// and predict the final one; the baseline predicts the previous value.
Result<ForecastEvalReport> EvaluateForecaster(
    const Table& table, const std::string& entity_column,
    const std::string& date_column, const std::string& value_column);

}  // namespace ddgms::predict

#endif  // DDGMS_PREDICT_FORECAST_H_
