#ifndef DDGMS_PREDICT_SIMILARITY_H_
#define DDGMS_PREDICT_SIMILARITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace ddgms::predict {

/// k-nearest-neighbour prediction over mixed clinical attributes using
/// Gower distance — "past records of other patients in similar
/// circumstances". Numeric attributes contribute |a-b|/range; categorical
/// and boolean attributes contribute 0/1; pairs where either side is
/// null are skipped and the distance renormalized.
class PatientSimilarityPredictor {
 public:
  struct Options {
    size_t k = 5;
    /// Weight votes by 1/(distance + epsilon) instead of uniformly.
    bool distance_weighted = true;
  };

  PatientSimilarityPredictor() : options_(Options()) {}
  explicit PatientSimilarityPredictor(Options options)
      : options_(options) {}

  /// Indexes the reference cohort. `feature_columns` may mix numeric,
  /// string, bool and date columns; `label_column` is the outcome to
  /// predict. The table is copied.
  Status Fit(const Table& table,
             const std::vector<std::string>& feature_columns,
             const std::string& label_column);

  /// Predicts the outcome for a query row (values in feature-column
  /// order; nulls allowed).
  Result<std::string> Predict(const std::vector<Value>& query) const;

  /// The k nearest reference rows with distances (for explanation —
  /// "patients like this one").
  struct Neighbour {
    size_t row = 0;
    double distance = 0.0;
    std::string label;
  };
  Result<std::vector<Neighbour>> NearestNeighbours(
      const std::vector<Value>& query, size_t k) const;

  /// Gower distance between a query and one reference row (exposed for
  /// testing).
  Result<double> Distance(const std::vector<Value>& query,
                          size_t row) const;

 private:
  Options options_;
  std::vector<std::string> feature_names_;
  std::vector<DataType> feature_types_;
  std::vector<double> ranges_;  // per numeric feature; 0 for categorical
  std::vector<std::vector<Value>> reference_;  // [row][feature]
  std::vector<std::string> labels_;
  bool fitted_ = false;
};

}  // namespace ddgms::predict

#endif  // DDGMS_PREDICT_SIMILARITY_H_
