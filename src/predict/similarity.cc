#include "predict/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"

namespace ddgms::predict {

Status PatientSimilarityPredictor::Fit(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  feature_names_ = feature_columns;
  feature_types_.clear();
  ranges_.clear();
  reference_.clear();
  labels_.clear();

  std::vector<const ColumnVector*> cols;
  cols.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           table.ColumnByName(name));
    cols.push_back(col);
    feature_types_.push_back(col->type());
    if (IsNumeric(col->type())) {
      Value min = col->Min();
      Value max = col->Max();
      double range = 0.0;
      if (!min.is_null() && !max.is_null()) {
        range = max.AsDouble().value_or(0.0) - min.AsDouble().value_or(0.0);
      }
      ranges_.push_back(range > 0.0 ? range : 1.0);
    } else {
      ranges_.push_back(0.0);
    }
  }
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* label_col,
                         table.ColumnByName(label_column));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (label_col->IsNull(i)) continue;
    std::vector<Value> row;
    row.reserve(cols.size());
    for (const ColumnVector* col : cols) {
      row.push_back(col->GetValue(i));
    }
    reference_.push_back(std::move(row));
    labels_.push_back(label_col->GetValue(i).ToString());
  }
  if (reference_.empty()) {
    return Status::InvalidArgument("no labeled reference rows");
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> PatientSimilarityPredictor::Distance(
    const std::vector<Value>& query, size_t row) const {
  if (!fitted_) {
    return Status::FailedPrecondition("predictor not fitted");
  }
  if (row >= reference_.size()) {
    return Status::OutOfRange("reference row out of range");
  }
  if (query.size() != feature_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("query has %zu features; predictor expects %zu",
                  query.size(), feature_names_.size()));
  }
  double total = 0.0;
  size_t used = 0;
  const std::vector<Value>& ref = reference_[row];
  for (size_t f = 0; f < query.size(); ++f) {
    if (query[f].is_null() || ref[f].is_null()) continue;
    ++used;
    if (IsNumeric(feature_types_[f])) {
      double a = query[f].AsDouble().value_or(0.0);
      double b = ref[f].AsDouble().value_or(0.0);
      double d = std::fabs(a - b) / ranges_[f];
      total += std::min(d, 1.0);
    } else {
      total += query[f].Equals(ref[f]) ? 0.0 : 1.0;
    }
  }
  if (used == 0) return 1.0;  // nothing comparable: maximally distant
  return total / static_cast<double>(used);
}

Result<std::vector<PatientSimilarityPredictor::Neighbour>>
PatientSimilarityPredictor::NearestNeighbours(
    const std::vector<Value>& query, size_t k) const {
  if (!fitted_) {
    return Status::FailedPrecondition("predictor not fitted");
  }
  std::vector<Neighbour> all;
  all.reserve(reference_.size());
  for (size_t i = 0; i < reference_.size(); ++i) {
    DDGMS_ASSIGN_OR_RETURN(double d, Distance(query, i));
    all.push_back(Neighbour{i, d, labels_[i]});
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(take),
                    all.end(),
                    [](const Neighbour& a, const Neighbour& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.row < b.row;
                    });
  all.resize(take);
  return all;
}

Result<std::string> PatientSimilarityPredictor::Predict(
    const std::vector<Value>& query) const {
  DDGMS_ASSIGN_OR_RETURN(auto neighbours,
                         NearestNeighbours(query, options_.k));
  if (neighbours.empty()) {
    return Status::FailedPrecondition("no neighbours available");
  }
  std::unordered_map<std::string, double> votes;
  for (const Neighbour& n : neighbours) {
    double w =
        options_.distance_weighted ? 1.0 / (n.distance + 1e-6) : 1.0;
    votes[n.label] += w;
  }
  std::string best;
  double best_w = -1.0;
  for (const auto& [label, w] : votes) {
    if (w > best_w || (w == best_w && label < best)) {
      best_w = w;
      best = label;
    }
  }
  return best;
}

}  // namespace ddgms::predict
