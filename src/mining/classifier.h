#ifndef DDGMS_MINING_CLASSIFIER_H_
#define DDGMS_MINING_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// Interface shared by the categorical classifiers (naive Bayes, decision
/// tree, AWSum). Train then Predict; Predict before Train is an error.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Learns from the dataset. Re-training replaces the previous model.
  virtual Status Train(const CategoricalDataset& data) = 0;

  /// Predicts the label of one feature row (same order as
  /// feature_names at training time).
  virtual Result<std::string> Predict(
      const std::vector<std::string>& row) const = 0;

  /// Algorithm name for reports.
  virtual std::string name() const = 0;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_CLASSIFIER_H_
