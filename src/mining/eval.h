#ifndef DDGMS_MINING_EVAL_H_
#define DDGMS_MINING_EVAL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "mining/classifier.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// Confusion matrix + derived metrics for a classification run.
struct EvalReport {
  size_t total = 0;
  size_t correct = 0;
  double accuracy = 0.0;
  /// confusion[actual][predicted] = count
  std::map<std::string, std::map<std::string, size_t>> confusion;
  /// Per-class precision/recall/F1.
  struct ClassMetrics {
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    size_t support = 0;
  };
  std::map<std::string, ClassMetrics> per_class;

  std::string ToString() const;
};

/// Evaluates a trained classifier on a test set.
Result<EvalReport> Evaluate(const Classifier& model,
                            const CategoricalDataset& test);

/// Builds the report from parallel actual/predicted label vectors (used
/// for the numeric models too).
Result<EvalReport> EvaluateLabels(const std::vector<std::string>& actual,
                                  const std::vector<std::string>& predicted);

/// k-fold cross-validated accuracy of a classifier factory.
/// `make_model` is invoked per fold and must return a fresh classifier.
Result<std::vector<double>> CrossValidate(
    const CategoricalDataset& data, size_t folds, uint64_t seed,
    const std::function<std::unique_ptr<Classifier>()>& make_model);

/// Majority-class baseline accuracy (the floor any model must beat).
Result<double> MajorityBaselineAccuracy(const CategoricalDataset& train,
                                        const CategoricalDataset& test);

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_EVAL_H_
