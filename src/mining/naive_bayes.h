#ifndef DDGMS_MINING_NAIVE_BAYES_H_
#define DDGMS_MINING_NAIVE_BAYES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mining/classifier.h"

namespace ddgms::mining {

/// Multinomial naive Bayes over categorical features with Laplace
/// smoothing. Missing feature values (CategoricalDataset::kMissing) are
/// ignored at both training and prediction time.
class NaiveBayesClassifier final : public Classifier {
 public:
  explicit NaiveBayesClassifier(double laplace_alpha = 1.0)
      : alpha_(laplace_alpha) {}

  Status Train(const CategoricalDataset& data) override;
  Result<std::string> Predict(
      const std::vector<std::string>& row) const override;
  std::string name() const override { return "naive_bayes"; }

  /// Log-posterior (unnormalized) per class for one row; useful for
  /// ranking and calibration inspection.
  Result<std::vector<std::pair<std::string, double>>> Scores(
      const std::vector<std::string>& row) const;

  /// Normalized class posterior P(class | observed features).
  Result<std::vector<std::pair<std::string, double>>> Posterior(
      const std::vector<std::string>& row) const;

  /// Value of information for data acquisition (the DGMS phase-4 loop:
  /// "data acquisition queries are used as feedback to reduce ambiguity
  /// of decisions"). For each feature currently missing in `row`,
  /// returns the expected reduction in posterior class entropy from
  /// observing it — i.e. which test to order next. Features already
  /// observed score 0. Sorted descending.
  struct AcquisitionValue {
    std::string feature;
    double expected_entropy_reduction = 0.0;  // bits
  };
  Result<std::vector<AcquisitionValue>> ValueOfInformation(
      const std::vector<std::string>& row) const;

 private:
  double alpha_;
  size_t num_features_ = 0;
  std::vector<std::string> feature_names_;
  std::vector<std::string> classes_;
  std::vector<double> class_log_prior_;
  // conditional_[feature][class_index][value] = count
  std::vector<std::vector<std::unordered_map<std::string, size_t>>>
      counts_;
  std::vector<size_t> class_totals_;  // rows per class
  // distinct values per feature (for smoothing denominators)
  std::vector<size_t> feature_arity_;
  bool trained_ = false;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_NAIVE_BAYES_H_
