#include "mining/dataset.h"

#include <unordered_set>

namespace ddgms::mining {

Result<CategoricalDataset> CategoricalDataset::FromTable(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  CategoricalDataset ds;
  ds.feature_names = feature_columns;
  std::vector<const ColumnVector*> cols;
  cols.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           table.ColumnByName(name));
    cols.push_back(col);
  }
  DDGMS_ASSIGN_OR_RETURN(const ColumnVector* label_col,
                         table.ColumnByName(label_column));
  const size_t n = table.num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (label_col->IsNull(i)) continue;
    std::vector<std::string> row;
    row.reserve(cols.size());
    for (const ColumnVector* col : cols) {
      row.push_back(col->IsNull(i) ? std::string(kMissing)
                                   : col->GetValue(i).ToString());
    }
    ds.rows.push_back(std::move(row));
    ds.labels.push_back(label_col->GetValue(i).ToString());
  }
  return ds;
}

std::vector<std::string> CategoricalDataset::DistinctLabels() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const std::string& l : labels) {
    if (seen.insert(l).second) out.push_back(l);
  }
  return out;
}

Result<std::pair<CategoricalDataset, CategoricalDataset>>
CategoricalDataset::Split(double test_fraction, Rng* rng) const {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0,1)");
  }
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t test_n = static_cast<size_t>(
      static_cast<double>(rows.size()) * test_fraction);
  CategoricalDataset train;
  CategoricalDataset test;
  train.feature_names = feature_names;
  test.feature_names = feature_names;
  for (size_t k = 0; k < order.size(); ++k) {
    CategoricalDataset& dst = k < test_n ? test : train;
    dst.rows.push_back(rows[order[k]]);
    dst.labels.push_back(labels[order[k]]);
  }
  return std::make_pair(std::move(train), std::move(test));
}

Result<NumericDataset> NumericDataset::FromTable(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  NumericDataset ds;
  ds.feature_names = feature_columns;
  std::vector<const ColumnVector*> cols;
  cols.reserve(feature_columns.size());
  for (const std::string& name : feature_columns) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           table.ColumnByName(name));
    if (!IsNumeric(col->type()) && col->type() != DataType::kBool) {
      return Status::InvalidArgument("feature column '" + name +
                                     "' is not numeric");
    }
    cols.push_back(col);
  }
  const ColumnVector* label_col = nullptr;
  if (!label_column.empty()) {
    DDGMS_ASSIGN_OR_RETURN(label_col, table.ColumnByName(label_column));
  }
  const size_t n = table.num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (label_col != nullptr && label_col->IsNull(i)) continue;
    bool complete = true;
    std::vector<double> row;
    row.reserve(cols.size());
    for (const ColumnVector* col : cols) {
      if (col->IsNull(i)) {
        complete = false;
        break;
      }
      Result<double> v = col->NumericAt(i);
      if (!v.ok()) return v.status();
      row.push_back(*v);
    }
    if (!complete) continue;
    ds.rows.push_back(std::move(row));
    if (label_col != nullptr) {
      ds.labels.push_back(label_col->GetValue(i).ToString());
    }
  }
  return ds;
}

Result<std::pair<NumericDataset, NumericDataset>> NumericDataset::Split(
    double test_fraction, Rng* rng) const {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0,1)");
  }
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t test_n = static_cast<size_t>(
      static_cast<double>(rows.size()) * test_fraction);
  NumericDataset train;
  NumericDataset test;
  train.feature_names = feature_names;
  test.feature_names = feature_names;
  for (size_t k = 0; k < order.size(); ++k) {
    NumericDataset& dst = k < test_n ? test : train;
    dst.rows.push_back(rows[order[k]]);
    if (!labels.empty()) dst.labels.push_back(labels[order[k]]);
  }
  return std::make_pair(std::move(train), std::move(test));
}

}  // namespace ddgms::mining
