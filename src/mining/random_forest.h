#ifndef DDGMS_MINING_RANDOM_FOREST_H_
#define DDGMS_MINING_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mining/classifier.h"
#include "mining/decision_tree.h"

namespace ddgms::mining {

/// Bagged ensemble of ID3 trees: each tree trains on a bootstrap sample
/// with a random subset of the features hidden (the remaining values are
/// replaced by the missing sentinel, which the trees already route to
/// their majority branches). Prediction is majority vote.
class RandomForestClassifier final : public Classifier {
 public:
  struct Options {
    size_t num_trees = 25;
    /// Fraction of features visible to each tree (at least one).
    double feature_fraction = 0.7;
    uint64_t seed = 1234;
    DecisionTreeOptions tree;
  };

  RandomForestClassifier() : options_(Options()) {}
  explicit RandomForestClassifier(Options options)
      : options_(std::move(options)) {}

  Status Train(const CategoricalDataset& data) override;
  Result<std::string> Predict(
      const std::vector<std::string>& row) const override;
  std::string name() const override { return "random_forest"; }

  size_t num_trees() const { return trees_.size(); }

 private:
  Options options_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  /// Per-tree feature visibility masks (true = visible).
  std::vector<std::vector<bool>> masks_;
  size_t num_features_ = 0;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_RANDOM_FOREST_H_
