#include "mining/awsum.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace ddgms::mining {

Status AwsumClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  feature_names_ = data.feature_names;
  classes_ = data.DistinctLabels();
  std::unordered_map<std::string, size_t> class_index;
  for (size_t c = 0; c < classes_.size(); ++c) {
    class_index[classes_[c]] = c;
  }
  value_counts_.assign(feature_names_.size(), {});
  train_rows_ = data.rows;
  train_label_ids_.resize(data.labels.size());
  for (size_t i = 0; i < data.rows.size(); ++i) {
    size_t c = class_index.at(data.labels[i]);
    train_label_ids_[i] = c;
    for (size_t f = 0; f < feature_names_.size(); ++f) {
      const std::string& v = data.rows[i][f];
      if (v == CategoricalDataset::kMissing) continue;
      auto& counts = value_counts_[f][v];
      if (counts.empty()) counts.assign(classes_.size(), 0);
      counts[c]++;
    }
  }
  class_priors_.assign(classes_.size(), 0.0);
  for (size_t c : train_label_ids_) class_priors_[c] += 1.0;
  for (double& p : class_priors_) {
    p /= static_cast<double>(train_label_ids_.size());
  }
  trained_ = true;
  return Status::OK();
}

Result<std::string> AwsumClassifier::Predict(
    const std::vector<std::string>& row) const {
  if (!trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  if (row.size() != feature_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features; model expects %zu", row.size(),
                  feature_names_.size()));
  }
  std::vector<double> scores(classes_.size(), 0.0);
  for (size_t f = 0; f < feature_names_.size(); ++f) {
    const std::string& v = row[f];
    if (v == CategoricalDataset::kMissing) continue;
    auto it = value_counts_[f].find(v);
    if (it == value_counts_[f].end()) continue;  // unseen value
    double total = 0.0;
    for (size_t n : it->second) total += static_cast<double>(n);
    for (size_t c = 0; c < classes_.size(); ++c) {
      double p = (static_cast<double>(it->second[c]) + alpha_) /
                 (total + alpha_ * static_cast<double>(classes_.size()));
      // Prior-normalized influence (lift): under class imbalance, raw
      // posterior sums degenerate to the majority class.
      scores[c] += p / class_priors_[c];
    }
  }
  size_t best = 0;
  for (size_t c = 1; c < classes_.size(); ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return classes_[best];
}

Result<std::vector<AwsumClassifier::Influence>>
AwsumClassifier::Influences() const {
  if (!trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  std::vector<Influence> out;
  for (size_t f = 0; f < feature_names_.size(); ++f) {
    for (const auto& [value, counts] : value_counts_[f]) {
      double total = 0.0;
      for (size_t n : counts) total += static_cast<double>(n);
      for (size_t c = 0; c < classes_.size(); ++c) {
        Influence inf;
        inf.feature = feature_names_[f];
        inf.value = value;
        inf.toward_class = classes_[c];
        inf.influence =
            (static_cast<double>(counts[c]) + alpha_) /
            (total + alpha_ * static_cast<double>(classes_.size()));
        inf.support = static_cast<size_t>(total);
        out.push_back(std::move(inf));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Influence& a, const Influence& b) {
              if (a.influence != b.influence) {
                return a.influence > b.influence;
              }
              return a.support > b.support;
            });
  return out;
}

Result<std::vector<AwsumClassifier::Interaction>>
AwsumClassifier::Interactions(size_t min_support) const {
  if (!trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  // Single-value posteriors for the lift baseline.
  auto single_influence = [&](size_t f, const std::string& v,
                              size_t c) -> double {
    auto it = value_counts_[f].find(v);
    if (it == value_counts_[f].end()) return 0.0;
    double total = 0.0;
    for (size_t n : it->second) total += static_cast<double>(n);
    return (static_cast<double>(it->second[c]) + alpha_) /
           (total + alpha_ * static_cast<double>(classes_.size()));
  };

  // Joint counts over feature pairs.
  struct PairKey {
    size_t fa;
    std::string va;
    size_t fb;
    std::string vb;
    bool operator<(const PairKey& o) const {
      if (fa != o.fa) return fa < o.fa;
      if (va != o.va) return va < o.va;
      if (fb != o.fb) return fb < o.fb;
      return vb < o.vb;
    }
  };
  std::map<PairKey, std::vector<size_t>> joint;
  for (size_t i = 0; i < train_rows_.size(); ++i) {
    const auto& row = train_rows_[i];
    for (size_t fa = 0; fa < row.size(); ++fa) {
      if (row[fa] == CategoricalDataset::kMissing) continue;
      for (size_t fb = fa + 1; fb < row.size(); ++fb) {
        if (row[fb] == CategoricalDataset::kMissing) continue;
        auto& counts = joint[PairKey{fa, row[fa], fb, row[fb]}];
        if (counts.empty()) counts.assign(classes_.size(), 0);
        counts[train_label_ids_[i]]++;
      }
    }
  }

  std::vector<Interaction> out;
  for (const auto& [key, counts] : joint) {
    double total = 0.0;
    for (size_t n : counts) total += static_cast<double>(n);
    if (static_cast<size_t>(total) < min_support) continue;
    for (size_t c = 0; c < classes_.size(); ++c) {
      double joint_p =
          (static_cast<double>(counts[c]) + alpha_) /
          (total + alpha_ * static_cast<double>(classes_.size()));
      double single_a = single_influence(key.fa, key.va, c);
      double single_b = single_influence(key.fb, key.vb, c);
      double max_single = std::max(single_a, single_b);
      double lift = joint_p - max_single;
      if (lift <= 0.0) continue;
      Interaction inter;
      inter.feature_a = feature_names_[key.fa];
      inter.value_a = key.va;
      inter.feature_b = feature_names_[key.fb];
      inter.value_b = key.vb;
      inter.toward_class = classes_[c];
      inter.joint_influence = joint_p;
      inter.max_single_influence = max_single;
      inter.lift = lift;
      inter.support = static_cast<size_t>(total);
      out.push_back(std::move(inter));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Interaction& a, const Interaction& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.support > b.support;
            });
  return out;
}

}  // namespace ddgms::mining
