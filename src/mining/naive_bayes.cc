#include "mining/naive_bayes.h"

#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace ddgms::mining {

Status NaiveBayesClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  num_features_ = data.feature_names.size();
  feature_names_ = data.feature_names;
  classes_ = data.DistinctLabels();
  std::unordered_map<std::string, size_t> class_index;
  for (size_t c = 0; c < classes_.size(); ++c) {
    class_index[classes_[c]] = c;
  }
  class_totals_.assign(classes_.size(), 0);
  counts_.assign(num_features_,
                 std::vector<std::unordered_map<std::string, size_t>>(
                     classes_.size()));
  std::vector<std::unordered_set<std::string>> values(num_features_);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    size_t c = class_index.at(data.labels[i]);
    ++class_totals_[c];
    for (size_t f = 0; f < num_features_; ++f) {
      const std::string& v = data.rows[i][f];
      if (v == CategoricalDataset::kMissing) continue;
      counts_[f][c][v]++;
      values[f].insert(v);
    }
  }
  feature_arity_.resize(num_features_);
  for (size_t f = 0; f < num_features_; ++f) {
    feature_arity_[f] = values[f].empty() ? 1 : values[f].size();
  }
  class_log_prior_.resize(classes_.size());
  double total = static_cast<double>(data.rows.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    class_log_prior_[c] =
        std::log(static_cast<double>(class_totals_[c]) / total);
  }
  trained_ = true;
  return Status::OK();
}

Result<std::vector<std::pair<std::string, double>>>
NaiveBayesClassifier::Scores(const std::vector<std::string>& row) const {
  if (!trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  if (row.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features; model expects %zu", row.size(),
                  num_features_));
  }
  std::vector<std::pair<std::string, double>> scores;
  scores.reserve(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    double log_p = class_log_prior_[c];
    for (size_t f = 0; f < num_features_; ++f) {
      const std::string& v = row[f];
      if (v == CategoricalDataset::kMissing) continue;
      auto it = counts_[f][c].find(v);
      double count = it == counts_[f][c].end()
                         ? 0.0
                         : static_cast<double>(it->second);
      double denom =
          static_cast<double>(class_totals_[c]) +
          alpha_ * static_cast<double>(feature_arity_[f]);
      log_p += std::log((count + alpha_) / denom);
    }
    scores.emplace_back(classes_[c], log_p);
  }
  return scores;
}

Result<std::vector<std::pair<std::string, double>>>
NaiveBayesClassifier::Posterior(
    const std::vector<std::string>& row) const {
  DDGMS_ASSIGN_OR_RETURN(auto scores, Scores(row));
  // Log-sum-exp normalization.
  double max_log = scores[0].second;
  for (const auto& [cls, lp] : scores) max_log = std::max(max_log, lp);
  double total = 0.0;
  for (auto& [cls, lp] : scores) {
    lp = std::exp(lp - max_log);
    total += lp;
  }
  for (auto& [cls, lp] : scores) lp /= total;
  return scores;
}

namespace {

double PosteriorEntropy(
    const std::vector<std::pair<std::string, double>>& posterior) {
  double h = 0.0;
  for (const auto& [cls, p] : posterior) {
    if (p > 1e-15) h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

Result<std::vector<NaiveBayesClassifier::AcquisitionValue>>
NaiveBayesClassifier::ValueOfInformation(
    const std::vector<std::string>& row) const {
  DDGMS_ASSIGN_OR_RETURN(auto posterior, Posterior(row));
  double current_entropy = PosteriorEntropy(posterior);

  std::vector<AcquisitionValue> out;
  std::vector<std::string> probe = row;
  for (size_t f = 0; f < num_features_; ++f) {
    if (row[f] != CategoricalDataset::kMissing) continue;
    // Candidate values of feature f with their evidence-conditioned
    // probabilities: P(v | posterior) = sum_c P(c|row) P(v|c).
    std::unordered_map<std::string, double> value_prob;
    for (size_t c = 0; c < classes_.size(); ++c) {
      double class_p = posterior[c].second;
      double denom = static_cast<double>(class_totals_[c]) +
                     alpha_ * static_cast<double>(feature_arity_[f]);
      for (const auto& [value, count] : counts_[f][c]) {
        value_prob[value] +=
            class_p * (static_cast<double>(count) + alpha_) / denom;
      }
    }
    double total_vp = 0.0;
    for (const auto& [value, p] : value_prob) total_vp += p;
    if (total_vp <= 0.0) continue;

    double expected_entropy = 0.0;
    for (const auto& [value, p] : value_prob) {
      probe[f] = value;
      auto hypothetical = Posterior(probe);
      if (!hypothetical.ok()) continue;
      expected_entropy +=
          (p / total_vp) * PosteriorEntropy(*hypothetical);
    }
    probe[f] = CategoricalDataset::kMissing;
    out.push_back(AcquisitionValue{
        feature_names_[f],
        std::max(0.0, current_entropy - expected_entropy)});
  }
  std::sort(out.begin(), out.end(),
            [](const AcquisitionValue& a, const AcquisitionValue& b) {
              if (a.expected_entropy_reduction !=
                  b.expected_entropy_reduction) {
                return a.expected_entropy_reduction >
                       b.expected_entropy_reduction;
              }
              return a.feature < b.feature;
            });
  return out;
}

Result<std::string> NaiveBayesClassifier::Predict(
    const std::vector<std::string>& row) const {
  DDGMS_ASSIGN_OR_RETURN(auto scores, Scores(row));
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c].second > scores[best].second) best = c;
  }
  return scores[best].first;
}

}  // namespace ddgms::mining
