#include "mining/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "mining/eval.h"

namespace ddgms::mining {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

double Entropy(const std::unordered_map<std::string, size_t>& counts,
               size_t total) {
  double h = 0.0;
  for (const auto& [value, n] : counts) {
    if (n == 0) continue;
    double p = static_cast<double>(n) / static_cast<double>(total);
    h -= p * Log2(p);
  }
  return h;
}

double MeanAccuracy(const std::vector<double>& accs) {
  double sum = 0.0;
  for (double a : accs) sum += a;
  return accs.empty() ? 0.0 : sum / static_cast<double>(accs.size());
}

}  // namespace

Result<std::vector<FeatureScore>> RankByInformationGain(
    const CategoricalDataset& data) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  std::unordered_map<std::string, size_t> label_counts;
  for (const std::string& l : data.labels) label_counts[l]++;
  double h_y = Entropy(label_counts, data.labels.size());

  std::vector<FeatureScore> scores;
  scores.reserve(data.feature_names.size());
  for (size_t f = 0; f < data.feature_names.size(); ++f) {
    // Partition labels by feature value (missing = its own value).
    std::unordered_map<std::string,
                       std::unordered_map<std::string, size_t>>
        partitions;
    std::unordered_map<std::string, size_t> partition_sizes;
    for (size_t i = 0; i < data.rows.size(); ++i) {
      const std::string& v = data.rows[i][f];
      partitions[v][data.labels[i]]++;
      partition_sizes[v]++;
    }
    double h_cond = 0.0;
    for (const auto& [value, counts] : partitions) {
      double w = static_cast<double>(partition_sizes[value]) /
                 static_cast<double>(data.rows.size());
      h_cond += w * Entropy(counts, partition_sizes[value]);
    }
    scores.push_back(
        FeatureScore{data.feature_names[f], h_y - h_cond});
  }
  std::sort(scores.begin(), scores.end(),
            [](const FeatureScore& a, const FeatureScore& b) {
              if (a.info_gain != b.info_gain) {
                return a.info_gain > b.info_gain;
              }
              return a.feature < b.feature;
            });
  return scores;
}

Result<CategoricalDataset> ProjectFeatures(
    const CategoricalDataset& data,
    const std::vector<std::string>& features) {
  std::vector<size_t> indices;
  indices.reserve(features.size());
  for (const std::string& name : features) {
    bool found = false;
    for (size_t f = 0; f < data.feature_names.size(); ++f) {
      if (data.feature_names[f] == name) {
        indices.push_back(f);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no feature named '" + name + "'");
    }
  }
  CategoricalDataset out;
  out.feature_names = features;
  out.labels = data.labels;
  out.rows.reserve(data.rows.size());
  for (const auto& row : data.rows) {
    std::vector<std::string> projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Result<FeatureSelectionResult> WrapperFilterSelect(
    const CategoricalDataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    const FeatureSelectionOptions& options) {
  if (options.folds < 2) {
    return Status::InvalidArgument("folds must be >= 2");
  }
  FeatureSelectionResult result;
  DDGMS_ASSIGN_OR_RETURN(result.filter_ranking,
                         RankByInformationGain(data));

  // Filter stage.
  std::vector<std::string> pool;
  for (const FeatureScore& fs : result.filter_ranking) {
    if (pool.size() >= options.filter_top_k) break;
    pool.push_back(fs.feature);
  }

  // Wrapper stage: greedy forward selection by CV accuracy.
  auto subset_score =
      [&](const std::vector<std::string>& subset) -> Result<double> {
    DDGMS_ASSIGN_OR_RETURN(CategoricalDataset projected,
                           ProjectFeatures(data, subset));
    DDGMS_ASSIGN_OR_RETURN(
        std::vector<double> accs,
        CrossValidate(projected, options.folds, options.seed,
                      make_model));
    return MeanAccuracy(accs);
  };

  double best_score = 0.0;
  while (result.selected.size() < options.max_features) {
    std::string best_candidate;
    double best_candidate_score = -1.0;
    for (const std::string& candidate : pool) {
      if (std::find(result.selected.begin(), result.selected.end(),
                    candidate) != result.selected.end()) {
        continue;
      }
      std::vector<std::string> trial = result.selected;
      trial.push_back(candidate);
      DDGMS_ASSIGN_OR_RETURN(double score, subset_score(trial));
      if (score > best_candidate_score) {
        best_candidate_score = score;
        best_candidate = candidate;
      }
    }
    if (best_candidate.empty()) break;
    if (!result.selected.empty() &&
        best_candidate_score < best_score + options.min_improvement) {
      break;
    }
    result.selected.push_back(best_candidate);
    best_score = best_candidate_score;
  }
  result.cv_accuracy = best_score;
  return result;
}

}  // namespace ddgms::mining
