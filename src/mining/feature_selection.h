#ifndef DDGMS_MINING_FEATURE_SELECTION_H_
#define DDGMS_MINING_FEATURE_SELECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mining/classifier.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// Hybrid wrapper-filter feature selection in the spirit of the paper's
/// ref [21] (Huda, Jelinek et al.: "Exploring novel features and
/// decision rules to identify cardiovascular autonomic neuropathy using
/// a Hybrid of Wrapper-Filter based feature selection"):
///
///  1. *filter*: rank features by information gain against the label
///     and keep the top-k;
///  2. *wrapper*: greedy forward selection over the filtered set,
///     scoring candidate subsets by cross-validated accuracy of the
///     caller's classifier.

struct FeatureScore {
  std::string feature;
  double info_gain = 0.0;  // bits
};

/// Information gain of every feature (missing values form their own
/// category), sorted descending.
Result<std::vector<FeatureScore>> RankByInformationGain(
    const CategoricalDataset& data);

/// Restricts a dataset to the named features (order preserved).
Result<CategoricalDataset> ProjectFeatures(
    const CategoricalDataset& data,
    const std::vector<std::string>& features);

struct FeatureSelectionOptions {
  /// Features surviving the filter stage.
  size_t filter_top_k = 12;
  /// Hard cap on the selected subset size.
  size_t max_features = 8;
  /// Cross-validation folds for the wrapper score.
  size_t folds = 3;
  uint64_t seed = 17;
  /// Stop when the best candidate improves CV accuracy by less.
  double min_improvement = 0.002;
};

struct FeatureSelectionResult {
  std::vector<std::string> selected;       // wrapper output, in pick order
  double cv_accuracy = 0.0;                // of the selected subset
  std::vector<FeatureScore> filter_ranking;  // full filter stage output
};

/// Runs the hybrid selection. `make_model` must return a fresh
/// classifier per call (it is trained many times).
Result<FeatureSelectionResult> WrapperFilterSelect(
    const CategoricalDataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    const FeatureSelectionOptions& options = {});

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_FEATURE_SELECTION_H_
