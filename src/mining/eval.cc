#include "mining/eval.h"

#include <memory>
#include <unordered_map>

#include "common/strings.h"

namespace ddgms::mining {

std::string EvalReport::ToString() const {
  std::string out = StrFormat("accuracy %.4f (%zu/%zu)", accuracy, correct,
                              total);
  for (const auto& [cls, m] : per_class) {
    out += StrFormat("\n  %-16s precision %.3f recall %.3f f1 %.3f (n=%zu)",
                     cls.c_str(), m.precision, m.recall, m.f1, m.support);
  }
  return out;
}

Result<EvalReport> EvaluateLabels(
    const std::vector<std::string>& actual,
    const std::vector<std::string>& predicted) {
  if (actual.size() != predicted.size() || actual.empty()) {
    return Status::InvalidArgument(
        "actual/predicted size mismatch or empty");
  }
  EvalReport report;
  report.total = actual.size();
  for (size_t i = 0; i < actual.size(); ++i) {
    report.confusion[actual[i]][predicted[i]]++;
    if (actual[i] == predicted[i]) ++report.correct;
  }
  report.accuracy =
      static_cast<double>(report.correct) / static_cast<double>(report.total);

  // Per-class metrics.
  std::map<std::string, size_t> tp, fp, fn;
  for (const auto& [act, row] : report.confusion) {
    for (const auto& [pred, n] : row) {
      if (act == pred) {
        tp[act] += n;
      } else {
        fn[act] += n;
        fp[pred] += n;
      }
    }
  }
  for (const auto& [act, row] : report.confusion) {
    EvalReport::ClassMetrics m;
    size_t t = tp[act];
    size_t p_denom = t + fp[act];
    size_t r_denom = t + fn[act];
    m.precision = p_denom > 0 ? static_cast<double>(t) /
                                    static_cast<double>(p_denom)
                              : 0.0;
    m.recall = r_denom > 0 ? static_cast<double>(t) /
                                 static_cast<double>(r_denom)
                           : 0.0;
    m.f1 = m.precision + m.recall > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    m.support = r_denom;
    report.per_class[act] = m;
  }
  return report;
}

Result<EvalReport> Evaluate(const Classifier& model,
                            const CategoricalDataset& test) {
  std::vector<std::string> predicted;
  predicted.reserve(test.rows.size());
  for (const auto& row : test.rows) {
    DDGMS_ASSIGN_OR_RETURN(std::string p, model.Predict(row));
    predicted.push_back(std::move(p));
  }
  return EvaluateLabels(test.labels, predicted);
}

Result<std::vector<double>> CrossValidate(
    const CategoricalDataset& data, size_t folds, uint64_t seed,
    const std::function<std::unique_ptr<Classifier>()>& make_model) {
  if (folds < 2 || folds > data.rows.size()) {
    return Status::InvalidArgument("folds must be in [2, n]");
  }
  std::vector<size_t> order(data.rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);

  std::vector<double> accuracies;
  accuracies.reserve(folds);
  for (size_t f = 0; f < folds; ++f) {
    CategoricalDataset train;
    CategoricalDataset test;
    train.feature_names = data.feature_names;
    test.feature_names = data.feature_names;
    for (size_t k = 0; k < order.size(); ++k) {
      CategoricalDataset& dst = (k % folds == f) ? test : train;
      dst.rows.push_back(data.rows[order[k]]);
      dst.labels.push_back(data.labels[order[k]]);
    }
    std::unique_ptr<Classifier> model = make_model();
    DDGMS_RETURN_IF_ERROR(model->Train(train));
    DDGMS_ASSIGN_OR_RETURN(EvalReport report, Evaluate(*model, test));
    accuracies.push_back(report.accuracy);
  }
  return accuracies;
}

Result<double> MajorityBaselineAccuracy(const CategoricalDataset& train,
                                        const CategoricalDataset& test) {
  if (train.labels.empty() || test.labels.empty()) {
    return Status::InvalidArgument("empty train or test set");
  }
  std::unordered_map<std::string, size_t> counts;
  for (const std::string& l : train.labels) counts[l]++;
  std::string majority;
  size_t best = 0;
  for (const auto& [l, n] : counts) {
    if (n > best || (n == best && l < majority)) {
      best = n;
      majority = l;
    }
  }
  size_t correct = 0;
  for (const std::string& l : test.labels) {
    if (l == majority) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test.labels.size());
}

}  // namespace ddgms::mining
