#ifndef DDGMS_MINING_DATASET_H_
#define DDGMS_MINING_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "table/table.h"

namespace ddgms::mining {

/// Categorical learning dataset extracted from a table (typically a
/// warehouse JoinedView, i.e. an OLAP-isolated cube subset — the paper's
/// Data Analytics path). Feature values are stringified; missing cells
/// become the sentinel kMissing.
struct CategoricalDataset {
  static constexpr const char* kMissing = "?";

  std::vector<std::string> feature_names;
  std::vector<std::vector<std::string>> rows;  // [row][feature]
  std::vector<std::string> labels;             // parallel to rows

  size_t size() const { return rows.size(); }

  /// Extracts features + label from a table. Rows with a null label are
  /// skipped; null features become kMissing.
  static Result<CategoricalDataset> FromTable(
      const Table& table, const std::vector<std::string>& feature_columns,
      const std::string& label_column);

  /// Distinct labels in first-appearance order.
  std::vector<std::string> DistinctLabels() const;

  /// Deterministic shuffled split; test_fraction in (0, 1).
  Result<std::pair<CategoricalDataset, CategoricalDataset>> Split(
      double test_fraction, Rng* rng) const;
};

/// Numeric learning dataset (logistic regression, k-means). Rows
/// containing nulls in any selected feature are skipped.
struct NumericDataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;  // empty for unsupervised use

  size_t size() const { return rows.size(); }

  static Result<NumericDataset> FromTable(
      const Table& table, const std::vector<std::string>& feature_columns,
      const std::string& label_column /* "" = unsupervised */);

  Result<std::pair<NumericDataset, NumericDataset>> Split(
      double test_fraction, Rng* rng) const;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_DATASET_H_
