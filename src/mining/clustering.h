#ifndef DDGMS_MINING_CLUSTERING_H_
#define DDGMS_MINING_CLUSTERING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// Result of a clustering run.
struct ClusteringResult {
  std::vector<size_t> assignments;  // cluster id per row
  size_t num_clusters = 0;
  size_t iterations = 0;
  double inertia = 0.0;  // k-means: sum of squared distances to centroid
};

struct KMeansOptions {
  size_t k = 3;
  size_t max_iterations = 100;
  uint64_t seed = 42;
  /// When true, features are z-standardized before clustering.
  bool standardize = true;
};

/// Lloyd's k-means with k-means++ seeding on a numeric dataset.
Result<ClusteringResult> KMeans(const NumericDataset& data,
                                const KMeansOptions& options = {});

struct KModesOptions {
  size_t k = 3;
  size_t max_iterations = 100;
  uint64_t seed = 42;
};

/// k-modes (Huang 1998): k-means analogue for categorical data with
/// Hamming distance and per-cluster modes. Missing values never match.
Result<ClusteringResult> KModes(const CategoricalDataset& data,
                                const KModesOptions& options = {});

/// Purity of a clustering against known labels: fraction of rows whose
/// cluster's majority label matches their own. 1.0 = clusters align
/// perfectly with classes.
Result<double> ClusterPurity(const ClusteringResult& clustering,
                             const std::vector<std::string>& labels);

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_CLUSTERING_H_
