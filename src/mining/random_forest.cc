#include "mining/random_forest.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "common/strings.h"

namespace ddgms::mining {

Status RandomForestClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.num_trees == 0) {
    return Status::InvalidArgument("num_trees must be positive");
  }
  num_features_ = data.feature_names.size();
  trees_.clear();
  masks_.clear();
  Rng rng(options_.seed);
  const size_t n = data.rows.size();
  size_t visible = std::max<size_t>(
      1, static_cast<size_t>(options_.feature_fraction *
                             static_cast<double>(num_features_)));

  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Random feature mask.
    std::vector<size_t> order(num_features_);
    for (size_t f = 0; f < num_features_; ++f) order[f] = f;
    rng.Shuffle(&order);
    std::vector<bool> mask(num_features_, false);
    for (size_t f = 0; f < visible; ++f) mask[order[f]] = true;

    // Bootstrap sample with hidden features masked out.
    CategoricalDataset sample;
    sample.feature_names = data.feature_names;
    sample.rows.reserve(n);
    sample.labels.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      std::vector<std::string> row = data.rows[pick];
      for (size_t f = 0; f < num_features_; ++f) {
        if (!mask[f]) row[f] = CategoricalDataset::kMissing;
      }
      sample.rows.push_back(std::move(row));
      sample.labels.push_back(data.labels[pick]);
    }
    auto tree = std::make_unique<DecisionTreeClassifier>(options_.tree);
    DDGMS_RETURN_IF_ERROR(tree->Train(sample));
    trees_.push_back(std::move(tree));
    masks_.push_back(std::move(mask));
  }
  return Status::OK();
}

Result<std::string> RandomForestClassifier::Predict(
    const std::vector<std::string>& row) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("classifier not trained");
  }
  if (row.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features; model expects %zu", row.size(),
                  num_features_));
  }
  std::unordered_map<std::string, size_t> votes;
  std::vector<std::string> masked = row;
  for (size_t t = 0; t < trees_.size(); ++t) {
    for (size_t f = 0; f < num_features_; ++f) {
      masked[f] = masks_[t][f] ? row[f] : CategoricalDataset::kMissing;
    }
    DDGMS_ASSIGN_OR_RETURN(std::string vote, trees_[t]->Predict(masked));
    votes[vote]++;
  }
  std::string best;
  size_t best_n = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_n || (count == best_n && label < best)) {
      best_n = count;
      best = label;
    }
  }
  return best;
}

}  // namespace ddgms::mining
