#include "mining/decision_tree.h"

#include <cmath>

#include "common/strings.h"

namespace ddgms::mining {

namespace {

double Log2(double x) { return std::log(x) / std::log(2.0); }

double LabelEntropy(const CategoricalDataset& data,
                    const std::vector<size_t>& rows) {
  std::unordered_map<std::string, size_t> counts;
  for (size_t r : rows) counts[data.labels[r]]++;
  double h = 0.0;
  for (const auto& [label, n] : counts) {
    double p = static_cast<double>(n) / static_cast<double>(rows.size());
    h -= p * Log2(p);
  }
  return h;
}

std::string MajorityLabel(const CategoricalDataset& data,
                          const std::vector<size_t>& rows) {
  std::unordered_map<std::string, size_t> counts;
  for (size_t r : rows) counts[data.labels[r]]++;
  std::string best;
  size_t best_n = 0;
  for (const auto& [label, n] : counts) {
    if (n > best_n || (n == best_n && label < best)) {
      best_n = n;
      best = label;
    }
  }
  return best;
}

}  // namespace

Status DecisionTreeClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  feature_names_ = data.feature_names;
  std::vector<size_t> rows(data.rows.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  root_ = BuildNode(data, rows,
                    std::vector<bool>(data.feature_names.size(), false), 0);
  return Status::OK();
}

std::unique_ptr<DecisionTreeClassifier::Node>
DecisionTreeClassifier::BuildNode(const CategoricalDataset& data,
                                  const std::vector<size_t>& rows,
                                  std::vector<bool> used_features,
                                  size_t depth) const {
  auto node = std::make_unique<Node>();
  node->majority_class = MajorityLabel(data, rows);

  double parent_entropy = LabelEntropy(data, rows);
  if (parent_entropy == 0.0 || depth >= options_.max_depth ||
      rows.size() < options_.min_samples_split) {
    return node;
  }

  // Pick the unused feature with the highest information gain; missing
  // values form their own branch.
  double best_gain = 0.0;
  size_t best_feature = SIZE_MAX;
  for (size_t f = 0; f < feature_names_.size(); ++f) {
    if (used_features[f]) continue;
    std::unordered_map<std::string, std::vector<size_t>> partitions;
    for (size_t r : rows) partitions[data.rows[r][f]].push_back(r);
    if (partitions.size() < 2) continue;
    double child_entropy = 0.0;
    for (const auto& [value, part] : partitions) {
      double w = static_cast<double>(part.size()) /
                 static_cast<double>(rows.size());
      child_entropy += w * LabelEntropy(data, part);
    }
    double gain = parent_entropy - child_entropy;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = f;
    }
  }
  if (best_feature == SIZE_MAX || best_gain < options_.min_gain) {
    return node;
  }

  node->is_leaf = false;
  node->split_feature = best_feature;
  used_features[best_feature] = true;
  std::unordered_map<std::string, std::vector<size_t>> partitions;
  for (size_t r : rows) {
    partitions[data.rows[r][best_feature]].push_back(r);
  }
  for (const auto& [value, part] : partitions) {
    node->children[value] =
        BuildNode(data, part, used_features, depth + 1);
  }
  return node;
}

Result<std::string> DecisionTreeClassifier::Predict(
    const std::vector<std::string>& row) const {
  if (root_ == nullptr) {
    return Status::FailedPrecondition("classifier not trained");
  }
  if (row.size() != feature_names_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features; model expects %zu", row.size(),
                  feature_names_.size()));
  }
  const Node* node = root_.get();
  while (!node->is_leaf) {
    auto it = node->children.find(row[node->split_feature]);
    if (it == node->children.end()) {
      return node->majority_class;  // unseen value: back off
    }
    node = it->second.get();
  }
  return node->majority_class;
}

size_t DecisionTreeClassifier::CountNodes(const Node* node) {
  if (node == nullptr) return 0;
  size_t n = 1;
  for (const auto& [value, child] : node->children) {
    n += CountNodes(child.get());
  }
  return n;
}

size_t DecisionTreeClassifier::num_nodes() const {
  return CountNodes(root_.get());
}

void DecisionTreeClassifier::Render(const Node* node,
                                    const std::string& indent,
                                    std::string* out) const {
  if (node->is_leaf) {
    *out += indent + "-> " + node->majority_class + "\n";
    return;
  }
  for (const auto& [value, child] : node->children) {
    *out += indent + feature_names_[node->split_feature] + " = " + value +
            "\n";
    Render(child.get(), indent + "  ", out);
  }
}

std::string DecisionTreeClassifier::ToString() const {
  if (root_ == nullptr) return "(untrained)";
  std::string out;
  Render(root_.get(), "", &out);
  return out;
}

}  // namespace ddgms::mining
