#include "mining/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace ddgms::mining {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

Result<ClusteringResult> KMeans(const NumericDataset& data,
                                const KMeansOptions& options) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (options.k == 0 || options.k > data.rows.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  const size_t n = data.rows.size();
  const size_t dims = data.feature_names.size();

  // Optional standardization.
  std::vector<std::vector<double>> points = data.rows;
  if (options.standardize && dims > 0) {
    for (size_t d = 0; d < dims; ++d) {
      double sum = 0.0, sum_sq = 0.0;
      for (size_t i = 0; i < n; ++i) {
        sum += points[i][d];
        sum_sq += points[i][d] * points[i][d];
      }
      double mean = sum / static_cast<double>(n);
      double var = sum_sq / static_cast<double>(n) - mean * mean;
      double sd = var > 1e-12 ? std::sqrt(var) : 1.0;
      for (size_t i = 0; i < n; ++i) {
        points[i][d] = (points[i][d] - mean) / sd;
      }
    }
  }

  // k-means++ seeding.
  Rng rng(options.seed);
  std::vector<std::vector<double>> centroids;
  centroids.reserve(options.k);
  centroids.push_back(
      points[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_dist(n, 0.0);
  while (centroids.size() < options.k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) {
        best = std::min(best, SquaredDistance(points[i], c));
      }
      min_dist[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.NextDouble() * total;
    double acc = 0.0;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      acc += min_dist[i];
      if (r < acc) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }

  ClusteringResult result;
  result.num_clusters = options.k;
  result.assignments.assign(n, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      size_t best_c = 0;
      for (size_t c = 0; c < options.k; ++c) {
        double d = SquaredDistance(points[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Recompute centroids.
    std::vector<std::vector<double>> sums(
        options.k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(options.k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      for (size_t d = 0; d < dims; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(points[i], centroids[result.assignments[i]]);
  }
  return result;
}

Result<ClusteringResult> KModes(const CategoricalDataset& data,
                                const KModesOptions& options) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (options.k == 0 || options.k > data.rows.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  const size_t n = data.rows.size();
  const size_t dims = data.feature_names.size();

  auto distance = [&](const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
    size_t d = 0;
    for (size_t i = 0; i < dims; ++i) {
      bool missing = a[i] == CategoricalDataset::kMissing ||
                     b[i] == CategoricalDataset::kMissing;
      if (missing || a[i] != b[i]) ++d;
    }
    return d;
  };

  // Seed with k distinct random rows.
  Rng rng(options.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<std::vector<std::string>> modes;
  modes.reserve(options.k);
  for (size_t i = 0; i < n && modes.size() < options.k; ++i) {
    const auto& candidate = data.rows[order[i]];
    bool duplicate = false;
    for (const auto& m : modes) {
      if (m == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) modes.push_back(candidate);
  }
  while (modes.size() < options.k) {
    modes.push_back(data.rows[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1))]);
  }

  ClusteringResult result;
  result.num_clusters = options.k;
  result.assignments.assign(n, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = SIZE_MAX;
      size_t best_c = 0;
      for (size_t c = 0; c < options.k; ++c) {
        size_t d = distance(data.rows[i], modes[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Recompute per-cluster modes.
    for (size_t c = 0; c < options.k; ++c) {
      for (size_t d = 0; d < dims; ++d) {
        std::unordered_map<std::string, size_t> counts;
        for (size_t i = 0; i < n; ++i) {
          if (result.assignments[i] != c) continue;
          const std::string& v = data.rows[i][d];
          if (v == CategoricalDataset::kMissing) continue;
          counts[v]++;
        }
        size_t best_n = 0;
        for (const auto& [v, cnt] : counts) {
          if (cnt > best_n || (cnt == best_n && v < modes[c][d])) {
            best_n = cnt;
            modes[c][d] = v;
          }
        }
      }
    }
  }
  return result;
}

Result<double> ClusterPurity(const ClusteringResult& clustering,
                             const std::vector<std::string>& labels) {
  if (clustering.assignments.size() != labels.size() || labels.empty()) {
    return Status::InvalidArgument(
        "assignment/label size mismatch or empty");
  }
  std::vector<std::unordered_map<std::string, size_t>> counts(
      clustering.num_clusters);
  for (size_t i = 0; i < labels.size(); ++i) {
    counts[clustering.assignments[i]][labels[i]]++;
  }
  size_t correct = 0;
  for (const auto& cluster : counts) {
    size_t best = 0;
    for (const auto& [label, n] : cluster) best = std::max(best, n);
    correct += best;
  }
  return static_cast<double>(correct) /
         static_cast<double>(labels.size());
}

}  // namespace ddgms::mining
