#ifndef DDGMS_MINING_LOGISTIC_H_
#define DDGMS_MINING_LOGISTIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// Binary multivariate logistic regression — the a-priori risk-assessment
/// baseline the paper contrasts against ("data analysis ... is mostly
/// restricted to ... multivariate regression modelling where the
/// researcher decides a priori on features to be analysed").
///
/// Trained by full-batch gradient descent on standardized features with
/// L2 regularization. The positive class is chosen explicitly so odds
/// ratios are interpretable.
class LogisticRegression {
 public:
  struct Options {
    double learning_rate = 0.1;
    size_t max_iterations = 500;
    double l2 = 1e-3;
    double tolerance = 1e-7;
  };

  LogisticRegression() : options_(Options()) {}
  explicit LogisticRegression(Options options) : options_(options) {}

  /// Trains on a labeled numeric dataset; `positive_label` rows are the
  /// positive class, everything else negative.
  Status Train(const NumericDataset& data,
               const std::string& positive_label);

  /// P(positive | row).
  Result<double> PredictProbability(const std::vector<double>& row) const;

  /// Thresholded prediction (default 0.5) returning the trained labels.
  Result<std::string> Predict(const std::vector<double>& row,
                              double threshold = 0.5) const;

  /// Coefficients on the standardized scale (feature name, weight),
  /// plus intercept. Magnitude ranks feature importance.
  struct Coefficient {
    std::string feature;
    double weight = 0.0;
  };
  Result<std::vector<Coefficient>> Coefficients() const;
  Result<double> Intercept() const;

  const std::string& positive_label() const { return positive_label_; }
  const std::string& negative_label() const { return negative_label_; }

 private:
  Options options_;
  std::vector<double> weights_;  // per standardized feature
  double intercept_ = 0.0;
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<std::string> feature_names_;
  std::string positive_label_;
  std::string negative_label_;
  bool trained_ = false;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_LOGISTIC_H_
