#ifndef DDGMS_MINING_AWSUM_H_
#define DDGMS_MINING_AWSUM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mining/classifier.h"

namespace ddgms::mining {

/// AWSum ("Automated Weighted Sum", Quinn/Stranieri/Yearwood/Jelinek —
/// the paper's ref [9]): each feature value carries an *influence* toward
/// each class, estimated as the smoothed class posterior P(class|value).
/// Classification sums influences across features and takes the argmax.
///
/// Its value for clinical decision guidance is interpretability: the
/// influence table reads as "absent ankle reflex pushes 0.74 toward
/// Diabetes", and pairwise influences surface unexpected interactions
/// (the reflex + mid-range-glucose finding the paper recounts).
class AwsumClassifier final : public Classifier {
 public:
  explicit AwsumClassifier(double laplace_alpha = 1.0)
      : alpha_(laplace_alpha) {}

  Status Train(const CategoricalDataset& data) override;
  Result<std::string> Predict(
      const std::vector<std::string>& row) const override;
  std::string name() const override { return "awsum"; }

  /// One learned influence: feature=value pushes `influence` (a
  /// probability, 0..1) toward `toward_class`.
  struct Influence {
    std::string feature;
    std::string value;
    std::string toward_class;
    double influence = 0.0;
    size_t support = 0;  // training rows with this feature value
  };

  /// All single-value influences, strongest first.
  Result<std::vector<Influence>> Influences() const;

  /// A pairwise interaction: the joint influence of two feature values
  /// exceeds what either carries alone — AWSum's knowledge-acquisition
  /// output.
  struct Interaction {
    std::string feature_a;
    std::string value_a;
    std::string feature_b;
    std::string value_b;
    std::string toward_class;
    double joint_influence = 0.0;
    double max_single_influence = 0.0;
    double lift = 0.0;  // joint - max_single
    size_t support = 0;
  };

  /// Pairwise interactions with at least `min_support` co-occurrences,
  /// ranked by lift (joint influence above the stronger single one).
  Result<std::vector<Interaction>> Interactions(size_t min_support) const;

 private:
  double alpha_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> classes_;
  std::vector<double> class_priors_;
  // value_counts_[feature][value][class_index]
  std::vector<
      std::unordered_map<std::string, std::vector<size_t>>>
      value_counts_;
  // Retained training rows for pairwise interaction mining.
  std::vector<std::vector<std::string>> train_rows_;
  std::vector<size_t> train_label_ids_;
  bool trained_ = false;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_AWSUM_H_
