#include "mining/logistic.h"

#include <cmath>

#include "common/strings.h"

namespace ddgms::mining {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Train(const NumericDataset& data,
                                 const std::string& positive_label) {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.labels.size() != data.rows.size()) {
    return Status::InvalidArgument("dataset has no labels");
  }
  const size_t n = data.rows.size();
  const size_t dims = data.feature_names.size();
  feature_names_ = data.feature_names;
  positive_label_ = positive_label;

  std::vector<double> y(n, 0.0);
  bool saw_positive = false;
  negative_label_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (data.labels[i] == positive_label) {
      y[i] = 1.0;
      saw_positive = true;
    } else if (negative_label_.empty()) {
      negative_label_ = data.labels[i];
    }
  }
  if (!saw_positive) {
    return Status::InvalidArgument("positive label '" + positive_label +
                                   "' absent from training data");
  }
  if (negative_label_.empty()) negative_label_ = "not_" + positive_label;

  // Standardize.
  means_.assign(dims, 0.0);
  stds_.assign(dims, 1.0);
  for (size_t d = 0; d < dims; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += data.rows[i][d];
      sum_sq += data.rows[i][d] * data.rows[i][d];
    }
    means_[d] = sum / static_cast<double>(n);
    double var = sum_sq / static_cast<double>(n) - means_[d] * means_[d];
    stds_[d] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  std::vector<std::vector<double>> x(n, std::vector<double>(dims));
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      x[i][d] = (data.rows[i][d] - means_[d]) / stds_[d];
    }
  }

  weights_.assign(dims, 0.0);
  intercept_ = 0.0;
  double prev_loss = 1e300;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<double> grad(dims, 0.0);
    double grad_b = 0.0;
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = intercept_;
      for (size_t d = 0; d < dims; ++d) z += weights_[d] * x[i][d];
      double p = Sigmoid(z);
      double err = p - y[i];
      for (size_t d = 0; d < dims; ++d) grad[d] += err * x[i][d];
      grad_b += err;
      double p_clamped = std::min(std::max(p, 1e-12), 1.0 - 1e-12);
      loss -= y[i] * std::log(p_clamped) +
              (1.0 - y[i]) * std::log(1.0 - p_clamped);
    }
    double inv_n = 1.0 / static_cast<double>(n);
    for (size_t d = 0; d < dims; ++d) {
      grad[d] = grad[d] * inv_n + options_.l2 * weights_[d];
      weights_[d] -= options_.learning_rate * grad[d];
      loss += 0.5 * options_.l2 * weights_[d] * weights_[d];
    }
    intercept_ -= options_.learning_rate * grad_b * inv_n;
    loss *= inv_n;
    if (std::fabs(prev_loss - loss) < options_.tolerance) break;
    prev_loss = loss;
  }
  trained_ = true;
  return Status::OK();
}

Result<double> LogisticRegression::PredictProbability(
    const std::vector<double>& row) const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  if (row.size() != weights_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features; model expects %zu", row.size(),
                  weights_.size()));
  }
  double z = intercept_;
  for (size_t d = 0; d < row.size(); ++d) {
    z += weights_[d] * (row[d] - means_[d]) / stds_[d];
  }
  return Sigmoid(z);
}

Result<std::string> LogisticRegression::Predict(
    const std::vector<double>& row, double threshold) const {
  DDGMS_ASSIGN_OR_RETURN(double p, PredictProbability(row));
  return p >= threshold ? positive_label_ : negative_label_;
}

Result<std::vector<LogisticRegression::Coefficient>>
LogisticRegression::Coefficients() const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  std::vector<Coefficient> out;
  out.reserve(weights_.size());
  for (size_t d = 0; d < weights_.size(); ++d) {
    out.push_back(Coefficient{feature_names_[d], weights_[d]});
  }
  return out;
}

Result<double> LogisticRegression::Intercept() const {
  if (!trained_) {
    return Status::FailedPrecondition("model not trained");
  }
  return intercept_;
}

}  // namespace ddgms::mining
