#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace ddgms::mining {

namespace {

using Transaction = std::vector<Item>;  // sorted items

std::vector<Transaction> BuildTransactions(
    const CategoricalDataset& data, const std::string& include_label) {
  std::vector<Transaction> txns;
  txns.reserve(data.rows.size());
  for (size_t i = 0; i < data.rows.size(); ++i) {
    Transaction txn;
    for (size_t f = 0; f < data.feature_names.size(); ++f) {
      const std::string& v = data.rows[i][f];
      if (v == CategoricalDataset::kMissing) continue;
      txn.push_back(Item{data.feature_names[f], v});
    }
    if (!include_label.empty()) {
      txn.push_back(Item{include_label, data.labels[i]});
    }
    std::sort(txn.begin(), txn.end());
    txns.push_back(std::move(txn));
  }
  return txns;
}

bool ContainsAll(const Transaction& txn, const std::vector<Item>& items) {
  // Both sorted: linear merge check.
  size_t ti = 0;
  for (const Item& item : items) {
    while (ti < txn.size() && txn[ti] < item) ++ti;
    if (ti == txn.size() || !(txn[ti] == item)) return false;
    ++ti;
  }
  return true;
}

}  // namespace

std::string FrequentItemset::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += "}";
  return out;
}

std::string AssociationRule::ToString() const {
  std::string out;
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += " & ";
    out += lhs[i].ToString();
  }
  out += " => ";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) out += " & ";
    out += rhs[i].ToString();
  }
  return out;
}

Result<std::vector<FrequentItemset>> Apriori::MineItemsets(
    const CategoricalDataset& data,
    const std::string& include_label) const {
  if (data.rows.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (options_.min_support <= 0.0 || options_.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0,1]");
  }
  std::vector<Transaction> txns = BuildTransactions(data, include_label);
  const double n = static_cast<double>(txns.size());
  const size_t min_count = static_cast<size_t>(
      std::ceil(options_.min_support * n));

  std::vector<FrequentItemset> all_frequent;

  // L1: frequent single items.
  std::map<Item, size_t> item_counts;
  for (const Transaction& txn : txns) {
    for (const Item& item : txn) item_counts[item]++;
  }
  std::vector<std::vector<Item>> current;  // frequent (k)-itemsets
  for (const auto& [item, count] : item_counts) {
    if (count < min_count) continue;
    current.push_back({item});
    all_frequent.push_back(FrequentItemset{
        {item}, count, static_cast<double>(count) / n});
  }

  // Lk: candidate generation by prefix join + prune + count.
  for (size_t k = 2;
       k <= options_.max_itemset_size && current.size() >= 2; ++k) {
    std::set<std::vector<Item>> frequent_prev(current.begin(),
                                              current.end());
    std::vector<std::vector<Item>> candidates;
    for (size_t a = 0; a < current.size(); ++a) {
      for (size_t b = a + 1; b < current.size(); ++b) {
        // Join when first k-2 items agree.
        bool joinable = true;
        for (size_t i = 0; i + 1 < current[a].size(); ++i) {
          if (!(current[a][i] == current[b][i])) {
            joinable = false;
            break;
          }
        }
        if (!joinable) continue;
        std::vector<Item> cand = current[a];
        cand.push_back(current[b].back());
        std::sort(cand.begin(), cand.end());
        // Skip candidates combining two values of one feature.
        std::set<std::string> features;
        bool ok = true;
        for (const Item& item : cand) {
          if (!features.insert(item.feature).second) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        // Apriori prune: all (k-1)-subsets must be frequent.
        for (size_t drop = 0; drop < cand.size() && ok; ++drop) {
          std::vector<Item> sub;
          for (size_t i = 0; i < cand.size(); ++i) {
            if (i != drop) sub.push_back(cand[i]);
          }
          if (frequent_prev.find(sub) == frequent_prev.end()) ok = false;
        }
        if (ok) candidates.push_back(std::move(cand));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    std::vector<std::vector<Item>> next;
    for (const std::vector<Item>& cand : candidates) {
      size_t count = 0;
      for (const Transaction& txn : txns) {
        if (ContainsAll(txn, cand)) ++count;
      }
      if (count < min_count) continue;
      next.push_back(cand);
      all_frequent.push_back(FrequentItemset{
          cand, count, static_cast<double>(count) / n});
    }
    current = std::move(next);
  }
  return all_frequent;
}

Result<std::vector<AssociationRule>> Apriori::MineRules(
    const CategoricalDataset& data,
    const std::string& include_label) const {
  DDGMS_ASSIGN_OR_RETURN(std::vector<FrequentItemset> itemsets,
                         MineItemsets(data, include_label));
  // Index supports for confidence/lift computation.
  std::map<std::vector<Item>, double> support;
  for (const FrequentItemset& fi : itemsets) {
    support[fi.items] = fi.support;
  }
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : itemsets) {
    if (fi.items.size() < 2) continue;
    // Single-item consequents.
    for (size_t r = 0; r < fi.items.size(); ++r) {
      std::vector<Item> lhs;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != r) lhs.push_back(fi.items[i]);
      }
      std::vector<Item> rhs = {fi.items[r]};
      auto lhs_it = support.find(lhs);
      auto rhs_it = support.find(rhs);
      if (lhs_it == support.end() || rhs_it == support.end()) continue;
      double confidence = fi.support / lhs_it->second;
      if (confidence < options_.min_confidence) continue;
      AssociationRule rule;
      rule.lhs = std::move(lhs);
      rule.rhs = std::move(rhs);
      rule.support = fi.support;
      rule.confidence = confidence;
      rule.lift = confidence / rhs_it->second;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.confidence > b.confidence;
            });
  return rules;
}

}  // namespace ddgms::mining
