#ifndef DDGMS_MINING_DECISION_TREE_H_
#define DDGMS_MINING_DECISION_TREE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mining/classifier.h"

namespace ddgms::mining {

struct DecisionTreeOptions {
  size_t max_depth = 8;
  size_t min_samples_split = 4;
  /// Minimum information gain to accept a split.
  double min_gain = 1e-4;
};

/// ID3-style decision tree on categorical features (multiway splits,
/// information gain). Unseen/missing values at prediction time fall back
/// to the node's majority class.
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeOptions options = {})
      : options_(options) {}

  Status Train(const CategoricalDataset& data) override;
  Result<std::string> Predict(
      const std::vector<std::string>& row) const override;
  std::string name() const override { return "decision_tree"; }

  /// Number of nodes in the trained tree (diagnostics).
  size_t num_nodes() const;

  /// Renders the tree as indented "feature=value -> ..." rules.
  std::string ToString() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::string majority_class;
    size_t split_feature = 0;  // when !is_leaf
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
  };

  std::unique_ptr<Node> BuildNode(const CategoricalDataset& data,
                                  const std::vector<size_t>& rows,
                                  std::vector<bool> used_features,
                                  size_t depth) const;
  static size_t CountNodes(const Node* node);
  void Render(const Node* node, const std::string& indent,
              std::string* out) const;

  DecisionTreeOptions options_;
  std::vector<std::string> feature_names_;
  std::unique_ptr<Node> root_;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_DECISION_TREE_H_
