#ifndef DDGMS_MINING_APRIORI_H_
#define DDGMS_MINING_APRIORI_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mining/dataset.h"

namespace ddgms::mining {

/// One item: a feature=value pair.
struct Item {
  std::string feature;
  std::string value;

  std::string ToString() const { return feature + "=" + value; }

  friend bool operator==(const Item& a, const Item& b) {
    return a.feature == b.feature && a.value == b.value;
  }
  friend bool operator<(const Item& a, const Item& b) {
    if (a.feature != b.feature) return a.feature < b.feature;
    return a.value < b.value;
  }
};

/// A frequent itemset with its support count.
struct FrequentItemset {
  std::vector<Item> items;  // sorted
  size_t support_count = 0;
  double support = 0.0;     // fraction of transactions

  std::string ToString() const;
};

/// An association rule lhs => rhs.
struct AssociationRule {
  std::vector<Item> lhs;
  std::vector<Item> rhs;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;

  std::string ToString() const;
};

struct AprioriOptions {
  double min_support = 0.05;
  double min_confidence = 0.6;
  size_t max_itemset_size = 3;
};

/// Classic Apriori over a categorical dataset: each row (plus its label,
/// when `include_label` names a virtual feature) is a transaction of
/// feature=value items; missing values are skipped.
class Apriori {
 public:
  explicit Apriori(AprioriOptions options = {}) : options_(options) {}

  /// Mines frequent itemsets (sizes 1..max_itemset_size).
  Result<std::vector<FrequentItemset>> MineItemsets(
      const CategoricalDataset& data,
      const std::string& include_label = "") const;

  /// Mines rules from the frequent itemsets; rules with a single-item
  /// consequent only (standard for clinical readability).
  Result<std::vector<AssociationRule>> MineRules(
      const CategoricalDataset& data,
      const std::string& include_label = "") const;

 private:
  AprioriOptions options_;
};

}  // namespace ddgms::mining

#endif  // DDGMS_MINING_APRIORI_H_
