#ifndef DDGMS_MDX_LEXER_H_
#define DDGMS_MDX_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ddgms::mdx {

enum class TokenType {
  kIdent,      // bare word (keywords resolved by the parser)
  kBracketed,  // [name] — contents with ]] unescaped
  kNumber,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;  // ident spelling / bracketed contents / number
  size_t offset = 0;  // byte offset in the query (for error messages)

  std::string ToString() const;
};

/// Tokenizes an MDX query string. Bracketed names may contain any
/// character except an unescaped ']' (']]' escapes a literal ']').
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace ddgms::mdx

#endif  // DDGMS_MDX_LEXER_H_
