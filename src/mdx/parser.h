#ifndef DDGMS_MDX_PARSER_H_
#define DDGMS_MDX_PARSER_H_

#include <string>

#include "common/result.h"
#include "mdx/ast.h"

namespace ddgms::mdx {

/// Parses an MDX query. Supported grammar (case-insensitive keywords):
///
///   query   := SELECT axis (',' axis)* FROM '[' name ']' [WHERE tuple]
///   axis    := [NON EMPTY] set ON (COLUMNS | ROWS)
///   set     := '{' ref (',' ref)* '}' | CROSSJOIN '(' set ',' set ')'
///            | ref
///   ref     := '[' name ']' ('.' '[' name ']')* ('.' (MEMBERS|CHILDREN))?
///   tuple   := '(' ref (',' ref)* ')' | ref
Result<MdxQuery> Parse(const std::string& input);

}  // namespace ddgms::mdx

#endif  // DDGMS_MDX_PARSER_H_
