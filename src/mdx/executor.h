#ifndef DDGMS_MDX_EXECUTOR_H_
#define DDGMS_MDX_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mdx/ast.h"
#include "olap/cache.h"
#include "olap/cube.h"
#include "olap/plan.h"
#include "warehouse/warehouse.h"

namespace ddgms::mdx {

/// EXPLAIN-style per-stage timing profile of one MDX execution. Always
/// populated (a handful of steady-clock reads per query), so callers
/// can attach it to query output without enabling the global metrics
/// or trace collectors.
struct MdxProfile {
  struct Stage {
    std::string name;
    double micros = 0.0;
  };
  /// In execution order: parse (only when executing from text),
  /// compile (axis/slicer/measure resolution), execute (cube scan).
  std::vector<Stage> stages;
  double total_micros = 0.0;

  // Shape of the compiled and executed query.
  size_t axes = 0;
  size_t slicers = 0;
  size_t measures = 0;
  size_t fact_rows = 0;
  size_t facts_aggregated = 0;
  size_t cells = 0;

  /// EXPLAIN ANALYZE operator tree rooted at "mdx.execute": per-stage
  /// times, cardinalities, cube-cache hit/miss and resource-pool byte
  /// deltas. Always built alongside the flat stage list above.
  olap::PlanNode plan;

  /// Renders an EXPLAIN-style table: the query shape line followed by
  /// one row per stage with its share of the total.
  std::string ToString() const;
};

/// Result of executing an MDX query: the underlying cube plus the
/// mapping of cube axes onto the MDX COLUMNS / ROWS display axes.
struct MdxResult {
  olap::Cube cube;
  std::vector<size_t> column_axes;  // indices into cube.query().axes
  std::vector<size_t> row_axes;
  MdxProfile profile;

  /// Renders the result: with exactly one ROWS axis and one COLUMNS
  /// axis and a single measure, a 2D cross-tab (rows x columns);
  /// otherwise the flattened cell table.
  Result<Table> ToGrid() const;
};

/// Executes MDX against a Warehouse.
///
/// Member semantics:
///  * [Dim].[Attr].Members            — axis over all members
///  * [Dim].[Attr]                    — same (shorthand)
///  * [Dim].[Attr].[member]           — axis restricted to listed members
///                                      (several refs to the same level
///                                      merge, preserving order)
///  * [Dim].[Attr].[member].Children  — axis at the next-finer hierarchy
///                                      level, restricted to members
///                                      under `member`
///  * [Measures].[Count]              — count measure
///  * [Measures].[Sum(FBG)] etc.      — aggregate of a warehouse measure
///  * [Measures].[FBG]                — shorthand for Avg(FBG)
///
/// WHERE tuple members become slicers; measures may also appear there.
/// When no measure is named anywhere, Count is used.
class MdxExecutor {
 public:
  explicit MdxExecutor(const warehouse::Warehouse* wh) : warehouse_(wh) {}

  /// Parses and executes.
  Result<MdxResult> Execute(const std::string& query_text) const;

  /// Executes an already parsed query.
  Result<MdxResult> Execute(const MdxQuery& query) const;

  /// Routes cube execution through `cache` (non-owning; may be null to
  /// detach). Ignored unless the cache was built over this executor's
  /// warehouse. Hits and misses appear in the profile's plan tree.
  void set_cube_cache(olap::CachingCubeEngine* cache) { cache_ = cache; }

  /// Slow-query log: an execution whose profiled time meets or exceeds
  /// this threshold emits a warn-level "mdx.slow_query" flight-recorder
  /// event carrying the per-stage MdxProfile timings and the EXPLAIN
  /// ANALYZE plan as JSON. Process-wide; default 250000 us (250 ms).
  static void SetSlowQueryThresholdMicros(double micros);
  static double SlowQueryThresholdMicros();

  /// Test hook (same static-knob idiom as the slow-query threshold):
  /// every execution sleeps this long inside the execute stage, so
  /// watchdog / /queryz tests can observe a deliberately stalled query
  /// deterministically. 0 (the default) disables the sleep entirely.
  static void SetExecuteDelayMicrosForTesting(uint64_t micros);
  static uint64_t ExecuteDelayMicrosForTesting();

 private:
  const warehouse::Warehouse* warehouse_;
  olap::CachingCubeEngine* cache_ = nullptr;
};

/// Prepends a measured "mdx.parse" operator to an executed plan and
/// folds its time into the root. Shared by MdxExecutor::Execute(text)
/// and DdDgms::QueryMdx, which parse before routing.
void AttachParseStage(olap::PlanNode* plan, double parse_us);

}  // namespace ddgms::mdx

#endif  // DDGMS_MDX_EXECUTOR_H_
