#ifndef DDGMS_MDX_EXECUTOR_H_
#define DDGMS_MDX_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mdx/ast.h"
#include "olap/cube.h"
#include "warehouse/warehouse.h"

namespace ddgms::mdx {

/// Result of executing an MDX query: the underlying cube plus the
/// mapping of cube axes onto the MDX COLUMNS / ROWS display axes.
struct MdxResult {
  olap::Cube cube;
  std::vector<size_t> column_axes;  // indices into cube.query().axes
  std::vector<size_t> row_axes;

  /// Renders the result: with exactly one ROWS axis and one COLUMNS
  /// axis and a single measure, a 2D cross-tab (rows x columns);
  /// otherwise the flattened cell table.
  Result<Table> ToGrid() const;
};

/// Executes MDX against a Warehouse.
///
/// Member semantics:
///  * [Dim].[Attr].Members            — axis over all members
///  * [Dim].[Attr]                    — same (shorthand)
///  * [Dim].[Attr].[member]           — axis restricted to listed members
///                                      (several refs to the same level
///                                      merge, preserving order)
///  * [Dim].[Attr].[member].Children  — axis at the next-finer hierarchy
///                                      level, restricted to members
///                                      under `member`
///  * [Measures].[Count]              — count measure
///  * [Measures].[Sum(FBG)] etc.      — aggregate of a warehouse measure
///  * [Measures].[FBG]                — shorthand for Avg(FBG)
///
/// WHERE tuple members become slicers; measures may also appear there.
/// When no measure is named anywhere, Count is used.
class MdxExecutor {
 public:
  explicit MdxExecutor(const warehouse::Warehouse* wh) : warehouse_(wh) {}

  /// Parses and executes.
  Result<MdxResult> Execute(const std::string& query_text) const;

  /// Executes an already parsed query.
  Result<MdxResult> Execute(const MdxQuery& query) const;

 private:
  const warehouse::Warehouse* warehouse_;
};

}  // namespace ddgms::mdx

#endif  // DDGMS_MDX_EXECUTOR_H_
