#include "mdx/parser.h"

#include <utility>

#include "common/strings.h"
#include "mdx/lexer.h"

namespace ddgms::mdx {

std::string MemberRef::ToString() const {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ".";
    out += "[" + path[i] + "]";
  }
  if (suffix == Suffix::kMembers) out += ".Members";
  if (suffix == Suffix::kChildren) out += ".Children";
  return out;
}

std::string SetExpr::ToString() const {
  if (is_crossjoin) {
    return "CROSSJOIN(" + cross_left->ToString() + ", " +
           cross_right->ToString() + ")";
  }
  std::string out = "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += ", ";
    out += members[i].ToString();
  }
  return out + "}";
}

std::string MdxQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < axes.size(); ++i) {
    if (i > 0) out += ", ";
    if (axes[i].non_empty) out += "NON EMPTY ";
    out += axes[i].set.ToString();
    out += axes[i].target == AxisClause::Target::kColumns ? " ON COLUMNS"
                                                          : " ON ROWS";
  }
  out += " FROM [" + cube_name + "]";
  if (!where.empty()) {
    out += " WHERE (";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += ", ";
      out += where[i].ToString();
    }
    out += ")";
  }
  return out;
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<MdxQuery> ParseQuery() {
    MdxQuery query;
    DDGMS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      DDGMS_ASSIGN_OR_RETURN(AxisClause axis, ParseAxis());
      query.axes.push_back(std::move(axis));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    DDGMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kBracketed) {
      return Error("expected [cube name] after FROM");
    }
    query.cube_name = Next().text;
    if (IsKeyword(Peek(), "WHERE")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(query.where, ParseTuple());
    }
    if (Peek().type != TokenType::kEof) {
      return Error("unexpected trailing tokens");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeIf(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsKeyword(const Token& tok, const char* kw) {
    return tok.type == TokenType::kIdent && EqualsIgnoreCase(tok.text, kw);
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Status::ParseError(
          StrFormat("expected %s at offset %zu, found %s", kw,
                    Peek().offset, Peek().ToString().c_str()));
    }
    ++pos_;
    return Status::OK();
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s at offset %zu (near %s)",
                                        what.c_str(), Peek().offset,
                                        Peek().ToString().c_str()));
  }

  Result<AxisClause> ParseAxis() {
    AxisClause axis;
    if (IsKeyword(Peek(), "NON")) {
      Next();
      DDGMS_RETURN_IF_ERROR(ExpectKeyword("EMPTY"));
      axis.non_empty = true;
    }
    DDGMS_ASSIGN_OR_RETURN(axis.set, ParseSet());
    DDGMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    if (IsKeyword(Peek(), "COLUMNS")) {
      Next();
      axis.target = AxisClause::Target::kColumns;
    } else if (IsKeyword(Peek(), "ROWS")) {
      Next();
      axis.target = AxisClause::Target::kRows;
    } else {
      return Error("expected COLUMNS or ROWS");
    }
    return axis;
  }

  Result<SetExpr> ParseSet() {
    if (IsKeyword(Peek(), "CROSSJOIN")) {
      Next();
      if (!ConsumeIf(TokenType::kLParen)) {
        return Error("expected ( after CROSSJOIN");
      }
      SetExpr set;
      set.is_crossjoin = true;
      DDGMS_ASSIGN_OR_RETURN(SetExpr left, ParseSet());
      set.cross_left = std::make_unique<SetExpr>(std::move(left));
      if (!ConsumeIf(TokenType::kComma)) {
        return Error("expected , between CROSSJOIN arguments");
      }
      DDGMS_ASSIGN_OR_RETURN(SetExpr right, ParseSet());
      set.cross_right = std::make_unique<SetExpr>(std::move(right));
      if (!ConsumeIf(TokenType::kRParen)) {
        return Error("expected ) closing CROSSJOIN");
      }
      return set;
    }
    SetExpr set;
    if (ConsumeIf(TokenType::kLBrace)) {
      while (true) {
        DDGMS_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef());
        set.members.push_back(std::move(ref));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
      if (!ConsumeIf(TokenType::kRBrace)) {
        return Error("expected } closing set");
      }
      return set;
    }
    DDGMS_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef());
    set.members.push_back(std::move(ref));
    return set;
  }

  Result<MemberRef> ParseMemberRef() {
    if (Peek().type != TokenType::kBracketed) {
      return Error("expected [name]");
    }
    MemberRef ref;
    ref.path.push_back(Next().text);
    while (Peek().type == TokenType::kDot) {
      // Lookahead past the dot: bracketed segment or suffix keyword.
      const Token& after = Peek(1);
      if (after.type == TokenType::kBracketed) {
        Next();  // dot
        ref.path.push_back(Next().text);
        continue;
      }
      if (after.type == TokenType::kIdent) {
        if (EqualsIgnoreCase(after.text, "MEMBERS")) {
          Next();
          Next();
          ref.suffix = MemberRef::Suffix::kMembers;
          break;
        }
        if (EqualsIgnoreCase(after.text, "CHILDREN")) {
          Next();
          Next();
          ref.suffix = MemberRef::Suffix::kChildren;
          break;
        }
      }
      return Error("expected [name], MEMBERS or CHILDREN after '.'");
    }
    return ref;
  }

  Result<std::vector<MemberRef>> ParseTuple() {
    std::vector<MemberRef> refs;
    if (ConsumeIf(TokenType::kLParen)) {
      while (true) {
        DDGMS_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef());
        refs.push_back(std::move(ref));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
      if (!ConsumeIf(TokenType::kRParen)) {
        return Error("expected ) closing WHERE tuple");
      }
      return refs;
    }
    DDGMS_ASSIGN_OR_RETURN(MemberRef ref, ParseMemberRef());
    refs.push_back(std::move(ref));
    return refs;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<MdxQuery> Parse(const std::string& input) {
  DDGMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace ddgms::mdx
