#include "mdx/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/query_registry.h"
#include "common/resource.h"
#include "common/strings.h"
#include "common/trace.h"
#include "mdx/parser.h"

namespace ddgms::mdx {

using olap::AxisSpec;
using olap::Cube;
using olap::CubeQuery;
using olap::SlicerSpec;
using warehouse::Dimension;
using warehouse::Warehouse;

namespace {

/// Parses a measure spec text: "Count", "Fn(Measure)" or "Measure"
/// (shorthand for Avg).
Result<AggSpec> ParseMeasureSpec(const std::string& text,
                                 const Warehouse& wh) {
  std::string trimmed(Trim(text));
  if (EqualsIgnoreCase(trimmed, "count")) {
    return AggSpec{AggFn::kCount, "", "count"};
  }
  size_t open = trimmed.find('(');
  if (open != std::string::npos) {
    if (trimmed.back() != ')') {
      return Status::ParseError("malformed measure '" + trimmed + "'");
    }
    std::string fn_name = trimmed.substr(0, open);
    std::string column(
        Trim(trimmed.substr(open + 1, trimmed.size() - open - 2)));
    DDGMS_ASSIGN_OR_RETURN(AggFn fn, AggFnFromName(fn_name));
    if (!wh.fact().schema().HasField(column)) {
      return Status::NotFound("no measure column '" + column +
                              "' in fact table");
    }
    return AggSpec{fn, column, ToLower(fn_name) + "(" + column + ")"};
  }
  // Bare measure name: default aggregate is Avg.
  if (!wh.fact().schema().HasField(trimmed)) {
    return Status::NotFound("no measure column '" + trimmed +
                            "' in fact table");
  }
  return AggSpec{AggFn::kAvg, trimmed, "avg(" + trimmed + ")"};
}

/// Converts a bracketed member spelling to the attribute column's type.
Result<Value> ParseMemberValue(const std::string& text,
                               const ColumnVector& attr_col) {
  switch (attr_col.type()) {
    case DataType::kString:
      return Value::Str(text);
    case DataType::kInt64: {
      DDGMS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int(v);
    }
    case DataType::kDouble: {
      DDGMS_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Real(v);
    }
    case DataType::kBool: {
      DDGMS_ASSIGN_OR_RETURN(bool v, ParseBool(text));
      return Value::Bool(v);
    }
    case DataType::kDate: {
      DDGMS_ASSIGN_OR_RETURN(Date v, Date::FromString(text));
      return Value::FromDate(v);
    }
    case DataType::kNull:
      break;
  }
  return Status::Internal("bad attribute type");
}

/// Accumulates a set expression into axis specs + measures.
class SetCompiler {
 public:
  SetCompiler(const Warehouse& wh, CubeQuery* query,
              std::vector<size_t>* axis_indices)
      : wh_(wh), query_(query), axis_indices_(axis_indices) {}

  Status Compile(const SetExpr& set) {
    if (set.is_crossjoin) {
      DDGMS_RETURN_IF_ERROR(Compile(*set.cross_left));
      return Compile(*set.cross_right);
    }
    for (const MemberRef& ref : set.members) {
      DDGMS_RETURN_IF_ERROR(CompileRef(ref));
    }
    return Status::OK();
  }

 private:
  Status CompileRef(const MemberRef& ref) {
    if (ref.path.empty()) {
      return Status::ParseError("empty member reference");
    }
    if (EqualsIgnoreCase(ref.path[0], "Measures")) {
      if (ref.path.size() != 2) {
        return Status::ParseError("measure reference must be "
                                  "[Measures].[spec]");
      }
      DDGMS_ASSIGN_OR_RETURN(AggSpec spec,
                             ParseMeasureSpec(ref.path[1], wh_));
      query_->measures.push_back(std::move(spec));
      return Status::OK();
    }
    if (ref.path.size() < 2 || ref.path.size() > 3) {
      return Status::ParseError(
          "member reference must be [Dimension].[Attribute] or "
          "[Dimension].[Attribute].[member]: " +
          ref.ToString());
    }
    const std::string& dim_name = ref.path[0];
    const std::string& attr = ref.path[1];
    DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                           wh_.dimension(dim_name));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* attr_col,
                           dim->table().ColumnByName(attr));
    if (ref.path.size() == 2) {
      // Level reference: a full axis over the level's members
      // (.Children of a level is the same set).
      AppendAxis(dim_name, attr, /*member=*/nullptr, attr_col);
      return Status::OK();
    }
    DDGMS_ASSIGN_OR_RETURN(Value member,
                           ParseMemberValue(ref.path[2], *attr_col));
    if (ref.suffix == MemberRef::Suffix::kChildren) {
      // [Dim].[Coarse].[member].Children: an axis at the next-finer
      // hierarchy level, restricted to the members under `member`.
      return AppendChildrenAxis(*dim, attr, member);
    }
    AppendAxis(dim_name, attr, &member, attr_col);
    return Status::OK();
  }

  Status AppendChildrenAxis(const Dimension& dim,
                            const std::string& coarse_attr,
                            const Value& parent) {
    DDGMS_ASSIGN_OR_RETURN(std::string fine_attr,
                           dim.FinerLevel(coarse_attr));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* coarse_col,
                           dim.table().ColumnByName(coarse_attr));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* fine_col,
                           dim.table().ColumnByName(fine_attr));
    AxisSpec spec;
    spec.dimension = dim.name();
    spec.attribute = fine_attr;
    std::vector<Value> seen;
    for (size_t i = 0; i < dim.table().num_rows(); ++i) {
      if (coarse_col->IsNull(i) ||
          !coarse_col->GetValue(i).Equals(parent)) {
        continue;
      }
      Value child = fine_col->GetValue(i);
      bool duplicate = false;
      for (const Value& v : seen) {
        if (v.Equals(child)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) seen.push_back(child);
    }
    if (seen.empty()) {
      return Status::NotFound("member '" + parent.ToString() +
                              "' of level '" + coarse_attr +
                              "' has no children");
    }
    std::sort(seen.begin(), seen.end(),
              [](const Value& a, const Value& b) {
                return a.Compare(b) < 0;
              });
    spec.members = std::move(seen);
    axis_indices_->push_back(query_->axes.size());
    query_->axes.push_back(std::move(spec));
    return Status::OK();
  }

  void AppendAxis(const std::string& dim, const std::string& attr,
                  const Value* member, const ColumnVector*) {
    // Merge with the most recent axis for the same level so that
    // { [D].[A].[x], [D].[A].[y] } produces one axis with two members.
    if (!axis_indices_->empty()) {
      AxisSpec& last = query_->axes[axis_indices_->back()];
      if (last.dimension == dim && last.attribute == attr) {
        if (member != nullptr && !last.members.empty()) {
          last.members.push_back(*member);
        } else {
          // Mixing .Members with explicit members widens to all.
          last.members.clear();
        }
        return;
      }
    }
    AxisSpec spec;
    spec.dimension = dim;
    spec.attribute = attr;
    if (member != nullptr) spec.members.push_back(*member);
    axis_indices_->push_back(query_->axes.size());
    query_->axes.push_back(std::move(spec));
  }

  const Warehouse& wh_;
  CubeQuery* query_;
  std::vector<size_t>* axis_indices_;
};

/// Microseconds elapsed since `start` as a double.
double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string FormatMicros(double us) {
  if (us < 1000.0) return StrFormat("%.1fus", us);
  if (us < 1e6) return StrFormat("%.2fms", us / 1000.0);
  return StrFormat("%.3fs", us / 1e6);
}

std::atomic<double> g_slow_query_threshold_us{250000.0};
std::atomic<uint64_t> g_execute_delay_us{0};

}  // namespace

void MdxExecutor::SetSlowQueryThresholdMicros(double micros) {
  g_slow_query_threshold_us.store(micros, std::memory_order_relaxed);
}

double MdxExecutor::SlowQueryThresholdMicros() {
  return g_slow_query_threshold_us.load(std::memory_order_relaxed);
}

void MdxExecutor::SetExecuteDelayMicrosForTesting(uint64_t micros) {
  g_execute_delay_us.store(micros, std::memory_order_relaxed);
}

uint64_t MdxExecutor::ExecuteDelayMicrosForTesting() {
  return g_execute_delay_us.load(std::memory_order_relaxed);
}

std::string MdxProfile::ToString() const {
  std::string out = StrFormat(
      "mdx profile: %zu axes, %zu slicers, %zu measures; "
      "%zu fact rows -> %zu cells (%zu facts aggregated)\n",
      axes, slicers, measures, fact_rows, cells, facts_aggregated);
  out += StrFormat("  %-10s %12s %8s\n", "stage", "time", "share");
  for (const Stage& stage : stages) {
    const double share =
        total_micros > 0.0 ? 100.0 * stage.micros / total_micros : 0.0;
    out += StrFormat("  %-10s %12s %7.1f%%\n", stage.name.c_str(),
                     FormatMicros(stage.micros).c_str(), share);
  }
  out += StrFormat("  %-10s %12s\n", "total",
                   FormatMicros(total_micros).c_str());
  return out;
}

Result<Table> MdxResult::ToGrid() const {
  if (row_axes.size() == 1 && column_axes.size() == 1 &&
      cube.num_measures() >= 1) {
    return cube.Pivot(row_axes[0], column_axes[0], 0);
  }
  return cube.ToTable();
}

Result<MdxResult> MdxExecutor::Execute(
    const std::string& query_text) const {
  const auto parse_start = std::chrono::steady_clock::now();
  MdxQuery query;
  {
    TraceSpan parse_span("mdx.parse");
    DDGMS_ASSIGN_OR_RETURN(query, Parse(query_text));
  }
  const double parse_us = MicrosSince(parse_start);
  DDGMS_ASSIGN_OR_RETURN(MdxResult result, Execute(query));
  result.profile.stages.insert(result.profile.stages.begin(),
                               MdxProfile::Stage{"parse", parse_us});
  result.profile.total_micros += parse_us;
  AttachParseStage(&result.profile.plan, parse_us);
  return result;
}

void AttachParseStage(olap::PlanNode* plan, double parse_us) {
  olap::PlanNode parse("mdx.parse");
  parse.micros = static_cast<uint64_t>(parse_us);
  plan->children.insert(plan->children.begin(), std::move(parse));
  plan->micros += static_cast<uint64_t>(parse_us);
}

Result<MdxResult> MdxExecutor::Execute(const MdxQuery& query) const {
  if (warehouse_ == nullptr) {
    return Status::InvalidArgument("MdxExecutor has no warehouse");
  }
  if (!EqualsIgnoreCase(query.cube_name, warehouse_->def().fact_name)) {
    return Status::NotFound("no cube named '" + query.cube_name +
                            "' (fact table is '" +
                            warehouse_->def().fact_name + "')");
  }
  TraceSpan exec_span("mdx.execute");
  ScopedLatencyTimer exec_timer("ddgms.mdx.execute_latency_us");
  ScopedAccounting accounting("mdx");
  olap::PlanNode plan("mdx.execute");
  QueryRegistry::SetCurrentStage("compile");
  const auto compile_start = std::chrono::steady_clock::now();
  CubeQuery cq;
  std::vector<size_t> column_axes;
  std::vector<size_t> row_axes;
  bool any_non_empty = false;
  for (const AxisClause& axis : query.axes) {
    std::vector<size_t>* indices =
        axis.target == AxisClause::Target::kColumns ? &column_axes
                                                    : &row_axes;
    SetCompiler compiler(*warehouse_, &cq, indices);
    DDGMS_RETURN_IF_ERROR(compiler.Compile(axis.set));
    any_non_empty = any_non_empty || axis.non_empty;
  }
  cq.non_empty = any_non_empty || cq.non_empty;

  // WHERE: members become slicers; measures are selected.
  for (const MemberRef& ref : query.where) {
    if (!ref.path.empty() && EqualsIgnoreCase(ref.path[0], "Measures")) {
      if (ref.path.size() != 2) {
        return Status::ParseError(
            "measure reference must be [Measures].[spec]");
      }
      DDGMS_ASSIGN_OR_RETURN(AggSpec spec,
                             ParseMeasureSpec(ref.path[1], *warehouse_));
      cq.measures.push_back(std::move(spec));
      continue;
    }
    if (ref.path.size() != 3) {
      return Status::ParseError(
          "WHERE member must be [Dimension].[Attribute].[member]: " +
          ref.ToString());
    }
    DDGMS_ASSIGN_OR_RETURN(const Dimension* dim,
                           warehouse_->dimension(ref.path[0]));
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* attr_col,
                           dim->table().ColumnByName(ref.path[1]));
    DDGMS_ASSIGN_OR_RETURN(Value member,
                           ParseMemberValue(ref.path[2], *attr_col));
    // Merge with an existing slicer on the same level (tuple of two
    // members of one level = either-of).
    bool merged = false;
    for (SlicerSpec& s : cq.slicers) {
      if (s.dimension == ref.path[0] && s.attribute == ref.path[1]) {
        s.values.push_back(member);
        merged = true;
        break;
      }
    }
    if (!merged) {
      cq.slicers.push_back(
          SlicerSpec{ref.path[0], ref.path[1], {std::move(member)}});
    }
  }

  if (cq.measures.empty()) {
    cq.measures.push_back(AggSpec{AggFn::kCount, "", "count"});
  }
  const double compile_us = MicrosSince(compile_start);
  {
    olap::PlanNode& compile_node = plan.AddChild("mdx.compile");
    compile_node.micros = static_cast<uint64_t>(compile_us);
    compile_node.rows_out = cq.axes.size();
    compile_node.AddProp("axes", static_cast<uint64_t>(cq.axes.size()));
    compile_node.AddProp("slicers",
                         static_cast<uint64_t>(cq.slicers.size()));
    compile_node.AddProp("measures",
                         static_cast<uint64_t>(cq.measures.size()));
  }

  QueryRegistry::SetCurrentStage("execute");
  const auto execute_start = std::chrono::steady_clock::now();
  if (const uint64_t delay_us = ExecuteDelayMicrosForTesting();
      delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  // The last child added to the root below; no further AddChild on the
  // root happens while this pointer is live.
  olap::PlanNode* exec_node = &plan.AddChild("");
  olap::Cube cube;
  const bool use_cache =
      cache_ != nullptr && cache_->warehouse() == warehouse_;
  if (use_cache) {
    DDGMS_ASSIGN_OR_RETURN(std::shared_ptr<const Cube> shared,
                           cache_->Execute(cq, exec_node));
    // MdxResult owns its cube by value: copy out of the cache (still
    // far cheaper than re-scanning the fact table on a hit).
    cube = *shared;
  } else {
    olap::CubeEngine engine(warehouse_);
    DDGMS_ASSIGN_OR_RETURN(cube, engine.Execute(cq, exec_node));
  }
  const double execute_us = MicrosSince(execute_start);
  exec_node->micros = static_cast<uint64_t>(execute_us);

  MdxResult result;
  result.cube = std::move(cube);
  result.column_axes = std::move(column_axes);
  result.row_axes = std::move(row_axes);

  MdxProfile& profile = result.profile;
  profile.stages.push_back(MdxProfile::Stage{"compile", compile_us});
  profile.stages.push_back(MdxProfile::Stage{"execute", execute_us});
  profile.total_micros = compile_us + execute_us;
  profile.axes = cq.axes.size();
  profile.slicers = cq.slicers.size();
  profile.measures = cq.measures.size();
  profile.fact_rows = warehouse_->fact().num_rows();
  profile.facts_aggregated = result.cube.facts_aggregated();
  profile.cells = result.cube.num_cells();

  plan.rows_in = profile.fact_rows;
  plan.rows_out = profile.cells;
  plan.micros = static_cast<uint64_t>(compile_us + execute_us);
  plan.bytes = accounting.BytesCharged();
  profile.plan = std::move(plan);

  exec_span.SetAttribute("axes", profile.axes);
  exec_span.SetAttribute("cells", profile.cells);
  // Emitted inside exec_span's scope so the record is stamped with the
  // enclosing mdx.execute span id.
  DDGMS_LOG_INFO("mdx.execute")
      .With("cube", query.cube_name)
      .With("axes", profile.axes)
      .With("cells", profile.cells)
      .With("total_us", profile.total_micros);
  if (profile.total_micros >= SlowQueryThresholdMicros()) {
    LogEvent slow(LogLevel::kWarn, "mdx.slow_query");
    slow.With("cube", query.cube_name)
        .With("cells", profile.cells)
        .With("total_us", profile.total_micros);
    for (const MdxProfile::Stage& stage : profile.stages) {
      slow.With(stage.name + "_us", stage.micros);
    }
    slow.With("plan", profile.plan.ToJson());
    DDGMS_METRIC_INC("ddgms.mdx.slow_queries");
  }
  DDGMS_METRIC_INC("ddgms.mdx.queries");
  return result;
}

}  // namespace ddgms::mdx
