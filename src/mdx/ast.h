#ifndef DDGMS_MDX_AST_H_
#define DDGMS_MDX_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace ddgms::mdx {

/// A member path such as [MedicalCondition].[Diabetes].[Yes], possibly
/// with a .Members / .Children suffix. Two-segment paths denote an
/// attribute level ([PersonalInformation].[Gender]); three-segment paths
/// denote one member of that level.
struct MemberRef {
  enum class Suffix { kNone, kMembers, kChildren };

  std::vector<std::string> path;
  Suffix suffix = Suffix::kNone;

  std::string ToString() const;
};

/// A set expression: a brace list of member refs, or CROSSJOIN of two
/// sets.
struct SetExpr {
  bool is_crossjoin = false;
  std::vector<MemberRef> members;        // when !is_crossjoin
  std::unique_ptr<SetExpr> cross_left;   // when is_crossjoin
  std::unique_ptr<SetExpr> cross_right;

  std::string ToString() const;
};

/// One SELECT axis (ON COLUMNS / ON ROWS), optionally NON EMPTY.
struct AxisClause {
  enum class Target { kColumns, kRows };

  Target target = Target::kColumns;
  bool non_empty = false;
  SetExpr set;
};

/// A parsed MDX query:
///   SELECT <set> ON COLUMNS [, <set> ON ROWS]
///   FROM [cube]
///   [WHERE ( member, ... )]
struct MdxQuery {
  std::vector<AxisClause> axes;
  std::string cube_name;
  std::vector<MemberRef> where;

  std::string ToString() const;
};

}  // namespace ddgms::mdx

#endif  // DDGMS_MDX_AST_H_
