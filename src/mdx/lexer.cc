#include "mdx/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace ddgms::mdx {

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdent: return "ident(" + text + ")";
    case TokenType::kBracketed: return "[" + text + "]";
    case TokenType::kNumber: return "number(" + text + ")";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '[') {
      std::string name;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == ']') {
          if (i + 1 < n && input[i + 1] == ']') {
            name.push_back(']');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        name.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated '[' at offset %zu", start));
      }
      tokens.push_back(Token{TokenType::kBracketed, std::move(name), start});
      continue;
    }
    if (c == '(') {
      tokens.push_back(Token{TokenType::kLParen, "(", start});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back(Token{TokenType::kRParen, ")", start});
      ++i;
      continue;
    }
    if (c == '{') {
      tokens.push_back(Token{TokenType::kLBrace, "{", start});
      ++i;
      continue;
    }
    if (c == '}') {
      tokens.push_back(Token{TokenType::kRBrace, "}", start});
      ++i;
      continue;
    }
    if (c == ',') {
      tokens.push_back(Token{TokenType::kComma, ",", start});
      ++i;
      continue;
    }
    if (c == '.') {
      tokens.push_back(Token{TokenType::kDot, ".", start});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::string num;
      num.push_back(c);
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        num.push_back(input[i]);
        ++i;
      }
      tokens.push_back(Token{TokenType::kNumber, std::move(num), start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ident.push_back(input[i]);
        ++i;
      }
      tokens.push_back(Token{TokenType::kIdent, std::move(ident), start});
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back(Token{TokenType::kEof, "", n});
  return tokens;
}

}  // namespace ddgms::mdx
