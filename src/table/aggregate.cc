#include "table/aggregate.h"

#include <cmath>

#include "common/annotations.h"
#include "common/strings.h"

namespace ddgms {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kCountValid: return "count_valid";
    case AggFn::kCountDistinct: return "count_distinct";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kVariance: return "variance";
    case AggFn::kStdDev: return "stddev";
  }
  return "unknown";
}

Result<AggFn> AggFnFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "count") return AggFn::kCount;
  if (lower == "count_valid") return AggFn::kCountValid;
  if (lower == "count_distinct" || lower == "distinct_count") {
    return AggFn::kCountDistinct;
  }
  if (lower == "sum") return AggFn::kSum;
  if (lower == "avg" || lower == "mean" || lower == "average") {
    return AggFn::kAvg;
  }
  if (lower == "min") return AggFn::kMin;
  if (lower == "max") return AggFn::kMax;
  if (lower == "variance" || lower == "var") return AggFn::kVariance;
  if (lower == "stddev" || lower == "stdev" || lower == "std") {
    return AggFn::kStdDev;
  }
  return Status::InvalidArgument("unknown aggregate function '" + name +
                                 "'");
}

std::string AggSpec::OutputName() const {
  if (!alias.empty()) return alias;
  std::string out = AggFnName(fn);
  out += "(";
  out += column.empty() ? "*" : column;
  out += ")";
  return out;
}

// Runs once per admitted fact row per measure — the innermost work of
// both the group-by engine and the OLAP cube scan.
DDGMS_HOT void Accumulator::Add(const Value& v) {
  ++rows_;
  if (v.is_null()) return;
  ++valid_;
  switch (fn_) {
    case AggFn::kCount:
    case AggFn::kCountValid:
      break;
    case AggFn::kCountDistinct:
      distinct_.insert(v);
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
    case AggFn::kVariance:
    case AggFn::kStdDev: {
      Result<double> d = v.AsDouble();
      if (!d.ok()) {
        numeric_ok_ = false;
        break;
      }
      sum_ += *d;
      sum_sq_ += (*d) * (*d);
      break;
    }
    case AggFn::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFn::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
  }
}

void Accumulator::Merge(const Accumulator& other) {
  rows_ += other.rows_;
  valid_ += other.valid_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  numeric_ok_ = numeric_ok_ && other.numeric_ok_;
  if (!other.min_.is_null() &&
      (min_.is_null() || other.min_.Compare(min_) < 0)) {
    min_ = other.min_;
  }
  if (!other.max_.is_null() &&
      (max_.is_null() || other.max_.Compare(max_) > 0)) {
    max_ = other.max_;
  }
  for (const Value& v : other.distinct_) {
    distinct_.insert(v);
  }
}

Value Accumulator::Finish() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int(static_cast<int64_t>(rows_));
    case AggFn::kCountValid:
      return Value::Int(static_cast<int64_t>(valid_));
    case AggFn::kCountDistinct:
      return Value::Int(static_cast<int64_t>(distinct_.size()));
    case AggFn::kSum:
      if (!numeric_ok_) return Value::Null();
      return Value::Real(sum_);
    case AggFn::kAvg:
      if (!numeric_ok_ || valid_ == 0) return Value::Null();
      return Value::Real(sum_ / static_cast<double>(valid_));
    case AggFn::kMin:
      return min_;
    case AggFn::kMax:
      return max_;
    case AggFn::kVariance:
    case AggFn::kStdDev: {
      if (!numeric_ok_ || valid_ == 0) return Value::Null();
      double n = static_cast<double>(valid_);
      double mean = sum_ / n;
      double var = sum_sq_ / n - mean * mean;
      if (var < 0.0) var = 0.0;  // numerical noise
      return Value::Real(fn_ == AggFn::kVariance ? var : std::sqrt(var));
    }
  }
  return Value::Null();
}

}  // namespace ddgms
