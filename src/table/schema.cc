#include "table/schema.h"

namespace ddgms {

Result<Schema> Schema::Make(std::vector<Field> fields) {
  Schema schema;
  for (Field& f : fields) {
    DDGMS_RETURN_IF_ERROR(schema.AddField(std::move(f)));
  }
  return schema;
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no field named '" + name + "'");
  }
  return it->second;
}

Status Schema::AddField(Field field) {
  if (field.type == DataType::kNull) {
    return Status::InvalidArgument("field '" + field.name +
                                   "' cannot have type null");
  }
  auto [it, inserted] = index_.emplace(field.name, fields_.size());
  if (!inserted) {
    return Status::AlreadyExists("duplicate field name '" + field.name +
                                 "'");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace ddgms
