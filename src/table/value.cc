#include "table/value.h"

#include <functional>

#include "common/strings.h"

namespace ddgms {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull: return "null";
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kDate: return "date";
  }
  return "unknown";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    case DataType::kNull:
      return Status::InvalidArgument("null has no numeric value");
    case DataType::kString:
      return Status::InvalidArgument("string '" + string_value() +
                                     "' is not numeric");
    case DataType::kDate:
      return Status::InvalidArgument("date is not numeric");
  }
  return Status::Internal("corrupt value");
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "";
    case DataType::kBool: return bool_value() ? "true" : "false";
    case DataType::kInt64: return std::to_string(int_value());
    case DataType::kDouble: return FormatDouble(double_value());
    case DataType::kString: return string_value();
    case DataType::kDate: return date_value().ToString();
  }
  return "";
}

int Value::Compare(const Value& other) const {
  DataType ta = type();
  DataType tb = other.type();
  // Nulls sort before everything else.
  if (ta == DataType::kNull || tb == DataType::kNull) {
    if (ta == tb) return 0;
    return ta == DataType::kNull ? -1 : 1;
  }
  // Cross-numeric comparison.
  if (IsNumeric(ta) && IsNumeric(tb)) {
    double a = ta == DataType::kInt64 ? static_cast<double>(int_value())
                                      : double_value();
    double b = tb == DataType::kInt64
                   ? static_cast<double>(other.int_value())
                   : other.double_value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (ta != tb) {
    return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  }
  switch (ta) {
    case DataType::kBool: {
      int a = bool_value() ? 1 : 0;
      int b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case DataType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kDate: {
      int32_t a = date_value().days_since_epoch();
      int32_t b = other.date_value().days_since_epoch();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric and null handled above.
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return bool_value() ? 0x2545f4914f6cdd1dULL : 0x6a09e667f3bcc909ULL;
    case DataType::kInt64: {
      // Hash ints through double so 5 and 5.0 collide (they compare equal).
      double d = static_cast<double>(int_value());
      return std::hash<double>{}(d);
    }
    case DataType::kDouble:
      return std::hash<double>{}(double_value());
    case DataType::kString:
      return std::hash<std::string>{}(string_value());
    case DataType::kDate:
      return std::hash<int64_t>{}(date_value().days_since_epoch()) ^
             0x94d049bb133111ebULL;
  }
  return 0;
}

}  // namespace ddgms
