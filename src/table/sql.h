#ifndef DDGMS_TABLE_SQL_H_
#define DDGMS_TABLE_SQL_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "table/table.h"

namespace ddgms {

/// A small SQL SELECT dialect over registered tables — the textual face
/// of the OLTP reporting path (the role DG-SQL plays in the original
/// DGMS). Supported grammar (keywords case-insensitive):
///
///   SELECT * | item [, item ...]
///   FROM table
///   [WHERE predicate]
///   [GROUP BY col [, col ...]]
///   [ORDER BY col [ASC|DESC]]
///   [LIMIT n]
///
///   item      := col | fn( col | * ) [AS alias]
///   fn        := COUNT | SUM | AVG | MIN | MAX | STDDEV | VARIANCE
///               | COUNT_DISTINCT
///   predicate := disjunctions/conjunctions of comparisons with
///                parentheses; NOT; col IS [NOT] NULL;
///                col BETWEEN lit AND lit; col IN (lit, ...)
///   literal   := 123 | 4.5 | 'text' | TRUE | FALSE | DATE '2013-04-08'
///
/// Comparisons against a column of a different type never match
/// (SQL-like: no implicit string/number coercion).
class SqlEngine {
 public:
  SqlEngine() = default;

  /// Registers a table under a name; the table must outlive the engine.
  /// Re-registering a name replaces it.
  void RegisterTable(const std::string& name, const Table* table) {
    tables_[ToLowerName(name)] = table;
  }

  /// Parses and executes one SELECT statement.
  Result<Table> Execute(const std::string& sql) const;

 private:
  static std::string ToLowerName(const std::string& name);

  std::unordered_map<std::string, const Table*> tables_;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_SQL_H_
