#include "table/store.h"

#include "common/csv.h"
#include "common/strings.h"

namespace ddgms {

Result<std::string> MemoryStore::Fetch(const std::string& resource) {
  DDGMS_FAULT_POINT("store.fetch");
  auto it = blobs_.find(resource);
  if (it == blobs_.end()) {
    return Status::NotFound("no resource named '" + resource + "'");
  }
  return it->second;
}

Status MemoryStore::Store(const std::string& resource,
                          const std::string& contents) {
  DDGMS_FAULT_POINT("store.store");
  blobs_[resource] = contents;
  return Status::OK();
}

Result<std::string> FileStore::Fetch(const std::string& resource) {
  DDGMS_FAULT_POINT("store.fetch");
  return ReadFile(root_dir_ + "/" + resource);
}

Status FileStore::Store(const std::string& resource,
                        const std::string& contents) {
  DDGMS_FAULT_POINT("store.store");
  return WriteFile(root_dir_ + "/" + resource, contents);
}

Result<std::string> FlakyStore::Fetch(const std::string& resource) {
  const size_t attempt = fetches_attempted_++;
  bool fire = attempt < options_.fail_first_fetches;
  if (options_.fetch_failure_probability > 0.0 &&
      rng_.Bernoulli(options_.fetch_failure_probability)) {
    fire = true;
  }
  if (fire) {
    ++fetches_failed_;
    return Status(options_.code,
                  StrFormat("flaky store: injected failure on fetch %zu "
                            "of '%s'",
                            attempt + 1, resource.c_str()));
  }
  return inner_->Fetch(resource);
}

Status FlakyStore::Store(const std::string& resource,
                         const std::string& contents) {
  return inner_->Store(resource, contents);
}

Result<std::string> RetryingStore::Fetch(const std::string& resource) {
  last_stats_ = RetryStats{};
  return Retry(
      policy_, [&] { return inner_->Fetch(resource); }, &last_stats_,
      "store.fetch");
}

Status RetryingStore::Store(const std::string& resource,
                            const std::string& contents) {
  last_stats_ = RetryStats{};
  return Retry(
      policy_, [&] { return inner_->Store(resource, contents); },
      &last_stats_, "store.store");
}

Result<Table> LoadTableFromStore(DataStore* store,
                                 const std::string& resource,
                                 const CsvReadOptions& options,
                                 const RetryPolicy& policy,
                                 RetryStats* stats) {
  DDGMS_ASSIGN_OR_RETURN(
      std::string text,
      Retry(
          policy, [&] { return store->Fetch(resource); }, stats,
          "store.fetch"));
  return Table::FromCsv(text, options);
}

}  // namespace ddgms
