#ifndef DDGMS_TABLE_AGGREGATE_H_
#define DDGMS_TABLE_AGGREGATE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace ddgms {

/// Aggregate functions shared by the OLTP group-by engine and the OLAP
/// cube engine.
enum class AggFn {
  kCount,          // number of rows (nulls included)
  kCountValid,     // number of non-null values
  kCountDistinct,  // number of distinct non-null values
  kSum,
  kAvg,
  kMin,
  kMax,
  kVariance,       // population variance
  kStdDev,         // population standard deviation
};

/// Canonical name ("count", "sum", ...).
const char* AggFnName(AggFn fn);

/// Parses an aggregate name (case-insensitive); accepts both "stddev" and
/// "stdev".
Result<AggFn> AggFnFromName(const std::string& name);

/// One requested aggregate: fn applied to `column`, reported as `alias`
/// (defaults to "fn(column)" when empty). kCount may leave column empty.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;
  std::string alias;

  /// Effective output name.
  std::string OutputName() const;
};

/// Streaming accumulator for one aggregate over one group/cell.
/// Numeric aggregates (sum/avg/min/max/var/stddev) require numeric input
/// values; min/max also accept any ordered type.
class Accumulator {
 public:
  explicit Accumulator(AggFn fn) : fn_(fn) {}

  /// Feeds one cell. Nulls count toward kCount only.
  void Add(const Value& v);

  /// Folds another accumulator of the same function into this one
  /// (partitioned/parallel aggregation). Merging accumulators of
  /// different functions is a programming error.
  void Merge(const Accumulator& other);

  /// Number of rows fed (including nulls).
  size_t rows() const { return rows_; }

  /// Final aggregate value; Value::Null() when undefined (e.g. avg of an
  /// empty group).
  Value Finish() const;

 private:
  AggFn fn_;
  size_t rows_ = 0;
  size_t valid_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  bool numeric_ok_ = true;
  Value min_ = Value::Null();
  Value max_ = Value::Null();
  std::unordered_set<Value, ValueHash, ValueEq> distinct_;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_AGGREGATE_H_
