#include "table/describe.h"

#include <cmath>
#include <unordered_set>

namespace ddgms {

Result<Table> Describe(const Table& table) {
  DDGMS_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field{"Column", DataType::kString},
                    Field{"Type", DataType::kString},
                    Field{"Count", DataType::kInt64},
                    Field{"Nulls", DataType::kInt64},
                    Field{"Distinct", DataType::kInt64},
                    Field{"Min", DataType::kString},
                    Field{"Max", DataType::kString},
                    Field{"Mean", DataType::kDouble},
                    Field{"StdDev", DataType::kDouble}}));
  Table out(std::move(schema));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnVector& col = table.column(c);
    std::unordered_set<Value, ValueHash, ValueEq> distinct;
    double sum = 0.0, sum_sq = 0.0;
    size_t numeric_n = 0;
    bool numeric = IsNumeric(col.type());
    for (size_t i = 0; i < col.size(); ++i) {
      if (col.IsNull(i)) continue;
      distinct.insert(col.GetValue(i));
      if (numeric) {
        Result<double> v = col.NumericAt(i);
        if (v.ok()) {
          sum += *v;
          sum_sq += (*v) * (*v);
          ++numeric_n;
        }
      }
    }
    Value mean = Value::Null();
    Value stddev = Value::Null();
    if (numeric && numeric_n > 0) {
      double m = sum / static_cast<double>(numeric_n);
      double var = sum_sq / static_cast<double>(numeric_n) - m * m;
      mean = Value::Real(m);
      stddev = Value::Real(std::sqrt(std::max(0.0, var)));
    }
    DDGMS_RETURN_IF_ERROR(out.AppendRow(
        {Value::Str(col.name()), Value::Str(DataTypeName(col.type())),
         Value::Int(static_cast<int64_t>(col.size())),
         Value::Int(static_cast<int64_t>(col.null_count())),
         Value::Int(static_cast<int64_t>(distinct.size())),
         Value::Str(col.Min().ToString()),
         Value::Str(col.Max().ToString()), mean, stddev}));
  }
  return out;
}

}  // namespace ddgms
