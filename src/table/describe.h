#ifndef DDGMS_TABLE_DESCRIBE_H_
#define DDGMS_TABLE_DESCRIBE_H_

#include "common/result.h"
#include "table/table.h"

namespace ddgms {

/// Column-profile summary of a table: one row per column with
///   Column, Type, Count, Nulls, Distinct, Min, Max, Mean, StdDev
/// (Mean/StdDev null for non-numeric columns; Min/Max use Value
/// ordering, so they work for strings and dates too). The first thing
/// an analyst runs against an unfamiliar extract.
Result<Table> Describe(const Table& table);

}  // namespace ddgms

#endif  // DDGMS_TABLE_DESCRIBE_H_
