#ifndef DDGMS_TABLE_TABLE_H_
#define DDGMS_TABLE_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/quarantine.h"
#include "common/result.h"
#include "table/column.h"
#include "table/schema.h"
#include "table/value.h"

namespace ddgms {

/// One logical row, materialized as dynamically typed values. Used at API
/// boundaries; scans use columnar access internally.
using Row = std::vector<Value>;

/// Options controlling CSV import.
struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Field spellings treated as null in addition to the empty string.
  std::vector<std::string> null_tokens = {"", "NA", "N/A", "null", "NULL",
                                          "?"};
  /// When true, column types are inferred (int64 -> double -> date -> bool
  /// -> string). When false, all columns are strings.
  bool infer_types = true;
  /// When non-empty, fixes the column types explicitly (must match the
  /// column count); takes precedence over infer_types. Used by loaders
  /// that persist schema alongside data.
  std::vector<DataType> column_types;
  /// kStrict (default) aborts the load on the first bad record, as
  /// historically. kLenient quarantines bad records — structural CSV
  /// errors, ragged rows, unparseable fields — into `quarantine` and
  /// loads everything else. In lenient mode column types are inferred
  /// by majority vote (so one corrupt field does not silently widen a
  /// numeric column to string); minority rows that fail the winning
  /// type are quarantined with the offending field named. Quarantine
  /// row numbers are 1-based physical record numbers in the document
  /// (the header is record 1).
  ErrorMode error_mode = ErrorMode::kStrict;
  /// Sink for lenient-mode quarantined rows. May be left null, in
  /// which case bad rows are still skipped but not itemised.
  QuarantineReport* quarantine = nullptr;
  /// When true, a quoted empty field ("" in the source) in a string
  /// column loads as an empty string instead of a null; bare empty
  /// fields stay nulls. Pairs with CsvWriteOptions.quote_empty_strings
  /// so empty strings survive a CSV round trip.
  bool quoted_empty_is_string = false;
};

/// Options controlling CSV export (Table::ToCsv).
struct CsvWriteOptions {
  char delimiter = ',';
  /// Write non-null empty string values as quoted "" so a reader with
  /// quoted_empty_is_string can tell them apart from nulls, which
  /// always serialize as bare empty fields.
  bool quote_empty_strings = false;
};

/// In-memory columnar table: a schema plus equally sized columns.
/// The OLTP substrate of the DD-DGMS: raw clinical extracts are loaded
/// here before transformation, and the baseline (no-warehouse) DGMS runs
/// its queries directly against Tables.
class Table {
 public:
  /// Empty table with no columns.
  Table() = default;

  /// Empty table with the given schema.
  explicit Table(Schema schema);

  /// Builds a table from a schema and rows.
  static Result<Table> FromRows(Schema schema,
                                const std::vector<Row>& rows);

  /// Parses CSV text into a table (see CsvReadOptions).
  static Result<Table> FromCsv(const std::string& text,
                               const CsvReadOptions& options = {});

  /// Reads a CSV file into a table.
  static Result<Table> FromCsvFile(const std::string& path,
                                   const CsvReadOptions& options = {});

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// Column access by position.
  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return &columns_[i]; }

  /// Column access by name.
  Result<const ColumnVector*> ColumnByName(const std::string& name) const;
  Result<ColumnVector*> MutableColumnByName(const std::string& name);

  /// Appends a row; must have one value per column, with matching types.
  Status AppendRow(const Row& row);

  /// Materializes row `i`.
  Row GetRow(size_t i) const;

  /// Reads one cell.
  Result<Value> GetCell(size_t row, const std::string& column) const;

  /// Writes one cell.
  Status SetCell(size_t row, const std::string& column, const Value& value);

  /// Appends a fully built column; must match num_rows() (or the table
  /// must be empty of columns).
  Status AddColumn(ColumnVector column);

  /// Removes a column by name.
  Status DropColumn(const std::string& name);

  /// Renames a column.
  Status RenameColumn(const std::string& from, const std::string& to);

  /// New table with only the given columns, in the given order.
  Result<Table> Project(const std::vector<std::string>& columns) const;

  /// New table with the rows at `indices`, in order.
  Table Take(const std::vector<size_t>& indices) const;

  /// Indices of rows for which `pred` returns true.
  std::vector<size_t> MatchingRows(
      const std::function<bool(const Table&, size_t)>& pred) const;

  /// New table with rows matching `pred`.
  Table Filter(const std::function<bool(const Table&, size_t)>& pred) const;

  /// New table sorted by the given columns (lexicographic). `ascending`
  /// applies to all keys; nulls sort first. Stable.
  Result<Table> SortBy(const std::vector<std::string>& keys,
                       bool ascending = true) const;

  /// Appends all rows of `other`; schemas must match exactly.
  Status Concat(const Table& other);

  /// Serializes to CSV (header + rows).
  std::string ToCsv(char delimiter = ',') const {
    CsvWriteOptions options;
    options.delimiter = delimiter;
    return ToCsv(options);
  }
  std::string ToCsv(const CsvWriteOptions& options) const;

  /// Pretty-prints the first `max_rows` rows as an aligned text grid.
  std::string ToPrettyString(size_t max_rows = 20) const;

  /// Estimated heap footprint: sum of ColumnVector::ApproxBytes().
  uint64_t ApproxBytes() const;

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_TABLE_H_
