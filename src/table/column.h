#ifndef DDGMS_TABLE_COLUMN_H_
#define DDGMS_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace ddgms {

/// Typed columnar storage with a validity (non-null) bitmap. Bool columns
/// store uint8_t; date columns store days-since-epoch as int32_t. Values
/// in invalid slots are zero-initialized and must not be interpreted.
class ColumnVector {
 public:
  /// Creates an empty column of the given type. `type` must not be kNull.
  ColumnVector(std::string name, DataType type);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }

  size_t size() const { return validity_.size(); }
  bool empty() const { return validity_.empty(); }

  /// Number of null entries.
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t row) const { return validity_[row] == 0; }

  /// Appends a value; the value must be null or match the column type
  /// (int64 literals are accepted into double columns).
  Status Append(const Value& value);

  /// Appends a null.
  void AppendNull();

  /// Typed fast-path appends (no validity/type checking beyond asserts).
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendDate(Date v);

  /// Reads a cell as a dynamically typed Value (null if invalid).
  Value GetValue(size_t row) const;

  /// Overwrites a cell. Same typing rules as Append.
  Status SetValue(size_t row, const Value& value);

  /// Typed accessors; undefined if the row is null or type mismatches.
  bool BoolAt(size_t row) const { return Bools()[row] != 0; }
  int64_t IntAt(size_t row) const { return Ints()[row]; }
  double DoubleAt(size_t row) const { return Doubles()[row]; }
  const std::string& StringAt(size_t row) const { return Strings()[row]; }
  Date DateAt(size_t row) const { return Date(Dates()[row]); }

  /// Numeric view of a cell: int64/double/bool coerce to double.
  /// Error if null or non-numeric type.
  Result<double> NumericAt(size_t row) const;

  /// New column containing rows at `indices`, in order.
  ColumnVector Take(const std::vector<size_t>& indices) const;

  /// Distinct non-null values, in first-appearance order.
  std::vector<Value> DistinctValues() const;

  /// Estimated heap footprint of this column's payload: value storage
  /// plus the validity bitmap plus per-string heap bytes. This is the
  /// same estimate the per-append resource charges accumulate, so a
  /// column built by appends reconciles with its pool's total.
  uint64_t ApproxBytes() const;

  /// Min / max over non-null entries; null Value if the column is all-null.
  Value Min() const;
  Value Max() const;

 private:
  const std::vector<uint8_t>& Bools() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  const std::vector<int64_t>& Ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& Doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& Strings() const {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<int32_t>& Dates() const {
    return std::get<std::vector<int32_t>>(data_);
  }

  std::string name_;
  DataType type_;
  std::variant<std::vector<uint8_t>,   // bool
               std::vector<int64_t>,   // int64
               std::vector<double>,    // double
               std::vector<std::string>,  // string
               std::vector<int32_t>>   // date (days since epoch)
      data_;
  std::vector<uint8_t> validity_;  // 1 = valid, 0 = null
  size_t null_count_ = 0;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_COLUMN_H_
