#ifndef DDGMS_TABLE_QUERY_H_
#define DDGMS_TABLE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/aggregate.h"
#include "table/predicate.h"
#include "table/table.h"

namespace ddgms {

/// Fluent OLTP query over a Table: WHERE / GROUP BY / aggregates /
/// SELECT / ORDER BY / LIMIT. This is the "Reporting — OLTP" feature of
/// the DD-DGMS, and the execution engine behind the no-warehouse baseline
/// DGMS comparator.
///
///   auto result = TableQuery(&visits)
///                     .Where(Eq("Diabetes", Value::Str("Yes")))
///                     .GroupBy({"AgeBand", "Gender"})
///                     .Aggregate({{AggFn::kCount, "", "n"}})
///                     .OrderBy("AgeBand")
///                     .Run();
///
/// The referenced Table must outlive the query.
class TableQuery {
 public:
  explicit TableQuery(const Table* table) : table_(table) {}

  /// Sets the row filter (replaces any earlier Where).
  TableQuery& Where(PredicatePtr pred) {
    where_ = std::move(pred);
    return *this;
  }

  /// Sets group-by keys. With no Aggregate(), groups are returned with a
  /// default count(*) column.
  TableQuery& GroupBy(std::vector<std::string> keys) {
    group_by_ = std::move(keys);
    return *this;
  }

  /// Sets the aggregates computed per group (or over the whole input when
  /// no GroupBy was given).
  TableQuery& Aggregate(std::vector<AggSpec> specs) {
    aggregates_ = std::move(specs);
    return *this;
  }

  /// Restricts output columns (non-aggregate queries only).
  TableQuery& Select(std::vector<std::string> columns) {
    select_ = std::move(columns);
    return *this;
  }

  /// Orders output rows by a column of the *result* table.
  TableQuery& OrderBy(std::string column, bool ascending = true) {
    order_by_ = std::move(column);
    order_ascending_ = ascending;
    return *this;
  }

  /// Caps output row count (applied last).
  TableQuery& Limit(size_t n) {
    limit_ = n;
    has_limit_ = true;
    return *this;
  }

  /// Executes the query and materializes the result table.
  Result<Table> Run() const;

 private:
  Result<Table> RunAggregation(const std::vector<size_t>& rows) const;

  const Table* table_;
  PredicatePtr where_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
  std::vector<std::string> select_;
  std::string order_by_;
  bool order_ascending_ = true;
  size_t limit_ = 0;
  bool has_limit_ = false;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_QUERY_H_
