#include "table/sql.h"

#include <cctype>
#include <vector>

#include "common/date.h"
#include "common/strings.h"
#include "table/aggregate.h"
#include "table/predicate.h"
#include "table/query.h"

namespace ddgms {

namespace {

enum class SqlTokenType {
  kIdent,    // bare or "quoted" identifier
  kString,   // 'literal'
  kNumber,
  kOperator,  // = != <> < <= > >=
  kLParen,
  kRParen,
  kComma,
  kStar,
  kEof,
};

struct SqlToken {
  SqlTokenType type = SqlTokenType::kEof;
  std::string text;
  size_t offset = 0;
};

Result<std::vector<SqlToken>> SqlTokenize(const std::string& input) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    size_t start = i;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({SqlTokenType::kLParen, "(", start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({SqlTokenType::kRParen, ")", start});
      ++i;
    } else if (c == ',') {
      tokens.push_back({SqlTokenType::kComma, ",", start});
      ++i;
    } else if (c == '*') {
      tokens.push_back({SqlTokenType::kStar, "*", start});
      ++i;
    } else if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at offset %zu", start));
      }
      tokens.push_back({SqlTokenType::kString, std::move(text), start});
    } else if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated identifier at offset %zu", start));
      }
      tokens.push_back({SqlTokenType::kIdent, std::move(text), start});
    } else if (c == '=' || c == '<' || c == '>' || c == '!') {
      std::string op(1, c);
      ++i;
      if (i < n && (input[i] == '=' || (c == '<' && input[i] == '>'))) {
        op.push_back(input[i]);
        ++i;
      }
      if (op == "!") {
        return Status::ParseError(
            StrFormat("bad operator '!' at offset %zu", start));
      }
      tokens.push_back({SqlTokenType::kOperator, std::move(op), start});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::string num(1, c);
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        num.push_back(input[i]);
        ++i;
      }
      tokens.push_back({SqlTokenType::kNumber, std::move(num), start});
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ident.push_back(input[i]);
        ++i;
      }
      tokens.push_back({SqlTokenType::kIdent, std::move(ident), start});
    } else {
      return Status::ParseError(
          StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  tokens.push_back({SqlTokenType::kEof, "", n});
  return tokens;
}

/// Recursive-descent SELECT parser building a TableQuery.
class SqlParser {
 public:
  SqlParser(std::vector<SqlToken> tokens,
            const std::unordered_map<std::string, const Table*>& tables)
      : tokens_(std::move(tokens)), tables_(tables) {}

  Result<Table> ParseAndRun() {
    DDGMS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Select list (deferred until we know the table).
    struct SelectItem {
      bool star = false;
      bool is_aggregate = false;
      AggSpec agg;
      std::string column;
    };
    std::vector<SelectItem> items;
    while (true) {
      SelectItem item;
      if (ConsumeIf(SqlTokenType::kStar)) {
        item.star = true;
      } else if (Peek().type == SqlTokenType::kIdent) {
        std::string name = Next().text;
        if (ConsumeIf(SqlTokenType::kLParen)) {
          DDGMS_ASSIGN_OR_RETURN(AggFn fn, AggFnFromName(name));
          item.is_aggregate = true;
          item.agg.fn = fn;
          if (ConsumeIf(SqlTokenType::kStar)) {
            if (fn != AggFn::kCount) {
              return Error("only COUNT(*) may aggregate '*'");
            }
          } else if (Peek().type == SqlTokenType::kIdent) {
            item.agg.column = Next().text;
          } else {
            return Error("expected column or * in aggregate");
          }
          if (!ConsumeIf(SqlTokenType::kRParen)) {
            return Error("expected ) closing aggregate");
          }
        } else {
          item.column = std::move(name);
        }
        if (IsKeyword(Peek(), "AS")) {
          Next();
          if (Peek().type != SqlTokenType::kIdent) {
            return Error("expected alias after AS");
          }
          if (item.is_aggregate) {
            item.agg.alias = Next().text;
          } else {
            return Error("AS is only supported on aggregates");
          }
        }
      } else {
        return Error("expected select item");
      }
      items.push_back(std::move(item));
      if (!ConsumeIf(SqlTokenType::kComma)) break;
    }

    DDGMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != SqlTokenType::kIdent) {
      return Error("expected table name after FROM");
    }
    std::string table_name = ToLower(Next().text);
    auto table_it = tables_.find(table_name);
    if (table_it == tables_.end()) {
      return Status::NotFound("no table named '" + table_name + "'");
    }
    TableQuery query(table_it->second);

    if (IsKeyword(Peek(), "WHERE")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(PredicatePtr pred, ParseOrExpr());
      query.Where(std::move(pred));
    }
    std::vector<std::string> group_by;
    if (IsKeyword(Peek(), "GROUP")) {
      Next();
      DDGMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        if (Peek().type != SqlTokenType::kIdent) {
          return Error("expected column in GROUP BY");
        }
        group_by.push_back(Next().text);
        if (!ConsumeIf(SqlTokenType::kComma)) break;
      }
      query.GroupBy(group_by);
    }

    // Resolve the select list now that grouping is known.
    bool any_aggregate = false;
    std::vector<AggSpec> aggregates;
    std::vector<std::string> plain_columns;
    bool star = false;
    for (const auto& item : items) {
      if (item.star) {
        star = true;
      } else if (item.is_aggregate) {
        any_aggregate = true;
        aggregates.push_back(item.agg);
      } else {
        plain_columns.push_back(item.column);
      }
    }
    if (any_aggregate || !group_by.empty()) {
      if (star) {
        return Error("SELECT * cannot be combined with aggregation");
      }
      // Plain columns must match the group-by keys (they are implied in
      // the output); anything else is an error.
      for (const std::string& col : plain_columns) {
        bool is_key = false;
        for (const std::string& key : group_by) {
          if (key == col) {
            is_key = true;
            break;
          }
        }
        if (!is_key) {
          return Status::InvalidArgument(
              "column '" + col +
              "' must appear in GROUP BY or an aggregate");
        }
      }
      query.Aggregate(aggregates);
    } else if (!star) {
      query.Select(plain_columns);
    }

    if (IsKeyword(Peek(), "ORDER")) {
      Next();
      DDGMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (Peek().type != SqlTokenType::kIdent) {
        return Error("expected column in ORDER BY");
      }
      std::string col = Next().text;
      bool ascending = true;
      if (IsKeyword(Peek(), "ASC")) {
        Next();
      } else if (IsKeyword(Peek(), "DESC")) {
        Next();
        ascending = false;
      }
      query.OrderBy(col, ascending);
    }
    if (IsKeyword(Peek(), "LIMIT")) {
      Next();
      if (Peek().type != SqlTokenType::kNumber) {
        return Error("expected number after LIMIT");
      }
      DDGMS_ASSIGN_OR_RETURN(int64_t limit, ParseInt64(Next().text));
      if (limit < 0) return Error("LIMIT must be non-negative");
      query.Limit(static_cast<size_t>(limit));
    }
    if (Peek().type != SqlTokenType::kEof) {
      return Error("unexpected trailing tokens");
    }
    return query.Run();
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Next() { return tokens_[pos_++]; }
  bool ConsumeIf(SqlTokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }
  static bool IsKeyword(const SqlToken& tok, const char* kw) {
    return tok.type == SqlTokenType::kIdent &&
           EqualsIgnoreCase(tok.text, kw);
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Status::ParseError(
          StrFormat("expected %s at offset %zu (found '%s')", kw,
                    Peek().offset, Peek().text.c_str()));
    }
    ++pos_;
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s at offset %zu (near '%s')",
                                        what.c_str(), Peek().offset,
                                        Peek().text.c_str()));
  }

  Result<Value> ParseLiteral() {
    const SqlToken& tok = Peek();
    if (tok.type == SqlTokenType::kString) {
      Next();
      return Value::Str(tok.text);
    }
    if (tok.type == SqlTokenType::kNumber) {
      Next();
      if (tok.text.find('.') != std::string::npos) {
        DDGMS_ASSIGN_OR_RETURN(double d, ParseDouble(tok.text));
        return Value::Real(d);
      }
      DDGMS_ASSIGN_OR_RETURN(int64_t i, ParseInt64(tok.text));
      return Value::Int(i);
    }
    if (IsKeyword(tok, "TRUE")) {
      Next();
      return Value::Bool(true);
    }
    if (IsKeyword(tok, "FALSE")) {
      Next();
      return Value::Bool(false);
    }
    if (IsKeyword(tok, "NULL")) {
      Next();
      return Value::Null();
    }
    if (IsKeyword(tok, "DATE")) {
      Next();
      if (Peek().type != SqlTokenType::kString) {
        return Error("expected 'YYYY-MM-DD' after DATE");
      }
      DDGMS_ASSIGN_OR_RETURN(Date d, Date::FromString(Next().text));
      return Value::FromDate(d);
    }
    return Error("expected literal");
  }

  Result<PredicatePtr> ParseOrExpr() {
    DDGMS_ASSIGN_OR_RETURN(PredicatePtr left, ParseAndExpr());
    while (IsKeyword(Peek(), "OR")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(PredicatePtr right, ParseAndExpr());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseAndExpr() {
    DDGMS_ASSIGN_OR_RETURN(PredicatePtr left, ParseUnary());
    while (IsKeyword(Peek(), "AND")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(PredicatePtr right, ParseUnary());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseUnary() {
    if (IsKeyword(Peek(), "NOT")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(PredicatePtr inner, ParseUnary());
      return Not(std::move(inner));
    }
    if (ConsumeIf(SqlTokenType::kLParen)) {
      DDGMS_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOrExpr());
      if (!ConsumeIf(SqlTokenType::kRParen)) {
        return Error("expected ) closing predicate");
      }
      return inner;
    }
    if (Peek().type != SqlTokenType::kIdent) {
      return Error("expected column in predicate");
    }
    std::string column = Next().text;

    if (IsKeyword(Peek(), "IS")) {
      Next();
      bool negated = false;
      if (IsKeyword(Peek(), "NOT")) {
        Next();
        negated = true;
      }
      DDGMS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return negated ? NotNull(column) : IsNull(column);
    }
    if (IsKeyword(Peek(), "BETWEEN")) {
      Next();
      DDGMS_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      DDGMS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DDGMS_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      return Between(column, std::move(lo), std::move(hi));
    }
    if (IsKeyword(Peek(), "IN")) {
      Next();
      if (!ConsumeIf(SqlTokenType::kLParen)) {
        return Error("expected ( after IN");
      }
      std::vector<Value> options;
      while (true) {
        DDGMS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        options.push_back(std::move(v));
        if (!ConsumeIf(SqlTokenType::kComma)) break;
      }
      if (!ConsumeIf(SqlTokenType::kRParen)) {
        return Error("expected ) closing IN list");
      }
      return In(column, std::move(options));
    }
    if (Peek().type != SqlTokenType::kOperator) {
      return Error("expected comparison operator");
    }
    std::string op = Next().text;
    DDGMS_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    if (op == "=") return Eq(column, std::move(literal));
    if (op == "!=" || op == "<>") return Ne(column, std::move(literal));
    if (op == "<") return Lt(column, std::move(literal));
    if (op == "<=") return Le(column, std::move(literal));
    if (op == ">") return Gt(column, std::move(literal));
    if (op == ">=") return Ge(column, std::move(literal));
    return Error("unknown operator '" + op + "'");
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
  const std::unordered_map<std::string, const Table*>& tables_;
};

}  // namespace

std::string SqlEngine::ToLowerName(const std::string& name) {
  return ToLower(name);
}

Result<Table> SqlEngine::Execute(const std::string& sql) const {
  DDGMS_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, SqlTokenize(sql));
  SqlParser parser(std::move(tokens), tables_);
  return parser.ParseAndRun();
}

}  // namespace ddgms
