#include "table/predicate.h"

#include <utility>

namespace ddgms {

namespace {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CmpOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  bool Matches(const Table& table, size_t row) const override {
    auto col = table.ColumnByName(column_);
    if (!col.ok()) return false;
    if ((*col)->IsNull(row)) return false;
    int c = (*col)->GetValue(row).Compare(literal_);
    switch (op_) {
      case CmpOp::kEq: return c == 0;
      case CmpOp::kNe: return c != 0;
      case CmpOp::kLt: return c < 0;
      case CmpOp::kLe: return c <= 0;
      case CmpOp::kGt: return c > 0;
      case CmpOp::kGe: return c >= 0;
    }
    return false;
  }

  Status Validate(const Table& table) const override {
    return table.ColumnByName(column_).status();
  }

  std::string ToString() const override {
    return column_ + " " + CmpOpName(op_) + " " + literal_.ToString();
  }

 private:
  std::string column_;
  CmpOp op_;
  Value literal_;
};

class InPredicate final : public Predicate {
 public:
  InPredicate(std::string column, std::vector<Value> options)
      : column_(std::move(column)), options_(std::move(options)) {}

  bool Matches(const Table& table, size_t row) const override {
    auto col = table.ColumnByName(column_);
    if (!col.ok()) return false;
    if ((*col)->IsNull(row)) return false;
    Value v = (*col)->GetValue(row);
    for (const Value& opt : options_) {
      if (v.Equals(opt)) return true;
    }
    return false;
  }

  Status Validate(const Table& table) const override {
    return table.ColumnByName(column_).status();
  }

  std::string ToString() const override {
    std::string out = column_ + " IN (";
    for (size_t i = 0; i < options_.size(); ++i) {
      if (i > 0) out += ", ";
      out += options_[i].ToString();
    }
    return out + ")";
  }

 private:
  std::string column_;
  std::vector<Value> options_;
};

class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}

  bool Matches(const Table& table, size_t row) const override {
    auto col = table.ColumnByName(column_);
    if (!col.ok()) return false;
    if ((*col)->IsNull(row)) return false;
    Value v = (*col)->GetValue(row);
    return v.Compare(lo_) >= 0 && v.Compare(hi_) <= 0;
  }

  Status Validate(const Table& table) const override {
    return table.ColumnByName(column_).status();
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " +
           hi_.ToString();
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
};

class NullPredicate final : public Predicate {
 public:
  NullPredicate(std::string column, bool want_null)
      : column_(std::move(column)), want_null_(want_null) {}

  bool Matches(const Table& table, size_t row) const override {
    auto col = table.ColumnByName(column_);
    if (!col.ok()) return false;
    return (*col)->IsNull(row) == want_null_;
  }

  Status Validate(const Table& table) const override {
    return table.ColumnByName(column_).status();
  }

  std::string ToString() const override {
    return column_ + (want_null_ ? " IS NULL" : " IS NOT NULL");
  }

 private:
  std::string column_;
  bool want_null_;
};

class BinaryLogicPredicate final : public Predicate {
 public:
  BinaryLogicPredicate(PredicatePtr a, PredicatePtr b, bool is_and)
      : a_(std::move(a)), b_(std::move(b)), is_and_(is_and) {}

  bool Matches(const Table& table, size_t row) const override {
    if (is_and_) {
      return a_->Matches(table, row) && b_->Matches(table, row);
    }
    return a_->Matches(table, row) || b_->Matches(table, row);
  }

  Status Validate(const Table& table) const override {
    DDGMS_RETURN_IF_ERROR(a_->Validate(table));
    return b_->Validate(table);
  }

  std::string ToString() const override {
    return "(" + a_->ToString() + (is_and_ ? " AND " : " OR ") +
           b_->ToString() + ")";
  }

 private:
  PredicatePtr a_;
  PredicatePtr b_;
  bool is_and_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  bool Matches(const Table& table, size_t row) const override {
    return !inner_->Matches(table, row);
  }

  Status Validate(const Table& table) const override {
    return inner_->Validate(table);
  }

  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  PredicatePtr inner_;
};

class ConstPredicate final : public Predicate {
 public:
  explicit ConstPredicate(bool value) : value_(value) {}

  bool Matches(const Table&, size_t) const override { return value_; }
  Status Validate(const Table&) const override { return Status::OK(); }
  std::string ToString() const override {
    return value_ ? "TRUE" : "FALSE";
  }

 private:
  bool value_;
};

}  // namespace

PredicatePtr Eq(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kEq,
                                               std::move(literal));
}
PredicatePtr Ne(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kNe,
                                               std::move(literal));
}
PredicatePtr Lt(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kLt,
                                               std::move(literal));
}
PredicatePtr Le(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kLe,
                                               std::move(literal));
}
PredicatePtr Gt(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kGt,
                                               std::move(literal));
}
PredicatePtr Ge(std::string column, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), CmpOp::kGe,
                                               std::move(literal));
}
PredicatePtr In(std::string column, std::vector<Value> options) {
  return std::make_shared<InPredicate>(std::move(column),
                                       std::move(options));
}
PredicatePtr Between(std::string column, Value lo, Value hi) {
  return std::make_shared<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}
PredicatePtr IsNull(std::string column) {
  return std::make_shared<NullPredicate>(std::move(column), true);
}
PredicatePtr NotNull(std::string column) {
  return std::make_shared<NullPredicate>(std::move(column), false);
}
PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  return std::make_shared<BinaryLogicPredicate>(std::move(a), std::move(b),
                                                /*is_and=*/true);
}
PredicatePtr Or(PredicatePtr a, PredicatePtr b) {
  return std::make_shared<BinaryLogicPredicate>(std::move(a), std::move(b),
                                                /*is_and=*/false);
}
PredicatePtr Not(PredicatePtr inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}
PredicatePtr AllOf(std::vector<PredicatePtr> preds) {
  PredicatePtr acc = TruePredicate();
  for (PredicatePtr& p : preds) {
    acc = And(std::move(acc), std::move(p));
  }
  return acc;
}
PredicatePtr TruePredicate() {
  return std::make_shared<ConstPredicate>(true);
}

}  // namespace ddgms
