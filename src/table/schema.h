#ifndef DDGMS_TABLE_SCHEMA_H_
#define DDGMS_TABLE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace ddgms {

/// Name + type of one column.
struct Field {
  std::string name;
  DataType type = DataType::kString;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered list of uniquely named fields.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; duplicate names are an error.
  static Result<Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const std::vector<Field>& fields() const { return fields_; }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of a field by name, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Appends a field; duplicate names are an error.
  Status AddField(Field field);

  /// "name:type, name:type, ..." rendering for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace ddgms

#endif  // DDGMS_TABLE_SCHEMA_H_
