#ifndef DDGMS_TABLE_STORE_H_
#define DDGMS_TABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/faults.h"
#include "common/result.h"
#include "table/table.h"

namespace ddgms {

/// Connector to an external source of raw extracts — the paper's OLTP
/// systems the DD-DGMS ingests from. Resources are named blobs of CSV
/// text. Implementations are expected to fail with transient codes
/// (kDataLoss, kInternal) on flaky transport and permanent codes
/// (kNotFound, kParseError) otherwise, so RetryPolicy can tell them
/// apart.
class DataStore {
 public:
  virtual ~DataStore() = default;

  /// Fetches the raw contents of `resource`.
  virtual Result<std::string> Fetch(const std::string& resource) = 0;

  /// Stores `contents` under `resource`, replacing any previous value.
  virtual Status Store(const std::string& resource,
                       const std::string& contents) = 0;
};

/// In-memory store (tests, staging buffers). Passes through the
/// "store.fetch" / "store.store" fault-injection points.
class MemoryStore : public DataStore {
 public:
  Result<std::string> Fetch(const std::string& resource) override;
  Status Store(const std::string& resource,
               const std::string& contents) override;

  size_t size() const { return blobs_.size(); }

 private:
  std::map<std::string, std::string> blobs_;
};

/// Store backed by files under a root directory; resource names are
/// paths relative to the root. Shares the MemoryStore fault points
/// plus the underlying "csv.read_file" / "csv.write_file" ones.
class FileStore : public DataStore {
 public:
  explicit FileStore(std::string root_dir)
      : root_dir_(std::move(root_dir)) {}

  Result<std::string> Fetch(const std::string& resource) override;
  Status Store(const std::string& resource,
               const std::string& contents) override;

 private:
  std::string root_dir_;
};

/// Deterministic flakiness schedule for FlakyStore.
struct FlakyStoreOptions {
  /// Fail the first N fetches with `code` (then heal). Transient-outage
  /// shape, the common OLTP-extract failure in practice.
  size_t fail_first_fetches = 0;
  /// Additionally fail each fetch with this probability, drawn from a
  /// deterministic Rng seeded with `seed`.
  double fetch_failure_probability = 0.0;
  uint64_t seed = 42;
  StatusCode code = StatusCode::kDataLoss;
};

/// Wraps another store with deterministic injected flakiness — a
/// stand-in for the unreliable clinical OLTP sources the paper's
/// warehouse loads from. Unlike FaultRegistry (process-global, inert
/// by default), a FlakyStore is a local object: benches and tests can
/// build one without touching global state.
class FlakyStore : public DataStore {
 public:
  FlakyStore(DataStore* inner, FlakyStoreOptions options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  Result<std::string> Fetch(const std::string& resource) override;
  Status Store(const std::string& resource,
               const std::string& contents) override;

  size_t fetches_attempted() const { return fetches_attempted_; }
  size_t fetches_failed() const { return fetches_failed_; }

 private:
  DataStore* inner_;  // not owned
  FlakyStoreOptions options_;
  Rng rng_;
  size_t fetches_attempted_ = 0;
  size_t fetches_failed_ = 0;
};

/// Wraps another store so every operation is retried per `policy`
/// (capped exponential backoff, transient codes only). This is the
/// connector ingestion actually uses: a FlakyStore wrapped in a
/// RetryingStore absorbs transient faults invisibly to callers.
class RetryingStore : public DataStore {
 public:
  RetryingStore(DataStore* inner, RetryPolicy policy)
      : inner_(inner), policy_(std::move(policy)) {}

  Result<std::string> Fetch(const std::string& resource) override;
  Status Store(const std::string& resource,
               const std::string& contents) override;

  /// Accounting for the most recent operation (attempts made,
  /// transient failures absorbed).
  const RetryStats& last_stats() const { return last_stats_; }

 private:
  DataStore* inner_;  // not owned
  RetryPolicy policy_;
  RetryStats last_stats_;
};

/// Fetches `resource` from `store` with retries and parses it into a
/// Table per `options` (including lenient/quarantine behaviour — see
/// CsvReadOptions). The one-call ingestion path used by DdDgms.
Result<Table> LoadTableFromStore(DataStore* store,
                                 const std::string& resource,
                                 const CsvReadOptions& options,
                                 const RetryPolicy& policy,
                                 RetryStats* stats = nullptr);

}  // namespace ddgms

#endif  // DDGMS_TABLE_STORE_H_
