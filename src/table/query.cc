#include "table/query.h"

#include <unordered_map>

#include "common/strings.h"

namespace ddgms {

Result<Table> TableQuery::Run() const {
  if (table_ == nullptr) {
    return Status::InvalidArgument("TableQuery has no source table");
  }
  if (where_ != nullptr) {
    DDGMS_RETURN_IF_ERROR(where_->Validate(*table_));
  }
  std::vector<size_t> rows;
  if (where_ == nullptr) {
    rows.resize(table_->num_rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  } else {
    rows = table_->MatchingRows([this](const Table& t, size_t i) {
      return where_->Matches(t, i);
    });
  }

  Table result;
  if (!group_by_.empty() || !aggregates_.empty()) {
    if (!select_.empty()) {
      return Status::InvalidArgument(
          "Select() cannot be combined with GroupBy()/Aggregate(); "
          "aggregate output columns are implied");
    }
    DDGMS_ASSIGN_OR_RETURN(result, RunAggregation(rows));
    if (!order_by_.empty()) {
      DDGMS_ASSIGN_OR_RETURN(
          result, result.SortBy({order_by_}, order_ascending_));
    }
  } else {
    // SQL semantics: ORDER BY may reference columns that the projection
    // drops, so sort before projecting.
    result = table_->Take(rows);
    if (!order_by_.empty()) {
      DDGMS_ASSIGN_OR_RETURN(
          result, result.SortBy({order_by_}, order_ascending_));
    }
    if (!select_.empty()) {
      DDGMS_ASSIGN_OR_RETURN(result, result.Project(select_));
    }
  }
  if (has_limit_ && result.num_rows() > limit_) {
    std::vector<size_t> head(limit_);
    for (size_t i = 0; i < limit_; ++i) head[i] = i;
    result = result.Take(head);
  }
  return result;
}

Result<Table> TableQuery::RunAggregation(
    const std::vector<size_t>& rows) const {
  std::vector<AggSpec> aggs = aggregates_;
  if (aggs.empty()) {
    aggs.push_back(AggSpec{AggFn::kCount, "", "count"});
  }

  // Resolve key and aggregate input columns up front.
  std::vector<const ColumnVector*> key_cols;
  key_cols.reserve(group_by_.size());
  for (const std::string& k : group_by_) {
    DDGMS_ASSIGN_OR_RETURN(const ColumnVector* col,
                           table_->ColumnByName(k));
    key_cols.push_back(col);
  }
  std::vector<const ColumnVector*> agg_cols(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].column.empty()) {
      if (aggs[a].fn != AggFn::kCount) {
        return Status::InvalidArgument(
            StrFormat("aggregate %s requires a column",
                      AggFnName(aggs[a].fn)));
      }
      continue;
    }
    DDGMS_ASSIGN_OR_RETURN(agg_cols[a],
                           table_->ColumnByName(aggs[a].column));
  }

  // Group rows by key tuple, preserving first-appearance order.
  std::unordered_map<std::vector<Value>, size_t, ValueVectorHash,
                     ValueVectorEq>
      group_index;
  std::vector<std::vector<Value>> group_keys;
  std::vector<std::vector<Accumulator>> group_accs;
  for (size_t row : rows) {
    std::vector<Value> key;
    key.reserve(key_cols.size());
    for (const ColumnVector* col : key_cols) {
      key.push_back(col->GetValue(row));
    }
    auto [it, inserted] = group_index.emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(std::move(key));
      std::vector<Accumulator> accs;
      accs.reserve(aggs.size());
      for (const AggSpec& spec : aggs) accs.emplace_back(spec.fn);
      group_accs.push_back(std::move(accs));
    }
    std::vector<Accumulator>& accs = group_accs[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      accs[a].Add(agg_cols[a] == nullptr ? Value::Int(1)
                                         : agg_cols[a]->GetValue(row));
    }
  }

  // Output schema: group keys (original types) then aggregate columns.
  std::vector<Field> fields;
  for (size_t k = 0; k < group_by_.size(); ++k) {
    fields.push_back(Field{group_by_[k], key_cols[k]->type()});
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    DataType out_type;
    switch (aggs[a].fn) {
      case AggFn::kCount:
      case AggFn::kCountValid:
      case AggFn::kCountDistinct:
        out_type = DataType::kInt64;
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        out_type = agg_cols[a]->type();
        break;
      default:
        out_type = DataType::kDouble;
        break;
    }
    fields.push_back(Field{aggs[a].OutputName(), out_type});
  }
  DDGMS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(std::move(schema));
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(group_accs[g][a].Finish());
    }
    DDGMS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace ddgms
