#include "table/column.h"

#include <cassert>
#include <unordered_set>

#include "common/resource.h"
#include "common/strings.h"

namespace ddgms {

namespace {

// Index of the storage alternative for a type.
size_t StorageIndex(DataType type) {
  switch (type) {
    case DataType::kBool: return 0;
    case DataType::kInt64: return 1;
    case DataType::kDouble: return 2;
    case DataType::kString: return 3;
    case DataType::kDate: return 4;
    case DataType::kNull: break;
  }
  assert(false && "kNull has no column storage");
  return 0;
}

// Bytes one appended slot adds to value storage + validity bitmap.
// Strings add their heap payload on top (see AppendString).
uint64_t SlotBytes(DataType type) {
  switch (type) {
    case DataType::kBool: return sizeof(uint8_t) + 1;
    case DataType::kInt64: return sizeof(int64_t) + 1;
    case DataType::kDouble: return sizeof(double) + 1;
    case DataType::kString: return sizeof(std::string) + 1;
    case DataType::kDate: return sizeof(int32_t) + 1;
    case DataType::kNull: break;
  }
  return 0;
}

}  // namespace

ColumnVector::ColumnVector(std::string name, DataType type)
    : name_(std::move(name)), type_(type) {
  switch (StorageIndex(type)) {
    case 0: data_ = std::vector<uint8_t>{}; break;
    case 1: data_ = std::vector<int64_t>{}; break;
    case 2: data_ = std::vector<double>{}; break;
    case 3: data_ = std::vector<std::string>{}; break;
    case 4: data_ = std::vector<int32_t>{}; break;
  }
}

Status ColumnVector::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      if (value.type() != DataType::kBool) break;
      AppendBool(value.bool_value());
      return Status::OK();
    case DataType::kInt64:
      if (value.type() != DataType::kInt64) break;
      AppendInt(value.int_value());
      return Status::OK();
    case DataType::kDouble:
      if (value.type() == DataType::kDouble) {
        AppendDouble(value.double_value());
        return Status::OK();
      }
      if (value.type() == DataType::kInt64) {
        AppendDouble(static_cast<double>(value.int_value()));
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (value.type() != DataType::kString) break;
      AppendString(value.string_value());
      return Status::OK();
    case DataType::kDate:
      if (value.type() != DataType::kDate) break;
      AppendDate(value.date_value());
      return Status::OK();
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument(
      StrFormat("cannot append %s value to %s column '%s'",
                DataTypeName(value.type()), DataTypeName(type_),
                name_.c_str()));
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case DataType::kBool:
      std::get<std::vector<uint8_t>>(data_).push_back(0);
      break;
    case DataType::kInt64:
      std::get<std::vector<int64_t>>(data_).push_back(0);
      break;
    case DataType::kDouble:
      std::get<std::vector<double>>(data_).push_back(0.0);
      break;
    case DataType::kString:
      std::get<std::vector<std::string>>(data_).emplace_back();
      break;
    case DataType::kDate:
      std::get<std::vector<int32_t>>(data_).push_back(0);
      break;
    case DataType::kNull:
      assert(false);
      break;
  }
  validity_.push_back(0);
  ++null_count_;
  DDGMS_RESOURCE_CHARGE(SlotBytes(type_));
}

void ColumnVector::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  std::get<std::vector<uint8_t>>(data_).push_back(v ? 1 : 0);
  validity_.push_back(1);
  DDGMS_RESOURCE_CHARGE(SlotBytes(DataType::kBool));
}

void ColumnVector::AppendInt(int64_t v) {
  assert(type_ == DataType::kInt64);
  std::get<std::vector<int64_t>>(data_).push_back(v);
  validity_.push_back(1);
  DDGMS_RESOURCE_CHARGE(SlotBytes(DataType::kInt64));
}

void ColumnVector::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  std::get<std::vector<double>>(data_).push_back(v);
  validity_.push_back(1);
  DDGMS_RESOURCE_CHARGE(SlotBytes(DataType::kDouble));
}

void ColumnVector::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  DDGMS_RESOURCE_CHARGE(SlotBytes(DataType::kString) + v.size());
  std::get<std::vector<std::string>>(data_).push_back(std::move(v));
  validity_.push_back(1);
}

void ColumnVector::AppendDate(Date v) {
  assert(type_ == DataType::kDate);
  std::get<std::vector<int32_t>>(data_).push_back(v.days_since_epoch());
  validity_.push_back(1);
  DDGMS_RESOURCE_CHARGE(SlotBytes(DataType::kDate));
}

Value ColumnVector::GetValue(size_t row) const {
  assert(row < size());
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kBool: return Value::Bool(BoolAt(row));
    case DataType::kInt64: return Value::Int(IntAt(row));
    case DataType::kDouble: return Value::Real(DoubleAt(row));
    case DataType::kString: return Value::Str(StringAt(row));
    case DataType::kDate: return Value::FromDate(DateAt(row));
    case DataType::kNull: break;
  }
  return Value::Null();
}

Status ColumnVector::SetValue(size_t row, const Value& value) {
  if (row >= size()) {
    return Status::OutOfRange(
        StrFormat("row %zu out of range (size %zu)", row, size()));
  }
  bool was_null = IsNull(row);
  if (value.is_null()) {
    if (!was_null) {
      validity_[row] = 0;
      ++null_count_;
    }
    return Status::OK();
  }
  bool stored = false;
  switch (type_) {
    case DataType::kBool:
      if (value.type() == DataType::kBool) {
        std::get<std::vector<uint8_t>>(data_)[row] =
            value.bool_value() ? 1 : 0;
        stored = true;
      }
      break;
    case DataType::kInt64:
      if (value.type() == DataType::kInt64) {
        std::get<std::vector<int64_t>>(data_)[row] = value.int_value();
        stored = true;
      }
      break;
    case DataType::kDouble:
      if (value.type() == DataType::kDouble) {
        std::get<std::vector<double>>(data_)[row] = value.double_value();
        stored = true;
      } else if (value.type() == DataType::kInt64) {
        std::get<std::vector<double>>(data_)[row] =
            static_cast<double>(value.int_value());
        stored = true;
      }
      break;
    case DataType::kString:
      if (value.type() == DataType::kString) {
        std::get<std::vector<std::string>>(data_)[row] =
            value.string_value();
        stored = true;
      }
      break;
    case DataType::kDate:
      if (value.type() == DataType::kDate) {
        std::get<std::vector<int32_t>>(data_)[row] =
            value.date_value().days_since_epoch();
        stored = true;
      }
      break;
    case DataType::kNull:
      break;
  }
  if (!stored) {
    return Status::InvalidArgument(
        StrFormat("cannot set %s value in %s column '%s'",
                  DataTypeName(value.type()), DataTypeName(type_),
                  name_.c_str()));
  }
  if (was_null) {
    validity_[row] = 1;
    --null_count_;
  }
  return Status::OK();
}

Result<double> ColumnVector::NumericAt(size_t row) const {
  if (row >= size()) {
    return Status::OutOfRange(
        StrFormat("row %zu out of range (size %zu)", row, size()));
  }
  if (IsNull(row)) {
    return Status::InvalidArgument("null cell has no numeric value");
  }
  switch (type_) {
    case DataType::kBool: return BoolAt(row) ? 1.0 : 0.0;
    case DataType::kInt64: return static_cast<double>(IntAt(row));
    case DataType::kDouble: return DoubleAt(row);
    default:
      return Status::InvalidArgument(
          StrFormat("column '%s' of type %s is not numeric", name_.c_str(),
                    DataTypeName(type_)));
  }
}

ColumnVector ColumnVector::Take(const std::vector<size_t>& indices) const {
  ColumnVector out(name_, type_);
  for (size_t idx : indices) {
    assert(idx < size());
    if (IsNull(idx)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kBool: out.AppendBool(BoolAt(idx)); break;
      case DataType::kInt64: out.AppendInt(IntAt(idx)); break;
      case DataType::kDouble: out.AppendDouble(DoubleAt(idx)); break;
      case DataType::kString: out.AppendString(StringAt(idx)); break;
      case DataType::kDate: out.AppendDate(DateAt(idx)); break;
      case DataType::kNull: break;
    }
  }
  return out;
}

uint64_t ColumnVector::ApproxBytes() const {
  uint64_t bytes = static_cast<uint64_t>(size()) * SlotBytes(type_);
  if (type_ == DataType::kString) {
    for (const std::string& s : Strings()) bytes += s.size();
  }
  return bytes;
}

std::vector<Value> ColumnVector::DistinctValues() const {
  std::vector<Value> out;
  std::unordered_set<Value, ValueHash, ValueEq> seen;
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (seen.insert(v).second) {
      out.push_back(std::move(v));
    }
  }
  return out;
}

Value ColumnVector::Min() const {
  Value best = Value::Null();
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || v.Compare(best) < 0) best = std::move(v);
  }
  return best;
}

Value ColumnVector::Max() const {
  Value best = Value::Null();
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i)) continue;
    Value v = GetValue(i);
    if (best.is_null() || v.Compare(best) > 0) best = std::move(v);
  }
  return best;
}

}  // namespace ddgms
